// Fig. 1: the identification rule
//   IF name > threshold1 AND job > threshold2
//   THEN DUPLICATES with CERTAINTY=0.8
// Parses the rule from its textual form and evaluates it over a grid of
// comparison vectors; the certainty must be 0.8 exactly when both
// conditions hold.

#include "bench_util.h"
#include "core/paper_examples.h"
#include "decision/rule_engine.h"
#include "decision/rule_parser.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;
  using pdd_bench::Verdict;

  Banner("Fig. 1 — knowledge-based identification rule",
         "duplicates with certainty 0.8 iff name > th1 and job > th2");
  Schema schema = PaperSchema();
  Result<IdentificationRule> rule = ParseRule(
      "IF name > 0.8 AND job > 0.5 THEN DUPLICATES WITH CERTAINTY 0.8",
      schema);
  if (!rule.ok()) {
    std::cout << "parse error: " << rule.status().ToString() << "\n";
    return Verdict(false);
  }
  RuleEngine engine({*rule});
  TablePrinter table({"c(name)", "c(job)", "fires", "certainty"});
  bool ok = true;
  for (double name_sim : {0.7, 0.81, 0.9, 1.0}) {
    for (double job_sim : {0.3, 0.51, 0.59, 0.9}) {
      ComparisonVector c({name_sim, job_sim});
      double certainty = engine.Evaluate(c);
      bool should_fire = name_sim > 0.8 && job_sim > 0.5;
      ok = ok && (certainty == (should_fire ? 0.8 : 0.0));
      table.AddRow({Fmt(name_sim, 2), Fmt(job_sim, 2),
                    should_fire ? "yes" : "no", Fmt(certainty, 2)});
    }
  }
  table.Print(std::cout);
  // The paper's worked vector (0.9, 0.59) must fire.
  ok = ok && rule->Fires(ComparisonVector({0.9, 0.59}));
  return Verdict(ok);
}
