// Fig. 2: classification of tuple pairs into U / P / M by the matching
// weight R against thresholds Tλ and Tμ. Sweeps R across the bands and
// prints the resulting classes.

#include "bench_util.h"
#include "decision/classifier.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;
  using pdd_bench::Verdict;

  Banner("Fig. 2 — classification into M, P, U",
         "R < Tλ ⇒ U (non-match); Tλ ≤ R ≤ Tμ ⇒ P; R > Tμ ⇒ M (match)");
  Thresholds t{0.4, 0.7};
  TablePrinter table({"R", "class"});
  bool ok = true;
  for (double r = 0.0; r <= 1.0001; r += 0.1) {
    MatchClass c = Classify(r, t);
    table.AddRow({Fmt(r, 1), MatchClassName(c)});
    if (r < 0.4 - 1e-9) ok = ok && c == MatchClass::kUnmatch;
    if (r > 0.7 + 1e-9) ok = ok && c == MatchClass::kMatch;
    if (r > 0.4 + 1e-9 && r < 0.7 - 1e-9) ok = ok && c == MatchClass::kPossible;
  }
  table.Print(std::cout);
  return Verdict(ok);
}
