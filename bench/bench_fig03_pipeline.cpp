// Fig. 3: the general two-step decision model — combination function
// φ(c⃗), then threshold classification — executed for every pair of the
// paper's relations R1 × R2. Followed by a throughput baseline of the
// staged DetectionPipeline executor: pairs/sec for serial execution vs.
// the std::thread pool at 1/2/4 workers (results must stay identical).

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "bench_util.h"
#include "core/detector.h"
#include "core/paper_examples.h"
#include "core/report_writer.h"
#include "datagen/person_generator.h"
#include "decision/classifier.h"
#include "decision/combination.h"
#include "match/tuple_matcher.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/stage_executor.h"
#include "sim/edit_distance.h"
#include "util/table_printer.h"

namespace {

/// Pairs/sec of one executor configuration over a rebuilt stream.
/// Returns 0 on error.
double MeasurePairsPerSec(const pdd::DuplicateDetector& detector,
                          const pdd::XRelation& rel, size_t workers,
                          pdd::DetectionResult* out) {
  using Clock = std::chrono::steady_clock;
  pdd::StageExecutorOptions options;
  options.workers = workers;
  options.batch_size = 256;
  pdd::StageExecutor executor(detector.shared_plan(), options);
  auto stream = pdd::MakeFullStream(detector.plan(), rel);
  if (!stream.ok()) return 0.0;
  Clock::time_point start = Clock::now();
  auto result = executor.Execute(**stream);
  Clock::time_point stop = Clock::now();
  if (!result.ok()) return 0.0;
  double seconds = std::chrono::duration<double>(stop - start).count();
  *out = std::move(*result);
  return seconds > 0 ? static_cast<double>(out->candidate_count) / seconds
                     : 0.0;
}

bool SameDecisions(const pdd::DetectionResult& a,
                   const pdd::DetectionResult& b) {
  if (a.decisions.size() != b.decisions.size()) return false;
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    if (a.decisions[i].id1 != b.decisions[i].id1 ||
        a.decisions[i].id2 != b.decisions[i].id2 ||
        a.decisions[i].similarity != b.decisions[i].similarity ||
        a.decisions[i].match_class != b.decisions[i].match_class) {
      return false;
    }
  }
  return true;
}

/// Staged-executor throughput baseline on a generated person relation.
/// Returns false when any worker count diverges from serial output.
bool BenchStagedExecutor() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;

  Banner("Staged pipeline throughput — serial vs. thread pool",
         "(baseline; identical decisions required at every worker count)");
  PersonGenOptions gen;
  gen.num_entities = 400;
  gen.duplicate_rate = 0.6;
  gen.seed = 31337;
  GeneratedData data = GeneratePersons(gen);
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.3, 0.2};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  if (!detector.ok()) return false;
  // Untimed warmup so first-touch costs (allocator growth, page
  // faults) don't bill the first measured configuration.
  DetectionResult warmup;
  MeasurePairsPerSec(*detector, data.relation, /*workers=*/0, &warmup);
  DetectionResult serial;
  double serial_rate = MeasurePairsPerSec(*detector, data.relation,
                                          /*workers=*/0, &serial);
  if (serial_rate == 0.0) return false;
  TablePrinter table({"workers", "pairs/sec", "speedup", "identical"});
  table.AddRow({"serial", Fmt(serial_rate, 0), Fmt(1.0, 2), "yes"});
  bool all_identical = true;
  for (size_t workers : {1, 2, 4}) {
    DetectionResult result;
    double rate =
        MeasurePairsPerSec(*detector, data.relation, workers, &result);
    bool identical = rate > 0.0 && SameDecisions(serial, result);
    all_identical = all_identical && identical;
    // workers <= 1 takes the executor's serial path; label it so the
    // row is not read as single-worker pool overhead.
    std::string label = workers <= 1
                            ? std::to_string(workers) + " (serial path)"
                            : std::to_string(workers);
    table.AddRow({std::move(label), Fmt(rate, 0), Fmt(rate / serial_rate, 2),
                  identical ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << serial.candidate_count << " candidate pairs per run, "
            << std::thread::hardware_concurrency()
            << " hardware thread(s) available\n";

  // Executor instrumentation: where the serial run's time went, per
  // pipeline stage (the profile perf work should target). A dedicated
  // timed run — the throughput rows above stay clock-read-free.
  StageExecutorOptions timed_options;
  timed_options.stage_timings = true;
  auto timed_stream = MakeFullStream(detector->plan(), data.relation);
  if (!timed_stream.ok()) return false;
  auto timed_result = StageExecutor(detector->shared_plan(), timed_options)
                          .Execute(**timed_stream);
  if (!timed_result.ok()) return false;
  all_identical = all_identical && SameDecisions(serial, *timed_result);
  const StageTimings& timings = timed_result->stage_timings;
  double total = timings.TotalSeconds();
  if (total > 0.0) {
    std::cout << "\nper-stage wall time of the serial run:\n";
    TablePrinter stage_table({"stage", "ms", "share"});
    const std::pair<const char*, double> rows[] = {
        {"match", timings.match_seconds},
        {"combine", timings.combine_seconds},
        {"derive", timings.derive_seconds},
        {"classify", timings.classify_seconds},
    };
    for (const auto& [name, seconds] : rows) {
      stage_table.AddRow({name, Fmt(seconds * 1000.0, 2),
                          Fmt(100.0 * seconds / total, 1) + "%"});
    }
    stage_table.AddRow({"total", Fmt(total * 1000.0, 2), "100.0%"});
    stage_table.Print(std::cout);
  }
  return all_identical;
}

/// One stage-timed serial run; false on any pipeline error.
bool TimedStageSeconds(const pdd::DuplicateDetector& detector,
                       const pdd::XRelation& rel, pdd::StageTimings* out) {
  pdd::StageExecutorOptions options;
  options.stage_timings = true;
  auto stream = pdd::MakeFullStream(detector.plan(), rel);
  if (!stream.ok()) return false;
  auto result =
      pdd::StageExecutor(detector.shared_plan(), options).Execute(**stream);
  if (!result.ok()) return false;
  *out = result->stage_timings;
  return true;
}

/// Scalar vs. columnar match kernels on the same scenario. The
/// columnar path (RelationArena + batched kernels) is a pure
/// throughput lever: decisions and the whole DetectionReport must stay
/// byte-identical to the per-pair TupleMatcher path, and the columnar
/// path may never be slower. Emits BENCH_fig03.json for CI archiving.
bool BenchKernelComparison() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;

  Banner("Columnar match kernels — scalar vs. columnar hot path",
         "(throughput lever only; byte-identical reports required)");
  PersonGenOptions gen;
  gen.num_entities = 400;
  gen.duplicate_rate = 0.6;
  gen.seed = 31337;
  GeneratedData data = GeneratePersons(gen);

  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.3, 0.2};
  config.match_kernel = MatchKernel::kScalar;
  Result<DuplicateDetector> scalar_det =
      DuplicateDetector::Make(config, PersonSchema());
  config.match_kernel = MatchKernel::kColumnar;
  Result<DuplicateDetector> columnar_det =
      DuplicateDetector::Make(config, PersonSchema());
  if (!scalar_det.ok() || !columnar_det.ok()) return false;

  // Warm both paths up, then keep each kernel's best of three runs:
  // the ratio below gates CI, so damp scheduler noise.
  DetectionResult scalar_result, columnar_result, scratch;
  MeasurePairsPerSec(*scalar_det, data.relation, /*workers=*/0, &scratch);
  MeasurePairsPerSec(*columnar_det, data.relation, /*workers=*/0, &scratch);
  double scalar_rate = 0.0;
  double columnar_rate = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    scalar_rate = std::max(
        scalar_rate, MeasurePairsPerSec(*scalar_det, data.relation,
                                        /*workers=*/0, &scalar_result));
    columnar_rate = std::max(
        columnar_rate, MeasurePairsPerSec(*columnar_det, data.relation,
                                          /*workers=*/0, &columnar_result));
  }
  if (scalar_rate == 0.0 || columnar_rate == 0.0) return false;

  const std::string scalar_report = DetectionReport(scalar_result, nullptr);
  const std::string columnar_report =
      DetectionReport(columnar_result, nullptr);
  const bool identical = SameDecisions(scalar_result, columnar_result) &&
                         scalar_report == columnar_report;
  const double speedup = columnar_rate / scalar_rate;

  TablePrinter table({"kernel", "pairs/sec", "speedup", "report"});
  table.AddRow({"scalar (TupleMatcher)", Fmt(scalar_rate, 0), Fmt(1.0, 2),
                "baseline"});
  table.AddRow({"columnar (arena)", Fmt(columnar_rate, 0), Fmt(speedup, 2),
                identical ? "byte-identical" : "DIVERGES"});
  table.Print(std::cout);
  std::cout << scalar_result.candidate_count
            << " candidate pairs; executor ran '"
            << scalar_result.match_kernel << "' vs '"
            << columnar_result.match_kernel << "'\n";
  if (speedup < 1.5) {
    std::cout << "note: columnar speedup " << Fmt(speedup, 2)
              << "x is below the 1.5x target\n";
  }

  StageTimings scalar_timed, columnar_timed;
  if (!TimedStageSeconds(*scalar_det, data.relation, &scalar_timed) ||
      !TimedStageSeconds(*columnar_det, data.relation, &columnar_timed)) {
    return false;
  }

  pdd_bench::BenchJsonWriter json("fig03");
  json.Set("bench", "fig03_kernel_comparison");
  json.Set("records", static_cast<double>(data.relation.size()));
  json.Set("candidate_pairs",
           static_cast<double>(scalar_result.candidate_count));
  json.Set("scalar_pairs_per_sec", scalar_rate);
  json.Set("columnar_pairs_per_sec", columnar_rate);
  json.Set("columnar_speedup", speedup);
  json.Set("reports_identical", identical);
  json.Set("scalar_match_seconds", scalar_timed.match_seconds);
  json.Set("scalar_combine_seconds", scalar_timed.combine_seconds);
  // Fused on the columnar path: φ is computed inside the match stage,
  // so its cost lands in match_seconds and combine stays 0.
  json.Set("columnar_match_seconds", columnar_timed.match_seconds);
  json.Set("columnar_derive_seconds", columnar_timed.derive_seconds);
  json.Set("columnar_classify_seconds", columnar_timed.classify_seconds);
  json.Write();

  // Hard gates: identity always; never slower than the path it
  // replaces (the 1.5x target is tracked via the JSON artifact).
  return identical && columnar_rate >= scalar_rate;
}

}  // namespace

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;
  using pdd_bench::Verdict;

  Banner("Fig. 3 — two-step decision model on R1 x R2",
         "(t11, t22) combines to 0.838 and classifies as a match");
  NormalizedHammingComparator hamming;
  TupleMatcher matcher =
      *TupleMatcher::Make(PaperSchema(), {&hamming, &hamming});
  WeightedSumCombination phi({0.8, 0.2});
  Thresholds thresholds{0.4, 0.7};
  Relation r1 = BuildR1();
  Relation r2 = BuildR2();
  TablePrinter table({"pair", "c(name)", "c(job)", "phi", "class"});
  double t11_t22 = 0.0;
  for (const Tuple& a : r1.tuples()) {
    for (const Tuple& b : r2.tuples()) {
      ComparisonVector c = matcher.Compare(a, b);
      double sim = phi.Combine(c);
      if (a.id() == "t11" && b.id() == "t22") t11_t22 = sim;
      table.AddRow({a.id() + " ~ " + b.id(), Fmt(c[0]), Fmt(c[1]), Fmt(sim),
                    MatchClassName(Classify(sim, thresholds))});
    }
  }
  table.Print(std::cout);
  std::cout << "sim(t11, t22) = " << Fmt(t11_t22, 6)
            << "  (paper: 0.838 rounded)\n";
  bool ok = std::abs(t11_t22 - (0.8 * 0.9 + 0.2 * (0.2 + 0.7 * 5.0 / 9.0))) <
                1e-12 &&
            Classify(t11_t22, thresholds) == MatchClass::kMatch;
  ok = BenchStagedExecutor() && ok;
  ok = BenchKernelComparison() && ok;
  return Verdict(ok);
}
