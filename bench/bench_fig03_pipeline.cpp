// Fig. 3: the general two-step decision model — combination function
// φ(c⃗), then threshold classification — executed for every pair of the
// paper's relations R1 × R2.

#include "bench_util.h"
#include "core/paper_examples.h"
#include "decision/classifier.h"
#include "decision/combination.h"
#include "match/tuple_matcher.h"
#include "sim/edit_distance.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;
  using pdd_bench::Verdict;

  Banner("Fig. 3 — two-step decision model on R1 x R2",
         "(t11, t22) combines to 0.838 and classifies as a match");
  NormalizedHammingComparator hamming;
  TupleMatcher matcher =
      *TupleMatcher::Make(PaperSchema(), {&hamming, &hamming});
  WeightedSumCombination phi({0.8, 0.2});
  Thresholds thresholds{0.4, 0.7};
  Relation r1 = BuildR1();
  Relation r2 = BuildR2();
  TablePrinter table({"pair", "c(name)", "c(job)", "phi", "class"});
  double t11_t22 = 0.0;
  for (const Tuple& a : r1.tuples()) {
    for (const Tuple& b : r2.tuples()) {
      ComparisonVector c = matcher.Compare(a, b);
      double sim = phi.Combine(c);
      if (a.id() == "t11" && b.id() == "t22") t11_t22 = sim;
      table.AddRow({a.id() + " ~ " + b.id(), Fmt(c[0]), Fmt(c[1]), Fmt(sim),
                    MatchClassName(Classify(sim, thresholds))});
    }
  }
  table.Print(std::cout);
  std::cout << "sim(t11, t22) = " << Fmt(t11_t22, 6)
            << "  (paper: 0.838 rounded)\n";
  bool ok = std::abs(t11_t22 - (0.8 * 0.9 + 0.2 * (0.2 + 0.7 * 5.0 / 9.0))) <
                1e-12 &&
            Classify(t11_t22, thresholds) == MatchClass::kMatch;
  return Verdict(ok);
}
