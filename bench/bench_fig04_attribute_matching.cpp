// Fig. 4 + Section IV-A worked example: attribute value matching on the
// probabilistic relations R1 and R2 under the normalized Hamming
// distance (Eq. 5) and error-free equality (Eq. 4).

#include <cmath>

#include "bench_util.h"
#include "core/paper_examples.h"
#include "match/attribute_matcher.h"
#include "sim/edit_distance.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;
  using pdd_bench::Verdict;

  Banner("Fig. 4 — attribute value matching on R1, R2",
         "sim(t11.name,t22.name)=0.9; sim(t11.job,t22.job)=0.59 (rounded); "
         "base sims: Tim/Kim=2/3, machinist/mechanic=5/9");
  NormalizedHammingComparator hamming;
  Relation r1 = BuildR1();
  Relation r2 = BuildR2();
  const Tuple& t11 = r1.tuple(0);
  const Tuple& t22 = r2.tuple(1);

  TablePrinter base({"base pair", "paper", "measured"});
  double tim_kim = hamming.Compare("Tim", "Kim");
  double mach_mech = hamming.Compare("machinist", "mechanic");
  base.AddRow({"sim(Tim, Kim)", "2/3", Fmt(tim_kim, 6)});
  base.AddRow({"sim(machinist, mechanic)", "5/9", Fmt(mach_mech, 6)});
  base.Print(std::cout);

  TablePrinter table({"attribute pair", "paper", "measured (Eq. 5)"});
  double name_sim = ExpectedSimilarity(t11.value(0), t22.value(0), hamming);
  double job_sim = ExpectedSimilarity(t11.value(1), t22.value(1), hamming);
  table.AddRow({"t11.name ~ t22.name", "0.9", Fmt(name_sim, 6)});
  table.AddRow({"t11.job ~ t22.job", "0.59 (= 0.2 + 0.7*5/9)",
                Fmt(job_sim, 6)});
  table.Print(std::cout);

  // Eq. 4 on the error-free interpretation (exact equality).
  TablePrinter eq4({"attribute pair", "P(equal) (Eq. 4)"});
  eq4.AddRow({"t12.name ~ t21.name",
              Fmt(EqualityProbability(r1.tuple(1).value(0),
                                      r2.tuple(0).value(0)),
                  6)});
  eq4.AddRow({"t11.job ~ t22.job",
              Fmt(EqualityProbability(t11.value(1), t22.value(1)), 6)});
  eq4.Print(std::cout);

  bool ok = std::abs(tim_kim - 2.0 / 3.0) < 1e-12 &&
            std::abs(mach_mech - 5.0 / 9.0) < 1e-12 &&
            std::abs(name_sim - 0.9) < 1e-12 &&
            std::abs(job_sim - (0.2 + 0.7 * 5.0 / 9.0)) < 1e-12;
  return Verdict(ok);
}
