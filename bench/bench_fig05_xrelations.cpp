// Fig. 5: the x-relations R3 and R4 — alternative counts, maybe ('?')
// markers, existence probabilities, the 'mu*' pattern value and its
// expansion against the job vocabulary.

#include <cmath>

#include "bench_util.h"
#include "core/paper_examples.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;
  using pdd_bench::Verdict;

  Banner("Fig. 5 — x-relations R3 and R4",
         "t32, t42, t43 are maybe x-tuples; t31 has a 'mu*' pattern job; "
         "p(t32)=0.9, p(t42)=0.8, p(t43)=0.8");
  XRelation r3 = BuildR3();
  XRelation r4 = BuildR4();
  TablePrinter table({"x-tuple", "alternatives", "p(t)", "maybe?"});
  bool ok = true;
  for (const XRelation* rel : {&r3, &r4}) {
    for (const XTuple& t : rel->xtuples()) {
      table.AddRow({t.id(), std::to_string(t.size()),
                    Fmt(t.existence_probability(), 2),
                    t.is_maybe() ? "?" : ""});
    }
  }
  table.Print(std::cout);
  ok = ok && !r3.xtuple(0).is_maybe() && r3.xtuple(1).is_maybe();
  ok = ok && !r4.xtuple(0).is_maybe() && r4.xtuple(1).is_maybe() &&
       r4.xtuple(2).is_maybe();
  ok = ok && std::abs(r3.xtuple(1).existence_probability() - 0.9) < 1e-12;
  ok = ok && std::abs(r4.xtuple(1).existence_probability() - 0.8) < 1e-12;
  ok = ok && std::abs(r4.xtuple(2).existence_probability() - 0.8) < 1e-12;

  // The pattern value 'mu*' represents a uniform distribution over all
  // jobs starting with "mu" (the paper names musician as an example).
  const Value& pattern = r3.xtuple(0).alternative(1).values[1];
  Value expanded = pattern.Expanded(PaperSchema().attribute(1).vocabulary);
  std::cout << "'mu*' expands over the job vocabulary to: "
            << expanded.ToString() << "\n";
  ok = ok && pattern.has_pattern() && !expanded.has_pattern();
  return Verdict(ok);
}
