// Fig. 6: the two adapted decision models for x-tuple pairs. Runs every
// derivation function ϑ implemented by the library on the paper's pair
// (t32, t42) and checks both of the paper's worked results — Eq. 6
// (7/15) and Eq. 7-9 (0.75) — plus the expected-matching variant the
// paper sketches (η coded m=2, p=1, u=0).

#include <cmath>

#include "bench_util.h"
#include "core/paper_examples.h"
#include "decision/combination.h"
#include "derive/decision_based.h"
#include "derive/similarity_based.h"
#include "match/tuple_matcher.h"
#include "sim/edit_distance.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;
  using pdd_bench::Verdict;

  Banner("Fig. 6 — derivation functions on (t32, t42)",
         "similarity-based Eq. 6 yields 7/15; decision-based Eq. 7-9 "
         "yields 0.75 under Tλ=0.4, Tμ=0.7");
  NormalizedHammingComparator hamming;
  TupleMatcher matcher =
      *TupleMatcher::Make(PaperSchema(), {&hamming, &hamming});
  WeightedSumCombination phi({0.8, 0.2});
  AlternativePairScores scores = BuildAlternativePairScores(
      BuildR3().xtuple(1), BuildR4().xtuple(1), matcher, phi);
  Thresholds intermediate{0.4, 0.7};

  ExpectedSimilarityDerivation expected;
  MaxSimilarityDerivation max_sim;
  MinSimilarityDerivation min_sim;
  ModeSimilarityDerivation mode_sim;
  MatchingWeightDerivation weight(intermediate);
  ExpectedMatchingDerivation eta(intermediate);
  ExpectedMatchingDerivation eta_norm(intermediate, /*normalize=*/true);

  TablePrinter table({"derivation", "family", "sim(t32, t42)"});
  table.AddRow({"expected similarity (Eq. 6)", "similarity-based",
                Fmt(expected.Derive(scores), 6)});
  table.AddRow({"max similarity", "similarity-based",
                Fmt(max_sim.Derive(scores), 6)});
  table.AddRow({"min similarity", "similarity-based",
                Fmt(min_sim.Derive(scores), 6)});
  table.AddRow({"mode similarity", "similarity-based",
                Fmt(mode_sim.Derive(scores), 6)});
  table.AddRow({"matching weight P(m)/P(u) (Eq. 7)", "decision-based",
                Fmt(weight.Derive(scores), 6)});
  table.AddRow({"expected matching E[eta]", "decision-based",
                Fmt(eta.Derive(scores), 6)});
  table.AddRow({"expected matching, normalized", "decision-based",
                Fmt(eta_norm.Derive(scores), 6)});
  table.Print(std::cout);
  std::cout << "paper: Eq. 6 = 7/15 = " << Fmt(7.0 / 15.0, 6)
            << ", Eq. 7 = 0.75\n";
  bool ok = std::abs(expected.Derive(scores) - 7.0 / 15.0) < 1e-12 &&
            std::abs(weight.Derive(scores) - 0.75) < 1e-12 &&
            std::abs(eta.Derive(scores) - 8.0 / 9.0) < 1e-12;
  return Verdict(ok);
}
