// Fig. 7: the eight possible worlds of {t32, t42}, the conditioning
// event B (both tuples exist, P(B) = 0.72) and the conditional world
// probabilities 3/9, 2/9, 4/9 that drive both derivations.

#include <cmath>
#include <map>

#include "bench_util.h"
#include "core/paper_examples.h"
#include "pdb/conditioning.h"
#include "pdb/possible_worlds.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;
  using pdd_bench::Verdict;

  Banner("Fig. 7 — possible worlds of {t32, t42}",
         "8 worlds; P(I1)=0.24, P(I2)=0.16, P(I3)=0.32, P(I4)=0.08, "
         "P(I5)=0.06, P(I6)=0.04, P(I7)=0.08, P(I8)=0.02; P(B)=0.72");
  XRelation pair("pair", PaperSchema());
  pair.AppendUnchecked(BuildR3().xtuple(1));
  pair.AppendUnchecked(BuildR4().xtuple(1));

  Result<std::vector<World>> worlds = EnumerateWorlds(pair);
  TablePrinter table({"world", "P(I)", "all present?"});
  size_t idx = 1;
  double total = 0.0;
  for (const World& w : *worlds) {
    table.AddRow({WorldToString(w, pair), Fmt(w.probability, 2),
                  w.AllPresent() ? "yes (in B)" : "no"});
    total += w.probability;
    ++idx;
  }
  table.Print(std::cout);

  ConditionedWorlds conditioned = ConditionOnAllPresent(*worlds);
  std::cout << "total mass " << Fmt(total, 6) << "; P(B) = "
            << Fmt(conditioned.event_probability, 6) << " (paper: 0.72)\n";
  TablePrinter cond_table({"conditioned world", "P(I|B)", "paper"});
  std::map<int, std::string> expected = {{0, "3/9"}, {1, "2/9"}, {2, "4/9"}};
  bool ok = worlds->size() == 8 &&
            std::abs(conditioned.event_probability - 0.72) < 1e-12;
  for (const World& w : conditioned.worlds) {
    cond_table.AddRow({WorldToString(w, pair), Fmt(w.probability, 6),
                       expected[w.choice[0]]});
  }
  cond_table.Print(std::cout);
  for (const World& w : conditioned.worlds) {
    double paper = w.choice[0] == 0 ? 3.0 / 9.0
                   : w.choice[0] == 1 ? 2.0 / 9.0
                                      : 4.0 / 9.0;
    ok = ok && std::abs(w.probability - paper) < 1e-12;
  }
  return Verdict(ok);
}
