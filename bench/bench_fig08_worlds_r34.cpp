// Fig. 8: possible worlds of R34 = R3 ∪ R4 that contain all tuples
// (only those provide key values for every tuple). Reproduces the two
// example worlds I1 and I2 the paper prints and counts the full world
// space.

#include "bench_util.h"
#include "core/paper_examples.h"
#include "pdb/conditioning.h"
#include "pdb/possible_worlds.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;
  using pdd_bench::Verdict;

  Banner("Fig. 8 — example worlds I1 and I2 of R34",
         "I1 = {(John,pilot),(Tim,mechanic),(John,pilot),(Tom,mechanic),"
         "(Sean,pilot)}; I2 = {(Johan,musician),(Jim,mechanic),(John,pilot),"
         "(Tom,mechanic),(John,⊥)}");
  XRelation r34 = BuildR34();
  std::cout << "total possible worlds of R34: " << CountWorlds(r34) << "\n";
  Result<std::vector<World>> all = EnumerateWorlds(r34);
  size_t all_present = 0;
  for (const World& w : *all) {
    if (w.AllPresent()) ++all_present;
  }
  std::cout << "worlds containing all tuples (candidates for key "
               "creation): "
            << all_present << "\n\n";

  // The two figure worlds, by their alternative choices.
  World i1{{0, 0, 0, 0, 1}, 0.0};
  World i2{{1, 1, 0, 0, 0}, 0.0};
  bool ok = true;
  for (const auto& [label, world] : {std::pair<const char*, World>{"I1", i1},
                                     {"I2", i2}}) {
    TablePrinter table({"tuple", "name", "job"});
    double prob = 1.0;
    for (const auto& [tuple_idx, alt_idx] : WorldTuples(world)) {
      const XTuple& t = r34.xtuple(tuple_idx);
      const AltTuple& alt = t.alternative(alt_idx);
      table.AddRow({t.id(),
                    alt.values[0].ToString(),
                    alt.values[1].ToString()});
      prob *= alt.prob;
    }
    std::cout << "world " << label << " (probability " << Fmt(prob, 6)
              << "):\n";
    table.Print(std::cout);
    ok = ok && WorldTuples(world).size() == 5;
  }
  ok = ok && CountWorlds(r34) == 96 && all_present == 24;
  return Verdict(ok);
}
