// Fig. 9: multi-pass sorted neighborhood over possible worlds. The key
// (name[3] + job[2]) sorts R34 differently in worlds I1 and I2; the
// paper's point is that different passes surface different matchings.
// Also sweeps the number of worlds (top-probable vs diverse selection)
// and reports how the unioned candidate set grows.
//
// Note: the paper's Fig. 9 prints "Seapil" for t43's key in I1 — a typo
// by its own key definition (3+2 characters); the correct key is
// "Seapi" (cf. Fig. 10 and Fig. 13 of the paper, which use "Seapi").

#include "bench_util.h"
#include "core/paper_examples.h"
#include "pdb/world_selection.h"
#include "reduction/snm_multipass_worlds.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;
  using pdd_bench::Verdict;

  Banner("Fig. 9 — per-world key sort orders (multi-pass SNM)",
         "I1 sorts Johpi(t31) Johpi(t41) Seapi(t43) Timme(t32) Tomme(t42); "
         "I2 sorts Jimme(t32) Joh(t43) Johmu(t31) Johpi(t41) Tomme(t42)");
  XRelation r34 = BuildR34();
  SnmMultipassOptions options;
  options.window = 2;
  SnmMultipassWorlds snm(PaperSortingKey(), options);

  bool ok = true;
  const std::vector<std::pair<const char*, World>> figure_worlds = {
      {"I1", World{{0, 0, 0, 0, 1}, 0.0}},
      {"I2", World{{1, 1, 0, 0, 0}, 0.0}}};
  std::vector<std::vector<std::string>> expected_keys = {
      {"Johpi", "Johpi", "Seapi", "Timme", "Tomme"},
      {"Jimme", "Joh", "Johmu", "Johpi", "Tomme"}};
  size_t wi = 0;
  for (const auto& [label, world] : figure_worlds) {
    std::cout << "world " << label << ":\n";
    TablePrinter table({"key value", "tuple"});
    std::vector<KeyedEntry> entries = snm.SortedEntriesForWorld(world, r34);
    for (size_t i = 0; i < entries.size(); ++i) {
      table.AddRow({entries[i].key, r34.xtuple(entries[i].tuple).id()});
      ok = ok && entries[i].key == expected_keys[wi][i];
    }
    table.Print(std::cout);
    ++wi;
  }

  std::cout << "candidate growth with more worlds (window 2):\n";
  TablePrinter sweep({"#worlds", "top-probable candidates",
                      "diverse candidates"});
  for (size_t count : {1u, 2u, 4u, 8u, 16u}) {
    SnmMultipassOptions top = options;
    top.selection.count = count;
    top.selection.strategy = WorldSelectionStrategy::kTopProbable;
    SnmMultipassWorlds top_snm(PaperSortingKey(), top);
    SnmMultipassOptions div = options;
    div.selection.count = count;
    div.selection.strategy = WorldSelectionStrategy::kDiverse;
    div.selection.lambda = 0.8;
    SnmMultipassWorlds div_snm(PaperSortingKey(), div);
    Result<std::vector<CandidatePair>> top_pairs = top_snm.Generate(r34);
    Result<std::vector<CandidatePair>> div_pairs = div_snm.Generate(r34);
    ok = ok && top_pairs.ok() && div_pairs.ok();
    sweep.AddRow({std::to_string(count), std::to_string(top_pairs->size()),
                  std::to_string(div_pairs->size())});
  }
  sweep.Print(std::cout);
  return Verdict(ok);
}
