// Fig. 10: creation of certain key values via conflict resolution (most
// probable alternative). The sorted order must be Jimba(t32) Johpi(t31)
// Johpi(t41) Seapi(t43) Tomme(t42), and — per the paper's subset claim —
// the resulting matchings must be a subset of the multi-pass matchings.

#include "bench_util.h"
#include "core/paper_examples.h"
#include "reduction/snm_certain_keys.h"
#include "reduction/snm_multipass_worlds.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Verdict;

  Banner("Fig. 10 — certain keys via most probable alternative",
         "sorted order: Jimba(t32) Johpi(t31) Johpi(t41) Seapi(t43) "
         "Tomme(t42); matchings ⊆ multi-pass matchings");
  XRelation r34 = BuildR34();
  SnmCertainKeyOptions options;
  options.window = 2;
  SnmCertainKeys snm(PaperSortingKey(), options);
  std::vector<KeyedEntry> entries = snm.SortedEntries(r34);
  TablePrinter table({"key value", "tuple"});
  std::vector<std::string> expected_keys = {"Jimba", "Johpi", "Johpi",
                                            "Seapi", "Tomme"};
  std::vector<std::string> expected_ids = {"t32", "t31", "t41", "t43",
                                           "t42"};
  bool ok = entries.size() == 5;
  for (size_t i = 0; i < entries.size(); ++i) {
    table.AddRow({entries[i].key, r34.xtuple(entries[i].tuple).id()});
    ok = ok && entries[i].key == expected_keys[i] &&
         r34.xtuple(entries[i].tuple).id() == expected_ids[i];
  }
  table.Print(std::cout);

  // Subset property (Section V-A.2).
  Result<std::vector<CandidatePair>> certain_pairs = snm.Generate(r34);
  SnmMultipassOptions mopt;
  mopt.window = 2;
  mopt.selection.count = 1;
  SnmMultipassWorlds multi(PaperSortingKey(), mopt);
  Result<std::vector<CandidatePair>> multi_pairs = multi.Generate(r34);
  ok = ok && certain_pairs.ok() && multi_pairs.ok();
  size_t contained = 0;
  for (const CandidatePair& p : *certain_pairs) {
    if (ContainsPair(*multi_pairs, p)) ++contained;
  }
  std::cout << "certain-key matchings: " << certain_pairs->size()
            << ", contained in single-world multi-pass: " << contained
            << "\n";
  ok = ok && contained == certain_pairs->size();
  return Verdict(ok);
}
