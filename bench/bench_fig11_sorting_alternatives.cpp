// Fig. 11: sorting alternatives — every alternative contributes a key
// value; after sorting, neighboring entries of the same tuple are
// omitted. Prints the per-tuple keys, the sorted list and the surviving
// list side by side with the paper's content.

#include "bench_util.h"
#include "core/paper_examples.h"
#include "keys/key_builder.h"
#include "reduction/snm_sorting_alternatives.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Verdict;

  Banner("Fig. 11 — sorting alternatives",
         "9 entries sort to Jimba Jimme Joh Johmu Johpi Johpi Seapi Timme "
         "Tomme; omission drops Jimme(t32) and Johpi(t31)");
  XRelation r34 = BuildR34();
  Schema schema = PaperSchema();
  KeyBuilder builder(PaperSortingKey(), &schema);
  std::cout << "per-tuple alternative keys (Fig. 11 left):\n";
  TablePrinter left({"tuple", "key values"});
  for (const XTuple& t : r34.xtuples()) {
    std::string keys;
    for (const std::string& key : builder.AlternativeKeys(t)) {
      if (!keys.empty()) keys += ", ";
      keys += key;
    }
    left.AddRow({t.id(), keys});
  }
  left.Print(std::cout);

  SnmSortingAlternatives snm(PaperSortingKey(), SnmAlternativesOptions{});
  std::vector<KeyedEntry> sorted = snm.SortedEntries(r34);
  std::vector<KeyedEntry> surviving = snm.SurvivingEntries(r34);
  std::cout << "\nsorted entries (Fig. 11 right; '---' = omitted):\n";
  TablePrinter right({"key value", "tuple", "kept?"});
  size_t surv_idx = 0;
  for (const KeyedEntry& e : sorted) {
    bool kept = surv_idx < surviving.size() &&
                surviving[surv_idx].key == e.key &&
                surviving[surv_idx].tuple == e.tuple;
    if (kept) ++surv_idx;
    right.AddRow({e.key, r34.xtuple(e.tuple).id(), kept ? "yes" : "---"});
  }
  right.Print(std::cout);
  bool ok = sorted.size() == 9 && surviving.size() == 7 &&
            surv_idx == surviving.size();
  std::vector<std::string> expected = {"Jimba", "Joh",   "Johmu", "Johpi",
                                       "Seapi", "Timme", "Tomme"};
  for (size_t i = 0; i < surviving.size() && ok; ++i) {
    ok = surviving[i].key == expected[i];
  }
  return Verdict(ok);
}
