// Fig. 12: the matrix of already-executed matchings. With window size 2
// over the surviving Fig. 11 entries, exactly five matchings run, each
// exactly once: (t32,t43), (t43,t31), (t31,t41), (t41,t43), (t32,t42).

#include <algorithm>
#include <set>

#include "bench_util.h"
#include "core/paper_examples.h"
#include "reduction/matching_matrix.h"
#include "reduction/snm_sorting_alternatives.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Verdict;

  Banner("Fig. 12 — matrix of executed matchings (window 2)",
         "five matchings, each exactly once: (t32,t43) (t43,t31) "
         "(t31,t41) (t41,t43) (t32,t42)");
  XRelation r34 = BuildR34();
  SnmAlternativesOptions options;
  options.window = 2;
  SnmSortingAlternatives snm(PaperSortingKey(), options);
  Result<std::vector<CandidatePair>> pairs = snm.Generate(r34);
  TablePrinter table({"matching", "executed"});
  std::set<std::pair<std::string, std::string>> produced;
  for (const CandidatePair& p : *pairs) {
    std::string a = r34.xtuple(p.first).id();
    std::string b = r34.xtuple(p.second).id();
    if (b < a) std::swap(a, b);
    produced.insert({a, b});
    table.AddRow({"(" + a + ", " + b + ")", "x"});
  }
  table.Print(std::cout);

  std::set<std::pair<std::string, std::string>> expected = {
      {"t32", "t43"}, {"t31", "t43"}, {"t31", "t41"},
      {"t41", "t43"}, {"t32", "t42"}};
  std::cout << "matchings executed: " << pairs->size()
            << " of 10 possible (paper: 5 of 10)\n";

  // Render the symmetric matrix like the figure.
  MatchingMatrix matrix(r34.size());
  for (const CandidatePair& p : *pairs) matrix.TestAndSet(p.first, p.second);
  TablePrinter grid({"", "t31", "t32", "t41", "t42", "t43"});
  for (size_t i = 0; i < r34.size(); ++i) {
    std::vector<std::string> row = {r34.xtuple(i).id()};
    for (size_t j = 0; j < r34.size(); ++j) {
      row.push_back(i != j && matrix.Contains(i, j) ? "x" : "");
    }
    grid.AddRow(row);
  }
  grid.Print(std::cout);
  return Verdict(produced == expected);
}
