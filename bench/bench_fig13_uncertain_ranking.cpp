// Fig. 13: uncertain key values and probabilistic ranking. Prints every
// tuple's key distribution (t41 gets a certain key despite two
// alternatives) and the ranked order t32, t31, t41, t43, t42 under both
// the exact expected rank and the O(n log n) positional approximation.

#include "bench_util.h"
#include "core/paper_examples.h"
#include "ranking/positional_rank.h"
#include "reduction/snm_uncertain_ranking.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Fmt;
  using pdd_bench::Verdict;

  Banner("Fig. 13 — ranking tuples by uncertain key values",
         "key distributions: t31{Johpi:.7,Johmu:.3} t32{Timme:.3,Jimme:.2,"
         "Jimba:.4} t41{Johpi:1.0} t42{Tomme:.8} t43{Joh:.2,Seapi:.6}; "
         "ranked order t32 t31 t41 t43 t42");
  XRelation r34 = BuildR34();
  SnmUncertainRanking snm(PaperSortingKey(), SnmRankingOptions{});
  std::vector<KeyDistribution> dists = snm.Distributions(r34);
  TablePrinter table({"tuple", "key value", "p(k)"});
  for (size_t i = 0; i < dists.size(); ++i) {
    for (const auto& [key, prob] : dists[i].entries) {
      table.AddRow({r34.xtuple(i).id(), key, Fmt(prob, 2)});
    }
  }
  table.Print(std::cout);

  SnmRankingOptions exact_options;
  exact_options.method = RankingMethod::kExpectedRank;
  SnmUncertainRanking exact(PaperSortingKey(), exact_options);
  std::vector<size_t> exact_order = exact.RankedOrder(r34);
  std::vector<size_t> approx_order = snm.RankedOrder(r34);

  auto render = [&](const std::vector<size_t>& order) {
    std::string out;
    for (size_t i : order) out += r34.xtuple(i).id() + " ";
    return out;
  };
  std::cout << "expected-rank order (exact, O(n^2)):    "
            << render(exact_order) << "\n";
  std::cout << "positional order (approx, O(n log n)):  "
            << render(approx_order) << "\n";
  std::cout << "Kendall-tau agreement: "
            << Fmt(KendallTauAgreement(exact_order, approx_order), 4)
            << "\n";
  std::vector<size_t> expected = {1, 0, 2, 4, 3};  // t32 t31 t41 t43 t42
  bool ok = exact_order == expected && approx_order == expected;
  // t41's key must be certain despite two alternatives.
  ok = ok && dists[2].entries.size() == 1 &&
       dists[2].entries[0].first == "Johpi";
  return Verdict(ok);
}
