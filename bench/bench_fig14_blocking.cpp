// Fig. 14: blocking with alternative key values (key = first character
// of name + first character of job). Each x-tuple enters one block per
// alternative key; duplicate allocations within a block are removed; a
// matching matrix prevents repeated matchings. The paper reports six
// blocks (labelled 'JP','JM','TM','JB','J','SP') and three matchings.
//
// Note: the tuple subscripts printed inside the paper's Fig. 14 (t21,
// t22, t33) are inconsistent with its own running example R34 — the
// block labels and matching count, however, reproduce exactly; see
// EXPERIMENTS.md.

#include "bench_util.h"
#include "core/paper_examples.h"
#include "reduction/blocking_alternatives.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;
  using pdd_bench::Banner;
  using pdd_bench::Verdict;

  Banner("Fig. 14 — blocking with alternative key values",
         "six blocks JP JM TM JB J SP; three matchings");
  XRelation r34 = BuildR34();
  BlockingAlternatives blocking(PaperBlockingKey());
  BlockMap blocks = blocking.Blocks(r34);
  TablePrinter table({"block key", "members"});
  for (const auto& [key, members] : blocks) {
    std::string ids;
    for (size_t i : members) {
      if (!ids.empty()) ids += ", ";
      ids += r34.xtuple(i).id();
    }
    table.AddRow({key, ids});
  }
  table.Print(std::cout);

  Result<std::vector<CandidatePair>> pairs = blocking.Generate(r34);
  std::cout << "matchings (" << pairs->size() << ", paper: 3):";
  for (const CandidatePair& p : *pairs) {
    std::cout << " (" << r34.xtuple(p.first).id() << ", "
              << r34.xtuple(p.second).id() << ")";
  }
  std::cout << "\n";
  bool ok = blocks.size() == 6 && pairs->size() == 3;
  ok = ok && blocks.count("Jp") && blocks.count("Jm") && blocks.count("Tm") &&
       blocks.count("Jb") && blocks.count("J") && blocks.count("Sp");
  ok = ok && ContainsPair(*pairs, MakePair(0, 2))   // (t31, t41) via Jp
       && ContainsPair(*pairs, MakePair(0, 1))      // (t31, t32) via Jm
       && ContainsPair(*pairs, MakePair(1, 3));     // (t32, t42) via Tm
  return Verdict(ok);
}
