// S10: pipeline scalability — wall time of the full detection pipeline
// versus relation size per reduction method, with fitted complexity.
// Expected shapes: full comparison grows quadratically; SNM variants
// near-linearithmically; blocking close to linear (plus within-block
// quadratic terms bounded by block sizes).

#include <benchmark/benchmark.h>

#include "core/detector.h"
#include "datagen/person_generator.h"

namespace {

using namespace pdd;

GeneratedData MakeData(size_t entities) {
  PersonGenOptions gen;
  gen.num_entities = entities;
  gen.duplicate_rate = 0.4;
  gen.uncertainty.value_uncertainty_prob = 0.25;
  gen.uncertainty.xtuple_alternative_prob = 0.2;
  return GeneratePersons(gen);
}

void RunPipeline(benchmark::State& state, ReductionMethod method) {
  GeneratedData data = MakeData(static_cast<size_t>(state.range(0)));
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.25, 0.25};
  config.reduction = method;
  config.window = 5;
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector->Run(data.relation));
  }
  state.SetComplexityN(static_cast<int64_t>(data.relation.size()));
}

void BM_ScaleFull(benchmark::State& state) {
  RunPipeline(state, ReductionMethod::kFull);
}
BENCHMARK(BM_ScaleFull)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNSquared);

void BM_ScaleSnmAlternatives(benchmark::State& state) {
  RunPipeline(state, ReductionMethod::kSnmSortingAlternatives);
}
BENCHMARK(BM_ScaleSnmAlternatives)->Arg(50)->Arg(200)->Arg(800)->Arg(3200)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNLogN);

void BM_ScaleSnmRanking(benchmark::State& state) {
  RunPipeline(state, ReductionMethod::kSnmUncertainRanking);
}
BENCHMARK(BM_ScaleSnmRanking)->Arg(50)->Arg(200)->Arg(800)->Arg(3200)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNLogN);

void BM_ScaleBlockingAlternatives(benchmark::State& state) {
  RunPipeline(state, ReductionMethod::kBlockingAlternatives);
}
BENCHMARK(BM_ScaleBlockingAlternatives)->Arg(50)->Arg(200)->Arg(800)
    ->Arg(3200)->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNLogN);

}  // namespace

BENCHMARK_MAIN();
