// S11: ablation of the pipeline's bracketing steps — data preparation
// (Section III-A) before matching, and pruning (Section III-B) before
// the decision model.
//
// Preparation experiment: sources with inconsistent case/whitespace
// conventions; expected shape: preparation recovers the recall that
// convention mismatches destroy.
// Pruning experiment: candidates whose length-bound cannot reach Tλ are
// skipped; expected shape: pairs examined drop while P/R/F1 stay
// unchanged (the filter is sound for max-length-normalized comparators).

#include <cstdio>
#include <iostream>

#include "core/detector.h"
#include "datagen/person_generator.h"
#include "prep/standardizer.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace pdd;

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

// Injects convention mismatches: random casing and stray whitespace.
XRelation MangleConventions(const XRelation& rel, uint64_t seed) {
  Rng rng(seed);
  XRelation out(rel.name(), rel.schema());
  for (const XTuple& t : rel.xtuples()) {
    std::vector<AltTuple> alts = t.alternatives();
    for (AltTuple& alt : alts) {
      for (Value& v : alt.values) {
        std::vector<Alternative> mangled = v.alternatives();
        for (Alternative& a : mangled) {
          switch (rng.Index(3)) {
            case 0:
              a.text = ToUpper(a.text);
              break;
            case 1:
              a.text = " " + a.text;
              break;
            default:
              break;  // unchanged
          }
        }
        v = Value::Unchecked(std::move(mangled));
      }
    }
    out.AppendUnchecked(XTuple(t.id(), std::move(alts)));
  }
  return out;
}

}  // namespace

int main() {
  PersonGenOptions gen;
  gen.num_entities = 120;
  gen.duplicate_rate = 0.7;
  gen.errors.char_error_rate = 0.02;
  GeneratedData data = GeneratePersons(gen);
  XRelation mangled = MangleConventions(data.relation, 9);
  std::cout << "S11: preparation & pruning ablation on "
            << data.relation.size() << " records\n\n";

  DetectorConfig base;
  base.key = {{"name", 3}, {"city", 2}};
  base.weights = {0.5, 0.25, 0.25};
  base.final_thresholds = {0.6, 0.8};

  // --- preparation ablation -------------------------------------------
  DetectorConfig with_prep = base;
  Standardizer standard;
  standard.LowerCase().TrimWhitespace().CollapseWhitespace();
  with_prep.preparation = DataPreparation::Uniform(standard, 3);
  Result<DuplicateDetector> plain = DuplicateDetector::Make(base,
                                                            PersonSchema());
  Result<DuplicateDetector> prepped =
      DuplicateDetector::Make(with_prep, PersonSchema());
  TablePrinter prep_table({"input", "preparation", "precision", "recall",
                           "F1"});
  for (const auto& [label, rel] :
       {std::pair<const char*, const XRelation*>{"clean", &data.relation},
        {"convention-mangled", &mangled}}) {
    EffectivenessMetrics without = Evaluate(*plain->Run(*rel), data.gold);
    EffectivenessMetrics with = Evaluate(*prepped->Run(*rel), data.gold);
    prep_table.AddRow({label, "off", Fmt(without.precision),
                       Fmt(without.recall), Fmt(without.f1)});
    prep_table.AddRow({label, "on", Fmt(with.precision), Fmt(with.recall),
                       Fmt(with.f1)});
  }
  prep_table.Print(std::cout);

  // --- pruning ablation -------------------------------------------------
  std::cout << "\npruning (length-bound filter at threshold Tλ):\n";
  TablePrinter prune_table({"pruning", "pairs examined", "precision",
                            "recall", "F1"});
  for (bool prune : {false, true}) {
    DetectorConfig config = base;
    config.prune = prune;
    config.prune_threshold = base.final_thresholds.t_lambda;
    Result<DuplicateDetector> detector =
        DuplicateDetector::Make(config, PersonSchema());
    Result<DetectionResult> result = detector->Run(data.relation);
    EffectivenessMetrics m = Evaluate(*result, data.gold);
    prune_table.AddRow({prune ? "on" : "off",
                        std::to_string(result->candidate_count),
                        Fmt(m.precision), Fmt(m.recall), Fmt(m.f1)});
  }
  prune_table.Print(std::cout);
  std::cout << "\nreading: preparation must recover the mangled input's "
               "recall; pruning must cut the examined pairs without "
               "changing P/R/F1.\n";
  return 0;
}
