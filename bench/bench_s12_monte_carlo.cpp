// S12: Monte-Carlo similarity estimation — accuracy and cost of the
// world-sampling estimator against the exact Eq. 6 value as the sample
// budget grows, plus the early-stopping behavior.
//
// Expected shapes: absolute error shrinks ~1/√n; the memoized sampler's
// per-sample cost is far below one Eq. 5 evaluation once the k×l grid is
// warm; early stopping lands near the requested standard error.

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "core/paper_examples.h"
#include "decision/combination.h"
#include "derive/monte_carlo.h"
#include "derive/similarity_based.h"
#include "match/tuple_matcher.h"
#include "sim/edit_distance.h"
#include "util/table_printer.h"

namespace {

using namespace pdd;

const Comparator& Hamming() {
  static NormalizedHammingComparator cmp;
  return cmp;
}

void PrintAccuracyTable() {
  TupleMatcher matcher = *TupleMatcher::Make(PaperSchema(),
                                             {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.8, 0.2});
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  AlternativePairScores scores = BuildAlternativePairScores(t32, t42,
                                                            matcher, phi);
  double exact = ExpectedSimilarityDerivation().Derive(scores);
  std::cout << "MC estimate of sim(t32, t42) vs exact Eq. 6 = " << exact
            << ":\n";
  TablePrinter table({"samples", "estimate", "abs error", "reported SE"});
  for (size_t samples : {100u, 1000u, 10000u, 100000u}) {
    Rng rng(7);
    McOptions options;
    options.samples = samples;
    McEstimate est = EstimateSimilarityMc(t32, t42, matcher, phi, &rng,
                                          options);
    char est_s[32], err_s[32], se_s[32];
    std::snprintf(est_s, sizeof(est_s), "%.6f", est.similarity);
    std::snprintf(err_s, sizeof(err_s), "%.6f",
                  std::abs(est.similarity - exact));
    std::snprintf(se_s, sizeof(se_s), "%.6f", est.standard_error);
    table.AddRow({std::to_string(samples), est_s, err_s, se_s});
  }
  table.Print(std::cout);
}

void BM_MonteCarloEstimate(benchmark::State& state) {
  TupleMatcher matcher = *TupleMatcher::Make(PaperSchema(),
                                             {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.8, 0.2});
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  Rng rng(11);
  McOptions options;
  options.samples = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateSimilarityMc(t32, t42, matcher, phi, &rng, options));
  }
}
BENCHMARK(BM_MonteCarloEstimate)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ExactEq6(benchmark::State& state) {
  TupleMatcher matcher = *TupleMatcher::Make(PaperSchema(),
                                             {&Hamming(), &Hamming()});
  WeightedSumCombination phi({0.8, 0.2});
  ExpectedSimilarityDerivation theta;
  XTuple t32 = BuildR3().xtuple(1);
  XTuple t42 = BuildR4().xtuple(1);
  for (auto _ : state) {
    AlternativePairScores scores = BuildAlternativePairScores(t32, t42,
                                                              matcher, phi);
    benchmark::DoNotOptimize(theta.Derive(scores));
  }
}
BENCHMARK(BM_ExactEq6);

}  // namespace

int main(int argc, char** argv) {
  PrintAccuracyTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
