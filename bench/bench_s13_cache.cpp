// S13: decision-cache throughput — what memoization buys on repeated
// and swept detection runs.
//
//   * hit path vs. miss path: the same plan run cold (every pair walks
//     match → combine → derive → classify and inserts) and then warm
//     (every pair is a digest + lookup). The warm run must hit on every
//     pair and exceed the cold rate by >= 5x.
//   * sweep workload: an SNM window sweep run twice through one shared
//     cache. All points share a decision fingerprint (reduction never
//     changes per-pair decisions), so the first sweep already reuses
//     smaller windows' decisions and the second sweep is pure hit path.
//
// Decisions must stay bit-identical to the uncached run throughout —
// the cache is a throughput lever, never an approximation.

#include <chrono>
#include <memory>

#include "bench_util.h"
#include "cache/decision_cache.h"
#include "datagen/person_generator.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/stage_executor.h"
#include "plan/plan_builder.h"
#include "util/table_printer.h"

namespace {

using namespace pdd;
using pdd_bench::Banner;
using pdd_bench::Fmt;
using pdd_bench::Verdict;

std::shared_ptr<const DetectionPlan> CompilePlan(size_t window) {
  PlanBuilder builder;
  builder.AddKey("name", 3).AddKey("job", 2).Weights({});
  // Levenshtein matching: the realistic (and costlier) comparator
  // choice, which is exactly when memoization pays.
  builder.Comparators({"levenshtein", "levenshtein", "levenshtein"});
  builder.Reduction("snm_sorting_alternatives")
      .Set("reduction.window", window);
  Result<std::shared_ptr<const DetectionPlan>> plan =
      DetectionPlan::Compile(builder.Build(), PersonSchema());
  if (!plan.ok()) {
    std::cerr << "plan compile failed: " << plan.status().ToString() << "\n";
    std::exit(1);
  }
  return *plan;
}

/// Runs `plan` over `rel` through `cache` (null = uncached) and returns
/// pairs/sec, with the result in `*out`. Stage timing is disabled so
/// the clock reads don't bill the hit path.
double MeasureRate(const std::shared_ptr<const DetectionPlan>& plan,
                   const XRelation& rel,
                   const std::shared_ptr<DecisionCache>& cache,
                   DetectionResult* out) {
  using BenchClock = std::chrono::steady_clock;
  Result<std::unique_ptr<CandidateStream>> stream =
      MakeFullStream(*plan, rel);
  if (!stream.ok()) {
    std::cerr << "stream failed: " << stream.status().ToString() << "\n";
    std::exit(1);
  }
  StageExecutorOptions options;
  options.stage_timings = false;
  options.cache = cache;
  StageExecutor executor(plan, options);
  BenchClock::time_point start = BenchClock::now();
  Result<DetectionResult> result = executor.Execute(**stream);
  double seconds =
      std::chrono::duration<double>(BenchClock::now() - start).count();
  if (!result.ok()) {
    std::cerr << "execute failed: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  *out = std::move(*result);
  return seconds > 0
             ? static_cast<double>(out->candidate_count) / seconds
             : 0.0;
}

bool SameDecisions(const DetectionResult& a, const DetectionResult& b) {
  if (a.decisions.size() != b.decisions.size()) return false;
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    if (a.decisions[i].id1 != b.decisions[i].id1 ||
        a.decisions[i].id2 != b.decisions[i].id2 ||
        a.decisions[i].similarity != b.decisions[i].similarity ||
        a.decisions[i].match_class != b.decisions[i].match_class) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  Banner("S13 — decision cache: hit path vs. miss path",
         "memoized pairs skip the stage graph; repeated sweeps become "
         "lookups");
  PersonGenOptions gen;
  gen.num_entities = 250;
  gen.duplicate_rate = 0.6;
  gen.errors.char_error_rate = 0.05;
  gen.uncertainty.value_uncertainty_prob = 0.4;
  gen.uncertainty.xtuple_alternative_prob = 0.3;
  gen.seed = 90210;
  GeneratedData data = GeneratePersons(gen);
  std::cout << data.relation.size() << " records\n\n";

  bool ok = true;

  // --- hit path vs. miss path on one plan ---------------------------
  std::shared_ptr<const DetectionPlan> plan = CompilePlan(/*window=*/8);
  DetectionResult uncached;
  MeasureRate(plan, data.relation, nullptr, &uncached);  // warmup
  double baseline_rate =
      MeasureRate(plan, data.relation, nullptr, &uncached);
  auto cache = std::make_shared<ShardedDecisionCache>();
  DetectionResult cold;
  double miss_rate = MeasureRate(plan, data.relation, cache, &cold);
  DetectionResult warm;
  double hit_rate_pairs = MeasureRate(plan, data.relation, cache, &warm);
  double warm_hit_share = warm.cache_stats->HitRate();
  double speedup = miss_rate > 0 ? hit_rate_pairs / miss_rate : 0.0;

  TablePrinter table({"path", "pairs/sec", "vs miss path", "hit rate"});
  table.AddRow({"uncached", Fmt(baseline_rate, 0),
                Fmt(miss_rate > 0 ? baseline_rate / miss_rate : 0.0, 2),
                "-"});
  table.AddRow({"miss (cold cache)", Fmt(miss_rate, 0), Fmt(1.0, 2),
                Fmt(cold.cache_stats->HitRate(), 4)});
  table.AddRow({"hit (warm cache)", Fmt(hit_rate_pairs, 0),
                Fmt(speedup, 2), Fmt(warm_hit_share, 4)});
  table.Print(std::cout);

  bool identical =
      SameDecisions(uncached, cold) && SameDecisions(uncached, warm);
  std::cout << "decisions bit-identical across uncached/cold/warm: "
            << (identical ? "yes" : "NO") << "\n";
  ok = ok && identical && warm_hit_share > 0.95 && speedup >= 5.0;

  // --- sweep workload through one shared cache ----------------------
  std::cout << "\nSNM window sweep, run twice through one shared cache:\n";
  auto sweep_cache = std::make_shared<ShardedDecisionCache>();
  TablePrinter sweep_table(
      {"sweep", "pairs", "pairs/sec", "hit rate"});
  double sweep_rates[2] = {0.0, 0.0};
  for (int round = 0; round < 2; ++round) {
    size_t pairs = 0;
    size_t hits = 0;
    double seconds = 0.0;
    for (size_t w : {3u, 5u, 8u, 12u}) {
      std::shared_ptr<const DetectionPlan> point = CompilePlan(w);
      DetectionResult result;
      double rate = MeasureRate(point, data.relation, sweep_cache, &result);
      pairs += result.candidate_count;
      hits += result.cache_stats->hits;
      if (rate > 0) {
        seconds += static_cast<double>(result.candidate_count) / rate;
      }
    }
    sweep_rates[round] =
        seconds > 0 ? static_cast<double>(pairs) / seconds : 0.0;
    sweep_table.AddRow(
        {round == 0 ? "cold (cross-plan reuse)" : "warm (pure hit path)",
         std::to_string(pairs), Fmt(sweep_rates[round], 0),
         Fmt(pairs > 0 ? static_cast<double>(hits) /
                             static_cast<double>(pairs)
                       : 0.0,
             4)});
  }
  sweep_table.Print(std::cout);
  std::cout << "shared cache: " << sweep_cache->Stats().ToString() << "\n";
  ok = ok && sweep_rates[1] > sweep_rates[0];

  pdd_bench::BenchJsonWriter json("s13");
  json.Set("bench", "s13_decision_cache");
  json.Set("records", static_cast<double>(data.relation.size()));
  json.Set("candidate_pairs", static_cast<double>(uncached.candidate_count));
  json.Set("uncached_pairs_per_sec", baseline_rate);
  json.Set("miss_pairs_per_sec", miss_rate);
  json.Set("hit_pairs_per_sec", hit_rate_pairs);
  json.Set("warm_hit_rate", warm_hit_share);
  json.Set("hit_vs_miss_speedup", speedup);
  json.Set("sweep_cold_pairs_per_sec", sweep_rates[0]);
  json.Set("sweep_warm_pairs_per_sec", sweep_rates[1]);
  json.Set("decisions_identical", identical);
  json.Write();

  return Verdict(ok);
}
