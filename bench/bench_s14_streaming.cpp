// S14: streaming candidate generation — the bounded-memory
// PairGenerator → CandidateStream → StageExecutor path vs. the legacy
// materialized candidate vector. Reports the peak live-candidate
// high-water mark of both paths per reduction and gates on the
// streaming guarantees:
//
//   1. byte-identical reports: the streamed and materialized drains
//      produce the same DetectionReport, bit for bit;
//   2. native-streaming SNM/blocking hold a live high-water mark below
//      10% of the materialized candidate count;
//   3. native-streaming SNM holds high-water <= batch + 2·window
//      (one in-flight batch plus one tuple's window neighborhood).

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/detector.h"
#include "core/report_writer.h"
#include "datagen/person_generator.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/stage_executor.h"
#include "util/checked_math.h"
#include "util/table_printer.h"

namespace {

using namespace pdd;

constexpr size_t kBatch = 256;

struct PathStats {
  DetectionResult result;
  std::string report;
};

DetectorConfig BenchConfig(ReductionMethod method, size_t window,
                           size_t key_prefix) {
  DetectorConfig config;
  // Blocking cases use a coarse one-letter key: realistic blocks hold
  // dozens of tuples, so the within-block pair set dwarfs one batch.
  config.key = {{"name", key_prefix}, {"job", key_prefix > 1 ? 2u : 0u}};
  if (key_prefix <= 1) config.key.resize(1);
  config.weights = {0.5, 0.3, 0.2};
  config.reduction = method;
  config.window = window;
  config.batch_size = kBatch;
  return config;
}

/// Runs the executor over the default (streamed) stream.
bool RunStreamed(const DuplicateDetector& detector, const XRelation& rel,
                 PathStats* out) {
  auto stream = MakeFullStream(detector.plan(), rel);
  if (!stream.ok()) return false;
  auto result = detector.RunStream(**stream);
  if (!result.ok()) return false;
  out->result = std::move(*result);
  out->report = DetectionReport(out->result, nullptr);
  return true;
}

/// Runs the executor over a hand-materialized stream (the legacy path,
/// kept as the contrast case): Generate() once, serve slices.
bool RunMaterialized(const DuplicateDetector& detector, const XRelation& rel,
                     PathStats* out) {
  std::unique_ptr<PairGenerator> generator =
      detector.plan().MakePairGenerator();
  auto candidates = generator->Generate(rel);
  if (!candidates.ok()) return false;
  MaterializedCandidateStream stream("full", std::nullopt, &rel,
                                     std::move(*candidates),
                                     TriangularPairCount(rel.size()));
  auto result = detector.RunStream(stream);
  if (!result.ok()) return false;
  out->result = std::move(*result);
  out->report = DetectionReport(out->result, nullptr);
  return true;
}

}  // namespace

int main() {
  pdd_bench::Banner(
      "S14 streaming candidate generation",
      "Section V reductions exist so detection never touches the full "
      "pair space; the streamed path must also never BUFFER it");

  PersonGenOptions gen;
  gen.num_entities = 1200;
  gen.duplicate_rate = 0.6;
  gen.seed = 140514;
  GeneratedData data = GeneratePersons(gen);
  std::cout << "dataset: " << data.relation.size() << " x-tuples ("
            << gen.num_entities << " entities)\n\n";

  struct Case {
    const char* label;
    ReductionMethod method;
    size_t window;
    size_t key_prefix;
    bool gate_window_bound;  // assertion 3 applies (SNM family)
  };
  const Case cases[] = {
      {"snm_certain_keys", ReductionMethod::kSnmCertainKeys, 6, 3, true},
      {"snm_sorting_alternatives", ReductionMethod::kSnmSortingAlternatives,
       6, 3, true},
      {"blocking_certain_keys", ReductionMethod::kBlockingCertainKeys, 0, 1,
       false},
  };

  pdd::TablePrinter table(
      {"reduction", "candidates", "HW streamed", "HW materialized",
       "HW/candidates", "report=="});
  bool ok = true;
  pdd_bench::BenchJsonWriter json("s14");
  json.Set("bench", "s14_streaming");
  json.Set("records", static_cast<double>(data.relation.size()));
  for (const Case& c : cases) {
    auto detector = DuplicateDetector::Make(
        BenchConfig(c.method, c.window ? c.window : 3, c.key_prefix),
        PersonSchema());
    if (!detector.ok()) {
      std::cout << c.label << ": " << detector.status().ToString() << "\n";
      ok = false;
      continue;
    }
    PathStats streamed, materialized;
    if (!RunStreamed(*detector, data.relation, &streamed) ||
        !RunMaterialized(*detector, data.relation, &materialized)) {
      std::cout << c.label << ": run failed\n";
      ok = false;
      continue;
    }
    const size_t candidates = materialized.result.candidate_count;
    const size_t hw_streamed =
        streamed.result.stream_stats.live_candidate_high_water;
    const size_t hw_materialized =
        materialized.result.stream_stats.live_candidate_high_water;
    const bool reports_equal = streamed.report == materialized.report;
    table.AddRow({c.label, std::to_string(candidates),
                  std::to_string(hw_streamed),
                  std::to_string(hw_materialized),
                  pdd_bench::Fmt(100.0 * static_cast<double>(hw_streamed) /
                                     static_cast<double>(candidates),
                                 1) +
                      "%",
                  reports_equal ? "yes" : "NO"});
    const std::string prefix = c.label;
    json.Set(prefix + ".candidates", static_cast<double>(candidates));
    json.Set(prefix + ".streamed_high_water",
             static_cast<double>(hw_streamed));
    json.Set(prefix + ".materialized_high_water",
             static_cast<double>(hw_materialized));
    json.Set(prefix + ".reports_identical", reports_equal);
    // Gate 1: byte-identical reports.
    ok = ok && reports_equal;
    // Gate 2: streamed high-water < 10% of materialized candidates.
    ok = ok && hw_streamed * 10 < candidates;
    // Gate 3 (SNM family): high-water <= one batch + one window
    // neighborhood.
    if (c.gate_window_bound) {
      // Sorting-alternatives tuples own several entries; give the bound
      // the same per-alternative slack the source has.
      size_t bound = kBatch + 8 * 2 * c.window;
      if (hw_streamed > bound) {
        std::cout << c.label << ": high-water " << hw_streamed
                  << " exceeds window bound " << bound << "\n";
        ok = false;
      }
    }
  }
  std::cout << table.ToString() << "\n";
  std::cout << "high-water = peak live candidate pairs (stream buffers + "
               "in-flight batches); the materialized path pins the full "
               "candidate vector for the whole drain.\n";
  json.Write();
  return pdd_bench::Verdict(ok);
}
