// S15: sharded candidate streams — the candidate universe partitioned
// into per-shard sources (pipeline/sharded_stream.h) whose merged
// output must be bit-identical to the unsharded stream, while each
// shard holds only its own slice of the candidates. Gates:
//
//   1. byte-identical reports: the merged sharded drain produces the
//      same DetectionReport as the unsharded drain, bit for bit, for
//      every reduction family's partition strategy and shard count;
//   2. per-shard live-candidate high-water < the unsharded high-water
//      (a shard never holds more than the whole);
//   3. per-shard high-water < unsharded high-water / N * 1.5 (the
//      partition is balanced: every shard holds about 1/N of the
//      candidate residency, with 50% slack for boundary effects).
//
// The drain uses one huge executor batch, so the high-water mark IS the
// scenario's candidate residency — the number a node must provision
// for. That is the story sharding tells: N nodes, each ~1/N of the
// pairs live, same bytes out.

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/detector.h"
#include "core/report_writer.h"
#include "datagen/person_generator.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/sharded_stream.h"
#include "pipeline/stage_executor.h"
#include "util/table_printer.h"

namespace {

using namespace pdd;

// One batch swallows any case's full candidate set: live candidates =
// candidate residency, for the unsharded baseline and every shard.
constexpr size_t kBatch = 1u << 20;

DetectorConfig BenchConfig(ReductionMethod method, size_t window,
                           size_t key_prefix) {
  DetectorConfig config;
  config.key = {{"name", key_prefix}, {"job", 2}};
  config.weights = {0.5, 0.3, 0.2};
  config.reduction = method;
  config.window = window;
  config.batch_size = kBatch;
  return config;
}

}  // namespace

int main() {
  pdd_bench::Banner(
      "S15 sharded candidate streams",
      "a shard holds ~1/N of the candidate residency while the merged "
      "result stays byte-identical to the unsharded run");

  PersonGenOptions big;
  big.num_entities = 1200;
  big.duplicate_rate = 0.6;
  big.seed = 150514;
  GeneratedData big_data = GeneratePersons(big);
  PersonGenOptions small = big;
  small.num_entities = 200;  // full pairs: quadratic, keep it honest
  GeneratedData small_data = GeneratePersons(small);

  struct Case {
    const char* label;
    ReductionMethod method;
    size_t window;
    size_t key_prefix;
    const GeneratedData* data;
  };
  const Case cases[] = {
      {"full", ReductionMethod::kFull, 3, 3, &small_data},
      {"snm_certain_keys", ReductionMethod::kSnmCertainKeys, 6, 3,
       &big_data},
      {"blocking_certain_keys", ReductionMethod::kBlockingCertainKeys, 3, 2,
       &big_data},
  };
  const size_t shard_counts[] = {2, 4, 8};

  pdd::TablePrinter table({"reduction", "strategy", "shards", "candidates",
                           "HW unsharded", "HW max shard", "share",
                           "report=="});
  bool ok = true;
  pdd_bench::BenchJsonWriter json("s15");
  json.Set("bench", "s15_sharding");
  for (const Case& c : cases) {
    auto detector = DuplicateDetector::Make(
        BenchConfig(c.method, c.window, c.key_prefix), PersonSchema());
    if (!detector.ok()) {
      std::cout << c.label << ": " << detector.status().ToString() << "\n";
      ok = false;
      continue;
    }
    const XRelation& rel = c.data->relation;
    auto unsharded_stream = MakeFullStream(detector->plan(), rel);
    if (!unsharded_stream.ok()) {
      std::cout << c.label << ": " << unsharded_stream.status().ToString()
                << "\n";
      ok = false;
      continue;
    }
    auto unsharded = detector->RunStream(**unsharded_stream);
    if (!unsharded.ok()) {
      std::cout << c.label << ": " << unsharded.status().ToString() << "\n";
      ok = false;
      continue;
    }
    const std::string report = DetectionReport(*unsharded, nullptr);
    const size_t hw_unsharded =
        unsharded->stream_stats.live_candidate_high_water;
    const ShardStrategy strategy =
        ResolveShardStrategy(ShardStrategy::kAuto, c.method);
    for (size_t shards : shard_counts) {
      auto stream =
          MakeShardedFullStream(detector->plan(), rel,
                                {shards, ShardStrategy::kAuto});
      if (!stream.ok()) {
        std::cout << c.label << ": " << stream.status().ToString() << "\n";
        ok = false;
        continue;
      }
      auto sharded = detector->RunStream(**stream);
      if (!sharded.ok()) {
        std::cout << c.label << ": " << sharded.status().ToString() << "\n";
        ok = false;
        continue;
      }
      const bool reports_equal =
          DetectionReport(*sharded, nullptr) == report;
      size_t hw_max_shard = 0;
      for (const StreamRunStats& stats : sharded->stream_stats.per_shard) {
        hw_max_shard = std::max(hw_max_shard,
                                stats.live_candidate_high_water);
      }
      table.AddRow(
          {c.label, ShardStrategyName(strategy), std::to_string(shards),
           std::to_string(sharded->candidate_count),
           std::to_string(hw_unsharded), std::to_string(hw_max_shard),
           pdd_bench::Fmt(100.0 * static_cast<double>(hw_max_shard) /
                              static_cast<double>(hw_unsharded),
                          1) +
               "%",
           reports_equal ? "yes" : "NO"});
      const std::string prefix =
          std::string(c.label) + ".x" + std::to_string(shards);
      json.Set(prefix + ".candidates",
               static_cast<double>(sharded->candidate_count));
      json.Set(prefix + ".unsharded_high_water",
               static_cast<double>(hw_unsharded));
      json.Set(prefix + ".max_shard_high_water",
               static_cast<double>(hw_max_shard));
      json.Set(prefix + ".reports_identical", reports_equal);
      // Gate 1: the merged report is the unsharded report, byte for
      // byte.
      ok = ok && reports_equal;
      // Gate 2: no shard ever holds more than the unsharded drain.
      if (hw_max_shard >= hw_unsharded) {
        std::cout << c.label << " x" << shards << ": shard high-water "
                  << hw_max_shard << " not below unsharded " << hw_unsharded
                  << "\n";
        ok = false;
      }
      // Gate 3: balance — every shard holds about 1/N, 50% slack.
      double bound = static_cast<double>(hw_unsharded) /
                     static_cast<double>(shards) * 1.5;
      if (static_cast<double>(hw_max_shard) >= bound) {
        std::cout << c.label << " x" << shards << ": shard high-water "
                  << hw_max_shard << " exceeds balance bound "
                  << pdd_bench::Fmt(bound, 1) << " (unsharded/"
                  << shards << "*1.5)\n";
        ok = false;
      }
    }
  }
  std::cout << table.ToString() << "\n";
  std::cout << "high-water = peak live candidate pairs of the drain (one "
               "huge batch, so it equals the candidate residency); 'share' "
               "= largest shard's residency vs the unsharded drain.\n";
  json.Write();
  return pdd_bench::Verdict(ok);
}
