// S16: the decision-index serving layer — one pipeline run compiled
// into a pdd.index.v1 image (src/index/), then queried. Gates:
//
//   1. byte-identical answers: every point query returns exactly the
//      report's bits (class + similarity), and the image compiled from
//      a pooled rerun is byte-identical to the serial one;
//   2. point queries >= 1M/s single-threaded (the microsecond-query
//      promise, with a 1M/s floor that holds on cold CI runners);
//   3. serving beats rerunning: answering every decided pair from the
//      index is >= 100x faster than the pipeline run that produced it;
//   4. compiling the index costs less than the run it compiles, and the
//      image stays compact (<= 24 bytes/pair amortized).
//
// The sidecar records the rates for bench_compare.py's throughput gate
// (keys ending _per_sec / containing speedup) and the answer/image
// equality invariants (keys containing identical).

#include <chrono>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/detector.h"
#include "datagen/person_generator.h"
#include "index/decision_index.h"
#include "index/index_builder.h"
#include "util/table_printer.h"

namespace {

using namespace pdd;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  pdd_bench::Banner(
      "S16 decision-index serving",
      "compile one run into an mmap-able index; answer duplicate/cluster "
      "queries in microseconds without rerunning the pipeline");

  // Heavy uncertainty: most records are multi-alternative x-tuples
  // with multi-alternative values, so every decided pair pays the
  // paper's full derivation cost — the realistic workload the serving
  // layer amortizes.
  PersonGenOptions options;
  options.num_entities = 400;
  options.duplicate_rate = 0.8;
  options.uncertainty.value_uncertainty_prob = 0.8;
  options.uncertainty.max_value_alternatives = 5;
  options.uncertainty.xtuple_alternative_prob = 0.9;
  options.uncertainty.max_xtuple_alternatives = 5;
  options.full_names = true;
  options.seed = 160101;
  GeneratedData data = GeneratePersons(options);
  const XRelation& rel = data.relation;

  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.3, 0.2};
  // Quadratic edit-distance comparators (not the default hamming):
  // the per-pair match cost of a production fuzzy-matching setup.
  config.comparators = {"damerau", "levenshtein", "levenshtein"};
  auto detector = DuplicateDetector::Make(config, rel.schema());
  if (!detector.ok()) {
    std::cout << detector.status().ToString() << "\n";
    return pdd_bench::Verdict(false);
  }

  // --- the pipeline run the index will serve -------------------------
  const auto run_start = std::chrono::steady_clock::now();
  auto result = detector->Run(rel);
  const double pipeline_seconds = Seconds(run_start);
  if (!result.ok()) {
    std::cout << result.status().ToString() << "\n";
    return pdd_bench::Verdict(false);
  }

  // --- compile -------------------------------------------------------
  IndexBuildStats stats;
  auto image = BuildDecisionIndexImage(rel, *result, &stats);
  if (!image.ok()) {
    std::cout << image.status().ToString() << "\n";
    return pdd_bench::Verdict(false);
  }
  auto index = DecisionIndex::FromImage(*image);
  if (!index.ok()) {
    std::cout << index.status().ToString() << "\n";
    return pdd_bench::Verdict(false);
  }

  bool ok = true;
  // Gate 1a: every indexed answer is the report's answer, bit for bit.
  bool answers_identical = result->decisions.size() == index->pair_count();
  std::vector<std::pair<uint32_t, uint32_t>> queries;
  queries.reserve(result->decisions.size());
  for (const PairDecisionRecord& rec : result->decisions) {
    const uint32_t a = static_cast<uint32_t>(rec.index1);
    const uint32_t b = static_cast<uint32_t>(rec.index2);
    queries.emplace_back(a, b);
    std::optional<IndexedDecision> answer = index->Lookup(a, b);
    if (!answer.has_value() || answer->match_class != rec.match_class ||
        answer->similarity != rec.similarity) {
      answers_identical = false;
    }
  }
  if (!answers_identical) {
    std::cout << "indexed answers diverge from the fresh report\n";
    ok = false;
  }
  // Gate 1b: a pooled rerun compiles to the same bytes.
  auto pooled_config = config;
  pooled_config.workers = 4;
  auto pooled = DuplicateDetector::Make(pooled_config, rel.schema());
  bool images_identical = false;
  if (pooled.ok()) {
    auto rerun = pooled->Run(rel);
    if (rerun.ok()) {
      auto rerun_image = BuildDecisionIndexImage(rel, *rerun);
      images_identical = rerun_image.ok() && *rerun_image == *image;
    }
  }
  if (!images_identical) {
    std::cout << "pooled rerun compiled to different index bytes\n";
    ok = false;
  }

  // --- point queries -------------------------------------------------
  // The decided pairs, in index order, repeated to >= 2M lookups.
  const size_t kPointTarget = 2'000'000;
  uint64_t checksum = 0;
  size_t point_queries = 0;
  const auto point_start = std::chrono::steady_clock::now();
  while (point_queries < kPointTarget) {
    for (const auto& [a, b] : queries) {
      std::optional<IndexedDecision> hit = index->Lookup(a, b);
      checksum +=
          hit.has_value() ? static_cast<uint64_t>(hit->match_class) + 1 : 0;
    }
    point_queries += queries.size();
  }
  const double point_seconds = Seconds(point_start);
  const double point_per_sec =
      point_seconds > 0.0 ? static_cast<double>(point_queries) / point_seconds
                          : 0.0;

  // --- membership queries --------------------------------------------
  const size_t kMembershipTarget = 2'000'000;
  size_t membership_queries = 0;
  const uint32_t n = static_cast<uint32_t>(index->record_count());
  const auto member_start = std::chrono::steady_clock::now();
  while (membership_queries < kMembershipTarget) {
    for (uint32_t r = 0; r < n; ++r) {
      const uint32_t cluster = *index->ClusterOf(r);
      RecordSpan members = index->Members(cluster);
      checksum += members.size + members[0];
    }
    membership_queries += n;
  }
  const double membership_seconds = Seconds(member_start);
  const double membership_per_sec =
      membership_seconds > 0.0
          ? static_cast<double>(membership_queries) / membership_seconds
          : 0.0;

  // Serving every decided pair once from the index vs the run that
  // decided them (same answers, so the ratio is apples to apples).
  const double serve_all_seconds =
      point_per_sec > 0.0
          ? static_cast<double>(queries.size()) / point_per_sec
          : 0.0;
  const double speedup = serve_all_seconds > 0.0
                             ? pipeline_seconds / serve_all_seconds
                             : 0.0;

  // --- gates ----------------------------------------------------------
  if (point_per_sec < 1e6) {
    std::cout << "point queries " << pdd_bench::Fmt(point_per_sec / 1e6, 2)
              << " M/s below the 1M/s floor\n";
    ok = false;
  }
  if (speedup < 100.0) {
    std::cout << "serving speedup " << pdd_bench::Fmt(speedup, 1)
              << "x below the 100x floor\n";
    ok = false;
  }
  if (stats.build_seconds >= pipeline_seconds) {
    std::cout << "index build (" << pdd_bench::Fmt(stats.build_seconds, 4)
              << " s) not cheaper than the pipeline run ("
              << pdd_bench::Fmt(pipeline_seconds, 4) << " s)\n";
    ok = false;
  }
  if (stats.BytesPerPair() > 24.0) {
    std::cout << "index size " << pdd_bench::Fmt(stats.BytesPerPair(), 2)
              << " bytes/pair above the 24 bytes/pair ceiling\n";
    ok = false;
  }

  pdd::TablePrinter table({"metric", "value"});
  table.AddRow({"records", std::to_string(stats.record_count)});
  table.AddRow({"decided pairs", std::to_string(stats.pair_count)});
  table.AddRow({"clusters", std::to_string(stats.cluster_count)});
  table.AddRow({"index bytes", std::to_string(stats.bytes)});
  table.AddRow({"bytes/pair", pdd_bench::Fmt(stats.BytesPerPair(), 2)});
  table.AddRow({"pipeline run", pdd_bench::Fmt(pipeline_seconds, 4) + " s"});
  table.AddRow({"index build", pdd_bench::Fmt(stats.build_seconds, 4) + " s"});
  table.AddRow(
      {"point queries", pdd_bench::Fmt(point_per_sec / 1e6, 2) + " M/s"});
  table.AddRow({"membership queries",
                pdd_bench::Fmt(membership_per_sec / 1e6, 2) + " M/s"});
  table.AddRow({"speedup vs rerun", pdd_bench::Fmt(speedup, 1) + "x"});
  table.AddRow({"answers identical", answers_identical ? "yes" : "NO"});
  table.AddRow({"images identical", images_identical ? "yes" : "NO"});
  std::cout << table.ToString() << "\n";
  std::cout << "speedup = pipeline seconds / (decided pairs / point query "
               "rate): the cost of answering every decided pair from the "
               "index vs rerunning the pipeline that decided them. "
               "(checksum " << checksum << ")\n";

  pdd_bench::BenchJsonWriter json("s16");
  json.Set("bench", "s16_index");
  json.Set("records", static_cast<double>(stats.record_count));
  json.Set("pairs", static_cast<double>(stats.pair_count));
  json.Set("clusters", static_cast<double>(stats.cluster_count));
  json.Set("index_bytes", static_cast<double>(stats.bytes));
  json.Set("bytes_per_pair", stats.BytesPerPair());
  json.Set("pipeline_seconds", pipeline_seconds);
  json.Set("build_seconds", stats.build_seconds);
  json.Set("point_queries_per_sec", point_per_sec);
  json.Set("membership_queries_per_sec", membership_per_sec);
  json.Set("serving_speedup", speedup);
  json.Set("answers_identical", answers_identical);
  json.Set("images_identical", images_identical);
  json.Write();
  return pdd_bench::Verdict(ok);
}
