// S17: the standing ingest path — tuples pushed into the bounded MPSC
// queue at full producer speed, decided live against the standing
// relation, then the deterministic finish re-run. Gates:
//
//   1. byte-identical report: the standing Finish() report (shuffled
//      arrival order, live drain + cached re-run) matches the one-shot
//      batch run of the same tuple set, byte for byte;
//   2. lossless backpressure: blocking Push sheds nothing (arrivals ==
//      admitted, dropped == 0) and the queue high-water stays within
//      its configured capacity;
//   3. sustained ingest: the live drain keeps up with a full-speed
//      producer at >= 200 admitted tuples/s (a floor that holds on
//      cold CI runners; real rates are orders of magnitude higher);
//   4. bounded admission-to-decision latency: p99 of the time from a
//      tuple's successful push to its last crossing pair committing
//      stays under 1 s (log-bucket upper bound, so generous by
//      construction);
//   5. the finish re-run is pure cache replay: hit rate exactly 1.0,
//      zero inserts (the live drain already decided the full crossing
//      set).
//
// The sidecar records the rates for bench_compare.py's throughput gate
// (keys ending _per_sec), the finish replay ratio (finish_hit_rate),
// the report-equality invariant (report_identical), and the full
// admission-to-decision latency histogram.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "cache/decision_cache.h"
#include "core/detector.h"
#include "core/report_writer.h"
#include "datagen/person_generator.h"
#include "ingest/ingest_queue.h"
#include "ingest/ingest_stream.h"
#include "ingest/standing_session.h"
#include "obs/log_histogram.h"
#include "pipeline/detection_plan.h"
#include "util/table_printer.h"

namespace {

using namespace pdd;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Admission-to-decision latency, driven from the live drain's
/// decision sink (sink calls are serialized by the executor). Tuple j
/// has exactly j crossing pairs (0,j)..(j-1,j); its latency closes
/// when the last of them commits.
struct SinkState {
  const IngestStream* stream = nullptr;
  std::unordered_map<size_t, size_t> remaining;
  LogHistogram latency;
};

void OnDecision(SinkState* state, const PairDecisionRecord& rec) {
  const size_t j = rec.index2;
  auto [it, inserted] = state->remaining.emplace(j, j);
  if (--(it->second) > 0) return;
  state->remaining.erase(it);
  const uint64_t stamp = state->stream->admitted_stamp(j);
  if (stamp != 0) {
    const uint64_t now = NowMicros();
    state->latency.Record(now > stamp ? now - stamp : 0);
  }
}

}  // namespace

int main() {
  pdd_bench::Banner(
      "S17 standing ingest",
      "push-based arrivals decided against the standing relation as they "
      "land; the final report is byte-identical to a one-shot batch run "
      "for any arrival order");

  PersonGenOptions gen;
  gen.num_entities = 250;
  gen.duplicate_rate = 0.8;
  gen.seed = 170101;  // fixed: the report diff must be reproducible
  GeneratedData data = GeneratePersons(gen);
  // The batch reference must see the tuples in the same order the
  // standing Finish() re-runs them: the canonical id-sorted order
  // (lexicographic ids, so generation order r2 > r10 differs).
  std::vector<XTuple> sorted(data.relation.xtuples().begin(),
                             data.relation.xtuples().end());
  std::sort(sorted.begin(), sorted.end(),
            [](const XTuple& a, const XTuple& b) { return a.id() < b.id(); });
  XRelation rel(data.relation.name(), data.relation.schema());
  rel.Reserve(sorted.size());
  for (XTuple& tuple : sorted) rel.AppendUnchecked(std::move(tuple));

  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.3, 0.2};

  // --- the one-shot batch reference ----------------------------------
  auto detector = DuplicateDetector::Make(config, rel.schema());
  if (!detector.ok()) {
    std::cout << detector.status().ToString() << "\n";
    return pdd_bench::Verdict(false);
  }
  const auto batch_start = std::chrono::steady_clock::now();
  auto batch_result = detector->Run(rel);
  const double batch_seconds = Seconds(batch_start);
  if (!batch_result.ok()) {
    std::cout << batch_result.status().ToString() << "\n";
    return pdd_bench::Verdict(false);
  }
  const std::string batch_report = DetectionReport(*batch_result, nullptr);

  // --- the standing run ----------------------------------------------
  auto plan = DetectionPlan::Compile(config, rel.schema());
  if (!plan.ok()) {
    std::cout << plan.status().ToString() << "\n";
    return pdd_bench::Verdict(false);
  }
  auto cache = std::make_shared<ShardedDecisionCache>();
  SinkState sink;
  StandingSession::Options options;
  options.stream.queue_capacity = 64;
  options.stream.max_admitted = rel.size();
  options.batch_size = config.batch_size;
  options.cache = cache;
  options.decision_sink = [&sink](const PairDecisionRecord& rec) {
    OnDecision(&sink, rec);
  };
  auto session = StandingSession::Make(*plan, nullptr, std::move(options));
  if (!session.ok()) {
    std::cout << session.status().ToString() << "\n";
    return pdd_bench::Verdict(false);
  }
  sink.stream = &(*session)->stream();

  // Deterministically shuffled arrival order — the order the report
  // must be independent of — pushed at full producer speed against the
  // queue's blocking backpressure.
  std::vector<size_t> order(rel.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::mt19937 rng(170202);
  std::shuffle(order.begin(), order.end(), rng);
  const auto drain_start = std::chrono::steady_clock::now();
  std::thread producer([&]() {
    for (size_t index : order) {
      (*session)->queue().Push(rel.xtuple(index), NowMicros());
    }
    (*session)->queue().Close();
  });
  auto live = (*session)->Drain();
  producer.join();
  const double drain_seconds = Seconds(drain_start);
  if (!live.ok()) {
    std::cout << live.status().ToString() << "\n";
    return pdd_bench::Verdict(false);
  }

  const IngestQueueStats queue_stats = (*session)->queue().Stats();
  const IngestStream::AdmissionStats admission =
      (*session)->stream().admission_stats();
  const double sustained_per_sec =
      drain_seconds > 0.0
          ? static_cast<double>(admission.admitted) / drain_seconds
          : 0.0;
  const double live_pairs_per_sec =
      drain_seconds > 0.0
          ? static_cast<double>(live->decisions.size()) / drain_seconds
          : 0.0;

  // --- the deterministic finish --------------------------------------
  auto finish = (*session)->Finish();
  if (!finish.ok()) {
    std::cout << finish.status().ToString() << "\n";
    return pdd_bench::Verdict(false);
  }
  const std::string finish_report = DetectionReport(*finish, nullptr);
  const CacheRunStats finish_cache =
      finish->cache_stats.value_or(CacheRunStats{});

  // --- gates ----------------------------------------------------------
  bool ok = true;
  const bool report_identical = finish_report == batch_report;
  if (!report_identical) {
    std::cout << "standing finish report diverges from the batch report\n";
    ok = false;
  }
  if (queue_stats.dropped != 0 ||
      queue_stats.arrivals != queue_stats.admitted) {
    std::cout << "blocking push shed load: " << queue_stats.dropped
              << " dropped of " << queue_stats.arrivals << " arrivals\n";
    ok = false;
  }
  if (queue_stats.high_water > queue_stats.capacity) {
    std::cout << "queue high-water " << queue_stats.high_water
              << " exceeded capacity " << queue_stats.capacity << "\n";
    ok = false;
  }
  if (sustained_per_sec < 200.0) {
    std::cout << "sustained ingest " << pdd_bench::Fmt(sustained_per_sec, 1)
              << " tuples/s below the 200/s floor\n";
    ok = false;
  }
  const double p99_micros = static_cast<double>(sink.latency.Quantile(0.99));
  if (p99_micros > 1e6) {
    std::cout << "p99 admission-to-decision latency "
              << pdd_bench::Fmt(p99_micros / 1000.0, 1)
              << " ms above the 1 s ceiling\n";
    ok = false;
  }
  const bool finish_is_replay =
      finish_cache.lookups > 0 && finish_cache.hits == finish_cache.lookups &&
      finish_cache.inserts == 0;
  if (!finish_is_replay) {
    std::cout << "finish re-run was not pure cache replay: "
              << finish_cache.hits << "/" << finish_cache.lookups
              << " hits, " << finish_cache.inserts << " inserts\n";
    ok = false;
  }

  pdd::TablePrinter table({"metric", "value"});
  table.AddRow({"records", std::to_string(rel.size())});
  table.AddRow({"live decisions", std::to_string(live->decisions.size())});
  table.AddRow({"batch run", pdd_bench::Fmt(batch_seconds, 4) + " s"});
  table.AddRow({"live drain", pdd_bench::Fmt(drain_seconds, 4) + " s"});
  table.AddRow({"sustained ingest",
                pdd_bench::Fmt(sustained_per_sec, 1) + " tuples/s"});
  table.AddRow({"live decide rate",
                pdd_bench::Fmt(live_pairs_per_sec / 1e3, 1) + " K pairs/s"});
  table.AddRow(
      {"admit->decide p50",
       pdd_bench::Fmt(static_cast<double>(sink.latency.Quantile(0.5)), 0) +
           " us"});
  table.AddRow({"admit->decide p99", pdd_bench::Fmt(p99_micros, 0) + " us"});
  table.AddRow({"queue high-water",
                std::to_string(queue_stats.high_water) + " / " +
                    std::to_string(queue_stats.capacity)});
  table.AddRow({"finish hit rate",
                pdd_bench::Fmt(finish_cache.HitRate(), 4)});
  table.AddRow({"report identical", report_identical ? "yes" : "NO"});
  std::cout << table.ToString() << "\n";
  std::cout << "latency = successful push to last crossing pair committed "
               "(log-bucket upper bounds); the finish re-run replays the "
               "live drain's decisions from the shared cache.\n";

  pdd_bench::BenchJsonWriter json("s17");
  json.Set("bench", "s17_ingest");
  json.Set("records", static_cast<double>(rel.size()));
  json.Set("live_decisions", static_cast<double>(live->decisions.size()));
  json.Set("batch_seconds", batch_seconds);
  json.Set("drain_seconds", drain_seconds);
  json.Set("sustained_tuples_per_sec", sustained_per_sec);
  json.Set("live_pairs_per_sec", live_pairs_per_sec);
  json.Set("queue_high_water", static_cast<double>(queue_stats.high_water));
  json.Set("queue_capacity", static_cast<double>(queue_stats.capacity));
  json.Set("finish_hit_rate", finish_cache.HitRate());
  json.Set("report_identical", report_identical);
  json.telemetry()
      .metrics.MutableHistogram(kMetricIngestAdmitToDecideMicros)
      ->Merge(sink.latency);
  json.Write();
  return pdd_bench::Verdict(ok);
}
