// S1: comparison function micro-benchmarks — cost per comparison versus
// string length for every registered comparator family. The attribute
// value matching of Eq. 5 invokes these in an O(k*l) inner loop, so
// their constants dominate the pipeline's matching phase.

#include <benchmark/benchmark.h>

#include <string>

#include "sim/registry.h"
#include "util/random.h"

namespace {

std::string RandomWord(pdd::Rng* rng, size_t len) {
  std::string w;
  for (size_t i = 0; i < len; ++i) {
    w += static_cast<char>('a' + rng->Index(26));
  }
  return w;
}

void BM_Comparator(benchmark::State& state, const std::string& name) {
  pdd::Result<const pdd::Comparator*> cmp = pdd::GetComparator(name);
  if (!cmp.ok()) {
    state.SkipWithError("unknown comparator");
    return;
  }
  size_t len = static_cast<size_t>(state.range(0));
  pdd::Rng rng(7);
  // Pre-generate word pairs so RNG cost stays out of the loop.
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 64; ++i) {
    pairs.emplace_back(RandomWord(&rng, len), RandomWord(&rng, len));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 63];
    benchmark::DoNotOptimize((*cmp)->Compare(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Comparator, hamming, "hamming")->Arg(8)->Arg(32);
BENCHMARK_CAPTURE(BM_Comparator, levenshtein, "levenshtein")
    ->Arg(8)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_Comparator, damerau, "damerau")->Arg(8)->Arg(32);
BENCHMARK_CAPTURE(BM_Comparator, jaro, "jaro")->Arg(8)->Arg(32);
BENCHMARK_CAPTURE(BM_Comparator, jaro_winkler, "jaro_winkler")
    ->Arg(8)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_Comparator, qgram2, "qgram2")->Arg(8)->Arg(32);
BENCHMARK_CAPTURE(BM_Comparator, cosine, "cosine")->Arg(8)->Arg(32);
BENCHMARK_CAPTURE(BM_Comparator, soundex, "soundex")->Arg(8)->Arg(32);
BENCHMARK_CAPTURE(BM_Comparator, exact, "exact")->Arg(8)->Arg(32);

BENCHMARK_MAIN();
