// S2: cost of probabilistic attribute value matching (Eq. 5) versus the
// number of alternatives per value (k x l cross product), and cost of
// the full x-tuple comparison matrix versus alternatives per x-tuple.
// Expected shape: bilinear growth in k*l.

#include <benchmark/benchmark.h>

#include "match/attribute_matcher.h"
#include "match/tuple_matcher.h"
#include "pdb/schema.h"
#include "sim/edit_distance.h"
#include "util/random.h"

namespace {

using namespace pdd;

Value RandomValueWithAlternatives(size_t count, Rng* rng) {
  std::vector<Alternative> alts;
  double share = 1.0 / static_cast<double>(count);
  for (size_t i = 0; i < count; ++i) {
    std::string text;
    for (int c = 0; c < 8; ++c) {
      text += static_cast<char>('a' + rng->Index(26));
    }
    alts.push_back({text + std::to_string(i), share, false});
  }
  return Value::Unchecked(std::move(alts));
}

void BM_ExpectedSimilarity(benchmark::State& state) {
  size_t alternatives = static_cast<size_t>(state.range(0));
  Rng rng(11);
  NormalizedHammingComparator hamming;
  Value a = RandomValueWithAlternatives(alternatives, &rng);
  Value b = RandomValueWithAlternatives(alternatives, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectedSimilarity(a, b, hamming));
  }
  state.SetComplexityN(static_cast<int64_t>(alternatives * alternatives));
}
BENCHMARK(BM_ExpectedSimilarity)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Complexity(benchmark::oN);

void BM_XTupleComparisonMatrix(benchmark::State& state) {
  size_t alternatives = static_cast<size_t>(state.range(0));
  Rng rng(13);
  Schema schema = Schema::Strings({"a", "b"});
  NormalizedHammingComparator hamming;
  TupleMatcher matcher =
      *TupleMatcher::Make(schema, {&hamming, &hamming});
  auto make_xtuple = [&](const std::string& id) {
    std::vector<AltTuple> alts;
    double share = 1.0 / static_cast<double>(alternatives);
    for (size_t i = 0; i < alternatives; ++i) {
      alts.push_back({{RandomValueWithAlternatives(2, &rng),
                       RandomValueWithAlternatives(2, &rng)},
                      share});
    }
    return XTuple(id, std::move(alts));
  };
  XTuple t1 = make_xtuple("t1");
  XTuple t2 = make_xtuple("t2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.CompareXTuples(t1, t2));
  }
  state.SetComplexityN(static_cast<int64_t>(alternatives * alternatives));
}
BENCHMARK(BM_XTupleComparisonMatrix)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
