// S3: possible-world operations — full enumeration (exponential), lazy
// top-k (near-linear in k), sampling (linear in n) — plus the world
// selection redundancy experiment behind Section V-A.1: top-probable
// world sets are mutually similar; diversified selection lowers the mean
// pairwise similarity.

#include <benchmark/benchmark.h>

#include <iostream>

#include "pdb/possible_worlds.h"
#include "pdb/world_selection.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using namespace pdd;

XRelation RandomXRelation(size_t tuples, size_t alternatives, uint64_t seed) {
  Rng rng(seed);
  XRelation rel("R", Schema::Strings({"a"}));
  for (size_t i = 0; i < tuples; ++i) {
    std::vector<AltTuple> alts;
    std::vector<double> raw;
    for (size_t a = 0; a < alternatives; ++a) {
      raw.push_back(rng.Uniform(0.2, 1.0));
    }
    double total = 0.0;
    for (double r : raw) total += r;
    for (size_t a = 0; a < alternatives; ++a) {
      std::string text(1, static_cast<char>('a' + rng.Index(26)));
      alts.push_back({{Value::Certain(text)}, raw[a] / total});
    }
    rel.AppendUnchecked(XTuple("t" + std::to_string(i), std::move(alts)));
  }
  return rel;
}

void BM_EnumerateWorlds(benchmark::State& state) {
  XRelation rel = RandomXRelation(static_cast<size_t>(state.range(0)), 3, 5);
  for (auto _ : state) {
    Result<std::vector<World>> worlds = EnumerateWorlds(rel);
    benchmark::DoNotOptimize(worlds);
  }
}
BENCHMARK(BM_EnumerateWorlds)->Arg(4)->Arg(8)->Arg(10);

void BM_TopKWorlds(benchmark::State& state) {
  XRelation rel = RandomXRelation(64, 3, 5);
  size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopKWorlds(rel, k));
  }
}
BENCHMARK(BM_TopKWorlds)->Arg(1)->Arg(8)->Arg(64);

void BM_SampleWorld(benchmark::State& state) {
  XRelation rel = RandomXRelation(static_cast<size_t>(state.range(0)), 3, 5);
  Rng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleWorld(rel, &rng));
  }
}
BENCHMARK(BM_SampleWorld)->Arg(16)->Arg(256);

void BM_DiverseSelection(benchmark::State& state) {
  XRelation rel = RandomXRelation(32, 3, 5);
  WorldSelectionOptions options;
  options.strategy = WorldSelectionStrategy::kDiverse;
  options.count = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectWorlds(rel, options));
  }
}
BENCHMARK(BM_DiverseSelection)->Arg(2)->Arg(8);

void PrintRedundancyTable() {
  XRelation rel = RandomXRelation(24, 3, 5);
  TablePrinter table({"#worlds", "mean pairwise sim (top-probable)",
                      "mean pairwise sim (diverse, lambda=0.8)"});
  for (size_t count : {2u, 4u, 8u, 16u}) {
    WorldSelectionOptions top;
    top.count = count;
    WorldSelectionOptions diverse = top;
    diverse.strategy = WorldSelectionStrategy::kDiverse;
    diverse.lambda = 0.8;
    char a[32], b[32];
    std::snprintf(a, sizeof(a), "%.4f",
                  MeanPairwiseSimilarity(SelectWorlds(rel, top)));
    std::snprintf(b, sizeof(b), "%.4f",
                  MeanPairwiseSimilarity(SelectWorlds(rel, diverse)));
    table.AddRow({std::to_string(count), a, b});
  }
  std::cout << "world selection redundancy (Section V-A.1: top-probable "
               "worlds are mutually similar):\n";
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  PrintRedundancyTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
