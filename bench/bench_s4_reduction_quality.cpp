// S4: search space reduction quality — reduction ratio (RR), pairs
// completeness (PC) and pairs quality (PQ) of every SNM and blocking
// adaptation on synthetic probabilistic person data.
//
// Expected shapes (the paper's qualitative claims):
//  * uncertain-key handling (SNM-4, alternative blocking) reaches higher
//    PC than collapsing to certain keys (SNM-2, certain blocking),
//  * multi-pass over more worlds raises PC monotonically,
//  * every method achieves a large RR over the full cross product.

#include <cstdio>
#include <iostream>
#include <memory>

#include "datagen/person_generator.h"
#include "keys/key_spec.h"
#include "reduction/blocking.h"
#include "reduction/blocking_alternatives.h"
#include "reduction/blocking_clustered.h"
#include "reduction/canopy.h"
#include "reduction/full_pairs.h"
#include "reduction/qgram_index.h"
#include "reduction/snm_adaptive.h"
#include "reduction/snm_certain_keys.h"
#include "reduction/snm_multipass_worlds.h"
#include "reduction/snm_sorting_alternatives.h"
#include "reduction/snm_uncertain_ranking.h"
#include "util/table_printer.h"
#include "verify/metrics.h"

namespace {

using namespace pdd;

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

struct MethodResult {
  std::string name;
  size_t candidates = 0;
  ReductionMetrics metrics;
};

MethodResult Measure(const PairGenerator& method, const GeneratedData& data) {
  MethodResult out;
  out.name = method.name();
  Result<std::vector<CandidatePair>> pairs = method.Generate(data.relation);
  if (!pairs.ok()) {
    out.name += " (error: " + pairs.status().ToString() + ")";
    return out;
  }
  out.candidates = pairs->size();
  std::vector<IdPair> id_pairs;
  id_pairs.reserve(pairs->size());
  for (const CandidatePair& p : *pairs) {
    id_pairs.push_back(MakeIdPair(data.relation.xtuple(p.first).id(),
                                  data.relation.xtuple(p.second).id()));
  }
  size_t n = data.relation.size();
  out.metrics = ComputeReduction(pairs->size(), n * (n - 1) / 2,
                                 data.gold.CountCovered(id_pairs),
                                 data.gold.size());
  return out;
}

}  // namespace

namespace {

// Two uncertainty profiles: the "low" one models mild noise; the "high"
// one corrupts alternatives aggressively so the alternative keys of one
// x-tuple genuinely diverge — the regime where collapsing to a certain
// key actually loses matchings (Section V-A.4's argument).
PersonGenOptions MakeProfile(bool high_uncertainty) {
  PersonGenOptions gen;
  gen.num_entities = 250;
  gen.duplicate_rate = 0.6;
  gen.errors.char_error_rate = high_uncertainty ? 0.12 : 0.04;
  gen.errors.truncate_prob = high_uncertainty ? 0.10 : 0.03;
  gen.uncertainty.value_uncertainty_prob = 0.4;
  gen.uncertainty.xtuple_alternative_prob = high_uncertainty ? 0.6 : 0.35;
  gen.uncertainty.maybe_prob = 0.15;
  return gen;
}

void RunProfile(bool high_uncertainty);

}  // namespace

int main() {
  for (bool high : {false, true}) {
    RunProfile(high);
    std::cout << "\n";
  }
  return 0;
}

namespace {

void RunProfile(bool high_uncertainty) {
  PersonGenOptions gen = MakeProfile(high_uncertainty);
  GeneratedData data = GeneratePersons(gen);
  size_t n = data.relation.size();
  std::cout << "S4 (" << (high_uncertainty ? "HIGH" : "low")
            << " uncertainty profile): reduction quality on " << n
            << " probabilistic person records (" << data.gold.size()
            << " true pairs, " << n * (n - 1) / 2 << " total pairs)\n\n";

  KeySpec key = *KeySpec::FromNames({{"name", 3}, {"job", 2}},
                                    PersonSchema());
  const size_t window = 5;

  std::vector<std::unique_ptr<PairGenerator>> methods;
  methods.push_back(std::make_unique<FullPairs>());
  {
    SnmMultipassOptions o;
    o.window = window;
    o.selection.count = 1;
    methods.push_back(std::make_unique<SnmMultipassWorlds>(key, o));
  }
  {
    SnmMultipassOptions o;
    o.window = window;
    o.selection.count = 5;
    o.selection.strategy = WorldSelectionStrategy::kDiverse;
    methods.push_back(std::make_unique<SnmMultipassWorlds>(key, o));
  }
  {
    SnmCertainKeyOptions o;
    o.window = window;
    methods.push_back(std::make_unique<SnmCertainKeys>(key, o));
  }
  {
    SnmAlternativesOptions o;
    o.window = window;
    methods.push_back(std::make_unique<SnmSortingAlternatives>(key, o));
  }
  {
    SnmRankingOptions o;
    o.window = window;
    methods.push_back(std::make_unique<SnmUncertainRanking>(key, o));
  }
  methods.push_back(std::make_unique<BlockingCertainKeys>(key));
  methods.push_back(std::make_unique<BlockingAlternatives>(key));
  {
    ClusteredBlockingOptions o;
    o.leader_threshold = 0.6;
    methods.push_back(std::make_unique<BlockingClustered>(key, o));
  }
  methods.push_back(std::make_unique<CanopyReduction>(key, CanopyOptions{}));
  {
    SnmAdaptiveOptions o;
    o.max_window = window;
    methods.push_back(std::make_unique<SnmAdaptive>(key, o));
  }
  methods.push_back(
      std::make_unique<QGramIndexReduction>(key, QGramIndexOptions{}));

  TablePrinter table({"method", "candidates", "RR", "PC", "PQ"});
  double certain_pc = 0.0, alternatives_pc = 0.0;
  for (const auto& method : methods) {
    MethodResult r = Measure(*method, data);
    table.AddRow({r.name, std::to_string(r.candidates),
                  Fmt(r.metrics.reduction_ratio),
                  Fmt(r.metrics.pairs_completeness),
                  Fmt(r.metrics.pairs_quality)});
    if (r.name == "snm_certain_keys") certain_pc =
        r.metrics.pairs_completeness;
    if (r.name == "snm_sorting_alternatives") {
      alternatives_pc = r.metrics.pairs_completeness;
    }
  }
  table.Print(std::cout);
  std::cout << "\nshape check (Section V-A.4: handling uncertain keys "
            << "beats collapsing): sorting-alternatives PC "
            << Fmt(alternatives_pc) << " >= certain-keys PC "
            << Fmt(certain_pc) << " -> "
            << (alternatives_pc >= certain_pc ? "holds" : "VIOLATED")
            << "\n";

  // Multi-pass monotonicity in the number of worlds.
  std::cout << "\nmulti-pass PC versus number of worlds (expected: "
            << "non-decreasing):\n";
  TablePrinter sweep({"#worlds", "candidates", "PC"});
  for (size_t count : {1u, 2u, 4u, 8u}) {
    SnmMultipassOptions o;
    o.window = window;
    o.selection.count = count;
    o.selection.strategy = WorldSelectionStrategy::kDiverse;
    SnmMultipassWorlds method(key, o);
    MethodResult r = Measure(method, data);
    sweep.AddRow({std::to_string(count), std::to_string(r.candidates),
                  Fmt(r.metrics.pairs_completeness)});
  }
  sweep.Print(std::cout);
}

}  // namespace
