// S5: end-to-end effectiveness ablation of the Section IV-B design
// choices — similarity-based (Eq. 6) versus decision-based (Eq. 7-9)
// versus expected-matching derivation — across rising error and
// uncertainty rates on synthetic person data.
//
// Expected shapes: all derivations degrade as error rates rise; the
// expected-similarity derivation tracks the decision-based ones closely
// under normalized φ (the paper argues similarity-based suits normalized
// combination functions).

#include <cstdio>
#include <iostream>

#include "core/detector.h"
#include "datagen/person_generator.h"
#include "util/table_printer.h"

namespace {

using namespace pdd;

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

EffectivenessMetrics RunConfig(DerivationKind derivation,
                               const GeneratedData& data) {
  DetectorConfig config;
  config.key = {{"name", 3}, {"city", 2}};
  config.comparators = {"jaro_winkler", "hamming", "hamming"};
  config.weights = {0.5, 0.25, 0.25};
  config.derivation = derivation;
  switch (derivation) {
    case DerivationKind::kMatchingWeight:
      config.intermediate = {0.7, 0.85};
      config.final_thresholds = {0.8, 1.5};
      break;
    case DerivationKind::kExpectedMatching:
      config.intermediate = {0.7, 0.85};
      config.final_thresholds = {0.35, 0.6};
      break;
    default:
      config.final_thresholds = {0.72, 0.85};
      break;
  }
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  Result<DetectionResult> result = detector->Run(data.relation);
  return Evaluate(*result, data.gold, /*count_possible_as_match=*/false);
}

}  // namespace

int main() {
  std::cout << "S5: derivation-function ablation under rising error / "
               "uncertainty rates\n\n";
  TablePrinter table({"error rate", "uncertainty", "derivation",
                      "precision", "recall", "F1"});
  const std::vector<std::pair<DerivationKind, const char*>> derivations = {
      {DerivationKind::kExpectedSimilarity, "expected similarity (Eq. 6)"},
      {DerivationKind::kMatchingWeight, "matching weight (Eq. 7-9)"},
      {DerivationKind::kExpectedMatching, "expected matching E[eta]"},
      {DerivationKind::kModeSimilarity, "mode similarity (baseline)"},
  };
  for (double error_rate : {0.01, 0.05, 0.10}) {
    for (double uncertainty : {0.2, 0.5}) {
      PersonGenOptions gen;
      gen.num_entities = 120;
      gen.duplicate_rate = 0.6;
      gen.errors.char_error_rate = error_rate;
      gen.uncertainty.value_uncertainty_prob = uncertainty;
      gen.uncertainty.xtuple_alternative_prob = uncertainty / 2;
      gen.seed = 42;
      GeneratedData data = GeneratePersons(gen);
      for (const auto& [kind, label] : derivations) {
        EffectivenessMetrics m = RunConfig(kind, data);
        table.AddRow({Fmt(error_rate), Fmt(uncertainty), label,
                      Fmt(m.precision), Fmt(m.recall), Fmt(m.f1)});
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nreading: rows with higher error/uncertainty should show "
               "lower F1 within each derivation; Eq. 6 and Eq. 7-9 should "
               "be close, the single-world mode baseline weakest under "
               "high uncertainty.\n";
  return 0;
}
