// S6: end-to-end pipeline throughput per reduction method (records per
// second, candidate pairs per second) and EM estimation cost. Measures
// the claim behind Section V: reduction methods make detection feasible
// as data grows.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "core/detector.h"
#include "datagen/person_generator.h"
#include "decision/em_estimator.h"
#include "match/tuple_matcher.h"
#include "sim/registry.h"

namespace {

using namespace pdd;

GeneratedData MakeData(size_t entities) {
  PersonGenOptions gen;
  gen.num_entities = entities;
  gen.duplicate_rate = 0.5;
  gen.uncertainty.value_uncertainty_prob = 0.3;
  gen.uncertainty.xtuple_alternative_prob = 0.25;
  return GeneratePersons(gen);
}

void BM_EndToEnd(benchmark::State& state, ReductionMethod method) {
  GeneratedData data = MakeData(static_cast<size_t>(state.range(0)));
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.25, 0.25};
  config.reduction = method;
  config.window = 5;
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  size_t candidates = 0;
  for (auto _ : state) {
    Result<DetectionResult> result = detector->Run(data.relation);
    candidates = result->candidate_count;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.relation.size()));
  state.counters["records"] =
      static_cast<double>(data.relation.size());
  state.counters["candidates"] = static_cast<double>(candidates);
}

BENCHMARK_CAPTURE(BM_EndToEnd, full, ReductionMethod::kFull)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EndToEnd, snm_certain, ReductionMethod::kSnmCertainKeys)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EndToEnd, snm_alternatives,
                  ReductionMethod::kSnmSortingAlternatives)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EndToEnd, snm_ranking,
                  ReductionMethod::kSnmUncertainRanking)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EndToEnd, blocking_alternatives,
                  ReductionMethod::kBlockingAlternatives)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_EmEstimation(benchmark::State& state) {
  GeneratedData data = MakeData(60);
  Schema schema = PersonSchema();
  std::vector<const Comparator*> comparators = {
      *GetComparator("jaro_winkler"), *GetComparator("hamming"),
      *GetComparator("hamming")};
  TupleMatcher matcher = *TupleMatcher::Make(schema, comparators);
  std::vector<ComparisonVector> vectors;
  for (size_t i = 0; i < data.relation.size(); ++i) {
    for (size_t j = i + 1; j < data.relation.size(); ++j) {
      vectors.push_back(matcher.CompareAlternatives(
          data.relation.xtuple(i).alternative(0),
          data.relation.xtuple(j).alternative(0)));
    }
  }
  for (auto _ : state) {
    Result<EmEstimate> est = EstimateWithEm(vectors);
    benchmark::DoNotOptimize(est);
  }
  state.counters["pairs"] = static_cast<double>(vectors.size());
}
BENCHMARK(BM_EmEstimation)->Unit(benchmark::kMillisecond);

/// Direct (non-google-benchmark) end-to-end measurement of the default
/// SNM pipeline for the BENCH_s6.json sidecar: one warmup plus one
/// timed run, records/sec and candidate pairs/sec.
void WriteJsonSidecar() {
  GeneratedData data = MakeData(400);
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.5, 0.25, 0.25};
  config.reduction = ReductionMethod::kSnmCertainKeys;
  config.window = 5;
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PersonSchema());
  if (!detector.ok()) return;
  Result<DetectionResult> warmup = detector->Run(data.relation);
  if (!warmup.ok()) return;
  using BenchClock = std::chrono::steady_clock;
  BenchClock::time_point start = BenchClock::now();
  Result<DetectionResult> result = detector->Run(data.relation);
  double seconds =
      std::chrono::duration<double>(BenchClock::now() - start).count();
  if (!result.ok() || seconds <= 0) return;

  pdd_bench::BenchJsonWriter json("s6");
  json.Set("bench", "s6_end_to_end_snm_certain");
  json.Set("records", static_cast<double>(data.relation.size()));
  json.Set("candidate_pairs", static_cast<double>(result->candidate_count));
  json.Set("records_per_sec",
           static_cast<double>(data.relation.size()) / seconds);
  json.Set("pairs_per_sec",
           static_cast<double>(result->candidate_count) / seconds);
  json.Set("seconds", seconds);
  json.Write();
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  WriteJsonSidecar();
  return 0;
}
