// S7: the ranking complexity claim of Section V-A.4 — "a probabilistic
// relation can be ranked with a complexity of O(n log n)" — versus the
// exact expected rank, which needs all O(n²) pairwise order
// probabilities. Also reports the rank agreement of the two methods so
// the speedup is shown not to cost ordering quality.

#include <benchmark/benchmark.h>

#include <iostream>

#include "keys/key_builder.h"
#include "ranking/expected_rank.h"
#include "ranking/positional_rank.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using namespace pdd;

std::vector<KeyDistribution> RandomKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<KeyDistribution> keys(n);
  for (size_t i = 0; i < n; ++i) {
    size_t alts = 1 + rng.Index(3);
    double remaining = 1.0;
    for (size_t a = 0; a < alts; ++a) {
      double p = a + 1 == alts ? remaining : remaining * rng.Uniform(0.3, 0.7);
      std::string key;
      for (int c = 0; c < 5; ++c) {
        key += static_cast<char>('a' + rng.Index(8));
      }
      keys[i].entries.emplace_back(key, p);
      remaining -= p;
    }
  }
  return keys;
}

void BM_ExpectedRank(benchmark::State& state) {
  std::vector<KeyDistribution> keys =
      RandomKeys(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RankByExpectedRank(keys));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExpectedRank)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Complexity(benchmark::oNSquared);

void BM_PositionalRank(benchmark::State& state) {
  std::vector<KeyDistribution> keys =
      RandomKeys(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RankByPositionalScore(keys));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PositionalRank)->Arg(32)->Arg(256)->Arg(2048)->Arg(16384)
    ->Complexity(benchmark::oNLogN);

void PrintAgreementTable() {
  TablePrinter table({"n", "Kendall-tau agreement (exact vs O(n log n))"});
  for (size_t n : {16u, 64u, 256u}) {
    std::vector<KeyDistribution> keys = RandomKeys(n, 11);
    double agreement = KendallTauAgreement(RankByExpectedRank(keys),
                                           RankByPositionalScore(keys));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", agreement);
    table.AddRow({std::to_string(n), buf});
  }
  std::cout << "ordering agreement of the O(n log n) approximation with "
               "the exact expected rank:\n";
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  PrintAgreementTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
