// S8: ablation of the base comparison function inside Eq. 5 (design
// decision 4 in DESIGN.md): end-to-end effectiveness of the pipeline on
// dirty probabilistic person data per comparator family, including the
// corpus-trained SoftTFIDF on full names.
//
// Expected shapes: edit-family comparators (Levenshtein, Damerau,
// Jaro-Winkler) dominate positional Hamming once insertions/deletions
// appear; SoftTFIDF leads on multi-token names; exact equality collapses
// recall under any error.

#include <cstdio>
#include <iostream>

#include "core/detector.h"
#include "core/threshold_tuner.h"
#include "datagen/person_generator.h"
#include "sim/jaro.h"
#include "sim/tfidf.h"
#include "util/table_printer.h"

namespace {

using namespace pdd;

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

int main() {
  PersonGenOptions gen;
  gen.num_entities = 150;
  gen.duplicate_rate = 0.6;
  gen.errors.char_error_rate = 0.06;
  gen.uncertainty.value_uncertainty_prob = 0.35;
  gen.full_names = true;
  GeneratedData data = GeneratePersons(gen);
  std::cout << "S8: base comparator ablation on " << data.relation.size()
            << " records (" << data.gold.size() << " true pairs), error "
            << "rate 0.06, full names\n\n";

  // Train the IDF table on the observed name field (most probable texts).
  std::vector<std::string> corpus;
  for (const XTuple& t : data.relation.xtuples()) {
    corpus.push_back(t.alternative(0).values[0].MostProbableText());
  }
  IdfTable idf = IdfTable::Train(corpus);
  JaroWinklerComparator jw;
  SoftTfIdfComparator soft_tfidf(&idf, &jw, 0.88);
  TfIdfComparator tfidf(&idf);

  TablePrinter table({"name comparator", "precision", "recall", "F1",
                      "tuned F1"});
  struct Variant {
    std::string label;
    std::string registry_name;       // empty -> custom
    const Comparator* custom = nullptr;
  };
  std::vector<Variant> variants = {
      {"exact", "exact", nullptr},
      {"hamming (paper's choice)", "hamming", nullptr},
      {"levenshtein", "levenshtein", nullptr},
      {"damerau", "damerau", nullptr},
      {"jaro_winkler", "jaro_winkler", nullptr},
      {"qgram2", "qgram2", nullptr},
      {"monge_elkan", "monge_elkan", nullptr},
      {"tfidf (trained)", "", &tfidf},
      {"soft_tfidf (trained)", "", &soft_tfidf},
  };
  for (const Variant& variant : variants) {
    DetectorConfig config;
    config.key = {{"name", 3}, {"city", 2}};
    config.weights = {0.5, 0.25, 0.25};
    config.final_thresholds = {0.7, 0.82};
    if (variant.custom != nullptr) {
      config.custom_comparators = {variant.custom, nullptr, nullptr};
    } else {
      config.comparators = {variant.registry_name, "hamming", "hamming"};
    }
    Result<DuplicateDetector> detector =
        DuplicateDetector::Make(config, PersonSchema());
    if (!detector.ok()) {
      std::cout << variant.label << ": " << detector.status().ToString()
                << "\n";
      continue;
    }
    Result<DetectionResult> result = detector->Run(data.relation);
    EffectivenessMetrics fixed = Evaluate(*result, data.gold);
    TuneResult tuned = TuneThresholds(*result, data.gold);
    table.AddRow({variant.label, Fmt(fixed.precision), Fmt(fixed.recall),
                  Fmt(fixed.f1), Fmt(tuned.best_metrics.f1)});
  }
  table.Print(std::cout);
  std::cout << "\nreading: the 'tuned F1' column removes threshold choice "
               "from the comparison (Section III-E's feedback loop); "
               "edit-family comparators should dominate hamming, and the "
               "trained soft_tfidf should lead on full names.\n";
  return 0;
}
