// S9: parameter sensitivity of the reduction methods — the trade-off
// curves a deployment has to navigate:
//   * SNM window size w: pairs completeness rises, reduction ratio falls
//   * canopy loose threshold: same trade-off with overlapping blocks
//   * adaptive SNM key-similarity threshold: inverse direction (higher
//     threshold = narrower windows)
//
// Every sweep point is a generated PlanSpec compiled through
// DetectionPlan (the same declarative path `pddcli --plan` uses), so
// each row carries the plan fingerprint that identifies it — the key a
// result cache or a sweep coordinator would use to dedupe work.
//
// Expected shapes: PC monotonically non-decreasing in w and in canopy
// looseness; candidates monotonically growing; adaptive SNM reaches
// comparable PC with fewer candidates in clustered key regions.

#include <cstdio>
#include <iostream>
#include <memory>

#include "cache/decision_cache.h"
#include "datagen/person_generator.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/detection_plan.h"
#include "pipeline/stage_executor.h"
#include "plan/plan_builder.h"
#include "util/table_printer.h"
#include "verify/metrics.h"

namespace {

using namespace pdd;

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

PlanBuilder BasePlan() {
  PlanBuilder builder;
  // Empty weights = uniform over the person schema's attributes.
  builder.AddKey("name", 3).AddKey("job", 2).Weights({});
  return builder;
}

/// Compiles the spec, generates its candidate pairs and measures
/// reduction quality. Returns the plan fingerprint through `*fp`.
ReductionMetrics Measure(const PlanSpec& spec, const GeneratedData& data,
                         size_t* candidates, std::string* fp) {
  Result<std::shared_ptr<const DetectionPlan>> plan =
      DetectionPlan::Compile(spec, PersonSchema());
  if (!plan.ok()) {
    std::cerr << "plan compile failed: " << plan.status().ToString() << "\n";
    std::exit(1);
  }
  *fp = FingerprintHex((*plan)->fingerprint());
  Result<std::vector<CandidatePair>> pairs =
      (*plan)->MakePairGenerator()->Generate(data.relation);
  if (!pairs.ok()) {
    std::cerr << "generate failed: " << pairs.status().ToString() << "\n";
    std::exit(1);
  }
  std::vector<IdPair> id_pairs;
  for (const CandidatePair& p : *pairs) {
    id_pairs.push_back(MakeIdPair(data.relation.xtuple(p.first).id(),
                                  data.relation.xtuple(p.second).id()));
  }
  *candidates = pairs->size();
  size_t n = data.relation.size();
  return ComputeReduction(pairs->size(), n * (n - 1) / 2,
                          data.gold.CountCovered(id_pairs),
                          data.gold.size());
}

}  // namespace

int main() {
  PersonGenOptions gen;
  gen.num_entities = 200;
  gen.duplicate_rate = 0.6;
  gen.errors.char_error_rate = 0.05;
  gen.uncertainty.value_uncertainty_prob = 0.4;
  gen.uncertainty.xtuple_alternative_prob = 0.3;
  GeneratedData data = GeneratePersons(gen);
  std::cout << "S9: parameter sweeps on " << data.relation.size()
            << " records (" << data.gold.size()
            << " true pairs), spec-driven\n\n";

  std::cout << "SNM (sorting alternatives) window sweep:\n";
  TablePrinter window_sweep({"window", "candidates", "RR", "PC", "plan"});
  for (size_t w : {2u, 3u, 5u, 8u, 12u, 20u}) {
    PlanSpec spec = BasePlan()
                        .Reduction("snm_sorting_alternatives")
                        .Set("reduction.window", w)
                        .Build();
    size_t candidates = 0;
    std::string fp;
    ReductionMetrics m = Measure(spec, data, &candidates, &fp);
    window_sweep.AddRow({std::to_string(w), std::to_string(candidates),
                         Fmt(m.reduction_ratio), Fmt(m.pairs_completeness),
                         fp.substr(0, 8)});
  }
  window_sweep.Print(std::cout);

  std::cout << "\ncanopy loose-threshold sweep (tight = loose/2):\n";
  TablePrinter canopy_sweep({"loose", "candidates", "RR", "PC", "plan"});
  for (double loose : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    PlanSpec spec = BasePlan()
                        .Reduction("canopy")
                        .Set("reduction.loose", loose)
                        .Set("reduction.tight", loose / 2)
                        .Build();
    size_t candidates = 0;
    std::string fp;
    ReductionMetrics m = Measure(spec, data, &candidates, &fp);
    canopy_sweep.AddRow({Fmt(loose), std::to_string(candidates),
                         Fmt(m.reduction_ratio), Fmt(m.pairs_completeness),
                         fp.substr(0, 8)});
  }
  canopy_sweep.Print(std::cout);

  std::cout << "\nadaptive SNM key-similarity threshold sweep:\n";
  TablePrinter adaptive_sweep({"threshold", "candidates", "RR", "PC", "plan"});
  for (double threshold : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    PlanSpec spec = BasePlan()
                        .Reduction("snm_adaptive")
                        .Set("reduction.key_similarity", threshold)
                        .Set("reduction.max_window", size_t{12})
                        .Build();
    size_t candidates = 0;
    std::string fp;
    ReductionMetrics m = Measure(spec, data, &candidates, &fp);
    adaptive_sweep.AddRow({Fmt(threshold), std::to_string(candidates),
                           Fmt(m.reduction_ratio),
                           Fmt(m.pairs_completeness), fp.substr(0, 8)});
  }
  adaptive_sweep.Print(std::cout);

  // Full sweep runs (decide stage included) through ONE shared decision
  // cache: the sweep points differ only in reduction parameters, so
  // they share a decision fingerprint and every pair a previous point
  // already decided is a hit — the cross-plan reuse that makes φ/ϑ/
  // reduction sweeps affordable.
  std::cout << "\nwindow sweep re-run with decisions through a shared "
               "cache (cross-plan reuse):\n";
  auto cache = std::make_shared<ShardedDecisionCache>();
  TablePrinter cached_sweep(
      {"window", "pairs", "hits", "hit rate", "decision plan"});
  for (size_t w : {2u, 3u, 5u, 8u, 12u, 20u}) {
    PlanSpec spec = BasePlan()
                        .Reduction("snm_sorting_alternatives")
                        .Set("reduction.window", w)
                        .Build();
    Result<std::shared_ptr<const DetectionPlan>> plan =
        DetectionPlan::Compile(spec, PersonSchema());
    if (!plan.ok()) {
      std::cerr << "plan compile failed: " << plan.status().ToString()
                << "\n";
      return 1;
    }
    Result<std::unique_ptr<CandidateStream>> stream =
        MakeFullStream(**plan, data.relation);
    if (!stream.ok()) {
      std::cerr << "stream failed: " << stream.status().ToString() << "\n";
      return 1;
    }
    StageExecutorOptions options;
    options.cache = cache;
    Result<DetectionResult> result =
        StageExecutor(*plan, options).Execute(**stream);
    if (!result.ok()) {
      std::cerr << "execute failed: " << result.status().ToString() << "\n";
      return 1;
    }
    const CacheRunStats& stats = *result->cache_stats;
    cached_sweep.AddRow(
        {std::to_string(w), std::to_string(stats.lookups),
         std::to_string(stats.hits), Fmt(stats.HitRate()),
         FingerprintHex((*plan)->decision_fingerprint()).substr(0, 8)});
  }
  cached_sweep.Print(std::cout);
  std::cout << "shared cache after the sweep: " << cache->Stats().ToString()
            << "\n";

  std::cout << "\nreading: PC should rise with window size and canopy "
               "looseness and fall with the adaptive threshold; RR moves "
               "inversely in each sweep. The plan column is the spec "
               "fingerprint prefix identifying each sweep point. In the "
               "cached re-run every point shares one decision fingerprint "
               "(reduction changes never alter per-pair decisions), so "
               "wider windows only pay for their newly examined pairs.\n";
  return 0;
}
