// S9: parameter sensitivity of the reduction methods — the trade-off
// curves a deployment has to navigate:
//   * SNM window size w: pairs completeness rises, reduction ratio falls
//   * canopy loose threshold: same trade-off with overlapping blocks
//   * adaptive SNM key-similarity threshold: inverse direction (higher
//     threshold = narrower windows)
//
// Expected shapes: PC monotonically non-decreasing in w and in canopy
// looseness; candidates monotonically growing; adaptive SNM reaches
// comparable PC with fewer candidates in clustered key regions.

#include <cstdio>
#include <iostream>

#include "datagen/person_generator.h"
#include "keys/key_spec.h"
#include "reduction/canopy.h"
#include "reduction/snm_adaptive.h"
#include "reduction/snm_sorting_alternatives.h"
#include "util/table_printer.h"
#include "verify/metrics.h"

namespace {

using namespace pdd;

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

ReductionMetrics Measure(const PairGenerator& method,
                         const GeneratedData& data, size_t* candidates) {
  Result<std::vector<CandidatePair>> pairs = method.Generate(data.relation);
  std::vector<IdPair> id_pairs;
  for (const CandidatePair& p : *pairs) {
    id_pairs.push_back(MakeIdPair(data.relation.xtuple(p.first).id(),
                                  data.relation.xtuple(p.second).id()));
  }
  *candidates = pairs->size();
  size_t n = data.relation.size();
  return ComputeReduction(pairs->size(), n * (n - 1) / 2,
                          data.gold.CountCovered(id_pairs),
                          data.gold.size());
}

}  // namespace

int main() {
  PersonGenOptions gen;
  gen.num_entities = 200;
  gen.duplicate_rate = 0.6;
  gen.errors.char_error_rate = 0.05;
  gen.uncertainty.value_uncertainty_prob = 0.4;
  gen.uncertainty.xtuple_alternative_prob = 0.3;
  GeneratedData data = GeneratePersons(gen);
  KeySpec key = *KeySpec::FromNames({{"name", 3}, {"job", 2}},
                                    PersonSchema());
  std::cout << "S9: parameter sweeps on " << data.relation.size()
            << " records (" << data.gold.size() << " true pairs)\n\n";

  std::cout << "SNM (sorting alternatives) window sweep:\n";
  TablePrinter window_sweep({"window", "candidates", "RR", "PC"});
  for (size_t w : {2u, 3u, 5u, 8u, 12u, 20u}) {
    SnmAlternativesOptions options;
    options.window = w;
    SnmSortingAlternatives snm(key, options);
    size_t candidates = 0;
    ReductionMetrics m = Measure(snm, data, &candidates);
    window_sweep.AddRow({std::to_string(w), std::to_string(candidates),
                         Fmt(m.reduction_ratio), Fmt(m.pairs_completeness)});
  }
  window_sweep.Print(std::cout);

  std::cout << "\ncanopy loose-threshold sweep (tight = loose/2):\n";
  TablePrinter canopy_sweep({"loose", "candidates", "RR", "PC"});
  for (double loose : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    CanopyOptions options;
    options.loose = loose;
    options.tight = loose / 2;
    CanopyReduction canopy(key, options);
    size_t candidates = 0;
    ReductionMetrics m = Measure(canopy, data, &candidates);
    canopy_sweep.AddRow({Fmt(loose), std::to_string(candidates),
                         Fmt(m.reduction_ratio), Fmt(m.pairs_completeness)});
  }
  canopy_sweep.Print(std::cout);

  std::cout << "\nadaptive SNM key-similarity threshold sweep:\n";
  TablePrinter adaptive_sweep({"threshold", "candidates", "RR", "PC"});
  for (double threshold : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    SnmAdaptiveOptions options;
    options.key_similarity_threshold = threshold;
    options.max_window = 12;
    SnmAdaptive snm(key, options);
    size_t candidates = 0;
    ReductionMetrics m = Measure(snm, data, &candidates);
    adaptive_sweep.AddRow({Fmt(threshold), std::to_string(candidates),
                           Fmt(m.reduction_ratio),
                           Fmt(m.pairs_completeness)});
  }
  adaptive_sweep.Print(std::cout);
  std::cout << "\nreading: PC should rise with window size and canopy "
               "looseness and fall with the adaptive threshold; RR moves "
               "inversely in each sweep.\n";
  return 0;
}
