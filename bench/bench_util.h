// Shared helpers for the figure-reproduction benchmark binaries.

#ifndef PDD_BENCH_BENCH_UTIL_H_
#define PDD_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace pdd_bench {

/// Fixed-precision formatting for table cells.
inline std::string Fmt(double v, int digits = 4) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// Section banner naming the reproduced figure and the paper's claim.
inline void Banner(const std::string& experiment, const std::string& claim) {
  std::cout << "==================================================\n"
            << experiment << "\n"
            << "paper: " << claim << "\n"
            << "==================================================\n";
}

/// PASS/FAIL trailer so `for b in build/bench/*` output is scannable.
inline int Verdict(bool ok) {
  std::cout << (ok ? "[REPRODUCED]" : "[MISMATCH]") << "\n\n";
  return ok ? 0 : 1;
}

/// Machine-readable metrics sidecar for a bench run: a flat JSON
/// object written to `BENCH_<name>.json` in the working directory, so
/// CI can archive throughput numbers next to the human-readable table
/// output. Keys keep insertion order; values are numbers or strings.
///
///   BenchJsonWriter json("fig03");
///   json.Set("scalar_pairs_per_sec", scalar_rate);
///   json.Set("kernel", "columnar");
///   json.Write();   // -> BENCH_fig03.json
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string name) : name_(std::move(name)) {}

  void Set(const std::string& key, double value) {
    char buf[64];
    if (std::isfinite(value)) {
      std::snprintf(buf, sizeof(buf), "%.10g", value);
    } else {
      // JSON has no inf/nan literal; null keeps the file parseable.
      std::snprintf(buf, sizeof(buf), "null");
    }
    fields_.emplace_back(key, buf);
  }

  void Set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, Quote(value));
  }
  void Set(const std::string& key, const char* value) {
    Set(key, std::string(value));
  }
  void Set(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }

  /// Writes `BENCH_<name>.json` and echoes the path; returns false
  /// (without aborting the bench) if the file can't be opened.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cout << "(could not write " << path << ")\n";
      return false;
    }
    out << "{\n";
    for (size_t i = 0; i < fields_.size(); ++i) {
      out << "  " << Quote(fields_[i].first) << ": " << fields_[i].second
          << (i + 1 < fields_.size() ? "," : "") << "\n";
    }
    out << "}\n";
    std::cout << "metrics: " << path << "\n";
    return true;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out + "\"";
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace pdd_bench

#endif  // PDD_BENCH_BENCH_UTIL_H_
