// Shared helpers for the figure-reproduction benchmark binaries.

#ifndef PDD_BENCH_BENCH_UTIL_H_
#define PDD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>

#include "obs/export.h"
#include "obs/run_telemetry.h"

namespace pdd_bench {

/// Fixed-precision formatting for table cells.
inline std::string Fmt(double v, int digits = 4) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// Section banner naming the reproduced figure and the paper's claim.
inline void Banner(const std::string& experiment, const std::string& claim) {
  std::cout << "==================================================\n"
            << experiment << "\n"
            << "paper: " << claim << "\n"
            << "==================================================\n";
}

/// PASS/FAIL trailer so `for b in build/bench/*` output is scannable.
inline int Verdict(bool ok) {
  std::cout << (ok ? "[REPRODUCED]" : "[MISMATCH]") << "\n\n";
  return ok ? 0 : 1;
}

/// Machine-readable metrics sidecar for a bench run, written to
/// `BENCH_<name>.json` in the working directory so CI can archive
/// numbers next to the human-readable table output. The sidecar is a
/// pdd.telemetry.v1 document (the same schema `pddcli --metrics`
/// writes): Set() with a double lands in the telemetry's gauges,
/// strings and bools land in its info section, and export iterates in
/// sorted key order. tools/bench_compare.py flattens both sections
/// back into the flat key space the regression gate classifies on.
///
///   BenchJsonWriter json("fig03");
///   json.Set("scalar_pairs_per_sec", scalar_rate);
///   json.Set("kernel", "columnar");
///   json.Write();   // -> BENCH_fig03.json
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string name) : name_(std::move(name)) {
    telemetry_.root.name = "bench." + name_;
  }

  void Set(const std::string& key, double value) {
    telemetry_.metrics.SetGauge(key, value);
  }
  void Set(const std::string& key, const std::string& value) {
    telemetry_.metrics.SetInfo(key, value);
  }
  void Set(const std::string& key, const char* value) {
    Set(key, std::string(value));
  }
  void Set(const std::string& key, bool value) {
    telemetry_.metrics.SetInfo(key, value ? "true" : "false");
  }

  /// The underlying telemetry, for benches that fold in a run's full
  /// registry (histograms, counters) rather than scalar summaries.
  pdd::RunTelemetry& telemetry() { return telemetry_; }

  /// Writes `BENCH_<name>.json` and echoes the path; returns false
  /// (without aborting the bench) if the file can't be opened.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cout << "(could not write " << path << ")\n";
      return false;
    }
    out << pdd::TelemetryToJson(telemetry_);
    std::cout << "metrics: " << path << "\n";
    return true;
  }

 private:
  std::string name_;
  pdd::RunTelemetry telemetry_;
};

}  // namespace pdd_bench

#endif  // PDD_BENCH_BENCH_UTIL_H_
