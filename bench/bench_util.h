// Shared helpers for the figure-reproduction benchmark binaries.

#ifndef PDD_BENCH_BENCH_UTIL_H_
#define PDD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <string>

namespace pdd_bench {

/// Fixed-precision formatting for table cells.
inline std::string Fmt(double v, int digits = 4) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// Section banner naming the reproduced figure and the paper's claim.
inline void Banner(const std::string& experiment, const std::string& claim) {
  std::cout << "==================================================\n"
            << experiment << "\n"
            << "paper: " << claim << "\n"
            << "==================================================\n";
}

/// PASS/FAIL trailer so `for b in build/bench/*` output is scannable.
inline int Verdict(bool ok) {
  std::cout << (ok ? "[REPRODUCED]" : "[MISMATCH]") << "\n\n";
  return ok ? 0 : 1;
}

}  // namespace pdd_bench

#endif  // PDD_BENCH_BENCH_UTIL_H_
