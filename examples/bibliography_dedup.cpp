// Citation deduplication: the classic record-linkage domain with the
// noise patterns real indexes produce — author initials, venue
// abbreviations, dropped title words, off-by-one years — and
// probabilistic fields where both the clean and the corrupted reading
// survive as alternatives.
//
// Demonstrates the pieces a realistic deployment combines: a trained
// SoftTFIDF comparator for titles, a synonym comparator for venues, a
// numeric comparator for years, adaptive-window SNM reduction, relation
// profiling statistics and the Markdown report.

#include <iostream>

#include "core/detector.h"
#include "core/report_writer.h"
#include "datagen/bibliography_generator.h"
#include "pdb/statistics.h"
#include "sim/jaro.h"
#include "sim/phonetic.h"
#include "sim/tfidf.h"

int main() {
  using namespace pdd;

  // 1. A noisy citation corpus with exact ground truth.
  BiblioGenOptions gen;
  gen.num_publications = 200;
  gen.duplicate_rate = 0.8;
  GeneratedData data = GenerateBibliography(gen);
  std::cout << "citation corpus profile:\n"
            << ComputeStatistics(data.relation).ToString() << "\n";

  // 2. Domain comparators: SoftTFIDF over titles (trained on the
  //    corpus), synonyms for venue abbreviations, Jaro-Winkler for
  //    authors (initials keep the prefix), linear decay for years.
  std::vector<std::string> title_corpus;
  for (const XTuple& t : data.relation.xtuples()) {
    title_corpus.push_back(t.alternative(0).values[1].MostProbableText());
  }
  IdfTable idf = IdfTable::Train(title_corpus);
  JaroWinklerComparator jaro_winkler;
  SoftTfIdfComparator title_cmp(&idf, &jaro_winkler, 0.88);
  SynonymComparator venue_cmp(VenueSynonyms(), &jaro_winkler, 0.95);

  DetectorConfig config;
  config.key = {{"author", 4}, {"year", 4}};
  config.reduction = ReductionMethod::kSnmAdaptive;
  config.adaptive.key_similarity_threshold = 0.5;
  config.adaptive.max_window = 12;
  config.comparators = {"jaro_winkler", "hamming", "hamming", "numeric"};
  config.custom_comparators = {nullptr, &title_cmp, &venue_cmp, nullptr};
  config.weights = {0.3, 0.4, 0.2, 0.1};
  config.final_thresholds = {0.7, 0.85};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, BibliographySchema());
  if (!detector.ok()) {
    std::cerr << "config error: " << detector.status().ToString() << "\n";
    return 1;
  }

  // 3. Run and report.
  Result<DetectionResult> result = detector->Run(data.relation);
  if (!result.ok()) {
    std::cerr << "run error: " << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << DetectionReport(*result, &data.gold, /*max_review_rows=*/5)
            << "\n";
  return 0;
}
