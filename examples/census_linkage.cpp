// Census-style record linkage on probabilistic person data with an
// unsupervised Fellegi-Sunter model: EM estimates the m/u probabilities
// from unlabeled comparison vectors (Winkler [26]), thresholds are
// derived from tolerated error rates, and the decision-based derivation
// (Section IV-B) classifies the x-tuple pairs.

#include <cstdio>
#include <iostream>

#include "core/detector.h"
#include "datagen/person_generator.h"
#include "decision/em_estimator.h"
#include "match/tuple_matcher.h"
#include "reduction/full_pairs.h"
#include "sim/registry.h"
#include "util/table_printer.h"

namespace {

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

int main() {
  using namespace pdd;

  // 1. A dirty probabilistic person dataset with exact ground truth.
  PersonGenOptions gen;
  gen.num_entities = 150;
  gen.duplicate_rate = 0.6;
  gen.errors.char_error_rate = 0.04;
  gen.uncertainty.value_uncertainty_prob = 0.4;
  gen.uncertainty.xtuple_alternative_prob = 0.3;
  gen.uncertainty.maybe_prob = 0.15;
  gen.full_names = true;
  GeneratedData data = GeneratePersons(gen);
  std::cout << data.relation.size() << " probabilistic person records, "
            << data.gold.size() << " true duplicate pairs\n\n";

  // 2. Collect comparison vectors over a candidate sample (mode
  //    similarity of each x-tuple pair collapses the k*l grid to the most
  //    probable alternative pair for training).
  Schema schema = PersonSchema();
  std::vector<const Comparator*> comparators = {
      *GetComparator("jaro_winkler"), *GetComparator("hamming"),
      *GetComparator("hamming")};
  TupleMatcher matcher = *TupleMatcher::Make(schema, comparators);
  FullPairs full;
  Result<std::vector<CandidatePair>> candidates =
      full.Generate(data.relation);
  std::vector<ComparisonVector> vectors;
  vectors.reserve(candidates->size());
  for (const CandidatePair& pair : *candidates) {
    const XTuple& t1 = data.relation.xtuple(pair.first);
    const XTuple& t2 = data.relation.xtuple(pair.second);
    vectors.push_back(
        matcher.CompareAlternatives(t1.alternative(0), t2.alternative(0)));
  }

  // 3. Unsupervised EM estimation of the Fellegi-Sunter parameters.
  EmOptions em_options;
  em_options.agreement_threshold = 0.85;
  Result<EmEstimate> estimate = EstimateWithEm(vectors, em_options);
  if (!estimate.ok()) {
    std::cerr << "EM error: " << estimate.status().ToString() << "\n";
    return 1;
  }
  std::cout << "EM converged after " << estimate->iterations
            << " iterations, match prior P(M) = " << Fmt(estimate->p)
            << "\n";
  TablePrinter em_table({"attribute", "m", "u"});
  for (size_t i = 0; i < estimate->attributes.size(); ++i) {
    em_table.AddRow({schema.attribute(i).name,
                     Fmt(estimate->attributes[i].m),
                     Fmt(estimate->attributes[i].u)});
  }
  em_table.Print(std::cout);

  // 4. Thresholds from tolerated error rates (Fellegi-Sunter rule).
  FellegiSunterModel fs(estimate->attributes);
  Thresholds thresholds = fs.DeriveThresholds(/*fp_bound=*/0.001,
                                              /*fn_bound=*/0.05);
  std::cout << "\nderived thresholds on R: T_lambda = "
            << Fmt(thresholds.t_lambda)
            << ", T_mu = " << Fmt(thresholds.t_mu) << "\n\n";

  // 5. Full pipeline with the estimated model and the decision-based
  //    derivation, against a knowledge-based weighted-sum baseline.
  DetectorConfig fs_config;
  fs_config.key = {{"name", 3}, {"city", 2}};
  fs_config.comparators = {"jaro_winkler", "hamming", "hamming"};
  fs_config.combination = CombinationKind::kFellegiSunter;
  fs_config.fs_attributes = estimate->attributes;
  fs_config.derivation = DerivationKind::kExpectedSimilarity;
  fs_config.final_thresholds = thresholds;
  Result<DuplicateDetector> fs_detector =
      DuplicateDetector::Make(fs_config, schema);
  if (!fs_detector.ok()) {
    std::cerr << "config error: " << fs_detector.status().ToString() << "\n";
    return 1;
  }
  DetectorConfig kb_config;
  kb_config.key = {{"name", 3}, {"city", 2}};
  kb_config.comparators = {"jaro_winkler", "hamming", "hamming"};
  kb_config.weights = {0.5, 0.25, 0.25};
  kb_config.final_thresholds = {0.75, 0.88};
  Result<DuplicateDetector> kb_detector =
      DuplicateDetector::Make(kb_config, schema);

  Result<DetectionResult> fs_result = fs_detector->Run(data.relation);
  Result<DetectionResult> kb_result = kb_detector->Run(data.relation);
  if (!fs_result.ok() || !kb_result.ok()) {
    std::cerr << "run error\n";
    return 1;
  }
  EffectivenessMetrics fs_metrics = Evaluate(*fs_result, data.gold);
  EffectivenessMetrics kb_metrics = Evaluate(*kb_result, data.gold);
  TablePrinter results({"decision model", "precision", "recall", "F1"});
  results.AddRow({"Fellegi-Sunter (EM-trained)", Fmt(fs_metrics.precision),
                  Fmt(fs_metrics.recall), Fmt(fs_metrics.f1)});
  results.AddRow({"knowledge-based (weighted sum)",
                  Fmt(kb_metrics.precision), Fmt(kb_metrics.recall),
                  Fmt(kb_metrics.f1)});
  std::cout << "\n";
  results.Print(std::cout);
  return 0;
}
