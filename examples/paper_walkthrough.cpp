// Paper walkthrough: reproduces, end to end and with commentary, every
// worked computation of "Duplicate Detection in Probabilistic Data"
// (Panse et al., ICDE Workshops 2010) — attribute value matching
// (Section IV-A), possible worlds and both derivation approaches
// (Section IV-B), and the search space reduction examples (Section V).

#include <cstdio>
#include <iostream>

#include "core/paper_examples.h"
#include "decision/combination.h"
#include "decision/rule_parser.h"
#include "pdb/algebra.h"
#include "derive/decision_based.h"
#include "derive/similarity_based.h"
#include "match/tuple_matcher.h"
#include "pdb/conditioning.h"
#include "pdb/possible_worlds.h"
#include "reduction/blocking_alternatives.h"
#include "reduction/snm_certain_keys.h"
#include "reduction/snm_sorting_alternatives.h"
#include "reduction/snm_uncertain_ranking.h"
#include "sim/edit_distance.h"
#include "util/table_printer.h"

namespace {

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int main() {
  using namespace pdd;
  NormalizedHammingComparator hamming;
  TupleMatcher matcher =
      *TupleMatcher::Make(PaperSchema(), {&hamming, &hamming});
  WeightedSumCombination phi({0.8, 0.2});

  std::cout << "== Fig. 1: the identification rule ==\n";
  Result<IdentificationRule> rule = ParseRule(
      "IF name > 0.8 AND job > 0.5 THEN DUPLICATES WITH CERTAINTY 0.8",
      PaperSchema());
  std::cout << "parsed rule fires on c = (0.9, 0.59): "
            << (rule->Fires(ComparisonVector({0.9, 0.59})) ? "yes" : "no")
            << " (certainty " << Fmt(rule->certainty) << ")\n\n";

  std::cout << "== Section IV: tuple membership from the application "
               "context ==\n";
  // A person certainly 34 years old, jobless with confidence 90%: the
  // "adults" relation holds them with p=1, the "employed" relation —
  // after selecting on job existence — with p=0.1.
  XRelation people("people", Schema::Strings({"name", "age", "job"}));
  people.AppendUnchecked(XTuple(
      "t1", {{{Value::Certain("Ann"), Value::Certain("34"),
               Value::Dist({{"clerk", 0.1}})},
              1.0}}));
  Result<XRelation> employed = SelectWhereExists(people, "job", "employed");
  std::cout << "p(t1 in adults)   = 1.0\n";
  std::cout << "p(t2 in employed) = "
            << Fmt(employed->xtuple(0).existence_probability())
            << " (paper: 0.1) — membership must not influence matching\n\n";

  std::cout << "== Section IV-A: attribute value matching ==\n";
  Relation r1 = BuildR1();
  Relation r2 = BuildR2();
  const Tuple& t11 = r1.tuple(0);
  const Tuple& t22 = r2.tuple(1);
  double name_sim = ExpectedSimilarity(t11.value(0), t22.value(0), hamming);
  double job_sim = ExpectedSimilarity(t11.value(1), t22.value(1), hamming);
  std::cout << "sim(t11.name, t22.name) = " << Fmt(name_sim)
            << "   (paper: 0.9)\n";
  std::cout << "sim(t11.job,  t22.job)  = " << Fmt(job_sim)
            << " (paper: 0.59, rounded)\n";
  double pair_sim = phi.Combine(matcher.Compare(t11, t22));
  std::cout << "phi = 0.8*c1 + 0.2*c2   = " << Fmt(pair_sim)
            << " (paper: 0.838, rounded)\n\n";

  std::cout << "== Section IV-B: possible worlds of (t32, t42) ==\n";
  XRelation pair("pair", PaperSchema());
  pair.AppendUnchecked(BuildR3().xtuple(1));
  pair.AppendUnchecked(BuildR4().xtuple(1));
  Result<std::vector<World>> worlds = EnumerateWorlds(pair);
  TablePrinter world_table({"world", "contents", "P(I)"});
  size_t idx = 1;
  for (const World& w : *worlds) {
    world_table.AddRow({"I" + std::to_string(idx++),
                        WorldToString(w, pair), Fmt(w.probability)});
  }
  world_table.Print(std::cout);
  ConditionedWorlds conditioned = ConditionOnAllPresent(*worlds);
  std::cout << "P(B) = " << Fmt(conditioned.event_probability)
            << " (paper: 0.72)\n\n";

  std::cout << "== Similarity-based derivation (Eq. 6) ==\n";
  AlternativePairScores scores = BuildAlternativePairScores(
      pair.xtuple(0), pair.xtuple(1), matcher, phi);
  for (size_t i = 0; i < scores.rows; ++i) {
    std::cout << "sim(t32^" << i + 1 << ", t42) = " << Fmt(scores.sim(i, 0))
              << "\n";
  }
  ExpectedSimilarityDerivation expected_sim;
  std::cout << "sim(t32, t42) = " << Fmt(expected_sim.Derive(scores))
            << " (paper: 7/15 = " << Fmt(7.0 / 15.0) << ")\n\n";

  std::cout << "== Decision-based derivation (Eq. 7-9) ==\n";
  Thresholds intermediate{0.4, 0.7};
  MatchingMass mass = ComputeMatchingMass(scores, intermediate);
  std::cout << "P(m) = " << Fmt(mass.p_match) << " (paper: 3/9), P(u) = "
            << Fmt(mass.p_unmatch) << " (paper: 4/9)\n";
  MatchingWeightDerivation weight_derivation(intermediate);
  std::cout << "sim(t32, t42) = P(m)/P(u) = "
            << Fmt(weight_derivation.Derive(scores)) << " (paper: 0.75)\n\n";

  XRelation r34 = BuildR34();
  std::cout << "== Section V-A.2: certain keys (Fig. 10) ==\n";
  SnmCertainKeys certain(PaperSortingKey(), SnmCertainKeyOptions{});
  TablePrinter fig10({"key value", "tuple"});
  for (const KeyedEntry& e : certain.SortedEntries(r34)) {
    fig10.AddRow({e.key, r34.xtuple(e.tuple).id()});
  }
  fig10.Print(std::cout);

  std::cout << "\n== Section V-A.3: sorting alternatives (Fig. 11/12) ==\n";
  SnmAlternativesOptions alt_options;
  alt_options.window = 2;
  SnmSortingAlternatives alternatives(PaperSortingKey(), alt_options);
  TablePrinter fig11({"key value", "tuple"});
  for (const KeyedEntry& e : alternatives.SurvivingEntries(r34)) {
    fig11.AddRow({e.key, r34.xtuple(e.tuple).id()});
  }
  fig11.Print(std::cout);
  std::cout << "window-2 matchings (paper: exactly five):";
  Result<std::vector<CandidatePair>> alt_pairs = alternatives.Generate(r34);
  for (const CandidatePair& p : *alt_pairs) {
    std::cout << " (" << r34.xtuple(p.first).id() << ","
              << r34.xtuple(p.second).id() << ")";
  }
  std::cout << "\n\n== Section V-A.4: uncertain keys + ranking (Fig. 13) ==\n";
  SnmUncertainRanking ranking(PaperSortingKey(), SnmRankingOptions{});
  std::cout << "ranked order (paper: t32 t31 t41 t43 t42):";
  for (size_t i : ranking.RankedOrder(r34)) {
    std::cout << " " << r34.xtuple(i).id();
  }
  std::cout << "\n\n== Section V-B: blocking with alternatives (Fig. 14) ==\n";
  BlockingAlternatives blocking(PaperBlockingKey());
  for (const auto& [key, members] : blocking.Blocks(r34)) {
    std::cout << "block '" << key << "':";
    for (size_t i : members) std::cout << " " << r34.xtuple(i).id();
    std::cout << "\n";
  }
  std::cout << "matchings (paper: three):";
  Result<std::vector<CandidatePair>> block_pairs = blocking.Generate(r34);
  for (const CandidatePair& p : *block_pairs) {
    std::cout << " (" << r34.xtuple(p.first).id() << ","
              << r34.xtuple(p.second).id() << ")";
  }
  std::cout << "\n";
  return 0;
}
