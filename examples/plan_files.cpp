// Plan files: the declarative PlanSpec API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/plan_files
//
// Shows the three ways to obtain a plan — the fluent PlanBuilder, a
// parsed plan-file text, and translation from a DetectorConfig — and
// that all three agree on the canonical form and therefore on the
// stable 64-bit fingerprint (the identity the result cache and sweep
// tooling key on).

#include <iostream>

#include "core/detector.h"
#include "core/paper_examples.h"
#include "plan/plan_builder.h"

int main() {
  using namespace pdd;

  // 1. Fluent builder: the paper's running setup (name[3]+job[2] key,
  //    weights 0.8/0.2, Tλ=0.4, Tμ=0.7).
  PlanSpec built = PlanBuilder()
                       .AddKey("name", 3)
                       .AddKey("job", 2)
                       .Reduction("snm_certain_keys")
                       .Set("reduction.window", 4)
                       .Weights({0.8, 0.2})
                       .Thresholds(0.4, 0.7)
                       .Build();

  // 2. The same plan as text — what a --plan file contains. Line order
  //    never matters; the canonical form is sorted.
  Result<PlanSpec> parsed = PlanSpec::Parse(R"(
      # paper running example over SNM with certain keys
      reduction = snm_certain_keys
      reduction.window = 4
      key = name:3,job:2
      combination.weights = 0.8,0.2
      classify.t_lambda = 0.4
      classify.t_mu = 0.7
  )");
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }

  // 3. Compile and run. The compiled plan normalizes both to the same
  //    canonical spec, so their fingerprints coincide.
  XRelation r34 = BuildR34();
  Result<DuplicateDetector> from_built =
      DuplicateDetector::Make(built, PaperSchema());
  Result<DuplicateDetector> from_parsed =
      DuplicateDetector::Make(*parsed, PaperSchema());
  if (!from_built.ok() || !from_parsed.ok()) {
    std::cerr << "compile error\n";
    return 1;
  }
  std::cout << "canonical plan:\n"
            << from_built->plan().spec().ToText() << "\n";
  std::cout << "builder fingerprint: "
            << FingerprintHex(from_built->plan().fingerprint()) << "\n";
  std::cout << "parsed  fingerprint: "
            << FingerprintHex(from_parsed->plan().fingerprint()) << "\n";

  Result<DetectionResult> result = from_parsed->Run(r34);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nR3 ∪ R4: " << result->Matches().size() << " matches, "
            << result->PossibleMatches().size() << " possible, "
            << result->Unmatches().size()
            << " non-matches (result carries plan fingerprint "
            << FingerprintHex(result->plan_fingerprint) << ")\n";

  // 4. Any parameter change changes the identity.
  PlanSpec widened = built;
  widened.params().SetSize("reduction.window", 8);
  std::cout << "\nwindow 4 vs 8 fingerprints differ: "
            << (widened.Fingerprint() != built.Fingerprint() ? "yes" : "no")
            << "\n";
  return 0;
}
