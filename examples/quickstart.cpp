// Quickstart: detect duplicates between two tiny probabilistic relations.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The example constructs the paper's two x-relations R3 and R4 (Fig. 5),
// configures the default pipeline (normalized Hamming matching, weighted
// sum φ with weights 0.8/0.2, expected-similarity derivation, thresholds
// Tλ=0.4 / Tμ=0.7) and prints the decision for every tuple pair.

#include <cstdio>
#include <iostream>

#include "core/detector.h"
#include "core/paper_examples.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;

  // 1. The probabilistic sources (see Fig. 5 of the paper).
  XRelation r3 = BuildR3();
  XRelation r4 = BuildR4();
  std::cout << r3.ToString() << "\n" << r4.ToString() << "\n";

  // 2. Configure the pipeline. The defaults replicate the paper's
  //    running example; only the thresholds are stated explicitly here.
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  config.final_thresholds = {0.4, 0.7};

  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  if (!detector.ok()) {
    std::cerr << "config error: " << detector.status().ToString() << "\n";
    return 1;
  }

  // 3. Run on the union of both sources.
  Result<DetectionResult> result = detector->RunOnSources(r3, r4);
  if (!result.ok()) {
    std::cerr << "run error: " << result.status().ToString() << "\n";
    return 1;
  }

  // 4. Inspect the decisions.
  TablePrinter table({"pair", "similarity", "decision"});
  for (const PairDecisionRecord& rec : result->decisions) {
    char sim[32];
    std::snprintf(sim, sizeof(sim), "%.4f", rec.similarity);
    table.AddRow({rec.id1 + " ~ " + rec.id2, sim,
                  MatchClassName(rec.match_class)});
  }
  table.Print(std::cout);

  std::cout << "\nmatches:";
  for (const IdPair& pair : result->Matches()) {
    std::cout << " (" << pair.first << ", " << pair.second << ")";
  }
  std::cout << "\npossible matches (clerical review):";
  for (const IdPair& pair : result->PossibleMatches()) {
    std::cout << " (" << pair.first << ", " << pair.second << ")";
  }
  std::cout << "\n";
  return 0;
}
