// Telescope catalog integration — the paper's motivating scenario
// ("unifying data produced by different space telescopes", Section I).
//
// Two synthetic telescope catalogs observe an overlapping set of sky
// objects with instrument noise; repeated readings per attribute become
// discrete probability distributions. The pipeline links detections of
// the same object across the catalogs using numeric comparators and the
// expected-similarity derivation, and reports effectiveness against the
// generator's exact ground truth.

#include <cstdio>
#include <iostream>

#include "core/detector.h"
#include "datagen/astronomy_generator.h"
#include "util/table_printer.h"

namespace {

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

int main() {
  using namespace pdd;

  // 1. Generate two noisy telescope catalogs with known cross matches.
  AstroGenOptions gen;
  gen.num_objects = 300;
  gen.detection_prob = 0.85;
  gen.position_noise = 0.02;
  gen.magnitude_noise = 0.15;
  gen.readings = 3;
  gen.faint_prob = 0.2;
  GeneratedSources sources = GenerateTelescopeSources(gen);
  std::cout << "telescope1: " << sources.source1.size() << " detections, "
            << "telescope2: " << sources.source2.size() << " detections, "
            << "true cross matches: " << sources.gold.size() << "\n\n";

  // 2. Configure the pipeline for numeric sky data: positions compare by
  //    absolute difference (degrees), magnitudes relatively; blocking on
  //    coordinate prefixes keeps the candidate set small.
  DetectorConfig config;
  config.key = {{"ra", 4}, {"dec", 3}};
  config.reduction = ReductionMethod::kSnmSortingAlternatives;
  config.window = 8;
  config.comparators = {"numeric", "numeric", "numeric_rel"};
  config.weights = {0.4, 0.4, 0.2};
  config.final_thresholds = {0.85, 0.95};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, TelescopeSchema());
  if (!detector.ok()) {
    std::cerr << "config error: " << detector.status().ToString() << "\n";
    return 1;
  }

  // 3. Link the catalogs.
  Result<DetectionResult> result =
      detector->RunOnSources(sources.source1, sources.source2);
  if (!result.ok()) {
    std::cerr << "run error: " << result.status().ToString() << "\n";
    return 1;
  }

  // 4. Verification (Section III-E).
  EffectivenessMetrics strict = Evaluate(*result, sources.gold);
  EffectivenessMetrics lenient = Evaluate(*result, sources.gold,
                                          /*count_possible_as_match=*/true);
  ReductionMetrics reduction = EvaluateReduction(*result, sources.gold);
  TablePrinter table({"metric", "matches only", "incl. possible"});
  table.AddRow({"precision", Fmt(strict.precision), Fmt(lenient.precision)});
  table.AddRow({"recall", Fmt(strict.recall), Fmt(lenient.recall)});
  table.AddRow({"F1", Fmt(strict.f1), Fmt(lenient.f1)});
  table.Print(std::cout);
  std::cout << "\ncandidates: " << result->candidate_count << " of "
            << result->total_pairs
            << " pairs (reduction ratio " << Fmt(reduction.reduction_ratio)
            << ", pairs completeness " << Fmt(reduction.pairs_completeness)
            << ")\n";
  std::cout << "declared matches: " << result->Matches().size()
            << ", clerical review queue: "
            << result->PossibleMatches().size() << "\n";
  return 0;
}
