// Uncertain deduplication results (Section VI of the paper): instead of
// forcing hard duplicate verdicts, uncertainty arising in the detection
// process is modeled directly in the probabilistic result database —
// mutually exclusive sets of tuples whose lineage records the decision
// events. Also demonstrates the text format: the result's base relation
// is serialized and re-parsed.

#include <iostream>

#include "core/detector.h"
#include "core/entity_clusters.h"
#include "core/paper_examples.h"
#include "core/uncertain_result.h"
#include "pdb/text_format.h"
#include "util/table_printer.h"

int main() {
  using namespace pdd;

  // 1. Deduplicate the paper's R34 with the default pipeline.
  DetectorConfig config;
  config.key = {{"name", 3}, {"job", 2}};
  config.weights = {0.8, 0.2};
  config.final_thresholds = {0.4, 0.7};
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(config, PaperSchema());
  XRelation r34 = BuildR34();
  Result<DetectionResult> result = detector->Run(r34);
  if (!result.ok()) {
    std::cerr << "run error: " << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "pairwise decisions on R34: " << result->Matches().size()
            << " matches, " << result->PossibleMatches().size()
            << " possible matches\n\n";

  // 2. Entity clusters from the hard decisions (merge/purge view).
  std::vector<std::vector<size_t>> clusters = ClusterEntities(r34.size(),
                                                              *result);
  std::cout << "entity clusters (matches only): " << clusters.size() << "\n";
  for (const auto& cluster : clusters) {
    std::cout << "  {";
    for (size_t i = 0; i < cluster.size(); ++i) {
      std::cout << (i ? ", " : "") << r34.xtuple(cluster[i]).id();
    }
    std::cout << "}\n";
  }

  // 3. The probabilistic result relation: possible matches become
  //    mutually exclusive outcome sets with complementary lineage.
  UncertainDedupResult dedup = BuildUncertainResult(r34, *result);
  std::cout << "\nuncertain result relation (" << dedup.tuples.size()
            << " tuples, expected entity count "
            << dedup.ExpectedEntityCount() << "):\n\n"
            << dedup.ToString() << "\n";

  // 4. Persist the base relation in the text format and load it back.
  std::string serialized = SerializeXRelation(r34);
  std::cout << "serialized base relation (" << serialized.size()
            << " bytes):\n"
            << serialized << "\n";
  Result<XRelation> reloaded = ParseXRelation(serialized);
  if (!reloaded.ok()) {
    std::cerr << "round-trip error: " << reloaded.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "round trip OK: reloaded " << reloaded->size()
            << " x-tuples with "
            << reloaded->TotalAlternatives() << " alternatives\n";
  return 0;
}
