#include "analysis/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace pdd {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

/// The deterministic core: stages between candidate generation and the
/// report, where any hidden entropy breaks the serial ≡ pooled ≡
/// cached ≡ streamed ≡ sharded byte-identity gates. src/index/ is in:
/// a decision-index image must be a pure function of (record ids,
/// report content) or byte-identical serving breaks. src/ingest/ is
/// in: the standing drain promises a report byte-identical to the
/// batch run for any arrival order, so its queue/admission/session
/// code must stay clock- and entropy-free (arrival stamps are opaque
/// caller-provided values).
bool InDeterministicCore(std::string_view path) {
  return StartsWith(path, "src/pipeline/") ||
         StartsWith(path, "src/decision/") ||
         StartsWith(path, "src/cache/") ||
         StartsWith(path, "src/columnar/") ||
         StartsWith(path, "src/index/") ||
         StartsWith(path, "src/ingest/");
}

bool InLibraryOrTools(std::string_view path) {
  return StartsWith(path, "src/") || StartsWith(path, "tools/");
}

bool InDecisionCode(std::string_view path) {
  return StartsWith(path, "src/decision/");
}

// ------------------------------------------------------------------
// Preprocessing: strip comments and string/char literals (replaced by
// spaces so offsets and line numbers survive), collect per-line
// `pddlint: allow(rule[,rule])` suppressions from the comment text.

struct PreparedSource {
  /// Content with comments and literal bodies blanked to spaces.
  std::string code;
  /// line (1-based) → rules suppressed on that line.
  std::map<size_t, std::set<std::string>> line_allows;
};

void RecordAllowMarkers(std::string_view comment, size_t line,
                        PreparedSource* out) {
  static constexpr std::string_view kMarker = "pddlint: allow(";
  size_t pos = comment.find(kMarker);
  while (pos != std::string_view::npos) {
    size_t start = pos + kMarker.size();
    size_t end = comment.find(')', start);
    if (end == std::string_view::npos) break;
    std::stringstream rules(std::string(comment.substr(start, end - start)));
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      size_t first = rule.find_first_not_of(" \t");
      size_t last = rule.find_last_not_of(" \t");
      if (first != std::string::npos) {
        out->line_allows[line].insert(rule.substr(first, last - first + 1));
      }
    }
    pos = comment.find(kMarker, end);
  }
}

PreparedSource PrepareSource(std::string_view content) {
  PreparedSource out;
  out.code.assign(content.size(), ' ');
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string comment_text;       // accumulates the current comment
  size_t comment_line = 0;        // line where the current comment began
  std::string raw_delimiter;      // )delim" terminator of a raw string
  size_t line = 1;
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_text.clear();
          comment_line = line;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_text.clear();
          comment_line = line;
          ++i;
        } else if (c == '"') {
          // Raw string literal: R"delim( ... )delim".
          if (i > 0 && content[i - 1] == 'R' &&
              (i == 1 || !IsIdentChar(content[i - 2]))) {
            size_t open = content.find('(', i + 1);
            if (open != std::string_view::npos) {
              raw_delimiter = ")" +
                  std::string(content.substr(i + 1, open - i - 1)) + "\"";
              state = State::kRawString;
              out.code[i] = '"';
              break;
            }
          }
          state = State::kString;
          out.code[i] = '"';
        } else if (c == '\'') {
          state = State::kChar;
          out.code[i] = '\'';
        } else {
          out.code[i] = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          RecordAllowMarkers(comment_text, comment_line, &out);
          state = State::kCode;
        } else {
          comment_text.push_back(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          RecordAllowMarkers(comment_text, comment_line, &out);
          state = State::kCode;
          ++i;
        } else {
          comment_text.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (i < content.size() && content[i] == '\n') ++line;
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' &&
            content.compare(i, raw_delimiter.size(), raw_delimiter) == 0) {
          i += raw_delimiter.size() - 1;
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
    }
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    RecordAllowMarkers(comment_text, comment_line, &out);
  }
  return out;
}

size_t LineOfOffset(std::string_view code, size_t offset) {
  return 1 + static_cast<size_t>(
                 std::count(code.begin(),
                            code.begin() + static_cast<ptrdiff_t>(offset),
                            '\n'));
}

// ------------------------------------------------------------------
// Shared scanning helpers.

/// Offset of the next `name` with identifier boundaries on both sides,
/// or npos.
size_t FindWord(std::string_view code, std::string_view name, size_t from) {
  size_t pos = code.find(name, from);
  while (pos != std::string_view::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    size_t end = pos + name.size();
    bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return pos;
    pos = code.find(name, pos + 1);
  }
  return std::string_view::npos;
}

/// First non-space offset at or after `pos`, or npos.
size_t SkipSpaces(std::string_view code, size_t pos) {
  while (pos < code.size() &&
         (code[pos] == ' ' || code[pos] == '\t' || code[pos] == '\n')) {
    ++pos;
  }
  return pos < code.size() ? pos : std::string_view::npos;
}

struct RuleContext {
  std::string_view rel_path;
  const PreparedSource* source = nullptr;
  const LintOptions* options = nullptr;
  std::vector<LintFinding>* findings = nullptr;
};

bool RuleAllowedForFile(const RuleContext& ctx, const std::string& rule) {
  auto it = ctx.options->allowlist.find(rule);
  return it != ctx.options->allowlist.end() &&
         it->second.count(std::string(ctx.rel_path)) > 0;
}

void Report(const RuleContext& ctx, size_t offset, const std::string& rule,
            std::string message) {
  size_t line = LineOfOffset(ctx.source->code, offset);
  // A marker suppresses its own line and the next, so a comment-only
  // `// pddlint: allow(rule)` line covers the statement below it.
  for (size_t marker_line : {line, line - 1}) {
    auto allows = ctx.source->line_allows.find(marker_line);
    if (allows != ctx.source->line_allows.end() &&
        allows->second.count(rule) > 0) {
      return;
    }
  }
  ctx.findings->push_back(LintFinding{std::string(ctx.rel_path), line, rule,
                                      std::move(message)});
}

// ------------------------------------------------------------------
// Rule: unordered-iteration.

/// Names of variables declared with an unordered container type in
/// this file. Heuristic: after `unordered_map<...>` / `unordered_set
/// <...>` (angle brackets matched), skip `&`, `*`, `const` and take
/// the next identifier as the declared name.
std::vector<std::string> CollectUnorderedVariables(std::string_view code) {
  std::vector<std::string> names;
  for (std::string_view container : {"unordered_map", "unordered_set",
                                     "unordered_multimap",
                                     "unordered_multiset"}) {
    size_t pos = FindWord(code, container, 0);
    while (pos != std::string_view::npos) {
      size_t cursor = SkipSpaces(code, pos + container.size());
      if (cursor != std::string_view::npos && code[cursor] == '<') {
        int depth = 0;
        while (cursor < code.size()) {
          if (code[cursor] == '<') ++depth;
          if (code[cursor] == '>') {
            --depth;
            if (depth == 0) break;
          }
          ++cursor;
        }
        // Past the template arguments: skip qualifiers to the name.
        ++cursor;
        while (true) {
          cursor = SkipSpaces(code, cursor);
          if (cursor == std::string_view::npos) break;
          if (code[cursor] == '&' || code[cursor] == '*') {
            ++cursor;
            continue;
          }
          if (code.compare(cursor, 5, "const") == 0 &&
              (cursor + 5 >= code.size() || !IsIdentChar(code[cursor + 5]))) {
            cursor += 5;
            continue;
          }
          break;
        }
        if (cursor != std::string_view::npos && IsIdentChar(code[cursor]) &&
            std::isdigit(static_cast<unsigned char>(code[cursor])) == 0) {
          size_t end = cursor;
          while (end < code.size() && IsIdentChar(code[end])) ++end;
          names.emplace_back(code.substr(cursor, end - cursor));
        }
      }
      pos = FindWord(code, container, pos + 1);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void CheckUnorderedIteration(const RuleContext& ctx) {
  static const std::string kRule = "unordered-iteration";
  if (!InLibraryOrTools(ctx.rel_path)) return;
  if (RuleAllowedForFile(ctx, kRule)) return;
  std::string_view code = ctx.source->code;
  std::vector<std::string> unordered = CollectUnorderedVariables(code);

  // Range-for whose range expression is an unordered variable (or an
  // unordered temporary): `for (decl : range)`.
  size_t pos = FindWord(code, "for", 0);
  while (pos != std::string_view::npos) {
    size_t open = SkipSpaces(code, pos + 3);
    if (open != std::string_view::npos && code[open] == '(') {
      int depth = 0;
      size_t colon = std::string_view::npos;
      size_t close = std::string_view::npos;
      for (size_t i = open; i < code.size(); ++i) {
        char c = code[i];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') {
          --depth;
          if (depth == 0) {
            close = i;
            break;
          }
        }
        if (c == ':' && depth == 1 && colon == std::string_view::npos &&
            (i == 0 || code[i - 1] != ':') &&
            (i + 1 >= code.size() || code[i + 1] != ':')) {
          colon = i;
        }
        if (c == ';' && depth == 1) break;  // classic three-clause for
      }
      if (colon != std::string_view::npos && close != std::string_view::npos) {
        size_t start = SkipSpaces(code, colon + 1);
        size_t end = close;
        while (end > start && (code[end - 1] == ' ' || code[end - 1] == '\n' ||
                               code[end - 1] == '\t')) {
          --end;
        }
        std::string range(code.substr(start, end - start));
        bool unordered_range =
            range.find("unordered_") != std::string::npos ||
            std::find(unordered.begin(), unordered.end(), range) !=
                unordered.end();
        if (unordered_range) {
          Report(ctx, pos, kRule,
                 "range-for over unordered container '" + range +
                     "': bucket order is nondeterministic — iterate a "
                     "sorted view or canonicalize afterwards (allowlist "
                     "audited sites)");
        }
      }
    }
    pos = FindWord(code, "for", pos + 1);
  }

  // Explicit iterator loops: `var.begin()` / `var.cbegin()` etc.
  for (const std::string& name : unordered) {
    for (std::string_view method :
         {".begin(", ".cbegin(", ".rbegin(", ".crbegin("}) {
      std::string pattern = name + std::string(method);
      size_t at = code.find(pattern);
      while (at != std::string_view::npos) {
        if (at == 0 || !IsIdentChar(code[at - 1])) {
          Report(ctx, at, kRule,
                 "iterator over unordered container '" + name +
                     "': bucket order is nondeterministic");
        }
        at = code.find(pattern, at + 1);
      }
    }
  }
}

// ------------------------------------------------------------------
// Rule: nondeterminism.

void CheckNondeterminism(const RuleContext& ctx) {
  static const std::string kRule = "nondeterminism";
  if (!InDeterministicCore(ctx.rel_path)) return;
  if (RuleAllowedForFile(ctx, kRule)) return;
  std::string_view code = ctx.source->code;
  struct Banned {
    std::string_view name;
    bool call_only;  // require '(' right after the name
    std::string_view why;
  };
  static constexpr Banned kBanned[] = {
      {"rand", true, "unseeded global RNG"},
      {"srand", true, "global RNG seeding"},
      {"rand_r", true, "hidden per-call entropy"},
      {"time", true, "wall-clock value"},
      {"clock", true, "processor-time value"},
      {"getenv", false, "environment-dependent behavior"},
      {"random_device", false, "hardware entropy source"},
  };
  for (const Banned& banned : kBanned) {
    size_t pos = FindWord(code, banned.name, 0);
    while (pos != std::string_view::npos) {
      size_t after = SkipSpaces(code, pos + banned.name.size());
      bool is_call = after != std::string_view::npos && code[after] == '(';
      if (!banned.call_only || is_call) {
        Report(ctx, pos, kRule,
               std::string(banned.name) + " (" + std::string(banned.why) +
                   ") in the deterministic core — use seeded pdd::Rng / "
                   "plumb values in explicitly");
      }
      pos = FindWord(code, banned.name, pos + 1);
    }
  }
  // Pointer-value ordering: addresses vary run to run, so any order or
  // hash derived from them is nondeterministic across processes.
  for (std::string_view pattern :
       {"reinterpret_cast<uintptr_t>", "reinterpret_cast<std::uintptr_t>",
        "reinterpret_cast<intptr_t>", "reinterpret_cast<std::intptr_t>",
        "std::less<void"}) {
    size_t pos = code.find(pattern);
    while (pos != std::string_view::npos) {
      Report(ctx, pos, kRule,
             "pointer-value ordering (" + std::string(pattern) +
                 ") in the deterministic core — order by stable ids or "
                 "indices instead of addresses");
      pos = code.find(pattern, pos + 1);
    }
  }
}

// ------------------------------------------------------------------
// Rule: banned-function.

void CheckBannedFunctions(const RuleContext& ctx) {
  static const std::string kRule = "banned-function";
  if (RuleAllowedForFile(ctx, kRule)) return;
  std::string_view code = ctx.source->code;
  struct Banned {
    std::string_view name;
    std::string_view replacement;
  };
  static constexpr Banned kBanned[] = {
      {"strcpy", "std::string"},
      {"strcat", "std::string"},
      {"sprintf", "std::snprintf or std::to_string"},
      {"vsprintf", "std::vsnprintf"},
      {"gets", "std::getline"},
      {"atoi", "std::strtol / ParseDouble (atoi returns 0 on garbage)"},
      {"atol", "std::strtol"},
      {"atoll", "std::strtoll"},
      {"atof", "std::strtod / ParseDouble (atof returns 0 on garbage)"},
  };
  for (const Banned& banned : kBanned) {
    size_t pos = FindWord(code, banned.name, 0);
    while (pos != std::string_view::npos) {
      size_t after = SkipSpaces(code, pos + banned.name.size());
      if (after != std::string_view::npos && code[after] == '(') {
        Report(ctx, pos, kRule,
               std::string(banned.name) + " is banned — use " +
                   std::string(banned.replacement));
      }
      pos = FindWord(code, banned.name, pos + 1);
    }
  }
}

// ------------------------------------------------------------------
// Rule: float-equality.

/// Whether `token` is a floating-point literal ("0.7", "1.", ".5",
/// "1e-9", "0.5f").
bool IsFloatLiteral(std::string_view token) {
  if (token.empty()) return false;
  size_t i = 0;
  size_t digits = 0;
  while (i < token.size() &&
         std::isdigit(static_cast<unsigned char>(token[i])) != 0) {
    ++i;
    ++digits;
  }
  bool has_dot = i < token.size() && token[i] == '.';
  if (has_dot) {
    ++i;
    while (i < token.size() &&
           std::isdigit(static_cast<unsigned char>(token[i])) != 0) {
      ++i;
      ++digits;
    }
  }
  if (digits == 0) return false;
  bool has_exponent = false;
  if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
    size_t j = i + 1;
    if (j < token.size() && (token[j] == '+' || token[j] == '-')) ++j;
    size_t exp_digits = 0;
    while (j < token.size() &&
           std::isdigit(static_cast<unsigned char>(token[j])) != 0) {
      ++j;
      ++exp_digits;
    }
    if (exp_digits > 0) {
      has_exponent = true;
      i = j;
    }
  }
  if (i < token.size() && (token[i] == 'f' || token[i] == 'F' ||
                           token[i] == 'l' || token[i] == 'L')) {
    ++i;
  }
  return i == token.size() && (has_dot || has_exponent);
}

void CheckFloatEquality(const RuleContext& ctx) {
  static const std::string kRule = "float-equality";
  if (!InDecisionCode(ctx.rel_path)) return;
  if (RuleAllowedForFile(ctx, kRule)) return;
  std::string_view code = ctx.source->code;
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    bool equality = code[i] == '=' && code[i + 1] == '=' &&
                    (i == 0 || std::string_view("!<>=+-*/%&|^")
                                       .find(code[i - 1]) ==
                                   std::string_view::npos);
    bool inequality = code[i] == '!' && code[i + 1] == '=';
    if (!equality && !inequality) continue;
    // Right operand.
    size_t right = SkipSpaces(code, i + 2);
    bool right_float = false;
    if (right != std::string_view::npos) {
      size_t end = right;
      while (end < code.size() && (IsIdentChar(code[end]) ||
                                   code[end] == '.' || code[end] == '+' ||
                                   code[end] == '-')) {
        if ((code[end] == '+' || code[end] == '-') &&
            (end == right ||
             (code[end - 1] != 'e' && code[end - 1] != 'E'))) {
          break;
        }
        ++end;
      }
      right_float = IsFloatLiteral(code.substr(right, end - right));
    }
    // Left operand: the contiguous token run ending at the operator.
    size_t left_end = i;
    while (left_end > 0 &&
           (code[left_end - 1] == ' ' || code[left_end - 1] == '\t')) {
      --left_end;
    }
    size_t left_start = left_end;
    while (left_start > 0 && (IsIdentChar(code[left_start - 1]) ||
                              code[left_start - 1] == '.')) {
      --left_start;
    }
    bool left_float = IsFloatLiteral(code.substr(left_start,
                                                 left_end - left_start));
    if (right_float || left_float) {
      Report(ctx, i, kRule,
             "exact floating-point comparison against a literal in "
             "decision code — thresholds must use ordered comparisons "
             "(<, >=) or an explicit epsilon");
    }
  }
}

}  // namespace

// ------------------------------------------------------------------

std::string LintFinding::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

const std::vector<LintRuleInfo>& LintRules() {
  static const std::vector<LintRuleInfo> kRules = {
      {"unordered-iteration",
       "no unordered_map/unordered_set iteration in src/ or tools/ "
       "(bucket order leaks into reports); allowlist audited sites"},
      {"nondeterminism",
       "no rand/time/clock/getenv/random_device or pointer-value "
       "ordering in src/pipeline, src/decision, src/cache, "
       "src/columnar"},
      {"banned-function",
       "no strcpy/strcat/sprintf/vsprintf/gets/atoi/atol/atof anywhere"},
      {"float-equality",
       "no exact ==/!= against floating-point literals in src/decision"},
      {"spec-closure",
       "every PlanSpec key read by FromSpec is printed by ToSpec or on "
       "the documented fingerprint-irrelevant list"},
  };
  return kRules;
}

Status ParseLintAllowlist(std::string_view text, LintOptions* options) {
  std::set<std::string> known;
  for (const LintRuleInfo& rule : LintRules()) known.insert(rule.name);
  std::stringstream stream{std::string(text)};
  std::string line;
  size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::stringstream fields(line);
    std::string rule;
    std::string path;
    if (!(fields >> rule)) continue;  // blank / comment-only line
    if (!(fields >> path)) {
      return Status::InvalidArgument(
          "allowlist line " + std::to_string(line_number) +
          ": expected `rule path`, got '" + rule + "'");
    }
    if (known.count(rule) == 0) {
      return Status::InvalidArgument(
          "allowlist line " + std::to_string(line_number) +
          ": unknown rule '" + rule + "'");
    }
    std::string extra;
    if (fields >> extra) {
      return Status::InvalidArgument(
          "allowlist line " + std::to_string(line_number) +
          ": trailing token '" + extra + "' (comments start with #)");
    }
    options->allowlist[rule].insert(path);
  }
  return Status::OK();
}

Status LoadLintAllowlist(const std::string& path, LintOptions* options) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open allowlist '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseLintAllowlist(buffer.str(), options);
}

std::vector<LintFinding> LintSource(std::string_view rel_path,
                                    std::string_view content,
                                    const LintOptions& options) {
  PreparedSource source = PrepareSource(content);
  std::vector<LintFinding> findings;
  RuleContext ctx{rel_path, &source, &options, &findings};
  CheckUnorderedIteration(ctx);
  CheckNondeterminism(ctx);
  CheckBannedFunctions(ctx);
  CheckFloatEquality(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

Result<std::vector<LintFinding>> LintTree(const std::string& root,
                                          const LintOptions& options) {
  namespace fs = std::filesystem;
  fs::path base(root);
  if (!fs::exists(base)) {
    return Status::NotFound("source root '" + root + "' does not exist");
  }
  std::vector<LintFinding> findings;
  for (std::string_view dir : {"src", "tools", "tests", "bench", "examples"}) {
    fs::path subdir = base / dir;
    if (!fs::exists(subdir)) continue;
    for (const fs::directory_entry& entry :
         fs::recursive_directory_iterator(subdir)) {
      if (!entry.is_regular_file()) continue;
      std::string extension = entry.path().extension().string();
      if (extension != ".h" && extension != ".cc" && extension != ".cpp") {
        continue;
      }
      std::ifstream in(entry.path());
      if (!in) {
        return Status::Internal("cannot read '" + entry.path().string() +
                                "'");
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      std::string rel_path =
          fs::relative(entry.path(), base).generic_string();
      std::vector<LintFinding> file_findings =
          LintSource(rel_path, buffer.str(), options);
      findings.insert(findings.end(),
                      std::make_move_iterator(file_findings.begin()),
                      std::make_move_iterator(file_findings.end()));
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::string DefaultSourceRoot() {
#ifdef PDD_SOURCE_ROOT
  return PDD_SOURCE_ROOT;
#else
  return "";
#endif
}

}  // namespace pdd
