// pddlint: a project-invariant linter for the pdd source tree.
//
// The engine's load-bearing promise is byte-for-byte determinism:
// serial ≡ pooled ≡ cached ≡ streamed ≡ sharded for any worker, batch
// and shard count. Runtime diff tests enforce the promise end-to-end;
// this linter guards the *sources* of nondeterminism statically, so a
// violation fails the build before it ever flakes a diff gate.
//
// Rules (names are stable identifiers used by the allowlist):
//
//   unordered-iteration   Iterating a std::unordered_map/unordered_set
//                         yields bucket order, which varies across
//                         libstdc++ versions and seed values. Any such
//                         iteration on a path that feeds
//                         DetectionResult or report output is a
//                         determinism bug. Applies to src/ and tools/;
//                         audited sites (the iteration is followed by a
//                         canonical sort) go in the allowlist.
//
//   nondeterminism        rand()/srand()/time()/clock()/random_device
//                         and pointer-value ordering
//                         (reinterpret_cast<[u]intptr_t>,
//                         std::less<void*>) inside the deterministic
//                         core (src/pipeline, src/decision, src/cache,
//                         src/columnar). Seeded pdd::Rng and
//                         std::chrono are the sanctioned alternatives.
//
//   banned-function       strcpy/strcat/sprintf/vsprintf/gets (buffer
//                         overflows) and atoi/atol/atoll/atof (silent
//                         0 on parse failure) anywhere in the tree.
//
//   float-equality        Raw ==/!= against a floating-point literal
//                         in decision code (src/decision): threshold
//                         and probability comparisons must be ordered
//                         (<, >=) or epsilon-based, never exact.
//
//   spec-closure          Registry/spec closure (see spec_closure.h):
//                         every key FromSpec reads is either printed
//                         by ToSpec (fingerprint-relevant) or on the
//                         documented fingerprint-irrelevant list.
//
// Suppression: a `// pddlint: allow(rule)` comment suppresses `rule`
// on its own line and the next (so a comment-only marker line covers
// the statement below); an allowlist file
// (tools/pddlint_allowlist.txt, `rule path` per line) suppresses a
// rule for a whole audited file.

#ifndef PDD_ANALYSIS_LINT_H_
#define PDD_ANALYSIS_LINT_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pdd {

struct LintFinding {
  /// Repository-relative path ('/'-separated).
  std::string file;
  /// 1-based line of the violation.
  size_t line = 0;
  /// Stable rule identifier ("unordered-iteration", ...).
  std::string rule;
  std::string message;

  /// "file:line: [rule] message" — the compiler-style form.
  std::string ToString() const;
};

struct LintRuleInfo {
  std::string name;
  std::string summary;
};

/// The registered rules, in reporting order.
const std::vector<LintRuleInfo>& LintRules();

struct LintOptions {
  /// rule → repository-relative files where the rule is suppressed
  /// (audited sites; every entry should cite why in the allowlist).
  std::map<std::string, std::set<std::string>> allowlist;
};

/// Parses allowlist text (`rule path` per line, '#' comments) into
/// `options->allowlist`. Unknown rule names are InvalidArgument so a
/// typo cannot silently disable nothing.
Status ParseLintAllowlist(std::string_view text, LintOptions* options);

/// Loads and parses an allowlist file. NotFound when absent.
Status LoadLintAllowlist(const std::string& path, LintOptions* options);

/// Lints one file's content. `rel_path` selects which rules apply
/// (rules are scoped by directory, see the table above) and appears in
/// findings. Pure function of its inputs — the test fixtures feed
/// synthetic snippets through this.
std::vector<LintFinding> LintSource(std::string_view rel_path,
                                    std::string_view content,
                                    const LintOptions& options);

/// Walks `root`'s source directories (src, tools, tests, bench,
/// examples; .h/.cc/.cpp) and lints every file. Findings are sorted by
/// (file, line) so output is stable across filesystem enumeration
/// order.
Result<std::vector<LintFinding>> LintTree(const std::string& root,
                                          const LintOptions& options);

/// The repository root this library was compiled from
/// (PDD_SOURCE_ROOT). Empty when unavailable.
std::string DefaultSourceRoot();

}  // namespace pdd

#endif  // PDD_ANALYSIS_LINT_H_
