#include "analysis/spec_closure.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/config.h"
#include "plan/param_map.h"
#include "plan/plan_spec.h"
#include "plan/registry.h"
#include "plan/translate.h"
#include "prep/standardizer.h"

namespace pdd {

namespace {

/// Collects the keys a ToSpec of `config` prints.
void CollectKeys(const DetectorConfig& config, std::set<std::string>* keys) {
  PlanSpec spec = config.ToSpec();
  for (const auto& [key, value] : spec.params().entries()) {
    keys->insert(key);
  }
}

/// A config that triggers every conditionally-printed base key:
/// pruning, explicit sharding, named comparators and a per-attribute
/// uniform preparation (prints `prepare.attributes`).
DetectorConfig FullyPrintingConfig() {
  DetectorConfig config;
  config.prune = true;
  config.shard_count = 2;
  config.shard_strategy = ShardStrategy::kIndexRange;
  config.comparators = {"jaro"};
  Standardizer standardizer;
  standardizer.LowerCase().TrimWhitespace();
  config.preparation = DataPreparation::Uniform(std::move(standardizer), 2);
  return config;
}

std::set<std::string> CollectPrintedSpecKeys() {
  std::set<std::string> keys;
  const ComponentRegistry& registry = ComponentRegistry::Global();
  CollectKeys(FullyPrintingConfig(), &keys);
  for (const std::string& name : registry.ReductionNames()) {
    DetectorConfig config;
    config.reduction = (*registry.FindReduction(name))->method;
    CollectKeys(config, &keys);
  }
  for (const std::string& name : registry.CombinationNames()) {
    DetectorConfig config;
    config.combination = (*registry.FindCombination(name))->kind;
    CollectKeys(config, &keys);
  }
  for (const std::string& name : registry.DerivationNames()) {
    DetectorConfig config;
    config.derivation = (*registry.FindDerivation(name))->kind;
    CollectKeys(config, &keys);
  }
  return keys;
}

/// Scans `content` for spec-key string literals consumed by ParamMap
/// getters: Get{String,Double,Size,Bool}("key"... and Has("key"...
/// (whitespace-tolerant across line wraps).
void ScanReadKeys(std::string_view content, std::set<std::string>* keys) {
  static constexpr std::string_view kGetters[] = {
      "GetString(", "GetDouble(", "GetSize(", "GetBool(", "Has(",
  };
  for (std::string_view getter : kGetters) {
    size_t pos = content.find(getter);
    while (pos != std::string_view::npos) {
      size_t cursor = pos + getter.size();
      while (cursor < content.size() &&
             (content[cursor] == ' ' || content[cursor] == '\n' ||
              content[cursor] == '\t')) {
        ++cursor;
      }
      if (cursor < content.size() && content[cursor] == '"') {
        size_t end = content.find('"', cursor + 1);
        if (end != std::string_view::npos) {
          keys->insert(std::string(content.substr(cursor + 1,
                                                  end - cursor - 1)));
        }
      }
      pos = content.find(getter, pos + 1);
    }
  }
}

Result<std::string> ReadFileText(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path.string() + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

const std::set<std::string>& FingerprintIrrelevantSpecKeys() {
  // executor.* resize batches and worker pools (output gated
  // byte-identical for any value in pipeline_test); match.kernel picks
  // the scalar or columnar matcher implementation (gated bit-identical
  // in columnar_test and bench_fig03).
  static const std::set<std::string> kKeys = {
      "executor.batch",
      "executor.workers",
      "match.kernel",
  };
  return kKeys;
}

Result<SpecClosureReport> CheckSpecClosure(const std::string& source_root) {
  namespace fs = std::filesystem;
  SpecClosureReport report;
  static constexpr std::string_view kReaderFiles[] = {
      "src/plan/translate.cc",
      "src/plan/registry.cc",
  };
  for (std::string_view rel : kReaderFiles) {
    PDD_ASSIGN_OR_RETURN(std::string text,
                         ReadFileText(fs::path(source_root) / rel));
    ScanReadKeys(text, &report.read_keys);
  }
  if (report.read_keys.empty()) {
    return Status::Internal(
        "spec-closure: no ParamMap reads found under '" + source_root +
        "/src/plan' — wrong source root?");
  }
  report.printed_keys = CollectPrintedSpecKeys();

  const std::set<std::string>& irrelevant = FingerprintIrrelevantSpecKeys();
  auto add = [&report](const std::string& key, std::string message) {
    report.findings.push_back(LintFinding{"src/plan/translate.cc", 0,
                                          "spec-closure",
                                          "key '" + key + "' " +
                                              std::move(message)});
  };
  for (const std::string& key : report.read_keys) {
    if (report.printed_keys.count(key) == 0 && irrelevant.count(key) == 0) {
      add(key,
          "is read by FromSpec but never printed by ToSpec and is not on "
          "the documented fingerprint-irrelevant list — it silently "
          "escapes the plan fingerprint");
    }
  }
  for (const std::string& key : irrelevant) {
    if (report.printed_keys.count(key) > 0) {
      add(key,
          "is documented fingerprint-irrelevant but printed by ToSpec — "
          "the documentation and the fingerprint contradict");
    }
    if (report.read_keys.count(key) == 0) {
      add(key,
          "is documented fingerprint-irrelevant but FromSpec no longer "
          "reads it — stale list entry");
    }
  }
  for (const std::string& key : report.printed_keys) {
    if (report.read_keys.count(key) == 0) {
      add(key,
          "is printed by ToSpec but never read by FromSpec — canonical "
          "plan output would fail to reparse (unconsumed-key rejection)");
    }
  }
  return report;
}

}  // namespace pdd
