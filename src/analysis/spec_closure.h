// Registry/spec closure check (the `spec-closure` lint rule).
//
// The plan fingerprint is the identity of a detection run: two plans
// with the same fingerprint must produce byte-identical reports. That
// only holds if every spec key that can change behavior participates
// in the fingerprint — i.e. is printed by DetectorConfig::ToSpec. A
// key that FromSpec reads but ToSpec never prints silently escapes the
// fingerprint: two differing plans would collide. The sanctioned
// exceptions are the documented fingerprint-irrelevant keys (pure
// throughput/placement knobs that provably cannot change a single
// output byte).
//
// The check cross-references three sets:
//
//   read keys     string literals consumed by FromSpec and the
//                 ComponentRegistry configure functions, scanned from
//                 src/plan/translate.cc and src/plan/registry.cc;
//   printed keys  runtime enumeration: ToSpec over every registered
//                 reduction/combination/derivation plus the
//                 conditionally-printed base keys (prune, sharding,
//                 comparators, preparation);
//   irrelevant    FingerprintIrrelevantSpecKeys(), the documented
//                 list.
//
// Violations: a key read but neither printed nor documented irrelevant
// (fingerprint escape); a key both printed and documented irrelevant
// (contradiction); a documented key no longer read (stale entry); a
// key printed but never read (ToSpec output would fail to reparse —
// ExpectFullyConsumed rejects unconsumed keys).

#ifndef PDD_ANALYSIS_SPEC_CLOSURE_H_
#define PDD_ANALYSIS_SPEC_CLOSURE_H_

#include <set>
#include <string>

#include "analysis/lint.h"
#include "util/status.h"

namespace pdd {

/// Spec keys FromSpec accepts that are deliberately excluded from the
/// plan fingerprint. Every entry is a pure throughput or placement
/// knob: the report is gated byte-identical across all its values.
const std::set<std::string>& FingerprintIrrelevantSpecKeys();

struct SpecClosureReport {
  std::set<std::string> read_keys;
  std::set<std::string> printed_keys;
  std::vector<LintFinding> findings;
};

/// Runs the closure check. `source_root` locates src/plan/ for the
/// read-key scan; the printed-key set comes from the live registry.
Result<SpecClosureReport> CheckSpecClosure(const std::string& source_root);

}  // namespace pdd

#endif  // PDD_ANALYSIS_SPEC_CLOSURE_H_
