#include "cache/decision_cache.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace pdd {

namespace {

/// Snapshot header; bump the version when the line format changes so a
/// stale file fails loudly instead of silently loading garbage.
constexpr char kSnapshotHeader[] = "# pddcache v1";

/// splitmix64 finalizer: FNV output is well distributed in the low
/// bits, but shard selection and unordered_map bucketing both mask,
/// so run the key through an avalanche mix before use.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t KeyMix(const PairDecisionKey& key) {
  return Mix(key.plan_fingerprint ^ Mix(key.pair_digest));
}

/// Snapshot field rendering: the shared 16-digit hex form.
std::string Hex16(uint64_t v) { return HexU64(v); }

bool ParseHex64(const std::string& text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t v = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

size_t RoundUpPowerOfTwo(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::string DecisionCacheStats::ToString() const {
  std::ostringstream out;
  out << hits << " hits / " << (hits + misses) << " lookups ("
      << FormatDouble(HitRate() * 100.0, 1) << "% hit rate), " << inserts
      << " inserts, " << evictions << " evictions, " << size
      << " resident";
  return out.str();
}

size_t ShardedDecisionCache::KeyHash::operator()(
    const PairDecisionKey& key) const {
  return static_cast<size_t>(KeyMix(key));
}

ShardedDecisionCache::ShardedDecisionCache(
    ShardedDecisionCacheOptions options)
    : options_(options) {
  size_t shard_count = RoundUpPowerOfTwo(options_.shards == 0
                                             ? 1
                                             : options_.shards);
  if (options_.capacity == 0) options_.capacity = 1;
  // No more shards than capacity: every shard must hold >= 1 entry for
  // the total bound to stay meaningful.
  while (shard_count > 1 && shard_count > options_.capacity) {
    shard_count >>= 1;
  }
  shard_mask_ = shard_count - 1;
  // Exact division: base entries everywhere, the remainder spread one
  // entry each over the first shards. Per-shard bounds sum to the
  // configured capacity exactly — rounding every shard up "to at least
  // 1" would silently inflate the total (capacity 8 over 16 stripes
  // used to admit 16 resident entries).
  const size_t base = options_.capacity / shard_count;
  const size_t remainder = options_.capacity % shard_count;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = base + (i < remainder ? 1 : 0);
  }
}

ShardedDecisionCache::Shard& ShardedDecisionCache::ShardFor(
    const PairDecisionKey& key) {
  // High bits pick the shard; unordered_map consumes the full mix, so
  // shard-mates still spread across buckets.
  return *shards_[(KeyMix(key) >> 32) & shard_mask_];
}

std::optional<CachedPairDecision> ShardedDecisionCache::Lookup(
    const PairDecisionKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  // Move to the front of the recency list.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->decision;
}

void ShardedDecisionCache::InsertInShard(Shard& shard,
                                         const PairDecisionKey& key,
                                         const CachedPairDecision& decision,
                                         bool persisted) {
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->decision = decision;
    it->second->persisted = persisted;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, decision, persisted});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.inserts;
  while (shard.lru.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ShardedDecisionCache::Insert(const PairDecisionKey& key,
                                  const CachedPairDecision& decision) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  InsertInShard(shard, key, decision, /*persisted=*/false);
}

DecisionCacheStats ShardedDecisionCache::Stats() const {
  DecisionCacheStats stats;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.inserts += shard->inserts;
    stats.evictions += shard->evictions;
    stats.size += shard->lru.size();
  }
  return stats;
}

void ShardedDecisionCache::Clear() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t ShardedDecisionCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

size_t ShardedDecisionCache::TotalCapacity() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->capacity;
  }
  return total;
}

Status ShardedDecisionCache::AppendSnapshot(const std::string& path) {
  // Header only for a fresh (or empty) file; appends afterwards never
  // touch existing bytes.
  bool needs_header = true;
  {
    std::ifstream probe(path);
    if (probe) {
      std::string first;
      if (std::getline(probe, first) && !first.empty()) needs_header = false;
    }
  }
  // Serialize first, write once, and only mark entries persisted after
  // the flush succeeded — a failed write (disk full) must leave them
  // eligible for the next save, not silently lost from every future
  // snapshot.
  std::string buffer;
  std::vector<PairDecisionKey> written;
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    // Oldest first, so a replay ends with today's recency order.
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      if (it->persisted) continue;
      uint64_t sim_bits = 0;
      std::memcpy(&sim_bits, &it->decision.similarity, sizeof(sim_bits));
      buffer += Hex16(it->key.plan_fingerprint);
      buffer += ' ';
      buffer += Hex16(it->key.pair_digest);
      buffer += ' ';
      buffer += Hex16(sim_bits);
      buffer += ' ';
      buffer += MatchClassCode(it->decision.match_class);
      buffer += '\n';
      written.push_back(it->key);
    }
  }
  std::ofstream out(path, std::ios::app);
  if (!out) {
    return Status::InvalidArgument("cannot open cache file '" + path +
                                   "' for append");
  }
  if (needs_header) out << kSnapshotHeader << "\n";
  out << buffer;
  out.flush();
  if (!out) {
    return Status::InvalidArgument("write to cache file '" + path +
                                   "' failed");
  }
  // Marking an overwritten entry is still sound: decisions are a
  // deterministic function of the key, so a concurrent Insert wrote
  // the same value the file now holds. Evicted keys are simply gone.
  for (const PairDecisionKey& key : written) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) it->second->persisted = true;
  }
  return Status::OK();
}

Status ShardedDecisionCache::LoadSnapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cache file '" + path + "' not found");
  }
  std::string line;
  size_t line_number = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      if (line_number == 1 && trimmed != kSnapshotHeader) {
        return Status::ParseError("'" + path +
                                  "' is not a pddcache v1 file");
      }
      saw_header = true;
      continue;
    }
    if (!saw_header && line_number == 1) {
      return Status::ParseError("'" + path + "' is not a pddcache v1 file");
    }
    std::vector<std::string> fields = SplitWhitespace(trimmed);
    PairDecisionKey key;
    uint64_t sim_bits = 0;
    if (fields.size() != 4 ||
        !ParseHex64(fields[0], &key.plan_fingerprint) ||
        !ParseHex64(fields[1], &key.pair_digest) ||
        !ParseHex64(fields[2], &sim_bits) || fields[3].size() != 1) {
      return Status::ParseError("'" + path + "' line " +
                                std::to_string(line_number) +
                                ": malformed cache entry");
    }
    CachedPairDecision decision;
    std::memcpy(&decision.similarity, &sim_bits,
                sizeof(decision.similarity));
    switch (fields[3][0]) {
      case 'm':
        decision.match_class = MatchClass::kMatch;
        break;
      case 'p':
        decision.match_class = MatchClass::kPossible;
        break;
      case 'u':
        decision.match_class = MatchClass::kUnmatch;
        break;
      default:
        return Status::ParseError("'" + path + "' line " +
                                  std::to_string(line_number) +
                                  ": unknown match class '" + fields[3] +
                                  "'");
    }
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    InsertInShard(shard, key, decision, /*persisted=*/true);
  }
  return Status::OK();
}

}  // namespace pdd
