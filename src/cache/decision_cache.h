// DecisionCache: memoization of per-pair detection decisions, the
// ROADMAP's result-caching subsystem. Entries are keyed by
// (plan decision fingerprint, pair content digest):
//
//   * the fingerprint (DetectionPlan::decision_fingerprint()) pins the
//     decide-stage components — φ, ϑ, comparators, thresholds — so a
//     plan change that alters decisions can never serve stale entries;
//     plans that differ only in reduction/key parameters share it,
//     which is what makes φ/ϑ/reduction sweeps cheap (cross-plan reuse);
//   * the digest (cache/pair_digest.h) pins the pair's content, so
//     preparation variants and id renames are handled by construction.
//
// ShardedDecisionCache is the concurrent in-memory implementation:
// N lock-striped shards, each an independently-locked LRU map with a
// per-shard capacity slice, sized for many executor workers hammering
// lookups/inserts concurrently. Hit/miss/insert/evict counters are
// kept per shard and aggregated by Stats().
//
// The optional disk snapshot (Append/LoadSnapshot) is an append-only
// text file so repeated sweeps and CLI invocations warm-start across
// processes: every save appends only the entries not yet persisted,
// and a load replays the file in order. Similarities are serialized as
// bit patterns, so a warm-started run stays bit-identical to a cold one.

#ifndef PDD_CACHE_DECISION_CACHE_H_
#define PDD_CACHE_DECISION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "decision/classifier.h"
#include "util/status.h"

namespace pdd {

/// Cache key: which decide-stage pipeline, which pair content.
struct PairDecisionKey {
  /// DetectionPlan::decision_fingerprint() — 0 means cache-ineligible
  /// (custom comparator instances with no stable identity).
  uint64_t plan_fingerprint = 0;
  /// PairContentDigest of the (unordered) candidate pair.
  uint64_t pair_digest = 0;

  bool operator==(const PairDecisionKey& other) const {
    return plan_fingerprint == other.plan_fingerprint &&
           pair_digest == other.pair_digest;
  }
};

/// The memoized outcome of one pair decision (XPairDecision's data,
/// without pulling the derive layer into the cache's dependencies).
struct CachedPairDecision {
  double similarity = 0.0;
  MatchClass match_class = MatchClass::kUnmatch;

  bool operator==(const CachedPairDecision& other) const {
    return similarity == other.similarity &&
           match_class == other.match_class;
  }
};

/// Lifetime counters of a cache instance (aggregated over shards).
struct DecisionCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  /// Entries currently resident.
  size_t size = 0;

  double HitRate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
  std::string ToString() const;
};

/// The memoization interface the StageExecutor consults. All methods
/// must be safe to call from multiple threads concurrently.
class DecisionCache {
 public:
  virtual ~DecisionCache() = default;

  /// The entry for `key`, or nullopt on miss. Counts a hit or miss.
  virtual std::optional<CachedPairDecision> Lookup(
      const PairDecisionKey& key) = 0;

  /// Inserts (or refreshes) `key`. Inserting an existing key updates
  /// its value and recency without counting an eviction.
  virtual void Insert(const PairDecisionKey& key,
                      const CachedPairDecision& decision) = 0;

  /// Aggregated lifetime counters.
  virtual DecisionCacheStats Stats() const = 0;

  /// Drops every entry (counters are kept).
  virtual void Clear() = 0;
};

struct ShardedDecisionCacheOptions {
  /// Total entry bound across all shards. Divided exactly: every shard
  /// gets capacity/shards entries and the remainder is distributed one
  /// entry each to the first shards, so the per-shard bounds always sum
  /// to the configured capacity (never more — a truncating division
  /// must not be patched up to "at least 1 per shard", which would
  /// inflate the total past the bound). 0 is treated as 1.
  size_t capacity = 1u << 20;
  /// Lock stripes; rounded up to a power of two, at least 1. More
  /// shards = less contention, slightly coarser LRU (per-shard, not
  /// global).
  size_t shards = 16;
};

/// Lock-striped LRU cache. Shard choice is a mix of the key hash, so
/// both halves of the key spread entries evenly.
class ShardedDecisionCache : public DecisionCache {
 public:
  explicit ShardedDecisionCache(ShardedDecisionCacheOptions options = {});

  std::optional<CachedPairDecision> Lookup(
      const PairDecisionKey& key) override;
  void Insert(const PairDecisionKey& key,
              const CachedPairDecision& decision) override;
  DecisionCacheStats Stats() const override;
  void Clear() override;

  /// Entries currently resident (sums shard sizes). Always <=
  /// TotalCapacity().
  size_t size() const;
  /// Sum of the per-shard entry bounds — exactly the configured
  /// capacity (after its 0 → 1 normalization), for any shard count.
  size_t TotalCapacity() const;
  const ShardedDecisionCacheOptions& options() const { return options_; }

  // --- disk snapshot ------------------------------------------------

  /// Appends every not-yet-persisted entry to `path` (creating the file
  /// with a header if absent) and marks them persisted, so consecutive
  /// saves never rewrite earlier lines: the file only ever grows.
  Status AppendSnapshot(const std::string& path);

  /// Replays a snapshot file into the cache (entries load as already
  /// persisted; later lines win on duplicate keys). Missing files are
  /// NotFound; callers treating a first run's absent file as an empty
  /// cache should check for that code.
  Status LoadSnapshot(const std::string& path);

 private:
  struct Entry {
    PairDecisionKey key;
    CachedPairDecision decision;
    /// Already written to (or read from) a snapshot file.
    bool persisted = false;
  };
  using LruList = std::list<Entry>;

  struct KeyHash {
    size_t operator()(const PairDecisionKey& key) const;
  };

  /// One lock stripe: independently locked LRU map. Padded so shard
  /// mutexes don't share cache lines under contention.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    LruList lru;  // front = most recent
    std::unordered_map<PairDecisionKey, LruList::iterator, KeyHash> index;
    /// This shard's entry bound (capacity/shards, +1 for the shards
    /// absorbing the remainder).
    size_t capacity = 1;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const PairDecisionKey& key);
  /// Insert/refresh under the shard lock; `persisted` tags loaded
  /// entries so AppendSnapshot skips them.
  void InsertInShard(Shard& shard, const PairDecisionKey& key,
                     const CachedPairDecision& decision, bool persisted);

  ShardedDecisionCacheOptions options_;
  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pdd

#endif  // PDD_CACHE_DECISION_CACHE_H_
