#include "cache/pair_digest.h"

#include <cstring>

namespace pdd {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline void HashBytes(uint64_t* hash, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    *hash ^= bytes[i];
    *hash *= kFnvPrime;
  }
}

inline void HashU64(uint64_t* hash, uint64_t v) { HashBytes(hash, &v, 8); }

inline void HashDouble(uint64_t* hash, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  HashU64(hash, bits);
}

/// Length-prefixed so field boundaries can't alias across strings.
inline void HashString(uint64_t* hash, const std::string& s) {
  HashU64(hash, s.size());
  HashBytes(hash, s.data(), s.size());
}

}  // namespace

uint64_t TupleContentDigest(const XTuple& tuple) {
  uint64_t hash = kFnvOffset;
  HashU64(&hash, tuple.alternatives().size());
  for (const AltTuple& alt : tuple.alternatives()) {
    HashDouble(&hash, alt.prob);
    HashU64(&hash, alt.values.size());
    for (const Value& value : alt.values) {
      HashU64(&hash, value.alternatives().size());
      for (const Alternative& va : value.alternatives()) {
        HashString(&hash, va.text);
        HashDouble(&hash, va.prob);
        unsigned char pattern = va.is_pattern ? 1 : 0;
        HashBytes(&hash, &pattern, 1);
      }
    }
  }
  return hash;
}

uint64_t CombineTupleDigests(uint64_t d1, uint64_t d2) {
  // Unordered: feed (min, max) so both orientations collapse to one
  // key. Re-hashing (rather than xor) keeps distinct unordered pairs
  // from cancelling ({a,a} vs {b,b} under xor would both give 0).
  uint64_t lo = d1 < d2 ? d1 : d2;
  uint64_t hi = d1 < d2 ? d2 : d1;
  uint64_t hash = kFnvOffset;
  HashU64(&hash, lo);
  HashU64(&hash, hi);
  return hash;
}

uint64_t PairContentDigest(const XTuple& t1, const XTuple& t2) {
  return CombineTupleDigests(TupleContentDigest(t1), TupleContentDigest(t2));
}

}  // namespace pdd
