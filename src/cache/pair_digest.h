// Content digests for decision memoization (the pair half of the
// ROADMAP's (plan fingerprint, tuple pair digest) cache key).
//
// A tuple digest covers exactly the content DetectionPlan::DecidePair
// reads: the alternatives in order, each alternative's probability and
// its attribute values (alternative texts, probabilities and pattern
// flags). The tuple id is deliberately excluded — two x-tuples with
// identical content decide identically under any plan, so content-equal
// tuples share cache entries across ids, runs and processes.
//
// The pair digest is order-invariant: PairContentDigest(t1, t2) ==
// PairContentDigest(t2, t1), matching the symmetry of the duplicate
// relation. Hashing reuses the FNV-1a 64-bit idiom of
// PlanSpec::Fingerprint, with length prefixes between fields so
// adjacent strings cannot alias ("ab","c" vs "a","bc") and doubles
// hashed by bit pattern (bit-identical round trips, no formatting).

#ifndef PDD_CACHE_PAIR_DIGEST_H_
#define PDD_CACHE_PAIR_DIGEST_H_

#include <cstdint>

#include "pdb/xtuple.h"

namespace pdd {

/// FNV-1a 64-bit digest of one x-tuple's decision-relevant content
/// (alternatives, probabilities, values — not the id).
uint64_t TupleContentDigest(const XTuple& tuple);

/// Order-invariant digest of a candidate pair's content: the two tuple
/// digests combined as an unordered pair (smaller first), re-hashed.
uint64_t PairContentDigest(const XTuple& t1, const XTuple& t2);

/// The same combination step on precomputed tuple digests (for callers
/// that amortize TupleContentDigest across many pairs).
uint64_t CombineTupleDigests(uint64_t d1, uint64_t d2);

}  // namespace pdd

#endif  // PDD_CACHE_PAIR_DIGEST_H_
