#include "cluster/k_medoids.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace pdd {

namespace {

// Total distance of every item to its nearest medoid.
double AssignmentCost(size_t n, const DistanceFn& distance,
                      const std::vector<size_t>& medoids,
                      std::vector<size_t>* assignment) {
  double cost = 0.0;
  assignment->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_m = 0;
    for (size_t m = 0; m < medoids.size(); ++m) {
      double d = distance(medoids[m], i);
      if (d < best) {
        best = d;
        best_m = m;
      }
    }
    (*assignment)[i] = best_m;
    cost += best;
  }
  return cost;
}

}  // namespace

std::vector<std::vector<size_t>> KMedoids(size_t n, const DistanceFn& distance,
                                          const KMedoidsOptions& options) {
  if (n == 0) return {};
  size_t k = std::min(options.k == 0 ? 1 : options.k, n);
  // Initialize medoids with a random sample.
  Rng rng(options.seed);
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  rng.Shuffle(&indices);
  std::vector<size_t> medoids(indices.begin(), indices.begin() + k);
  std::vector<size_t> assignment;
  double cost = AssignmentCost(n, distance, medoids, &assignment);
  // Greedy swap improvement.
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool improved = false;
    for (size_t m = 0; m < medoids.size() && !improved; ++m) {
      for (size_t candidate = 0; candidate < n && !improved; ++candidate) {
        if (std::find(medoids.begin(), medoids.end(), candidate) !=
            medoids.end()) {
          continue;
        }
        std::vector<size_t> trial = medoids;
        trial[m] = candidate;
        std::vector<size_t> trial_assignment;
        double trial_cost = AssignmentCost(n, distance, trial,
                                           &trial_assignment);
        if (trial_cost + 1e-12 < cost) {
          medoids = std::move(trial);
          assignment = std::move(trial_assignment);
          cost = trial_cost;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  // Materialize clusters, medoid first.
  std::vector<std::vector<size_t>> clusters(medoids.size());
  for (size_t m = 0; m < medoids.size(); ++m) clusters[m].push_back(medoids[m]);
  for (size_t i = 0; i < n; ++i) {
    if (std::find(medoids.begin(), medoids.end(), i) != medoids.end()) continue;
    clusters[assignment[i]].push_back(i);
  }
  clusters.erase(std::remove_if(clusters.begin(), clusters.end(),
                                [](const std::vector<size_t>& c) {
                                  return c.empty();
                                }),
                 clusters.end());
  return clusters;
}

}  // namespace pdd
