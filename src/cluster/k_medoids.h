// K-medoids (PAM-style) clustering under a distance callback. Used as an
// alternative block former for uncertain keys when a target block count
// is known.

#ifndef PDD_CLUSTER_K_MEDOIDS_H_
#define PDD_CLUSTER_K_MEDOIDS_H_

#include <vector>

#include "cluster/leader_clustering.h"
#include "util/random.h"

namespace pdd {

/// Options for KMedoids.
struct KMedoidsOptions {
  /// Number of clusters (clamped to n).
  size_t k = 8;
  /// Swap-improvement iteration cap.
  size_t max_iterations = 20;
  /// Seed for medoid initialization.
  uint64_t seed = 42;
};

/// Clusters item indices [0, n) into at most k clusters. Each returned
/// cluster's first element is its medoid. Empty clusters are dropped.
std::vector<std::vector<size_t>> KMedoids(size_t n, const DistanceFn& distance,
                                          const KMedoidsOptions& options);

}  // namespace pdd

#endif  // PDD_CLUSTER_K_MEDOIDS_H_
