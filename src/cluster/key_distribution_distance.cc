#include "cluster/key_distribution_distance.h"

#include <algorithm>
#include <map>

namespace pdd {

namespace {

std::map<std::string, double> NormalizedMap(const KeyDistribution& d) {
  std::map<std::string, double> out;
  double total = d.TotalMass();
  if (total <= 0.0) return out;
  for (const auto& [key, prob] : d.entries) out[key] += prob / total;
  return out;
}

}  // namespace

double OverlapDistance(const KeyDistribution& a, const KeyDistribution& b) {
  std::map<std::string, double> ma = NormalizedMap(a), mb = NormalizedMap(b);
  double overlap = 0.0;
  for (const auto& [key, pa] : ma) {
    auto it = mb.find(key);
    if (it != mb.end()) overlap += std::min(pa, it->second);
  }
  return 1.0 - overlap;
}

double ExpectedKeyDistance(const KeyDistribution& a, const KeyDistribution& b,
                           const Comparator& cmp) {
  std::map<std::string, double> ma = NormalizedMap(a), mb = NormalizedMap(b);
  double sim = 0.0;
  for (const auto& [ka, pa] : ma) {
    for (const auto& [kb, pb] : mb) {
      sim += pa * pb * cmp.Compare(ka, kb);
    }
  }
  return 1.0 - sim;
}

}  // namespace pdd
