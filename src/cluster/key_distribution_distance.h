// Distances between probabilistic key values, used by uncertain-data
// clustering for blocking (Section V-B; cf. [38]-[40]).

#ifndef PDD_CLUSTER_KEY_DISTRIBUTION_DISTANCE_H_
#define PDD_CLUSTER_KEY_DISTRIBUTION_DISTANCE_H_

#include "keys/key_builder.h"
#include "sim/comparator.h"

namespace pdd {

/// 1 - distribution overlap: 1 - Σ_k min(p_a(k), p_b(k)) after
/// normalizing both distributions. 0 for identical distributions, 1 for
/// disjoint supports.
double OverlapDistance(const KeyDistribution& a, const KeyDistribution& b);

/// 1 - expected key similarity under `cmp`:
/// 1 - Σ_i Σ_j p_a(i)·p_b(j)·sim(k_i, k_j) (normalized distributions).
/// Softer than OverlapDistance: near-equal key strings count.
double ExpectedKeyDistance(const KeyDistribution& a, const KeyDistribution& b,
                           const Comparator& cmp);

}  // namespace pdd

#endif  // PDD_CLUSTER_KEY_DISTRIBUTION_DISTANCE_H_
