#include "cluster/leader_clustering.h"

namespace pdd {

std::vector<std::vector<size_t>> LeaderClustering(size_t n,
                                                  const DistanceFn& distance,
                                                  double threshold) {
  std::vector<std::vector<size_t>> clusters;
  for (size_t i = 0; i < n; ++i) {
    bool placed = false;
    for (std::vector<size_t>& cluster : clusters) {
      if (distance(cluster.front(), i) <= threshold) {
        cluster.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) clusters.push_back({i});
  }
  return clusters;
}

}  // namespace pdd
