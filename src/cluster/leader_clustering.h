// Single-pass leader clustering of items under a distance callback:
// each item joins the first cluster whose leader is within the distance
// threshold, else founds a new cluster. Deterministic and O(n·k).

#ifndef PDD_CLUSTER_LEADER_CLUSTERING_H_
#define PDD_CLUSTER_LEADER_CLUSTERING_H_

#include <functional>
#include <vector>

namespace pdd {

/// Pairwise distance callback on item indices; must be symmetric and
/// non-negative.
using DistanceFn = std::function<double(size_t, size_t)>;

/// Clusters item indices [0, n). Returns clusters in founding order; each
/// cluster's first element is its leader. Every item appears in exactly
/// one cluster.
std::vector<std::vector<size_t>> LeaderClustering(size_t n,
                                                  const DistanceFn& distance,
                                                  double threshold);

}  // namespace pdd

#endif  // PDD_CLUSTER_LEADER_CLUSTERING_H_
