#include "columnar/relation_arena.h"

#include <limits>

#include "cache/pair_digest.h"
#include "sim/columnar_kernels.h"

namespace pdd {

namespace {

// FNV-1a 64-bit, the repo-wide digest idiom (cache/pair_digest.cc,
// PlanSpec::Fingerprint).
constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvText(std::string_view s) {
  uint64_t h = kFnvOffset;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::shared_ptr<const RelationArena> RelationArena::Build(
    const XRelation& rel) {
  constexpr size_t kMax = std::numeric_limits<uint32_t>::max();
  const Schema& schema = rel.schema();
  std::shared_ptr<RelationArena> arena(new RelationArena());
  const size_t arity = schema.arity();
  arena->arity_ = arity;
  const size_t tuples = rel.size();
  arena->tuple_row_begin_.reserve(tuples);
  arena->tuple_row_end_.reserve(tuples);
  arena->tuple_digest_.reserve(tuples);
  arena->row_cond_prob_.reserve(rel.TotalAlternatives());
  Value expanded;  // reused across values to avoid reallocation churn
  for (size_t t = 0; t < tuples; ++t) {
    const XTuple& tuple = rel.xtuple(t);
    arena->tuple_row_begin_.push_back(
        static_cast<uint32_t>(arena->row_cond_prob_.size()));
    // The cache key hashes the ORIGINAL (prepared but unexpanded)
    // content — exactly what the lazily-memoized executor path hashed.
    arena->tuple_digest_.push_back(TupleContentDigest(tuple));
    const std::vector<double> cond = tuple.ConditionedProbabilities();
    for (size_t i = 0; i < tuple.size(); ++i) {
      arena->row_cond_prob_.push_back(cond[i]);
      const AltTuple& alt_tuple = tuple.alternative(i);
      for (size_t attr = 0; attr < arity; ++attr) {
        const Value& raw = alt_tuple.values[attr];
        const Value* value = &raw;
        if (raw.has_pattern()) {
          // Same expansion TupleMatcher::MatchAttribute performs per
          // pair, hoisted to build time: alternative order, merged
          // masses and ⊥ mass are identical.
          expanded = raw.Expanded(schema.attribute(attr).vocabulary);
          value = &expanded;
        }
        arena->value_alt_begin_.push_back(
            static_cast<uint32_t>(arena->alt_offset_.size()));
        for (const Alternative& da : value->alternatives()) {
          if (arena->bytes_.size() + da.text.size() > kMax ||
              arena->alt_offset_.size() >= kMax) {
            return nullptr;
          }
          arena->alt_offset_.push_back(
              static_cast<uint32_t>(arena->bytes_.size()));
          arena->alt_length_.push_back(
              static_cast<uint32_t>(da.text.size()));
          arena->bytes_.append(da.text);
          arena->alt_prob_.push_back(da.prob);
          arena->alt_sig_.push_back(QGram2Signature(da.text));
          arena->alt_digest_.push_back(FnvText(da.text));
        }
        arena->value_alt_end_.push_back(
            static_cast<uint32_t>(arena->alt_offset_.size()));
        arena->value_null_prob_.push_back(value->null_probability());
      }
    }
    if (arena->row_cond_prob_.size() > kMax) return nullptr;
    arena->tuple_row_end_.push_back(
        static_cast<uint32_t>(arena->row_cond_prob_.size()));
  }
  return arena;
}

}  // namespace pdd
