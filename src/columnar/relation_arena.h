// RelationArena: a prepared x-relation flattened into contiguous
// structure-of-arrays columns, built once per run and shared read-only
// by the executor, the sharded stream and the decision cache's digest
// path. The arena is the data layout the columnar match kernels
// (sim/columnar_kernels.h) batch over: no per-pair allocation, no
// pointer chasing through XTuple/Value object graphs in the hot loop.
//
// Layout (all indices are dense, uint32):
//
//   bytes            ┌──────────────────────────────────────────────┐
//   (one string      │ "Tim" "John" "Johan" "mueller" "miller" ...  │
//    arena)          └──────────────────────────────────────────────┘
//                       ▲ per value-alternative k:
//   alt columns         offset(k), length(k)  — span into `bytes`
//                       prob(k)               — alternative probability
//                       sig(k)                — QGram2Signature(text)
//                       digest(k)             — FNV-1a(text)
//
//   value columns      per value v = row · arity + attr:
//                       alt_begin(v), alt_end(v) — range of alt columns
//                       null_prob(v)             — ⊥ mass of the value
//
//   row columns        per alternative tuple r (rows flattened across
//                       x-tuples): cond_prob(r) = p(t_i)/p(t)
//
//   tuple columns      per x-tuple t:
//                       row_begin(t), row_end(t) — range of row columns
//                       digest(t) — TupleContentDigest of the original
//                                   (unexpanded) x-tuple, i.e. exactly
//                                   the cache/pair_digest.h value
//
// Pattern values ('mu*') are expanded against the attribute vocabulary
// at build time — the same expansion TupleMatcher::MatchAttribute does
// per pair — so kernels only ever see literal alternatives and the
// per-pair expansion cost disappears from the hot path.
//
// Build() returns nullptr when any column index would overflow uint32
// (relations beyond ~4G alternative bytes); callers fall back to the
// scalar per-pair path in that case.

#ifndef PDD_COLUMNAR_RELATION_ARENA_H_
#define PDD_COLUMNAR_RELATION_ARENA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pdb/xrelation.h"

namespace pdd {

class RelationArena {
 public:
  /// Flattens `rel` (schema taken from the relation). Returns nullptr
  /// on uint32 column overflow — never fails otherwise.
  static std::shared_ptr<const RelationArena> Build(const XRelation& rel);

  // --- shape --------------------------------------------------------
  size_t tuple_count() const { return tuple_row_begin_.size(); }
  size_t arity() const { return arity_; }
  size_t row_count() const { return row_cond_prob_.size(); }
  size_t alternative_count() const { return alt_offset_.size(); }
  size_t byte_count() const { return bytes_.size(); }

  // --- per x-tuple t ------------------------------------------------
  uint32_t tuple_row_begin(size_t t) const { return tuple_row_begin_[t]; }
  uint32_t tuple_row_end(size_t t) const { return tuple_row_end_[t]; }
  /// TupleContentDigest of the original x-tuple — the executor's cache
  /// key half, precomputed here instead of lazily memoized per run.
  uint64_t tuple_digest(size_t t) const { return tuple_digest_[t]; }

  // --- per row (alternative tuple) r --------------------------------
  /// Conditioned probability p(t_i)/p(t) of the row's alternative.
  double row_cond_prob(size_t r) const { return row_cond_prob_[r]; }
  const double* row_cond_prob_data() const { return row_cond_prob_.data(); }

  // --- per value v = r * arity + attr -------------------------------
  size_t value_index(size_t r, size_t attr) const {
    return r * arity_ + attr;
  }
  uint32_t value_alt_begin(size_t v) const { return value_alt_begin_[v]; }
  uint32_t value_alt_end(size_t v) const { return value_alt_end_[v]; }
  double value_null_prob(size_t v) const { return value_null_prob_[v]; }

  // --- per value-alternative k --------------------------------------
  std::string_view alt_text(size_t k) const {
    return std::string_view(bytes_.data() + alt_offset_[k], alt_length_[k]);
  }
  double alt_prob(size_t k) const { return alt_prob_[k]; }
  /// Padded-2-gram bitset signature of the alternative text (zero AND
  /// proves empty gram intersection — see sim/columnar_kernels.h).
  uint64_t alt_sig(size_t k) const { return alt_sig_[k]; }
  /// FNV-1a digest of the alternative text; unequal digests prove
  /// unequal texts (equality pre-screens without a byte compare).
  uint64_t alt_digest(size_t k) const { return alt_digest_[k]; }

 private:
  RelationArena() = default;

  size_t arity_ = 0;
  std::string bytes_;
  std::vector<uint32_t> alt_offset_;
  std::vector<uint32_t> alt_length_;
  std::vector<double> alt_prob_;
  std::vector<uint64_t> alt_sig_;
  std::vector<uint64_t> alt_digest_;
  std::vector<uint32_t> value_alt_begin_;
  std::vector<uint32_t> value_alt_end_;
  std::vector<double> value_null_prob_;
  std::vector<double> row_cond_prob_;
  std::vector<uint32_t> tuple_row_begin_;
  std::vector<uint32_t> tuple_row_end_;
  std::vector<uint64_t> tuple_digest_;
};

}  // namespace pdd

#endif  // PDD_COLUMNAR_RELATION_ARENA_H_
