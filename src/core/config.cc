#include "core/config.h"

#include "reduction/pruning.h"

namespace pdd {

const char* ReductionMethodName(ReductionMethod method) {
  switch (method) {
    case ReductionMethod::kFull:
      return "full";
    case ReductionMethod::kSnmMultipassWorlds:
      return "snm_multipass_worlds";
    case ReductionMethod::kSnmCertainKeys:
      return "snm_certain_keys";
    case ReductionMethod::kSnmSortingAlternatives:
      return "snm_sorting_alternatives";
    case ReductionMethod::kSnmUncertainRanking:
      return "snm_uncertain_ranking";
    case ReductionMethod::kBlockingCertainKeys:
      return "blocking_certain_keys";
    case ReductionMethod::kBlockingAlternatives:
      return "blocking_alternatives";
    case ReductionMethod::kBlockingMultipassWorlds:
      return "blocking_multipass_worlds";
    case ReductionMethod::kBlockingClustered:
      return "blocking_clustered";
    case ReductionMethod::kCanopy:
      return "canopy";
    case ReductionMethod::kSnmAdaptive:
      return "snm_adaptive";
    case ReductionMethod::kQGramIndex:
      return "qgram_index";
  }
  return "unknown";
}

const char* DerivationKindName(DerivationKind kind) {
  switch (kind) {
    case DerivationKind::kExpectedSimilarity:
      return "expected_similarity";
    case DerivationKind::kMatchingWeight:
      return "matching_weight";
    case DerivationKind::kExpectedMatching:
      return "expected_matching";
    case DerivationKind::kMaxSimilarity:
      return "max_similarity";
    case DerivationKind::kMinSimilarity:
      return "min_similarity";
    case DerivationKind::kModeSimilarity:
      return "mode_similarity";
  }
  return "unknown";
}

const char* MatchKernelName(MatchKernel kernel) {
  switch (kernel) {
    case MatchKernel::kAuto:
      return "auto";
    case MatchKernel::kScalar:
      return "scalar";
    case MatchKernel::kColumnar:
      return "columnar";
  }
  return "unknown";
}

Result<MatchKernel> MatchKernelFromName(std::string_view name) {
  if (name == "auto") return MatchKernel::kAuto;
  if (name == "scalar") return MatchKernel::kScalar;
  if (name == "columnar") return MatchKernel::kColumnar;
  return Status::InvalidArgument("unknown match kernel '" +
                                 std::string(name) +
                                 "' (expected auto, scalar or columnar)");
}

Status DetectorConfig::Validate() const {
  if (key.empty()) {
    return Status::InvalidArgument("config needs at least one key component");
  }
  bool needs_window = reduction == ReductionMethod::kSnmMultipassWorlds ||
                      reduction == ReductionMethod::kSnmCertainKeys ||
                      reduction == ReductionMethod::kSnmSortingAlternatives ||
                      reduction == ReductionMethod::kSnmUncertainRanking;
  if (needs_window && window < 2) {
    return Status::InvalidArgument("SNM window must be at least 2");
  }
  PDD_RETURN_IF_ERROR(intermediate.Validate());
  PDD_RETURN_IF_ERROR(final_thresholds.Validate());
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("negative combination weight");
  }
  if (combination == CombinationKind::kFellegiSunter &&
      fs_attributes.empty()) {
    return Status::InvalidArgument(
        "Fellegi-Sunter combination needs fs_attributes");
  }
  if (combination == CombinationKind::kRules && rules_text.empty()) {
    return Status::InvalidArgument("rule combination needs rules_text");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (shard_count == 0) {
    return Status::InvalidArgument(
        "shard_count must be at least 1 (1 = unsharded)");
  }
  if (prune_threshold < 0.0 || prune_threshold > 1.0) {
    return Status::InvalidArgument("prune_threshold must be in [0, 1]");
  }
  if (prune) {
    // The length-bound filter is only sound for comparators normalized
    // by max length (see reduction/pruning.h). Positions overridden by
    // a custom comparator instance are the caller's responsibility;
    // empty / "default" entries are checked against their per-type
    // resolution at plan compile time, when the schema is known.
    for (size_t i = 0; i < comparators.size(); ++i) {
      if (i < custom_comparators.size() && custom_comparators[i] != nullptr) {
        continue;
      }
      const std::string& name = comparators[i];
      if (name.empty() || name == "default" ||
          IsMaxLengthNormalizedComparator(name)) {
        continue;
      }
      return Status::InvalidArgument(
          "prune requires max-length-normalized comparators (hamming/"
          "levenshtein/damerau/lcs/exact/exact_nocase/prefix); '" +
          name + "' is not");
    }
  }
  return Status::OK();
}

}  // namespace pdd
