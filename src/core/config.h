// Configuration of the end-to-end duplicate detection pipeline.

#ifndef PDD_CORE_CONFIG_H_
#define PDD_CORE_CONFIG_H_

#include <optional>
#include <string>
#include <vector>

#include "decision/classifier.h"
#include "decision/fellegi_sunter.h"
#include "fusion/conflict_resolution.h"
#include "pdb/world_selection.h"
#include "plan/plan_spec.h"
#include "prep/standardizer.h"
#include "reduction/blocking_clustered.h"
#include "reduction/canopy.h"
#include "reduction/qgram_index.h"
#include "reduction/shard_partitioner.h"
#include "reduction/snm_adaptive.h"
#include "reduction/snm_uncertain_ranking.h"
#include "sim/comparator.h"
#include "util/status.h"

namespace pdd {

/// Which search space reduction method feeds the decision model.
enum class ReductionMethod {
  kFull = 0,
  kSnmMultipassWorlds = 1,
  kSnmCertainKeys = 2,
  kSnmSortingAlternatives = 3,
  kSnmUncertainRanking = 4,
  kBlockingCertainKeys = 5,
  kBlockingAlternatives = 6,
  kBlockingMultipassWorlds = 7,
  kBlockingClustered = 8,
  kCanopy = 9,
  kSnmAdaptive = 10,
  kQGramIndex = 11,
};

/// Stable name of a reduction method.
const char* ReductionMethodName(ReductionMethod method);

/// How comparison vectors collapse into a similarity degree (Step 1 of
/// Fig. 6).
enum class CombinationKind {
  /// Weighted sum with `weights` (normalized certainty-style degree).
  kWeightedSum = 0,
  /// Fellegi-Sunter matching weight (unnormalized likelihood ratio).
  kFellegiSunter = 1,
  /// Knowledge-based identification rules (Fig. 1): φ(c⃗) is the
  /// combined certainty factor of the firing rules from `rules_text`.
  kRules = 2,
};

/// Which derivation function ϑ aggregates alternative pair scores
/// (Step 2 of Fig. 6).
enum class DerivationKind {
  /// Eq. 6 conditional expected similarity (similarity-based).
  kExpectedSimilarity = 0,
  /// Eq. 7-9 matching weight P(m)/P(u) (decision-based).
  kMatchingWeight = 1,
  /// Expected matching result E[η], η ∈ {m=2, p=1, u=0} (decision-based).
  kExpectedMatching = 2,
  /// Max / min / mode similarity-based variants.
  kMaxSimilarity = 3,
  kMinSimilarity = 4,
  kModeSimilarity = 5,
};

/// Stable name of a derivation kind.
const char* DerivationKindName(DerivationKind kind);

/// Which match-stage implementation the executor runs. Purely a
/// throughput knob: the columnar kernel path is bit-identical to the
/// scalar per-pair path (see sim/columnar_kernels.h), so the choice
/// never appears in plan fingerprints or reports.
enum class MatchKernel {
  /// Columnar when every resolved comparator has a kernel, else scalar.
  kAuto = 0,
  /// Force the per-pair TupleMatcher virtual-dispatch path.
  kScalar = 1,
  /// Force the columnar path; plan compilation fails when a selected
  /// comparator has no kernel.
  kColumnar = 2,
};

/// Stable name of a match kernel selection ("auto", "scalar",
/// "columnar").
const char* MatchKernelName(MatchKernel kernel);

/// Parses a match kernel name; InvalidArgument on unknown names.
Result<MatchKernel> MatchKernelFromName(std::string_view name);

/// Full pipeline configuration. Defaults reproduce the paper's running
/// setup: key = name[3] + job[2], weighted sum φ with (0.8, 0.2),
/// expected-similarity derivation, thresholds Tλ=0.4, Tμ=0.7.
struct DetectorConfig {
  /// Key components: (attribute name, prefix length; 0 = whole value).
  std::vector<std::pair<std::string, size_t>> key = {{"name", 3}, {"job", 2}};

  ReductionMethod reduction = ReductionMethod::kFull;
  /// SNM window size (methods 1-4).
  size_t window = 3;
  /// World selection for multi-pass methods.
  WorldSelectionOptions world_selection;
  /// Conflict resolution for certain-key methods.
  ConflictStrategy conflict_strategy = ConflictStrategy::kMostProbable;
  /// Ranking function for uncertain-key SNM.
  RankingMethod ranking_method = RankingMethod::kPositional;
  /// Clustered blocking parameters.
  ClusteredBlockingOptions clustering;
  /// Canopy reduction parameters.
  CanopyOptions canopy;
  /// Adaptive SNM parameters.
  SnmAdaptiveOptions adaptive;
  /// Q-gram index parameters.
  QGramIndexOptions qgram;
  /// Optional data preparation (Section III-A) applied to the input
  /// relation before reduction and matching.
  std::optional<DataPreparation> preparation;
  /// Wrap the reduction method in the length-bound pruning filter
  /// (Section III-B's third heuristic). Sound only for
  /// max-length-normalized comparators (hamming/levenshtein/damerau/lcs).
  bool prune = false;
  /// Pruning threshold; pairs whose upper-bound combined similarity is
  /// below it are discarded. Use the pipeline's Tλ.
  double prune_threshold = 0.4;

  /// Per-attribute comparator registry names; empty selects defaults by
  /// attribute type (hamming for strings — the paper's choice — and
  /// numeric_rel for numerics).
  std::vector<std::string> comparators;
  /// Per-attribute comparator instances overriding `comparators` when
  /// non-empty (for trained comparators like SoftTFIDF that cannot live
  /// in the registry). Entries may be null to fall back to the named /
  /// default comparator for that attribute. Pointees must outlive the
  /// detector.
  std::vector<const Comparator*> custom_comparators;

  CombinationKind combination = CombinationKind::kWeightedSum;
  /// Weighted-sum weights (empty = uniform 1/n).
  std::vector<double> weights = {0.8, 0.2};
  /// Fellegi-Sunter parameters (combination == kFellegiSunter).
  std::vector<FsAttribute> fs_attributes;
  /// Use the Winkler-interpolated FS weight instead of the binarized one
  /// (continuous comparator evidence reaches the likelihood ratio).
  bool fs_interpolated = false;
  /// Identification rules, one per line (combination == kRules); parsed
  /// against the schema at Make() (see decision/rule_parser.h).
  std::string rules_text;

  DerivationKind derivation = DerivationKind::kExpectedSimilarity;
  /// Intermediate thresholds classifying alternative pairs
  /// (decision-based derivations).
  Thresholds intermediate{0.4, 0.7};
  /// Final thresholds classifying the derived similarity. For
  /// unnormalized derivations (matching weight), choose weight-scale
  /// thresholds, e.g. {0.8, 1.2}.
  Thresholds final_thresholds{0.4, 0.7};

  /// Stage executor tuning: candidates per batch handed to the stage
  /// pipeline, and worker threads deciding batches (0 or 1 = serial on
  /// the calling thread). Results are identical for any worker count.
  size_t batch_size = 256;
  size_t workers = 0;

  /// Match-stage implementation (spec key `match.kernel`, accepted by
  /// FromSpec like the executor keys but never printed by ToSpec —
  /// both paths produce bit-identical results, so the choice is not
  /// plan identity).
  MatchKernel match_kernel = MatchKernel::kAuto;

  /// Candidate-stream sharding (pipeline/sharded_stream.h): partition
  /// the candidate universe into this many per-shard sources, drained
  /// by per-shard worker sets and merged deterministically — results
  /// are identical for any shard count. 1 = unsharded. Spec keys
  /// `shard.count` / `shard.strategy` carry these declaratively
  /// (fingerprint-relevant only when the count is not 1); detectors can
  /// also override them per run without touching the plan.
  size_t shard_count = 1;
  /// How tuples map to shards; kAuto resolves per reduction family
  /// (index ranges / sort-key ranges / block subsets).
  ShardStrategy shard_strategy = ShardStrategy::kAuto;

  /// Basic sanity validation (window, thresholds, weight count,
  /// pruning soundness: `prune_threshold` must lie in [0, 1] and
  /// `prune` requires every named comparator to be max-length-
  /// normalized).
  Status Validate() const;

  // --- declarative form (src/plan/) ---------------------------------
  // DetectorConfig is a thin bidirectional translator over PlanSpec:
  // the spec is the canonical, text-representable, fingerprintable
  // form; this struct is its C++-native projection. Implemented in
  // plan/translate.cc.

  /// The declarative spec of this config. Prints only the parameters
  /// the selected components read; pointer-valued fields (custom
  /// comparators, token-map standardizers) appear as "custom" markers
  /// that FromSpec refuses to resolve.
  PlanSpec ToSpec() const;

  /// Builds a config from a spec, applying the spec's assignments over
  /// `base` (absent keys keep the base value; the no-base overload
  /// starts from a default-constructed config). Component names resolve
  /// through the ComponentRegistry; unknown names and unknown parameter
  /// keys are InvalidArgument.
  static Result<DetectorConfig> FromSpec(const PlanSpec& spec);
  static Result<DetectorConfig> FromSpec(const PlanSpec& spec,
                                         DetectorConfig base);
};

}  // namespace pdd

#endif  // PDD_CORE_CONFIG_H_
