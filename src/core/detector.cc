#include "core/detector.h"

#include "decision/rule_engine.h"
#include "decision/rule_parser.h"
#include "reduction/blocking.h"
#include "reduction/pruning.h"
#include "reduction/blocking_alternatives.h"
#include "reduction/blocking_clustered.h"
#include "reduction/full_pairs.h"
#include "reduction/snm_certain_keys.h"
#include "reduction/snm_multipass_worlds.h"
#include "reduction/snm_sorting_alternatives.h"
#include "reduction/snm_uncertain_ranking.h"
#include "sim/registry.h"

namespace pdd {

namespace {

std::vector<IdPair> FilterByClass(const DetectionResult& result,
                                  MatchClass match_class) {
  std::vector<IdPair> out;
  for (const PairDecisionRecord& rec : result.decisions) {
    if (rec.match_class == match_class) {
      out.push_back(MakeIdPair(rec.id1, rec.id2));
    }
  }
  return out;
}

}  // namespace

std::vector<IdPair> DetectionResult::Matches() const {
  return FilterByClass(*this, MatchClass::kMatch);
}

std::vector<IdPair> DetectionResult::PossibleMatches() const {
  return FilterByClass(*this, MatchClass::kPossible);
}

std::vector<IdPair> DetectionResult::Unmatches() const {
  return FilterByClass(*this, MatchClass::kUnmatch);
}

EffectivenessMetrics Evaluate(const DetectionResult& result,
                              const GoldStandard& gold,
                              bool count_possible_as_match) {
  ConfusionCounts counts;
  size_t gold_declared = 0;
  for (const PairDecisionRecord& rec : result.decisions) {
    bool predicted = rec.match_class == MatchClass::kMatch ||
                     (count_possible_as_match &&
                      rec.match_class == MatchClass::kPossible);
    bool actual = gold.IsMatch(rec.id1, rec.id2);
    if (predicted) {
      if (actual) {
        ++counts.true_positives;
        ++gold_declared;
      } else {
        ++counts.false_positives;
      }
    } else if (actual) {
      ++counts.false_negatives;
      ++gold_declared;
    }
  }
  // Gold pairs pruned by the reduction step were never examined: they are
  // implicit false negatives.
  counts.false_negatives += gold.size() - gold_declared;
  // Everything else (examined non-matches and pruned non-gold pairs).
  counts.true_negatives = result.total_pairs - counts.true_positives -
                          counts.false_positives - counts.false_negatives;
  return ComputeEffectiveness(counts);
}

ReductionMetrics EvaluateReduction(const DetectionResult& result,
                                   const GoldStandard& gold) {
  std::vector<IdPair> candidates;
  candidates.reserve(result.decisions.size());
  for (const PairDecisionRecord& rec : result.decisions) {
    candidates.push_back(MakeIdPair(rec.id1, rec.id2));
  }
  return ComputeReduction(result.candidate_count, result.total_pairs,
                          gold.CountCovered(candidates), gold.size());
}

Result<DuplicateDetector> DuplicateDetector::Make(DetectorConfig config,
                                                  Schema schema) {
  PDD_RETURN_IF_ERROR(config.Validate());
  DuplicateDetector detector;
  // Key spec.
  PDD_ASSIGN_OR_RETURN(detector.key_spec_,
                       KeySpec::FromNames(config.key, schema));
  // Comparators: explicit names or per-type defaults.
  std::vector<const Comparator*> comparators(schema.arity(), nullptr);
  if (!config.comparators.empty() &&
      config.comparators.size() != schema.arity()) {
    return Status::InvalidArgument(
        "comparator list must match schema arity or be empty");
  }
  if (!config.custom_comparators.empty() &&
      config.custom_comparators.size() != schema.arity()) {
    return Status::InvalidArgument(
        "custom comparator list must match schema arity or be empty");
  }
  for (size_t i = 0; i < schema.arity(); ++i) {
    if (!config.custom_comparators.empty() &&
        config.custom_comparators[i] != nullptr) {
      comparators[i] = config.custom_comparators[i];
      continue;
    }
    std::string name;
    if (!config.comparators.empty()) {
      name = config.comparators[i];
    } else {
      name = schema.attribute(i).type == ValueType::kNumeric ? "numeric_rel"
                                                             : "hamming";
    }
    PDD_ASSIGN_OR_RETURN(comparators[i], GetComparator(name));
  }
  PDD_ASSIGN_OR_RETURN(TupleMatcher matcher,
                       TupleMatcher::Make(schema, comparators));
  detector.matcher_ = std::make_unique<TupleMatcher>(std::move(matcher));
  // Combination function.
  switch (config.combination) {
    case CombinationKind::kWeightedSum: {
      std::vector<double> weights = config.weights;
      if (weights.empty()) {
        weights.assign(schema.arity(), 1.0 / static_cast<double>(
                                                 schema.arity()));
      }
      if (weights.size() != schema.arity()) {
        return Status::InvalidArgument(
            "weight count must match schema arity");
      }
      PDD_ASSIGN_OR_RETURN(WeightedSumCombination sum,
                           WeightedSumCombination::Make(std::move(weights)));
      detector.combination_ =
          std::make_unique<WeightedSumCombination>(std::move(sum));
      break;
    }
    case CombinationKind::kFellegiSunter: {
      PDD_ASSIGN_OR_RETURN(FellegiSunterModel fs,
                           FellegiSunterModel::Make(config.fs_attributes,
                                                    config.fs_interpolated));
      detector.combination_ =
          std::make_unique<FellegiSunterModel>(std::move(fs));
      break;
    }
    case CombinationKind::kRules: {
      PDD_ASSIGN_OR_RETURN(std::vector<IdentificationRule> rules,
                           ParseRules(config.rules_text, schema));
      PDD_ASSIGN_OR_RETURN(RuleEngine engine,
                           RuleEngine::Make(std::move(rules), schema));
      detector.combination_ =
          std::make_unique<RuleCombination>(std::move(engine));
      break;
    }
  }
  // Derivation function.
  switch (config.derivation) {
    case DerivationKind::kExpectedSimilarity:
      detector.derivation_ = std::make_unique<ExpectedSimilarityDerivation>();
      break;
    case DerivationKind::kMatchingWeight:
      detector.derivation_ =
          std::make_unique<MatchingWeightDerivation>(config.intermediate);
      break;
    case DerivationKind::kExpectedMatching:
      detector.derivation_ = std::make_unique<ExpectedMatchingDerivation>(
          config.intermediate, /*normalize=*/true);
      break;
    case DerivationKind::kMaxSimilarity:
      detector.derivation_ = std::make_unique<MaxSimilarityDerivation>();
      break;
    case DerivationKind::kMinSimilarity:
      detector.derivation_ = std::make_unique<MinSimilarityDerivation>();
      break;
    case DerivationKind::kModeSimilarity:
      detector.derivation_ = std::make_unique<ModeSimilarityDerivation>();
      break;
  }
  detector.model_ = std::make_unique<XTupleDecisionModel>(
      detector.matcher_.get(), detector.combination_.get(),
      detector.derivation_.get(), config.final_thresholds);
  detector.schema_ = std::move(schema);
  detector.config_ = std::move(config);
  return detector;
}

std::unique_ptr<PairGenerator> DuplicateDetector::MakePairGenerator() const {
  std::unique_ptr<PairGenerator> inner = MakeReductionGenerator();
  if (!config_.prune) return inner;
  PruningOptions options;
  options.threshold = config_.prune_threshold;
  options.weights = config_.weights;
  return std::make_unique<PruningFilter>(std::move(inner), options);
}

std::unique_ptr<PairGenerator> DuplicateDetector::MakeReductionGenerator()
    const {
  switch (config_.reduction) {
    case ReductionMethod::kFull:
      return std::make_unique<FullPairs>();
    case ReductionMethod::kSnmMultipassWorlds: {
      SnmMultipassOptions options;
      options.window = config_.window;
      options.selection = config_.world_selection;
      options.value_strategy = config_.conflict_strategy;
      return std::make_unique<SnmMultipassWorlds>(key_spec_, options);
    }
    case ReductionMethod::kSnmCertainKeys: {
      SnmCertainKeyOptions options;
      options.window = config_.window;
      options.strategy = config_.conflict_strategy;
      return std::make_unique<SnmCertainKeys>(key_spec_, options);
    }
    case ReductionMethod::kSnmSortingAlternatives: {
      SnmAlternativesOptions options;
      options.window = config_.window;
      return std::make_unique<SnmSortingAlternatives>(key_spec_, options);
    }
    case ReductionMethod::kSnmUncertainRanking: {
      SnmRankingOptions options;
      options.window = config_.window;
      options.method = config_.ranking_method;
      return std::make_unique<SnmUncertainRanking>(key_spec_, options);
    }
    case ReductionMethod::kBlockingCertainKeys:
      return std::make_unique<BlockingCertainKeys>(key_spec_,
                                                   config_.conflict_strategy);
    case ReductionMethod::kBlockingAlternatives:
      return std::make_unique<BlockingAlternatives>(key_spec_);
    case ReductionMethod::kBlockingMultipassWorlds:
      return std::make_unique<BlockingMultipassWorlds>(
          key_spec_, config_.world_selection);
    case ReductionMethod::kBlockingClustered:
      return std::make_unique<BlockingClustered>(key_spec_,
                                                 config_.clustering);
    case ReductionMethod::kCanopy:
      return std::make_unique<CanopyReduction>(key_spec_, config_.canopy);
    case ReductionMethod::kSnmAdaptive:
      return std::make_unique<SnmAdaptive>(key_spec_, config_.adaptive);
    case ReductionMethod::kQGramIndex:
      return std::make_unique<QGramIndexReduction>(key_spec_,
                                                   config_.qgram);
  }
  return std::make_unique<FullPairs>();
}

Result<DetectionResult> DuplicateDetector::Run(const XRelation& input) const {
  if (!input.schema().CompatibleWith(schema_)) {
    return Status::InvalidArgument("relation schema incompatible with "
                                   "detector schema");
  }
  // Step III-A: data preparation, when configured.
  XRelation prepared;
  const XRelation* rel_ptr = &input;
  if (config_.preparation.has_value()) {
    prepared = config_.preparation->Prepare(input);
    rel_ptr = &prepared;
  }
  const XRelation& rel = *rel_ptr;
  std::unique_ptr<PairGenerator> generator = MakePairGenerator();
  PDD_ASSIGN_OR_RETURN(std::vector<CandidatePair> candidates,
                       generator->Generate(rel));
  DetectionResult result;
  result.candidate_count = candidates.size();
  result.total_pairs = rel.size() * (rel.size() - 1) / 2;
  result.decisions.reserve(candidates.size());
  for (const CandidatePair& pair : candidates) {
    const XTuple& t1 = rel.xtuple(pair.first);
    const XTuple& t2 = rel.xtuple(pair.second);
    XPairDecision decision = model_->Decide(t1, t2);
    result.decisions.push_back({t1.id(), t2.id(), pair.first, pair.second,
                                decision.similarity, decision.match_class});
  }
  return result;
}

Result<DetectionResult> DuplicateDetector::RunOnSources(
    const XRelation& a, const XRelation& b) const {
  PDD_ASSIGN_OR_RETURN(XRelation merged,
                       XRelation::Union(a, b, a.name() + "+" + b.name()));
  return Run(merged);
}

Result<DetectionResult> DuplicateDetector::RunIncremental(
    const XRelation& existing, const XRelation& additions) const {
  PDD_ASSIGN_OR_RETURN(
      XRelation merged,
      XRelation::Union(existing, additions,
                       existing.name() + "+" + additions.name()));
  if (!merged.schema().CompatibleWith(schema_)) {
    return Status::InvalidArgument("relation schema incompatible with "
                                   "detector schema");
  }
  XRelation prepared;
  const XRelation* rel_ptr = &merged;
  if (config_.preparation.has_value()) {
    prepared = config_.preparation->Prepare(merged);
    rel_ptr = &prepared;
  }
  const XRelation& rel = *rel_ptr;
  const size_t base_count = existing.size();
  std::unique_ptr<PairGenerator> generator = MakePairGenerator();
  PDD_ASSIGN_OR_RETURN(std::vector<CandidatePair> candidates,
                       generator->Generate(rel));
  DetectionResult result;
  // Only pairs touching a new tuple are (re-)examined.
  size_t new_count = additions.size();
  result.total_pairs =
      base_count * new_count + new_count * (new_count - 1) / 2;
  for (const CandidatePair& pair : candidates) {
    if (pair.second < base_count) continue;  // both tuples pre-existing
    const XTuple& t1 = rel.xtuple(pair.first);
    const XTuple& t2 = rel.xtuple(pair.second);
    XPairDecision decision = model_->Decide(t1, t2);
    result.decisions.push_back({t1.id(), t2.id(), pair.first, pair.second,
                                decision.similarity, decision.match_class});
  }
  result.candidate_count = result.decisions.size();
  return result;
}

double DuplicateDetector::PairSimilarity(const XTuple& t1,
                                         const XTuple& t2) const {
  return model_->Similarity(t1, t2);
}

}  // namespace pdd
