#include "core/detector.h"

#include <algorithm>

#include "ingest/standing_session.h"

namespace pdd {

EffectivenessMetrics Evaluate(const DetectionResult& result,
                              const GoldStandard& gold,
                              bool count_possible_as_match) {
  ConfusionCounts counts;
  size_t gold_declared = 0;
  for (const PairDecisionRecord& rec : result.decisions) {
    bool predicted = rec.match_class == MatchClass::kMatch ||
                     (count_possible_as_match &&
                      rec.match_class == MatchClass::kPossible);
    bool actual = gold.IsMatch(rec.id1, rec.id2);
    if (predicted) {
      if (actual) {
        ++counts.true_positives;
        ++gold_declared;
      } else {
        ++counts.false_positives;
      }
    } else if (actual) {
      ++counts.false_negatives;
      ++gold_declared;
    }
  }
  // Gold pairs pruned by the reduction step were never examined: they are
  // implicit false negatives.
  counts.false_negatives += gold.size() - gold_declared;
  // Everything else (examined non-matches and pruned non-gold pairs).
  counts.true_negatives = result.total_pairs - counts.true_positives -
                          counts.false_positives - counts.false_negatives;
  return ComputeEffectiveness(counts);
}

ReductionMetrics EvaluateReduction(const DetectionResult& result,
                                   const GoldStandard& gold) {
  std::vector<IdPair> candidates;
  candidates.reserve(result.decisions.size());
  for (const PairDecisionRecord& rec : result.decisions) {
    candidates.push_back(MakeIdPair(rec.id1, rec.id2));
  }
  return ComputeReduction(result.candidate_count, result.total_pairs,
                          gold.CountCovered(candidates), gold.size());
}

Result<DuplicateDetector> DuplicateDetector::Make(DetectorConfig config,
                                                  Schema schema) {
  PDD_ASSIGN_OR_RETURN(
      std::shared_ptr<const DetectionPlan> plan,
      DetectionPlan::Compile(std::move(config), std::move(schema)));
  return DuplicateDetector(std::move(plan));
}

Result<DuplicateDetector> DuplicateDetector::Make(const PlanSpec& spec,
                                                  Schema schema) {
  PDD_ASSIGN_OR_RETURN(std::shared_ptr<const DetectionPlan> plan,
                       DetectionPlan::Compile(spec, std::move(schema)));
  return DuplicateDetector(std::move(plan));
}

StageExecutor DuplicateDetector::MakeExecutor() const {
  StageExecutorOptions options;
  options.batch_size = plan_->config().batch_size;
  options.workers = plan_->config().workers;
  options.cache = cache_;
  options.stage_timings = collect_stage_timings_;
  return StageExecutor(plan_, options);
}

Result<DetectionResult> DuplicateDetector::Run(const XRelation& input) const {
  ShardOptions shards = shard_options();
  PDD_ASSIGN_OR_RETURN(std::unique_ptr<CandidateStream> stream,
                       shards.count > 1
                           ? MakeShardedFullStream(*plan_, input, shards)
                           : MakeFullStream(*plan_, input));
  return MakeExecutor().Execute(*stream);
}

Result<DetectionResult> DuplicateDetector::RunOnSources(
    const XRelation& a, const XRelation& b) const {
  ShardOptions shards = shard_options();
  PDD_ASSIGN_OR_RETURN(std::unique_ptr<CandidateStream> stream,
                       shards.count > 1
                           ? MakeShardedUnionStream(*plan_, a, b, shards)
                           : MakeUnionStream(*plan_, a, b));
  return MakeExecutor().Execute(*stream);
}

Result<DetectionResult> DuplicateDetector::RunIncremental(
    const XRelation& existing, const XRelation& additions) const {
  // Thin adapter over the standing ingest path: a one-shot session
  // sized to hold every addition (push-then-close, so the unconsumed
  // queue must fit them all), finished as the classic incremental
  // scenario. Admission preserves arrival order and the finish rebuilds
  // the same incremental stream this method used to build directly, so
  // the report is byte-identical to the pre-standing implementation —
  // including the duplicate-id failure the Union step used to raise,
  // now surfaced by the lossless-admission check.
  StandingSession::Options options;
  options.stream.queue_capacity = std::max<size_t>(additions.size(), 1);
  options.stream.max_admitted = std::max<size_t>(additions.size(), 1);
  options.batch_size = plan_->config().batch_size;
  options.workers = plan_->config().workers;
  options.stage_timings = collect_stage_timings_;
  options.cache = cache_;
  PDD_ASSIGN_OR_RETURN(std::unique_ptr<StandingSession> session,
                       StandingSession::Make(plan_, &existing, options));
  for (const XTuple& tuple : additions.xtuples()) {
    session->queue().Push(tuple);
  }
  session->queue().Close();
  return session->FinishIncremental(existing, shard_options());
}

Result<DetectionResult> DuplicateDetector::RunStream(
    CandidateStream& stream) const {
  return MakeExecutor().Execute(stream);
}

double DuplicateDetector::PairSimilarity(const XTuple& t1,
                                         const XTuple& t2) const {
  return plan_->model().Similarity(t1, t2);
}

}  // namespace pdd
