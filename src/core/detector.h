// DuplicateDetector: the end-to-end public API. Wires search space
// reduction (Section V), attribute value matching (Section IV-A), the
// combination function, the x-tuple derivation (Section IV-B) and the
// final classification (Fig. 2) into one configurable pipeline, plus
// verification against a gold standard (Section III-E).

#ifndef PDD_CORE_DETECTOR_H_
#define PDD_CORE_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "derive/decision_based.h"
#include "derive/similarity_based.h"
#include "derive/xtuple_decision_model.h"
#include "match/tuple_matcher.h"
#include "pdb/xrelation.h"
#include "reduction/pair_generator.h"
#include "verify/gold_standard.h"
#include "verify/metrics.h"

namespace pdd {

/// Decision record for one examined candidate pair.
struct PairDecisionRecord {
  std::string id1;
  std::string id2;
  size_t index1 = 0;
  size_t index2 = 0;
  /// The derived similarity sim(t1, t2).
  double similarity = 0.0;
  /// Final classification η(t1, t2).
  MatchClass match_class = MatchClass::kUnmatch;
};

/// Result of one detection run.
struct DetectionResult {
  /// One record per candidate pair, in candidate order.
  std::vector<PairDecisionRecord> decisions;
  /// Candidate pairs examined (after reduction).
  size_t candidate_count = 0;
  /// All n(n-1)/2 pairs of the (unioned) input.
  size_t total_pairs = 0;

  /// Id pairs classified m / p / u.
  std::vector<IdPair> Matches() const;
  std::vector<IdPair> PossibleMatches() const;
  std::vector<IdPair> Unmatches() const;
};

/// Effectiveness of a detection result against a gold standard. Pairs
/// pruned by reduction count as declared non-matches; possible matches
/// count as non-matches unless `count_possible_as_match`.
EffectivenessMetrics Evaluate(const DetectionResult& result,
                              const GoldStandard& gold,
                              bool count_possible_as_match = false);

/// Reduction quality of a detection run (reduction ratio, pairs
/// completeness, pairs quality) against a gold standard.
ReductionMetrics EvaluateReduction(const DetectionResult& result,
                                   const GoldStandard& gold);

/// The configurable end-to-end detector. Construct once per schema with
/// Make(), then run on any x-relation with that schema.
class DuplicateDetector {
 public:
  /// Validates the configuration against the schema and resolves
  /// comparators, key spec, combination and derivation functions.
  static Result<DuplicateDetector> Make(DetectorConfig config, Schema schema);

  /// Runs the pipeline on one x-relation.
  Result<DetectionResult> Run(const XRelation& rel) const;

  /// Integration form: unions two sources (Section I's scenario), then
  /// runs on the union. Tuple ids must be unique across sources.
  Result<DetectionResult> RunOnSources(const XRelation& a,
                                       const XRelation& b) const;

  /// Incremental form: `existing` was already deduplicated; only pairs
  /// involving a tuple of `additions` are examined (intra-existing pairs
  /// are skipped). total_pairs counts only the incremental pairs, so
  /// verification metrics refer to the increment.
  Result<DetectionResult> RunIncremental(const XRelation& existing,
                                         const XRelation& additions) const;

  /// Derived similarity of a single x-tuple pair under this
  /// configuration (bypasses reduction).
  double PairSimilarity(const XTuple& t1, const XTuple& t2) const;

  const DetectorConfig& config() const { return config_; }
  const Schema& schema() const { return schema_; }

  /// Resolved pipeline components (for explanations and diagnostics).
  const TupleMatcher& matcher() const { return *matcher_; }
  const CombinationFunction& combination() const { return *combination_; }
  const DerivationFunction& derivation_function() const {
    return *derivation_;
  }

 private:
  DuplicateDetector() = default;

  /// Builds the configured pair generator (stateless w.r.t. relations),
  /// wrapped in the pruning filter when configured.
  std::unique_ptr<PairGenerator> MakePairGenerator() const;

  /// The bare reduction method without the pruning wrapper.
  std::unique_ptr<PairGenerator> MakeReductionGenerator() const;

  DetectorConfig config_;
  Schema schema_;
  KeySpec key_spec_;
  std::unique_ptr<TupleMatcher> matcher_;
  std::unique_ptr<CombinationFunction> combination_;
  std::unique_ptr<DerivationFunction> derivation_;
  std::unique_ptr<XTupleDecisionModel> model_;
};

}  // namespace pdd

#endif  // PDD_CORE_DETECTOR_H_
