// DuplicateDetector: the end-to-end public API. Make() compiles the
// configuration into a DetectionPlan (search space reduction Section V,
// attribute value matching Section IV-A, the combination function, the
// x-tuple derivation Section IV-B and the final classification Fig. 2);
// the Run* entry points are thin adapters that build the scenario's
// CandidateStream and hand it to the shared StageExecutor. Verification
// against a gold standard (Section III-E) rides on the result.

#ifndef PDD_CORE_DETECTOR_H_
#define PDD_CORE_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "cache/decision_cache.h"
#include "core/config.h"
#include "pdb/xrelation.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/detection_plan.h"
#include "pipeline/detection_result.h"
#include "pipeline/sharded_stream.h"
#include "pipeline/stage_executor.h"
#include "verify/gold_standard.h"
#include "verify/metrics.h"

namespace pdd {

/// Effectiveness of a detection result against a gold standard. Pairs
/// pruned by reduction count as declared non-matches; possible matches
/// count as non-matches unless `count_possible_as_match`.
EffectivenessMetrics Evaluate(const DetectionResult& result,
                              const GoldStandard& gold,
                              bool count_possible_as_match = false);

/// Reduction quality of a detection run (reduction ratio, pairs
/// completeness, pairs quality) against a gold standard.
ReductionMetrics EvaluateReduction(const DetectionResult& result,
                                   const GoldStandard& gold);

/// The configurable end-to-end detector. Construct once per schema with
/// Make(), then run on any x-relation with that schema. Copies share
/// the compiled plan; all Run* methods are const and thread-safe.
class DuplicateDetector {
 public:
  /// Compiles the configuration against the schema into a shared
  /// DetectionPlan (resolved comparators, key spec, combination and
  /// derivation functions).
  static Result<DuplicateDetector> Make(DetectorConfig config, Schema schema);

  /// Declarative form: compiles a PlanSpec (names resolved through the
  /// ComponentRegistry) against the schema.
  static Result<DuplicateDetector> Make(const PlanSpec& spec, Schema schema);

  /// Runs the pipeline on one x-relation.
  Result<DetectionResult> Run(const XRelation& rel) const;

  /// Integration form: unions two sources (Section I's scenario), then
  /// runs on the union. Tuple ids must be unique across sources.
  Result<DetectionResult> RunOnSources(const XRelation& a,
                                       const XRelation& b) const;

  /// Incremental form: `existing` was already deduplicated; only pairs
  /// involving a tuple of `additions` are examined (intra-existing pairs
  /// are skipped). total_pairs counts only the incremental pairs, so
  /// verification metrics refer to the increment.
  Result<DetectionResult> RunIncremental(const XRelation& existing,
                                         const XRelation& additions) const;

  /// Runs the shared executor on an externally built stream (the seam
  /// custom scenarios — sharding, replay, filtered re-runs — plug into).
  Result<DetectionResult> RunStream(CandidateStream& stream) const;

  /// Derived similarity of a single x-tuple pair under this
  /// configuration (bypasses reduction).
  double PairSimilarity(const XTuple& t1, const XTuple& t2) const;

  const DetectorConfig& config() const { return plan_->config(); }
  const Schema& schema() const { return plan_->schema(); }

  /// The compiled plan (shared, immutable).
  const DetectionPlan& plan() const { return *plan_; }
  std::shared_ptr<const DetectionPlan> shared_plan() const { return plan_; }

  /// Attaches a shared decision cache: every subsequent Run* consults
  /// it before the stage graph and inserts on miss. The cache may be
  /// shared across detectors (sweeps reuse decisions wherever the
  /// decide-stage components agree — see
  /// DetectionPlan::decision_fingerprint()), across threads, and —
  /// via ShardedDecisionCache snapshots — across processes. Pass
  /// nullptr to detach. Copies of the detector share the handle made
  /// at copy time.
  void set_cache(std::shared_ptr<DecisionCache> cache) {
    cache_ = std::move(cache);
  }
  const std::shared_ptr<DecisionCache>& cache() const { return cache_; }

  /// Opt into per-stage wall-time accumulation on subsequent Run*
  /// results (DetectionResult::stage_timings; rendered by
  /// ExecutionStatsReport). Off by default — the per-pair clock reads
  /// cost throughput.
  void set_collect_stage_timings(bool collect) {
    collect_stage_timings_ = collect;
  }

  /// Overrides the plan's sharding for subsequent Run* calls (a
  /// runtime placement knob, like set_cache: the plan — and with it
  /// every fingerprint and report byte — is untouched, because shard
  /// results merge bit-identically to the unsharded run). Without an
  /// override the plan's own `shard.count` / `shard.strategy` apply.
  void set_shard_options(ShardOptions options) {
    shard_override_ = options;
  }
  /// The sharding subsequent Run* calls will use (override, else plan).
  ShardOptions shard_options() const {
    if (shard_override_.has_value()) return *shard_override_;
    return ShardOptions{plan_->config().shard_count,
                        plan_->config().shard_strategy};
  }

  /// Resolved pipeline components (for explanations and diagnostics).
  const TupleMatcher& matcher() const { return plan_->matcher(); }
  const CombinationFunction& combination() const {
    return plan_->combination();
  }
  const DerivationFunction& derivation_function() const {
    return plan_->derivation();
  }

 private:
  explicit DuplicateDetector(std::shared_ptr<const DetectionPlan> plan)
      : plan_(std::move(plan)) {}

  /// The executor configured by this detector's config.
  StageExecutor MakeExecutor() const;

  std::shared_ptr<const DetectionPlan> plan_;
  std::shared_ptr<DecisionCache> cache_;
  bool collect_stage_timings_ = false;
  std::optional<ShardOptions> shard_override_;
};

}  // namespace pdd

#endif  // PDD_CORE_DETECTOR_H_
