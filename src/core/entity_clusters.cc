#include "core/entity_clusters.h"

#include "util/union_find.h"

namespace pdd {

std::vector<std::vector<size_t>> ClusterEntities(
    size_t tuple_count, const DetectionResult& result,
    const ClusterOptions& options) {
  UnionFind sets(tuple_count);
  for (const PairDecisionRecord& rec : result.decisions) {
    bool join = rec.match_class == MatchClass::kMatch ||
                (options.include_possible &&
                 rec.match_class == MatchClass::kPossible);
    if (join) sets.Union(rec.index1, rec.index2);
  }
  return sets.Groups();
}

EffectivenessMetrics EvaluateClustering(
    const std::vector<std::vector<size_t>>& clusters, const XRelation& rel,
    const GoldStandard& gold) {
  ConfusionCounts counts;
  size_t declared_gold = 0;
  for (const std::vector<size_t>& cluster : clusters) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        if (gold.IsMatch(rel.xtuple(cluster[i]).id(),
                         rel.xtuple(cluster[j]).id())) {
          ++counts.true_positives;
          ++declared_gold;
        } else {
          ++counts.false_positives;
        }
      }
    }
  }
  counts.false_negatives = gold.size() - declared_gold;
  size_t total_pairs = rel.size() * (rel.size() - 1) / 2;
  counts.true_negatives = total_pairs - counts.true_positives -
                          counts.false_positives - counts.false_negatives;
  return ComputeEffectiveness(counts);
}

}  // namespace pdd
