// Entity clustering: transitive closure over pairwise match decisions
// (the entity-resolution / merge-purge view of Section III). Pairwise
// decisions rarely form clean cliques; union-find groups them into
// clusters, and cluster-level metrics compare against an entity gold
// standard.

#ifndef PDD_CORE_ENTITY_CLUSTERS_H_
#define PDD_CORE_ENTITY_CLUSTERS_H_

#include <vector>

#include "core/detector.h"
#include "verify/gold_standard.h"

namespace pdd {

/// Options for cluster formation.
struct ClusterOptions {
  /// Also union pairs classified as possible matches.
  bool include_possible = false;
};

/// Groups the tuples of a detection run into entity clusters: two tuples
/// share a cluster iff they are connected by declared matches. Returns
/// clusters of tuple indices (every tuple appears exactly once; ordered
/// by smallest member).
std::vector<std::vector<size_t>> ClusterEntities(
    size_t tuple_count, const DetectionResult& result,
    const ClusterOptions& options = {});

/// Pairwise effectiveness induced by a clustering: every intra-cluster
/// pair counts as a declared match (the transitive closure of the
/// pairwise decisions), evaluated against the gold standard.
EffectivenessMetrics EvaluateClustering(
    const std::vector<std::vector<size_t>>& clusters, const XRelation& rel,
    const GoldStandard& gold);

}  // namespace pdd

#endif  // PDD_CORE_ENTITY_CLUSTERS_H_
