#include "core/explain.h"

#include "plan/plan_spec.h"
#include "util/string_util.h"

namespace pdd {

PairExplanation ExplainPair(const DuplicateDetector& detector,
                            const XTuple& t1, const XTuple& t2) {
  PairExplanation out;
  out.id1 = t1.id();
  out.id2 = t2.id();
  out.plan_fingerprint = detector.plan().fingerprint();
  // Walk the pair through the plan's stages one at a time, keeping the
  // per-alternative intermediates the aggregate API discards.
  const DetectionPlan& plan = detector.plan();
  const Thresholds& intermediate = plan.config().intermediate;
  ComparisonMatrix matrix = plan.RunMatchStage(t1, t2);
  AlternativePairScores scores = plan.RunCombineStage(t1, t2, matrix);
  for (size_t i = 0; i < scores.rows; ++i) {
    for (size_t j = 0; j < scores.cols; ++j) {
      AlternativePairExplanation alt;
      alt.alternative1 = i;
      alt.alternative2 = j;
      alt.weight = scores.weight(i, j);
      alt.comparison = matrix.at(i, j);
      alt.phi = scores.sim(i, j);
      alt.eta = Classify(alt.phi, intermediate);
      out.alternatives.push_back(std::move(alt));
    }
  }
  out.mass = ComputeMatchingMass(scores, intermediate);
  out.similarity = plan.RunDeriveStage(scores);
  out.match_class = plan.RunClassifyStage(out.similarity);
  return out;
}

std::string PairExplanation::ToString(const Schema& schema) const {
  std::string out = "pair (" + id1 + ", " + id2 + ")";
  if (plan_fingerprint != 0) {
    out += " under plan " + FingerprintHex(plan_fingerprint);
  }
  out += "\n";
  for (const AlternativePairExplanation& alt : alternatives) {
    out += "  alt (" + std::to_string(alt.alternative1 + 1) + "," +
           std::to_string(alt.alternative2 + 1) + ") weight " +
           FormatDouble(alt.weight, 4) + ": ";
    for (size_t a = 0; a < alt.comparison.size(); ++a) {
      if (a > 0) out += ", ";
      out += schema.attribute(a).name + "=" +
             FormatDouble(alt.comparison[a], 4);
    }
    out += " -> phi " + FormatDouble(alt.phi, 4) + " (";
    out += MatchClassName(alt.eta);
    out += ")\n";
  }
  out += "  P(m)=" + FormatDouble(mass.p_match, 4) +
         " P(p)=" + FormatDouble(mass.p_possible, 4) +
         " P(u)=" + FormatDouble(mass.p_unmatch, 4) + "\n";
  out += "  sim=" + FormatDouble(similarity, 6) + " -> ";
  out += MatchClassName(match_class);
  out += "\n";
  return out;
}

}  // namespace pdd
