#include "core/explain.h"

#include "util/string_util.h"

namespace pdd {

PairExplanation ExplainPair(const DuplicateDetector& detector,
                            const XTuple& t1, const XTuple& t2) {
  PairExplanation out;
  out.id1 = t1.id();
  out.id2 = t2.id();
  const TupleMatcher& matcher = detector.matcher();
  const CombinationFunction& phi = detector.combination();
  const Thresholds& intermediate = detector.config().intermediate;
  std::vector<double> p1 = t1.ConditionedProbabilities();
  std::vector<double> p2 = t2.ConditionedProbabilities();
  AlternativePairScores scores;
  scores.rows = t1.size();
  scores.cols = t2.size();
  scores.p1 = p1;
  scores.p2 = p2;
  scores.sims.resize(t1.size() * t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    for (size_t j = 0; j < t2.size(); ++j) {
      AlternativePairExplanation alt;
      alt.alternative1 = i;
      alt.alternative2 = j;
      alt.weight = p1[i] * p2[j];
      alt.comparison =
          matcher.CompareAlternatives(t1.alternative(i), t2.alternative(j));
      alt.phi = phi.Combine(alt.comparison);
      alt.eta = Classify(alt.phi, intermediate);
      scores.sims[i * t2.size() + j] = alt.phi;
      out.alternatives.push_back(std::move(alt));
    }
  }
  out.mass = ComputeMatchingMass(scores, intermediate);
  out.similarity = detector.derivation_function().Derive(scores);
  out.match_class = Classify(out.similarity,
                             detector.config().final_thresholds);
  return out;
}

std::string PairExplanation::ToString(const Schema& schema) const {
  std::string out = "pair (" + id1 + ", " + id2 + ")\n";
  for (const AlternativePairExplanation& alt : alternatives) {
    out += "  alt (" + std::to_string(alt.alternative1 + 1) + "," +
           std::to_string(alt.alternative2 + 1) + ") weight " +
           FormatDouble(alt.weight, 4) + ": ";
    for (size_t a = 0; a < alt.comparison.size(); ++a) {
      if (a > 0) out += ", ";
      out += schema.attribute(a).name + "=" +
             FormatDouble(alt.comparison[a], 4);
    }
    out += " -> phi " + FormatDouble(alt.phi, 4) + " (";
    out += MatchClassName(alt.eta);
    out += ")\n";
  }
  out += "  P(m)=" + FormatDouble(mass.p_match, 4) +
         " P(p)=" + FormatDouble(mass.p_possible, 4) +
         " P(u)=" + FormatDouble(mass.p_unmatch, 4) + "\n";
  out += "  sim=" + FormatDouble(similarity, 6) + " -> ";
  out += MatchClassName(match_class);
  out += "\n";
  return out;
}

}  // namespace pdd
