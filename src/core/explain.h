// Pair-level decision explanations: the full Fig. 6 breakdown of one
// x-tuple pair — per-attribute similarities of every alternative pair,
// the φ scores, the intermediate η classes, the conditioned weights and
// the derived similarity. The clerical-review interface Section III-D's
// possible-match set implies.

#ifndef PDD_CORE_EXPLAIN_H_
#define PDD_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/detector.h"
#include "derive/decision_based.h"
#include "match/tuple_matcher.h"

namespace pdd {

/// One alternative tuple pair's contribution.
struct AlternativePairExplanation {
  size_t alternative1 = 0;
  size_t alternative2 = 0;
  /// Conditioned probability weight p(t1^i)/p(t1) · p(t2^j)/p(t2).
  double weight = 0.0;
  /// Per-attribute similarities c⃗_ij (Eq. 5 values).
  ComparisonVector comparison;
  /// φ(c⃗_ij).
  double phi = 0.0;
  /// Intermediate classification η(t1^i, t2^j) under the intermediate
  /// thresholds.
  MatchClass eta = MatchClass::kUnmatch;
};

/// Full explanation of one pair decision.
struct PairExplanation {
  std::string id1;
  std::string id2;
  /// Fingerprint of the plan the explanation was produced under
  /// (0 == unknown; ExplainPair always stamps a real one).
  uint64_t plan_fingerprint = 0;
  std::vector<AlternativePairExplanation> alternatives;
  /// Eq. 8/9 masses under the intermediate thresholds.
  MatchingMass mass;
  /// The derived similarity sim(t1, t2).
  double similarity = 0.0;
  /// Final classification.
  MatchClass match_class = MatchClass::kUnmatch;

  /// Multi-line human-readable rendering.
  std::string ToString(const Schema& schema) const;
};

/// Explains one x-tuple pair under a detector's configuration.
PairExplanation ExplainPair(const DuplicateDetector& detector,
                            const XTuple& t1, const XTuple& t2);

}  // namespace pdd

#endif  // PDD_CORE_EXPLAIN_H_
