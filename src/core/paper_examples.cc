#include "core/paper_examples.h"

namespace pdd {

Schema PaperSchema() {
  return Schema({
      {"name", ValueType::kString, {}},
      {"job",
       ValueType::kString,
       {"machinist", "mechanic", "mechanist", "baker", "confectioner",
        "confectionist", "pilot", "pianist", "musician", "engineer"}},
  });
}

Relation BuildR1() {
  Relation r1("R1", PaperSchema());
  // t11: Tim, {machinist: 0.7, mechanic: 0.2 | ⊥: 0.1}, p = 1.0
  r1.AppendUnchecked(Tuple(
      "t11",
      {Value::Certain("Tim"),
       Value::Dist({{"machinist", 0.7}, {"mechanic", 0.2}})},
      1.0));
  // t12: {John: 0.5, Johan: 0.5}, {baker: 0.7, confectioner: 0.3}, p = 1.0
  r1.AppendUnchecked(Tuple(
      "t12",
      {Value::Dist({{"John", 0.5}, {"Johan", 0.5}}),
       Value::Dist({{"baker", 0.7}, {"confectioner", 0.3}})},
      1.0));
  // t13: {Tim: 0.6, Tom: 0.4}, machinist, p = 0.6
  r1.AppendUnchecked(Tuple(
      "t13",
      {Value::Dist({{"Tim", 0.6}, {"Tom", 0.4}}),
       Value::Certain("machinist")},
      0.6));
  return r1;
}

Relation BuildR2() {
  Relation r2("R2", PaperSchema());
  // t21: {John: 0.7, Jon: 0.3}, confectionist, p = 1.0
  r2.AppendUnchecked(Tuple(
      "t21",
      {Value::Dist({{"John", 0.7}, {"Jon", 0.3}}),
       Value::Certain("confectionist")},
      1.0));
  // t22: {Tim: 0.7, Kim: 0.3}, mechanic, p = 0.8
  r2.AppendUnchecked(Tuple(
      "t22",
      {Value::Dist({{"Tim", 0.7}, {"Kim", 0.3}}), Value::Certain("mechanic")},
      0.8));
  // t23: Timothy, {mechanist: 0.8, engineer: 0.2}, p = 0.7
  r2.AppendUnchecked(Tuple(
      "t23",
      {Value::Certain("Timothy"),
       Value::Dist({{"mechanist", 0.8}, {"engineer", 0.2}})},
      0.7));
  return r2;
}

XRelation BuildR3() {
  XRelation r3("R3", PaperSchema());
  // t31: (John, pilot): 0.7 | (Johan, mu*): 0.3
  r3.AppendUnchecked(XTuple(
      "t31",
      {{{Value::Certain("John"), Value::Certain("pilot")}, 0.7},
       {{Value::Certain("Johan"), Value::Pattern("mu")}, 0.3}}));
  // t32: (Tim, mechanic): 0.3 | (Jim, mechanic): 0.2 | (Jim, baker): 0.4, ?
  r3.AppendUnchecked(XTuple(
      "t32",
      {{{Value::Certain("Tim"), Value::Certain("mechanic")}, 0.3},
       {{Value::Certain("Jim"), Value::Certain("mechanic")}, 0.2},
       {{Value::Certain("Jim"), Value::Certain("baker")}, 0.4}}));
  return r3;
}

XRelation BuildR4() {
  XRelation r4("R4", PaperSchema());
  // t41: (John, pilot): 0.8 | (Johan, pianist): 0.2
  r4.AppendUnchecked(XTuple(
      "t41",
      {{{Value::Certain("John"), Value::Certain("pilot")}, 0.8},
       {{Value::Certain("Johan"), Value::Certain("pianist")}, 0.2}}));
  // t42: (Tom, mechanic): 0.8, ?
  r4.AppendUnchecked(XTuple(
      "t42", {{{Value::Certain("Tom"), Value::Certain("mechanic")}, 0.8}}));
  // t43: (John, ⊥): 0.2 | (Sean, pilot): 0.6, ?
  r4.AppendUnchecked(XTuple(
      "t43",
      {{{Value::Certain("John"), Value::Null()}, 0.2},
       {{Value::Certain("Sean"), Value::Certain("pilot")}, 0.6}}));
  return r4;
}

XRelation BuildR34() {
  Result<XRelation> merged = XRelation::Union(BuildR3(), BuildR4(), "R34");
  return *merged;
}

IdentificationRule PaperRule() {
  IdentificationRule rule;
  rule.conditions = {{0, 0.8}, {1, 0.5}};
  rule.certainty = 0.8;
  return rule;
}

KeySpec PaperSortingKey() {
  return KeySpec({{0, 3}, {1, 2}});
}

KeySpec PaperBlockingKey() {
  return KeySpec({{0, 1}, {1, 1}});
}

}  // namespace pdd
