// The paper's example relations and parameters, shared by tests,
// benchmarks and examples:
//   Fig. 4: probabilistic relations R1, R2 (dependency-free model)
//   Fig. 5: x-relations R3, R4 (ULDB model) and R34 = R3 ∪ R4
//   Fig. 1: the identification rule
//   Section V: the sorting key (name[3] + job[2]) and the blocking key
//   (name[1] + job[1]).

#ifndef PDD_CORE_PAPER_EXAMPLES_H_
#define PDD_CORE_PAPER_EXAMPLES_H_

#include "decision/rule_engine.h"
#include "keys/key_spec.h"
#include "pdb/relation.h"
#include "pdb/xrelation.h"

namespace pdd {

/// The two-attribute schema (name, job) of the paper's examples; the job
/// vocabulary covers the jobs mentioned in the paper so 'mu*' expands.
Schema PaperSchema();

/// Fig. 4 left: R1 with t11, t12, t13.
Relation BuildR1();

/// Fig. 4 right: R2 with t21, t22, t23.
Relation BuildR2();

/// Fig. 5 left: x-relation R3 with t31, t32.
XRelation BuildR3();

/// Fig. 5 right: x-relation R4 with t41, t42, t43.
XRelation BuildR4();

/// R34 = R3 ∪ R4 (Section V-A.1).
XRelation BuildR34();

/// Fig. 1's rule with the paper's concrete thresholds instantiated as
/// name > 0.8 AND job > 0.5 (the figure leaves threshold1/2 symbolic).
IdentificationRule PaperRule();

/// Section V-A's sorting key: first three characters of name plus first
/// two characters of job.
KeySpec PaperSortingKey();

/// Section V-B / Fig. 14's blocking key: first character of name plus
/// first character of job.
KeySpec PaperBlockingKey();

}  // namespace pdd

#endif  // PDD_CORE_PAPER_EXAMPLES_H_
