#include "core/report_writer.h"

#include <algorithm>
#include <utility>

#include "plan/plan_spec.h"
#include "util/string_util.h"

namespace pdd {

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

}  // namespace

std::string DecisionsToCsv(const DetectionResult& result,
                           const GoldStandard* gold) {
  std::string out = "id1,id2,similarity,decision";
  if (gold != nullptr) out += ",gold";
  out += "\n";
  for (const PairDecisionRecord& rec : result.decisions) {
    out += CsvEscape(rec.id1) + "," + CsvEscape(rec.id2) + "," +
           FormatDouble(rec.similarity, 6) + "," +
           MatchClassName(rec.match_class);
    if (gold != nullptr) {
      out += gold->IsMatch(rec.id1, rec.id2) ? ",match" : ",non-match";
    }
    out += "\n";
  }
  return out;
}

std::string ExecutionStatsReport(const DetectionResult& result) {
  std::string out = "# Execution statistics\n\n";
  // Which match implementation ran — execution detail only; the
  // detection report never mentions it (columnar ≡ scalar bit for bit).
  if (!result.match_kernel.empty()) {
    out += "- match kernel: " + result.match_kernel + "\n\n";
  }
  const StageTimings& t = result.stage_timings;
  double total = t.TotalSeconds();
  out += "## Stage timings\n\n";
  if (total <= 0.0) {
    out += "(not collected)\n";
  } else {
    out += "| stage | seconds | share |\n|---|---|---|\n";
    const std::pair<const char*, double> rows[] = {
        {"match", t.match_seconds},
        {"combine", t.combine_seconds},
        {"derive", t.derive_seconds},
        {"classify", t.classify_seconds},
        {"cache lookup", t.cache_lookup_seconds},
    };
    for (const auto& [name, seconds] : rows) {
      out += std::string("| ") + name + " | " + FormatDouble(seconds, 6) +
             " | " + FormatDouble(100.0 * seconds / total, 1) + "% |\n";
    }
    out += "| total | " + FormatDouble(total, 6) + " | 100.0% |\n";
  }
  if (result.cache_stats.has_value()) {
    const CacheRunStats& c = *result.cache_stats;
    out += "\n## Decision cache\n\n";
    out += "- cache: " + std::to_string(c.hits) + " hits / " +
           std::to_string(c.lookups) + " lookups (" +
           FormatDouble(c.HitRate() * 100.0, 1) + "% hit rate), " +
           std::to_string(c.inserts) + " inserts\n";
  }
  out += "\n## Candidate stream\n\n";
  out += "- stream: " + std::to_string(result.candidate_count) +
         " candidates in " + std::to_string(result.stream_stats.batches) +
         " batches, live high-water " +
         std::to_string(result.stream_stats.live_candidate_high_water) +
         " candidates\n";
  // Per-shard drain accounting of a sharded run: each shard's
  // high-water is the live bound a node hosting it must provision for
  // (the top-level high-water above is their sum).
  for (size_t i = 0; i < result.stream_stats.per_shard.size(); ++i) {
    const StreamRunStats& shard = result.stream_stats.per_shard[i];
    out += "- shard " + std::to_string(i) + ": " +
           std::to_string(shard.batches) + " batches, live high-water " +
           std::to_string(shard.live_candidate_high_water) + " candidates\n";
  }
  return out;
}

std::string DetectionReport(const DetectionResult& result,
                            const GoldStandard* gold,
                            size_t max_review_rows) {
  std::string out = "# Duplicate detection report\n\n";
  if (result.plan_fingerprint != 0) {
    out += "- plan fingerprint: " + FingerprintHex(result.plan_fingerprint) +
           "\n";
  }
  out += "- pairs examined: " + std::to_string(result.candidate_count) +
         " of " + std::to_string(result.total_pairs) + "\n";
  size_t matches = result.Matches().size();
  size_t possible = result.PossibleMatches().size();
  size_t unmatches = result.Unmatches().size();
  out += "- matches (M): " + std::to_string(matches) + "\n";
  out += "- possible matches (P): " + std::to_string(possible) + "\n";
  out += "- non-matches (U): " + std::to_string(unmatches) + "\n";
  if (gold != nullptr) {
    EffectivenessMetrics strict = Evaluate(result, *gold);
    EffectivenessMetrics lenient = Evaluate(result, *gold,
                                            /*count_possible_as_match=*/true);
    ReductionMetrics reduction = EvaluateReduction(result, *gold);
    out += "\n## Verification\n\n";
    out += "- matches only: " + strict.ToString() + "\n";
    out += "- incl. possible: " + lenient.ToString() + "\n";
    out += "- reduction: " + reduction.ToString() + "\n";
  }
  // Clerical review queue: highest-similarity possible matches first.
  std::vector<const PairDecisionRecord*> review;
  for (const PairDecisionRecord& rec : result.decisions) {
    if (rec.match_class == MatchClass::kPossible) review.push_back(&rec);
  }
  std::sort(review.begin(), review.end(),
            [](const PairDecisionRecord* a, const PairDecisionRecord* b) {
              return a->similarity > b->similarity;
            });
  if (!review.empty()) {
    out += "\n## Clerical review queue\n\n";
    out += "| pair | similarity |\n|---|---|\n";
    size_t rows = std::min(max_review_rows, review.size());
    for (size_t i = 0; i < rows; ++i) {
      out += "| " + review[i]->id1 + " ~ " + review[i]->id2 + " | " +
             FormatDouble(review[i]->similarity, 4) + " |\n";
    }
    if (review.size() > rows) {
      out += "\n(" + std::to_string(review.size() - rows) + " more)\n";
    }
  }
  return out;
}

}  // namespace pdd
