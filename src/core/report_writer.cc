#include "core/report_writer.h"

#include <algorithm>
#include <utility>

#include "obs/export.h"
#include "obs/run_telemetry.h"
#include "plan/plan_spec.h"
#include "util/string_util.h"

namespace pdd {

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

}  // namespace

std::string DecisionsToCsv(const DetectionResult& result,
                           const GoldStandard* gold) {
  std::string out = "id1,id2,similarity,decision";
  if (gold != nullptr) out += ",gold";
  out += "\n";
  for (const PairDecisionRecord& rec : result.decisions) {
    out += CsvEscape(rec.id1) + "," + CsvEscape(rec.id2) + "," +
           FormatDouble(rec.similarity, 6) + "," +
           MatchClassName(rec.match_class);
    if (gold != nullptr) {
      out += gold->IsMatch(rec.id1, rec.id2) ? ",match" : ",non-match";
    }
    out += "\n";
  }
  return out;
}

std::string ExecutionStatsReport(const DetectionResult& result) {
  // One rendering path for every consumer: the report is a projection
  // of the run's telemetry registry (executor-attached when present;
  // hand-assembled results go through the TelemetryFromResult bridge).
  if (result.telemetry != nullptr) {
    return RenderExecutionStats(*result.telemetry);
  }
  return RenderExecutionStats(TelemetryFromResult(result));
}

std::string DetectionReport(const DetectionResult& result,
                            const GoldStandard* gold,
                            size_t max_review_rows) {
  std::string out = "# Duplicate detection report\n\n";
  if (result.plan_fingerprint != 0) {
    out += "- plan fingerprint: " + FingerprintHex(result.plan_fingerprint) +
           "\n";
  }
  out += "- pairs examined: " + std::to_string(result.candidate_count) +
         " of " + std::to_string(result.total_pairs) + "\n";
  size_t matches = result.Matches().size();
  size_t possible = result.PossibleMatches().size();
  size_t unmatches = result.Unmatches().size();
  out += "- matches (M): " + std::to_string(matches) + "\n";
  out += "- possible matches (P): " + std::to_string(possible) + "\n";
  out += "- non-matches (U): " + std::to_string(unmatches) + "\n";
  if (gold != nullptr) {
    EffectivenessMetrics strict = Evaluate(result, *gold);
    EffectivenessMetrics lenient = Evaluate(result, *gold,
                                            /*count_possible_as_match=*/true);
    ReductionMetrics reduction = EvaluateReduction(result, *gold);
    out += "\n## Verification\n\n";
    out += "- matches only: " + strict.ToString() + "\n";
    out += "- incl. possible: " + lenient.ToString() + "\n";
    out += "- reduction: " + reduction.ToString() + "\n";
  }
  // Clerical review queue: highest-similarity possible matches first.
  std::vector<const PairDecisionRecord*> review;
  for (const PairDecisionRecord& rec : result.decisions) {
    if (rec.match_class == MatchClass::kPossible) review.push_back(&rec);
  }
  std::sort(review.begin(), review.end(),
            [](const PairDecisionRecord* a, const PairDecisionRecord* b) {
              return a->similarity > b->similarity;
            });
  if (!review.empty()) {
    out += "\n## Clerical review queue\n\n";
    out += "| pair | similarity |\n|---|---|\n";
    size_t rows = std::min(max_review_rows, review.size());
    for (size_t i = 0; i < rows; ++i) {
      out += "| " + review[i]->id1 + " ~ " + review[i]->id2 + " | " +
             FormatDouble(review[i]->similarity, 4) + " |\n";
    }
    if (review.size() > rows) {
      out += "\n(" + std::to_string(review.size() - rows) + " more)\n";
    }
  }
  return out;
}

}  // namespace pdd
