// Export of detection results for downstream analysis: CSV (one row per
// examined pair) and a Markdown summary with verification metrics.

#ifndef PDD_CORE_REPORT_WRITER_H_
#define PDD_CORE_REPORT_WRITER_H_

#include <string>

#include "core/detector.h"
#include "verify/gold_standard.h"

namespace pdd {

/// CSV rendering of the pair decisions: header
/// `id1,id2,similarity,decision[,gold]`; the gold column appears when a
/// gold standard is supplied. Ids containing commas or quotes are
/// double-quoted per RFC 4180.
std::string DecisionsToCsv(const DetectionResult& result,
                           const GoldStandard* gold = nullptr);

/// Markdown report: run statistics, M/P/U counts, effectiveness and
/// reduction metrics when a gold standard is supplied, and the top
/// possible matches for clerical review. Deliberately excludes wall
/// times and cache counters (see ExecutionStatsReport) so reports of
/// identical runs stay byte-identical.
std::string DetectionReport(const DetectionResult& result,
                            const GoldStandard* gold = nullptr,
                            size_t max_review_rows = 10);

/// Markdown rendering of a run's execution statistics: the executor's
/// per-stage wall-time breakdown (match/combine/derive/classify +
/// cache lookup) and, when a cache was attached, the run's hit/miss/
/// insert counts. Kept separate from DetectionReport because these
/// numbers vary between otherwise identical runs.
std::string ExecutionStatsReport(const DetectionResult& result);

}  // namespace pdd

#endif  // PDD_CORE_REPORT_WRITER_H_
