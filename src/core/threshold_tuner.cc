#include "core/threshold_tuner.h"

#include <algorithm>
#include <cmath>

namespace pdd {

TuneResult TuneThresholds(const DetectionResult& result,
                          const GoldStandard& gold,
                          const TuneOptions& options) {
  // Label every examined pair and sort by similarity descending; the
  // confusion counts at a threshold then follow from a prefix scan.
  struct Labeled {
    double similarity;
    bool is_gold;
  };
  std::vector<Labeled> pairs;
  pairs.reserve(result.decisions.size());
  size_t gold_examined = 0;
  for (const PairDecisionRecord& rec : result.decisions) {
    bool is_gold = gold.IsMatch(rec.id1, rec.id2);
    if (is_gold) ++gold_examined;
    double sim = std::isfinite(rec.similarity)
                     ? rec.similarity
                     : std::numeric_limits<double>::max();
    pairs.push_back({sim, is_gold});
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Labeled& a, const Labeled& b) {
              return a.similarity > b.similarity;
            });
  const size_t pruned_gold = gold.size() - gold_examined;

  // Candidate thresholds: midpoints below each distinct similarity (so
  // "similarity strictly above t" includes that prefix), subsampled to
  // max_candidates.
  std::vector<size_t> prefix_ends;  // prefix length ending at candidate
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i + 1 == pairs.size() ||
        pairs[i + 1].similarity < pairs[i].similarity) {
      prefix_ends.push_back(i + 1);
    }
  }
  if (options.max_candidates > 0 &&
      prefix_ends.size() > options.max_candidates) {
    std::vector<size_t> sampled;
    double stride = static_cast<double>(prefix_ends.size()) /
                    static_cast<double>(options.max_candidates);
    for (size_t k = 0; k < options.max_candidates; ++k) {
      sampled.push_back(
          prefix_ends[static_cast<size_t>(static_cast<double>(k) * stride)]);
    }
    if (sampled.back() != prefix_ends.back()) {
      sampled.push_back(prefix_ends.back());
    }
    prefix_ends = std::move(sampled);
  }

  TuneResult out;
  // Also consider the empty prefix (declare nothing a match).
  prefix_ends.insert(prefix_ends.begin(), 0);
  size_t tp = 0, fp = 0;
  size_t scanned = 0;
  double best_f1 = -1.0;
  for (size_t prefix : prefix_ends) {
    while (scanned < prefix) {
      if (pairs[scanned].is_gold) {
        ++tp;
      } else {
        ++fp;
      }
      ++scanned;
    }
    ConfusionCounts counts;
    counts.true_positives = tp;
    counts.false_positives = fp;
    counts.false_negatives = gold_examined - tp + pruned_gold;
    counts.true_negatives = result.total_pairs - counts.true_positives -
                            counts.false_positives - counts.false_negatives;
    ThresholdSweepPoint point;
    // Threshold below the last included similarity (or above the first
    // excluded one for the empty prefix).
    if (prefix == 0) {
      point.t_mu = pairs.empty() ? 1.0 : pairs[0].similarity;
    } else if (prefix < pairs.size()) {
      point.t_mu =
          (pairs[prefix - 1].similarity + pairs[prefix].similarity) / 2.0;
    } else {
      point.t_mu = pairs.back().similarity - 1e-9;
    }
    point.metrics = ComputeEffectiveness(counts);
    if (point.metrics.f1 > best_f1) {
      best_f1 = point.metrics.f1;
      out.best.t_mu = point.t_mu;
      out.best.t_lambda = std::max(0.0, point.t_mu - options.possible_band);
      out.best_metrics = point.metrics;
    }
    out.sweep.push_back(std::move(point));
  }
  return out;
}

}  // namespace pdd
