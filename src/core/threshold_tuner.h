// Threshold tuning — the feedback loop of the verification step
// (Section III-E): "if the effectiveness is not satisfactory, duplicate
// detection is repeated with other, better suitable thresholds".
//
// Given a detection run's (similarity, gold-label) pairs, the tuner
// sweeps the match threshold Tμ over the observed similarities and
// reports the F1-optimal thresholds plus the whole sweep curve so the
// precision/recall trade-off is visible.

#ifndef PDD_CORE_THRESHOLD_TUNER_H_
#define PDD_CORE_THRESHOLD_TUNER_H_

#include <vector>

#include "core/detector.h"
#include "verify/gold_standard.h"
#include "verify/metrics.h"

namespace pdd {

/// One point of the threshold sweep.
struct ThresholdSweepPoint {
  /// Candidate Tμ (pairs with similarity strictly above it match).
  double t_mu = 0.0;
  EffectivenessMetrics metrics;
};

/// Result of a tuning run.
struct TuneResult {
  /// F1-optimal thresholds; t_lambda = t_mu - possible_band (clamped at
  /// 0), reproducing the configured possible-match band width.
  Thresholds best;
  EffectivenessMetrics best_metrics;
  /// The full sweep in descending Tμ order.
  std::vector<ThresholdSweepPoint> sweep;
};

/// Options of the tuner.
struct TuneOptions {
  /// Width of the possible-match band below the tuned Tμ.
  double possible_band = 0.0;
  /// Evaluate at most this many distinct candidate thresholds (evenly
  /// sampled from the observed similarity values; 0 = all).
  size_t max_candidates = 256;
};

/// Tunes thresholds on an existing detection result against a gold
/// standard. Pairs pruned by reduction count as non-matches at every
/// threshold (they were never examined), exactly as in Evaluate().
TuneResult TuneThresholds(const DetectionResult& result,
                          const GoldStandard& gold,
                          const TuneOptions& options = {});

}  // namespace pdd

#endif  // PDD_CORE_THRESHOLD_TUNER_H_
