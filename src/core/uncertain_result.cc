#include "core/uncertain_result.h"

#include <algorithm>

#include "util/string_util.h"

namespace pdd {

double UncertainDedupResult::ExpectedEntityCount() const {
  double expected = 0.0;
  for (const ResultTuple& t : tuples) expected += t.confidence;
  return expected;
}

std::string UncertainDedupResult::ToString() const {
  std::string out;
  for (const ResultTuple& t : tuples) {
    out += t.tuple.id() + " (confidence " + FormatDouble(t.confidence, 4);
    if (!t.lineage.is_true()) {
      out += ", lineage " + t.lineage.ToString();
    }
    out += ")\n";
    out += t.tuple.ToString();
  }
  return out;
}

namespace {

double PairConfidence(const PairDecisionRecord& rec,
                      const UncertainResultOptions& options) {
  double c = std::clamp(rec.similarity, options.min_confidence,
                        options.max_confidence);
  return c;
}

}  // namespace

UncertainDedupResult BuildUncertainResult(
    const XRelation& base, const DetectionResult& decisions,
    const UncertainResultOptions& options) {
  UncertainDedupResult result;
  result.schema = base.schema();

  // Order candidate pairs by similarity (certain matches first) and
  // consume each base tuple at most once.
  std::vector<const PairDecisionRecord*> pairs =
      decisions.RecordsOfClass(MatchClass::kMatch);
  std::vector<const PairDecisionRecord*> possibles =
      decisions.RecordsOfClass(MatchClass::kPossible);
  pairs.reserve(pairs.size() + possibles.size());
  pairs.insert(pairs.end(), possibles.begin(), possibles.end());
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const PairDecisionRecord* a,
                      const PairDecisionRecord* b) {
                     if (a->match_class != b->match_class) {
                       return a->match_class == MatchClass::kMatch;
                     }
                     return a->similarity > b->similarity;
                   });
  std::vector<bool> consumed(base.size(), false);
  for (const PairDecisionRecord* rec : pairs) {
    if (consumed[rec->index1] || consumed[rec->index2]) continue;
    consumed[rec->index1] = true;
    consumed[rec->index2] = true;
    const XTuple& t1 = base.xtuple(rec->index1);
    const XTuple& t2 = base.xtuple(rec->index2);
    std::string fused_id = t1.id() + "+" + t2.id();
    XTuple fused = FuseXTuples(t1, t2, fused_id, options.merge);
    // The decision event symbol: match(t1, t2). We model it as an atom
    // of a virtual decision tuple so outcome lineages are complementary.
    Lineage match_event = Lineage::Atom("match(" + t1.id() + "," + t2.id() +
                                            ")",
                                        0);
    if (rec->match_class == MatchClass::kMatch) {
      // Certain merge.
      result.tuples.push_back(
          {std::move(fused), 1.0, Lineage::True(), {t1.id(), t2.id()}});
    } else {
      double c = PairConfidence(*rec, options);
      result.tuples.push_back(
          {std::move(fused), c, match_event, {t1.id(), t2.id()}});
      result.tuples.push_back(
          {t1, 1.0 - c, Lineage::Not(match_event), {t1.id()}});
      result.tuples.push_back(
          {t2, 1.0 - c, Lineage::Not(match_event), {t2.id()}});
    }
  }
  // Pass through untouched tuples.
  for (size_t i = 0; i < base.size(); ++i) {
    if (!consumed[i]) {
      result.tuples.push_back(
          {base.xtuple(i), 1.0, Lineage::True(), {base.xtuple(i).id()}});
    }
  }
  return result;
}

}  // namespace pdd
