// Uncertain deduplication results (the paper's Section VI outlook):
// instead of forcing a hard duplicate/non-duplicate verdict, the
// uncertainty of the decision itself is modeled in the result database
// as mutually exclusive sets of tuples with lineage.
//
// For a pair declared a *possible* match with confidence c, the result
// contains the fused tuple with confidence c and the two original
// tuples with confidence 1-c; the lineage of each outcome records which
// decision event produced it, so the result worlds stay consistent
// (either the merge happened or both originals survive — never a mix).

#ifndef PDD_CORE_UNCERTAIN_RESULT_H_
#define PDD_CORE_UNCERTAIN_RESULT_H_

#include <string>
#include <vector>

#include "core/detector.h"
#include "fusion/probabilistic_merge.h"
#include "pdb/lineage.h"
#include "pdb/xrelation.h"

namespace pdd {

/// One tuple of the uncertain result relation.
struct ResultTuple {
  /// The tuple's data (fused or original).
  XTuple tuple;
  /// Probability that this tuple belongs to the result.
  double confidence = 1.0;
  /// Derivation over decision events; outcome tuples of the same pair
  /// carry complementary lineage ("match(a,b)" vs "¬match(a,b)").
  Lineage lineage;
  /// Base tuple ids behind this result tuple.
  std::vector<std::string> base_ids;
};

/// The probabilistic result of a deduplication run.
struct UncertainDedupResult {
  Schema schema;
  std::vector<ResultTuple> tuples;

  /// Expected number of result entities: certain tuples count 1; the
  /// two branches of a possible merge count c·1 + (1-c)·2.
  double ExpectedEntityCount() const;

  /// Human-readable rendering with confidences and lineage.
  std::string ToString() const;
};

/// Options of the result builder.
struct UncertainResultOptions {
  /// Merge policy for fused tuples.
  MergeOptions merge;
  /// How the pair confidence is obtained from a decision record:
  /// similarities of normalized derivations are clamped into [0, 1] and
  /// used directly.
  /// Matches are treated as confidence 1 merges.
  double min_confidence = 0.05;
  double max_confidence = 0.95;
};

/// Builds the uncertain result relation from pairwise decisions.
/// Pairs are consumed greedily in descending similarity so each base
/// tuple participates in at most one merge event (the ULDB model cannot
/// express overlapping exclusive sets without full lineage inference).
/// Matches merge with certainty; possible matches produce the
/// two-outcome construction above; untouched tuples pass through.
UncertainDedupResult BuildUncertainResult(
    const XRelation& base, const DetectionResult& decisions,
    const UncertainResultOptions& options = {});

}  // namespace pdd

#endif  // PDD_CORE_UNCERTAIN_RESULT_H_
