#include "datagen/astronomy_generator.h"

#include <cmath>
#include <cstdio>
#include <map>

namespace pdd {

Schema TelescopeSchema() {
  return Schema({
      {"ra", ValueType::kNumeric, {}},
      {"dec", ValueType::kNumeric, {}},
      {"mag", ValueType::kNumeric, {}},
  });
}

namespace {

std::string FormatReading(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

// Aggregates noisy readings of one quantity into a discrete distribution:
// readings snap to the rounding grid; equal grid cells merge mass.
Value ReadingsToValue(double truth, double noise, size_t readings, int digits,
                      Rng* rng) {
  std::map<std::string, double> mass;
  std::vector<std::string> order;
  double share = 1.0 / static_cast<double>(readings);
  for (size_t r = 0; r < readings; ++r) {
    std::string cell = FormatReading(rng->Gaussian(truth, noise), digits);
    auto [it, inserted] = mass.emplace(cell, 0.0);
    if (inserted) order.push_back(cell);
    it->second += share;
  }
  std::vector<Alternative> alts;
  alts.reserve(order.size());
  for (const std::string& cell : order) {
    alts.push_back({cell, mass[cell], false});
  }
  return Value::Unchecked(std::move(alts));
}

struct SkyObject {
  double ra;
  double dec;
  double mag;
};

}  // namespace

GeneratedSources GenerateTelescopeSources(const AstroGenOptions& options) {
  Rng rng(options.seed);
  std::vector<SkyObject> objects;
  objects.reserve(options.num_objects);
  for (size_t i = 0; i < options.num_objects; ++i) {
    objects.push_back({rng.Uniform(0.0, 360.0), rng.Uniform(-90.0, 90.0),
                       rng.Uniform(5.0, 20.0)});
  }
  GeneratedSources out;
  out.num_entities = options.num_objects;
  out.source1 = XRelation("telescope1", TelescopeSchema());
  out.source2 = XRelation("telescope2", TelescopeSchema());
  size_t readings = options.readings == 0 ? 1 : options.readings;
  for (size_t i = 0; i < objects.size(); ++i) {
    const SkyObject& obj = objects[i];
    std::vector<std::string> detected_ids;
    for (int telescope = 1; telescope <= 2; ++telescope) {
      if (!rng.Bernoulli(options.detection_prob)) continue;
      std::string id = "t" + std::to_string(telescope) + "_obj" +
                       std::to_string(i);
      AltTuple alt;
      alt.values.push_back(ReadingsToValue(obj.ra, options.position_noise,
                                           readings, options.position_digits,
                                           &rng));
      alt.values.push_back(ReadingsToValue(obj.dec, options.position_noise,
                                           readings, options.position_digits,
                                           &rng));
      alt.values.push_back(ReadingsToValue(obj.mag, options.magnitude_noise,
                                           readings, 1, &rng));
      // Faint detections: the pipeline is not sure the source is real.
      alt.prob = rng.Bernoulli(options.faint_prob)
                     ? rng.Uniform(0.5, 0.95)
                     : 1.0;
      XTuple xtuple(id, {std::move(alt)});
      (telescope == 1 ? out.source1 : out.source2)
          .AppendUnchecked(std::move(xtuple));
      detected_ids.push_back(std::move(id));
    }
    if (detected_ids.size() == 2) {
      out.gold.AddMatch(detected_ids[0], detected_ids[1]);
    }
  }
  return out;
}

}  // namespace pdd
