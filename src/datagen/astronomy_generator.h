// Telescope-source generator for the paper's motivating scenario
// ("unifying data produced by different space telescopes", Section I;
// uncertainty in astronomy per Suciu et al. [1]).
//
// Each sky object has a right ascension, declination and magnitude. Two
// telescopes observe overlapping subsets with instrument noise; repeated
// readings become discrete attribute-value distributions (the continuous
// uncertainty is discretized, as the ULDB model requires — Section IV-B
// notes the model "does not support an infinite number of alternatives").

#ifndef PDD_DATAGEN_ASTRONOMY_GENERATOR_H_
#define PDD_DATAGEN_ASTRONOMY_GENERATOR_H_

#include "datagen/person_generator.h"
#include "pdb/xrelation.h"
#include "util/random.h"
#include "verify/gold_standard.h"

namespace pdd {

/// Options of the telescope generator.
struct AstroGenOptions {
  /// Number of sky objects.
  size_t num_objects = 100;
  /// Probability each telescope detects a given object.
  double detection_prob = 0.9;
  /// Gaussian noise of position readings (degrees).
  double position_noise = 0.02;
  /// Gaussian noise of magnitude readings.
  double magnitude_noise = 0.15;
  /// Readings per detected attribute (alternatives of the value
  /// distribution; 1 = certain).
  size_t readings = 3;
  /// Probability a faint detection is a maybe x-tuple.
  double faint_prob = 0.15;
  /// Decimal digits positions are rounded to (discretization grid).
  int position_digits = 2;
  uint64_t seed = 42;
};

/// The telescope schema: ra, dec, mag (numeric).
Schema TelescopeSchema();

/// Generates two telescope catalogs with cross-source gold matches.
GeneratedSources GenerateTelescopeSources(const AstroGenOptions& options);

}  // namespace pdd

#endif  // PDD_DATAGEN_ASTRONOMY_GENERATOR_H_
