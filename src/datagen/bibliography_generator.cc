#include "datagen/bibliography_generator.h"

#include "datagen/vocabularies.h"
#include "util/string_util.h"

namespace pdd {

Schema BibliographySchema() {
  return Schema({
      {"author", ValueType::kString, {}},
      {"title", ValueType::kString, {}},
      {"venue", ValueType::kString, {}},
      {"year", ValueType::kNumeric, {}},
  });
}

namespace {

struct Venue {
  const char* full;
  const char* abbrev;
};

constexpr Venue kVenues[] = {
    {"international conference on data engineering", "icde"},
    {"very large data bases", "vldb"},
    {"sigmod conference", "sigmod"},
    {"conference on information and knowledge management", "cikm"},
    {"extending database technology", "edbt"},
    {"international conference on machine learning", "icml"},
    {"knowledge discovery and data mining", "kdd"},
    {"symposium on principles of database systems", "pods"},
    {"world wide web conference", "www"},
    {"text retrieval conference", "trec"},
};

constexpr const char* kTitleWords[] = {
    "probabilistic", "duplicate",  "detection",  "uncertain",  "data",
    "integration",   "efficient",  "scalable",   "query",      "processing",
    "adaptive",      "learning",   "models",     "databases",  "approach",
    "management",    "records",    "linkage",    "entity",     "resolution",
    "indexing",      "similarity", "matching",   "streams",    "graphs",
    "distributed",   "systems",    "evaluation", "framework",  "analysis",
};

}  // namespace

const std::vector<std::vector<std::string>>& VenueSynonyms() {
  static const auto* groups = [] {
    auto* g = new std::vector<std::vector<std::string>>();
    for (const Venue& v : kVenues) {
      g->push_back({v.full, v.abbrev});
    }
    return g;
  }();
  return *groups;
}

namespace {

struct CleanPublication {
  std::string author;
  std::string title;
  std::string venue_full;
  std::string venue_abbrev;
  std::string year;
};

CleanPublication SamplePublication(Rng* rng) {
  CleanPublication pub;
  const auto& first = FirstNames();
  const auto& last = Surnames();
  pub.author = ToLower(first[rng->Index(first.size())]) + " " +
               ToLower(last[rng->Index(last.size())]);
  size_t words = 3 + rng->Index(4);
  std::vector<std::string> title_words;
  for (size_t w = 0; w < words; ++w) {
    title_words.push_back(kTitleWords[rng->Index(std::size(kTitleWords))]);
  }
  pub.title = Join(title_words, " ");
  const Venue& venue = kVenues[rng->Index(std::size(kVenues))];
  pub.venue_full = venue.full;
  pub.venue_abbrev = venue.abbrev;
  pub.year = std::to_string(1990 + rng->Index(35));
  return pub;
}

std::string AbbreviateAuthor(const std::string& author) {
  std::vector<std::string> tokens = SplitWhitespace(author);
  if (tokens.size() < 2) return author;
  return std::string(1, tokens[0][0]) + ". " + tokens.back();
}

std::string DropTitleWord(const std::string& title, Rng* rng) {
  std::vector<std::string> tokens = SplitWhitespace(title);
  if (tokens.size() < 2) return title;
  tokens.erase(tokens.begin() +
               static_cast<ptrdiff_t>(rng->Index(tokens.size())));
  return Join(tokens, " ");
}

std::string PerturbYear(const std::string& year, Rng* rng) {
  double y = 0.0;
  ParseDouble(year, &y);
  return std::to_string(static_cast<int>(y) + (rng->Bernoulli(0.5) ? 1 : -1));
}

// A field observation: clean or corrupted, possibly both as a
// two-alternative distribution.
Value Observe(const std::string& clean, const std::string& observed,
              double uncertainty_prob, Rng* rng) {
  if (clean == observed || !rng->Bernoulli(uncertainty_prob)) {
    return Value::Certain(observed);
  }
  double p = rng->Uniform(0.55, 0.85);
  return Value::Unchecked({{observed, p, false}, {clean, 1.0 - p, false}});
}

}  // namespace

GeneratedData GenerateBibliography(const BiblioGenOptions& options) {
  Rng rng(options.seed);
  GeneratedData data;
  data.num_entities = options.num_publications;
  data.relation = XRelation("citations", BibliographySchema());
  size_t counter = 0;
  std::vector<std::pair<std::string, size_t>> labels;  // id -> publication
  for (size_t p = 0; p < options.num_publications; ++p) {
    CleanPublication pub = SamplePublication(&rng);
    size_t copies =
        1 + static_cast<size_t>(rng.Poisson(options.duplicate_rate));
    for (size_t c = 0; c < copies; ++c) {
      std::string id = "c" + std::to_string(counter++);
      labels.emplace_back(id, p);
      std::string author = pub.author;
      std::string title = pub.title;
      std::string venue = pub.venue_full;
      std::string year = pub.year;
      if (c > 0) {
        if (rng.Bernoulli(options.author_initial_prob)) {
          author = AbbreviateAuthor(author);
        }
        if (rng.Bernoulli(options.venue_abbrev_prob)) {
          venue = pub.venue_abbrev;
        }
        if (rng.Bernoulli(options.title_word_drop_prob)) {
          title = DropTitleWord(title, &rng);
        }
        if (rng.Bernoulli(options.year_error_prob)) {
          year = PerturbYear(year, &rng);
        }
      }
      AltTuple alt;
      alt.values = {
          Observe(pub.author, author, options.uncertainty_prob, &rng),
          Observe(pub.title, title, options.uncertainty_prob, &rng),
          Observe(pub.venue_full, venue, options.uncertainty_prob, &rng),
          Observe(pub.year, year, options.uncertainty_prob, &rng),
      };
      alt.prob = 1.0;
      data.relation.AppendUnchecked(XTuple(id, {std::move(alt)}));
    }
  }
  for (size_t i = 0; i < labels.size(); ++i) {
    for (size_t j = i + 1; j < labels.size(); ++j) {
      if (labels[i].second == labels[j].second) {
        data.gold.AddMatch(labels[i].first, labels[j].first);
      }
    }
  }
  return data;
}

}  // namespace pdd
