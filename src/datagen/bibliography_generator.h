// Bibliographic record generator — the classic record-linkage domain
// (citation matching): authors, title, venue, year. The error channel
// mirrors real citation noise: author initials ("J. Smith"), venue
// abbreviations ("Proc. ICDE" vs "International Conference on Data
// Engineering"), word drops in titles, year off-by-one. Citations from
// different indexes carry alternative interpretations — the
// probabilistic layer the paper targets.

#ifndef PDD_DATAGEN_BIBLIOGRAPHY_GENERATOR_H_
#define PDD_DATAGEN_BIBLIOGRAPHY_GENERATOR_H_

#include "datagen/person_generator.h"
#include "pdb/xrelation.h"
#include "verify/gold_standard.h"

namespace pdd {

/// Options of the bibliography generator.
struct BiblioGenOptions {
  /// Number of distinct publications.
  size_t num_publications = 100;
  /// Expected duplicate citations per publication (Poisson).
  double duplicate_rate = 0.8;
  /// Probability a duplicate abbreviates author names to initials.
  double author_initial_prob = 0.4;
  /// Probability a duplicate uses the abbreviated venue form.
  double venue_abbrev_prob = 0.5;
  /// Probability a duplicate drops one title word.
  double title_word_drop_prob = 0.3;
  /// Probability of a +/-1 year error.
  double year_error_prob = 0.1;
  /// Probability a field becomes a two-alternative distribution
  /// (both the clean and the corrupted reading survive).
  double uncertainty_prob = 0.3;
  uint64_t seed = 42;
};

/// The bibliography schema: author, title, venue, year.
Schema BibliographySchema();

/// The venue synonym groups (full form ~ abbreviation), usable with
/// SynonymComparator.
const std::vector<std::vector<std::string>>& VenueSynonyms();

/// Generates one probabilistic citation relation with gold standard.
GeneratedData GenerateBibliography(const BiblioGenOptions& options);

}  // namespace pdd

#endif  // PDD_DATAGEN_BIBLIOGRAPHY_GENERATOR_H_
