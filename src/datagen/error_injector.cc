#include "datagen/error_injector.h"

#include <array>
#include <cctype>
#include <cstddef>

#include "util/string_util.h"

namespace pdd {

namespace {

char RandomLetter(Rng* rng) {
  return static_cast<char>('a' + rng->Index(26));
}

// Visually confusable character pairs (both directions).
constexpr std::array<std::pair<char, char>, 8> kOcrPairs = {{
    {'m', 'n'},
    {'i', 'l'},
    {'u', 'v'},
    {'c', 'e'},
    {'a', 'o'},
    {'h', 'b'},
    {'f', 't'},
    {'g', 'q'},
}};

}  // namespace

std::string ErrorInjector::SubstituteChar(const std::string& s, Rng* rng) {
  if (s.empty()) return s;
  std::string out = s;
  size_t pos = rng->Index(out.size());
  char replacement = RandomLetter(rng);
  if (std::isupper(static_cast<unsigned char>(out[pos]))) {
    replacement = static_cast<char>(
        std::toupper(static_cast<unsigned char>(replacement)));
  }
  out[pos] = replacement;
  return out;
}

std::string ErrorInjector::InsertChar(const std::string& s, Rng* rng) {
  std::string out = s;
  size_t pos = rng->Index(out.size() + 1);
  out.insert(out.begin() + static_cast<ptrdiff_t>(pos), RandomLetter(rng));
  return out;
}

std::string ErrorInjector::DeleteChar(const std::string& s, Rng* rng) {
  if (s.empty()) return s;
  std::string out = s;
  out.erase(out.begin() + static_cast<ptrdiff_t>(rng->Index(out.size())));
  return out;
}

std::string ErrorInjector::TransposeChars(const std::string& s, Rng* rng) {
  if (s.size() < 2) return s;
  std::string out = s;
  size_t pos = rng->Index(out.size() - 1);
  std::swap(out[pos], out[pos + 1]);
  return out;
}

std::string ErrorInjector::Truncate(const std::string& s, Rng* rng) {
  if (s.size() < 2) return s;
  size_t keep = 1 + rng->Index(s.size() - 1);
  return s.substr(0, keep);
}

std::string ErrorInjector::Abbreviate(const std::string& s) {
  if (s.empty()) return s;
  return std::string(1, s[0]) + ".";
}

std::string ErrorInjector::SwapTokens(const std::string& s, Rng* rng) {
  std::vector<std::string> tokens = SplitWhitespace(s);
  if (tokens.size() < 2) return s;
  size_t i = rng->Index(tokens.size() - 1);
  std::swap(tokens[i], tokens[i + 1]);
  return Join(tokens, " ");
}

std::string ErrorInjector::OcrConfuse(const std::string& s, Rng* rng) {
  // Collect positions with a confusable character.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < s.size(); ++i) {
    char lower = static_cast<char>(
        std::tolower(static_cast<unsigned char>(s[i])));
    for (const auto& [a, b] : kOcrPairs) {
      if (lower == a || lower == b) {
        candidates.push_back(i);
        break;
      }
    }
  }
  if (candidates.empty()) return s;
  std::string out = s;
  size_t pos = candidates[rng->Index(candidates.size())];
  char lower = static_cast<char>(
      std::tolower(static_cast<unsigned char>(out[pos])));
  for (const auto& [a, b] : kOcrPairs) {
    if (lower == a || lower == b) {
      char confused = lower == a ? b : a;
      if (std::isupper(static_cast<unsigned char>(out[pos]))) {
        confused = static_cast<char>(
            std::toupper(static_cast<unsigned char>(confused)));
      }
      out[pos] = confused;
      break;
    }
  }
  return out;
}

std::string ErrorInjector::Corrupt(const std::string& s, Rng* rng) const {
  std::string out = s;
  // Character-level edits.
  size_t edits = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (rng->Bernoulli(options_.char_error_rate)) ++edits;
  }
  for (size_t e = 0; e < edits; ++e) {
    switch (rng->Index(4)) {
      case 0:
        out = SubstituteChar(out, rng);
        break;
      case 1:
        out = InsertChar(out, rng);
        break;
      case 2:
        out = DeleteChar(out, rng);
        break;
      default:
        out = TransposeChars(out, rng);
        break;
    }
  }
  // Value-level transformations.
  if (rng->Bernoulli(options_.ocr_prob)) out = OcrConfuse(out, rng);
  if (rng->Bernoulli(options_.token_swap_prob)) out = SwapTokens(out, rng);
  if (rng->Bernoulli(options_.truncate_prob)) out = Truncate(out, rng);
  if (rng->Bernoulli(options_.abbreviate_prob)) out = Abbreviate(out);
  return out;
}

}  // namespace pdd
