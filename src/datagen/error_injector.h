// Error injection for synthetic dirty data (Section III's deficiencies:
// typos, missing data, misspellings). Individual edit operations are
// exposed so property tests can exercise them directly.

#ifndef PDD_DATAGEN_ERROR_INJECTOR_H_
#define PDD_DATAGEN_ERROR_INJECTOR_H_

#include <string>

#include "util/random.h"

namespace pdd {

/// Rates for the error channel applied to a value occurrence.
struct ErrorInjectorOptions {
  /// Per-character probability of a random edit (substitute, insert,
  /// delete or transpose).
  double char_error_rate = 0.05;
  /// Probability of truncating the value to a prefix.
  double truncate_prob = 0.03;
  /// Probability of abbreviating the value ("John" -> "J.").
  double abbreviate_prob = 0.03;
  /// Probability of swapping two whitespace tokens (multi-token values).
  double token_swap_prob = 0.03;
  /// Probability of an OCR-style visual confusion per value.
  double ocr_prob = 0.03;
};

/// Deterministic (seeded) error channel.
class ErrorInjector {
 public:
  explicit ErrorInjector(ErrorInjectorOptions options = {})
      : options_(options) {}

  /// Applies the configured error channel once to `s`.
  std::string Corrupt(const std::string& s, Rng* rng) const;

  /// Primitive edit operations (no-ops on empty strings).
  static std::string SubstituteChar(const std::string& s, Rng* rng);
  static std::string InsertChar(const std::string& s, Rng* rng);
  static std::string DeleteChar(const std::string& s, Rng* rng);
  static std::string TransposeChars(const std::string& s, Rng* rng);
  static std::string Truncate(const std::string& s, Rng* rng);
  static std::string Abbreviate(const std::string& s);
  static std::string SwapTokens(const std::string& s, Rng* rng);
  /// Replaces one character with a visually similar one (m~n, i~l, ...).
  static std::string OcrConfuse(const std::string& s, Rng* rng);

  const ErrorInjectorOptions& options() const { return options_; }

 private:
  ErrorInjectorOptions options_;
};

}  // namespace pdd

#endif  // PDD_DATAGEN_ERROR_INJECTOR_H_
