#include "datagen/person_generator.h"

#include "datagen/vocabularies.h"

namespace pdd {

Schema PersonSchema() {
  return Schema({
      {"name", ValueType::kString, {}},
      {"job", ValueType::kString, Jobs()},
      {"city", ValueType::kString, {}},
  });
}

namespace {

struct CleanEntity {
  std::string name;
  std::string job;
  std::string city;
};

std::vector<CleanEntity> SampleEntities(const PersonGenOptions& options,
                                        Rng* rng) {
  std::vector<CleanEntity> entities;
  entities.reserve(options.num_entities);
  auto pick = [&](const std::vector<std::string>& vocab) {
    size_t idx = options.zipf_skew > 0.0
                     ? rng->Zipf(vocab.size(), options.zipf_skew)
                     : rng->Index(vocab.size());
    return vocab[idx];
  };
  for (size_t e = 0; e < options.num_entities; ++e) {
    CleanEntity entity;
    entity.name = pick(FirstNames());
    if (options.full_names) entity.name += " " + pick(Surnames());
    entity.job = pick(Jobs());
    entity.city = pick(Cities());
    entities.push_back(std::move(entity));
  }
  return entities;
}

// Emits all records with entity labels; gold pairs connect records of the
// same entity.
struct LabeledRecord {
  std::string id;
  size_t entity;
  std::vector<std::string> values;
};

std::vector<LabeledRecord> EmitRecords(const PersonGenOptions& options,
                                       const std::vector<CleanEntity>& entities,
                                       const ErrorInjector& errors, Rng* rng) {
  std::vector<LabeledRecord> records;
  size_t counter = 0;
  for (size_t e = 0; e < entities.size(); ++e) {
    const CleanEntity& entity = entities[e];
    size_t copies = 1 + static_cast<size_t>(
                            rng->Poisson(options.duplicate_rate));
    for (size_t c = 0; c < copies; ++c) {
      LabeledRecord rec;
      rec.id = "r" + std::to_string(counter++);
      rec.entity = e;
      if (c == 0) {
        rec.values = {entity.name, entity.job, entity.city};
      } else {
        // Duplicates observe corrupted readings of the entity.
        rec.values = {errors.Corrupt(entity.name, rng),
                      errors.Corrupt(entity.job, rng),
                      errors.Corrupt(entity.city, rng)};
      }
      records.push_back(std::move(rec));
    }
  }
  return records;
}

}  // namespace

GeneratedData GeneratePersons(const PersonGenOptions& options) {
  Rng rng(options.seed);
  ErrorInjector errors(options.errors);
  UncertaintyInjector uncertainty(options.uncertainty, &errors);
  std::vector<CleanEntity> entities = SampleEntities(options, &rng);
  std::vector<LabeledRecord> records =
      EmitRecords(options, entities, errors, &rng);

  GeneratedData data;
  data.num_entities = entities.size();
  data.relation = XRelation("persons", PersonSchema());
  for (const LabeledRecord& rec : records) {
    data.relation.AppendUnchecked(
        uncertainty.MakeXTuple(rec.id, rec.values, &rng));
  }
  for (size_t i = 0; i < records.size(); ++i) {
    for (size_t j = i + 1; j < records.size(); ++j) {
      if (records[i].entity == records[j].entity) {
        data.gold.AddMatch(records[i].id, records[j].id);
      }
    }
  }
  return data;
}

GeneratedSources GeneratePersonSources(const PersonGenOptions& options) {
  GeneratedData data = GeneratePersons(options);
  GeneratedSources sources;
  sources.num_entities = data.num_entities;
  sources.gold = data.gold;
  sources.source1 = XRelation("source1", data.relation.schema());
  sources.source2 = XRelation("source2", data.relation.schema());
  for (size_t i = 0; i < data.relation.size(); ++i) {
    XRelation& target = i % 2 == 0 ? sources.source1 : sources.source2;
    target.AppendUnchecked(data.relation.xtuple(i));
  }
  return sources;
}

}  // namespace pdd
