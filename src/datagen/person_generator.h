// Synthetic probabilistic person datasets with exact ground truth — the
// quantitative evaluation substrate the paper lacks (see DESIGN.md §5).
//
// Generation pipeline: sample clean entities (name, job, city) →
// emit 1 + Poisson(duplicate_rate) records per entity → corrupt duplicate
// records through the error channel → probabilify every record through
// the uncertainty channel → record all intra-entity pairs as gold matches.

#ifndef PDD_DATAGEN_PERSON_GENERATOR_H_
#define PDD_DATAGEN_PERSON_GENERATOR_H_

#include <string>

#include "datagen/error_injector.h"
#include "datagen/uncertainty_injector.h"
#include "pdb/xrelation.h"
#include "verify/gold_standard.h"

namespace pdd {

/// Options of the person generator.
struct PersonGenOptions {
  /// Number of distinct real-world entities.
  size_t num_entities = 100;
  /// Expected extra records per entity (Poisson-distributed).
  double duplicate_rate = 0.5;
  /// Error channel applied to duplicate records' values.
  ErrorInjectorOptions errors;
  /// Uncertainty channel applied to every record.
  UncertaintyOptions uncertainty;
  /// Zipf skew of vocabulary sampling (0 = uniform; higher = more
  /// homonyms, harder blocking).
  double zipf_skew = 0.0;
  /// Use full names ("Anna Smith") instead of given names only.
  bool full_names = false;
  /// Seed for the whole generation run.
  uint64_t seed = 42;
};

/// One generated dataset.
struct GeneratedData {
  XRelation relation;
  GoldStandard gold;
  /// Number of distinct entities behind the records.
  size_t num_entities = 0;
};

/// Two-source variant for integration scenarios (records of one entity
/// may land in both sources).
struct GeneratedSources {
  XRelation source1;
  XRelation source2;
  GoldStandard gold;
  size_t num_entities = 0;
};

/// The person schema: name, job, city (all strings; job carries the
/// Jobs() vocabulary so 'mu*'-style patterns expand).
Schema PersonSchema();

/// Generates one probabilistic person relation with gold standard.
GeneratedData GeneratePersons(const PersonGenOptions& options);

/// Generates two person sources (records split round-robin).
GeneratedSources GeneratePersonSources(const PersonGenOptions& options);

}  // namespace pdd

#endif  // PDD_DATAGEN_PERSON_GENERATOR_H_
