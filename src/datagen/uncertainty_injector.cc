#include "datagen/uncertainty_injector.h"

#include <algorithm>

namespace pdd {

Value UncertaintyInjector::MakeValue(const std::string& truth,
                                     Rng* rng) const {
  if (!rng->Bernoulli(options_.value_uncertainty_prob)) {
    return Value::Certain(truth);
  }
  size_t max_alts = std::max<size_t>(2, options_.max_value_alternatives);
  size_t count = 2 + rng->Index(max_alts - 1);
  double null_mass = rng->Bernoulli(options_.null_mass_prob)
                         ? rng->Uniform(0.05, options_.max_null_mass)
                         : 0.0;
  // Dominant truth alternative plus corrupted minority alternatives.
  // Weights decay geometrically, then normalize to 1 - null_mass.
  std::vector<Alternative> alts;
  std::vector<double> weights;
  alts.push_back({truth, 1.0, false});
  weights.push_back(1.0);
  double weight = 1.0;
  for (size_t i = 1; i < count; ++i) {
    std::string variant = errors_->Corrupt(truth, rng);
    // Skip variants colliding with existing alternative texts.
    bool duplicate = false;
    for (const Alternative& a : alts) {
      if (a.text == variant) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    weight *= rng->Uniform(0.3, 0.7);
    alts.push_back({std::move(variant), 1.0, false});
    weights.push_back(weight);
  }
  double total = 0.0;
  for (double w : weights) total += w;
  double mass = 1.0 - null_mass;
  for (size_t i = 0; i < alts.size(); ++i) {
    alts[i].prob = weights[i] / total * mass;
  }
  return Value::Unchecked(std::move(alts));
}

XTuple UncertaintyInjector::MakeXTuple(const std::string& id,
                                       const std::vector<std::string>& truth,
                                       Rng* rng) const {
  size_t alt_count = 1;
  if (rng->Bernoulli(options_.xtuple_alternative_prob)) {
    size_t max_alts = std::max<size_t>(1, options_.max_xtuple_alternatives);
    alt_count = std::min<size_t>(max_alts, 2 + rng->Index(2));
  }
  std::vector<AltTuple> alternatives;
  std::vector<double> weights;
  double weight = 1.0;
  for (size_t a = 0; a < alt_count; ++a) {
    AltTuple alt;
    alt.values.reserve(truth.size());
    for (const std::string& text : truth) {
      // The first alternative observes the truth; subsequent alternatives
      // observe corrupted readings (mutually exclusive interpretations).
      std::string observed = a == 0 ? text : errors_->Corrupt(text, rng);
      alt.values.push_back(MakeValue(observed, rng));
    }
    alternatives.push_back(std::move(alt));
    weights.push_back(weight);
    weight *= rng->Uniform(0.3, 0.7);
  }
  double existence = 1.0;
  if (rng->Bernoulli(options_.maybe_prob)) {
    existence = rng->Uniform(options_.min_existence, 0.99);
  }
  double total = 0.0;
  for (double w : weights) total += w;
  for (size_t a = 0; a < alternatives.size(); ++a) {
    alternatives[a].prob = weights[a] / total * existence;
  }
  return XTuple(id, std::move(alternatives));
}

}  // namespace pdd
