// Uncertainty injection: turns clean values/records into probabilistic
// ones with controlled uncertainty on both of the paper's levels —
// attribute value distributions (Section IV-A) and x-tuple alternatives
// with maybe semantics (Section IV-B).

#ifndef PDD_DATAGEN_UNCERTAINTY_INJECTOR_H_
#define PDD_DATAGEN_UNCERTAINTY_INJECTOR_H_

#include <string>
#include <vector>

#include "datagen/error_injector.h"
#include "pdb/value.h"
#include "pdb/xtuple.h"
#include "util/random.h"

namespace pdd {

/// Rates for the uncertainty channel.
struct UncertaintyOptions {
  /// Probability an attribute value becomes a multi-alternative
  /// distribution (alternatives are corrupted variants of the truth).
  double value_uncertainty_prob = 0.3;
  /// Maximum alternatives per uncertain value (>= 2).
  size_t max_value_alternatives = 3;
  /// Probability an uncertain value carries residual ⊥ mass.
  double null_mass_prob = 0.05;
  /// Maximum ⊥ mass when present.
  double max_null_mass = 0.3;
  /// Probability a record becomes a multi-alternative x-tuple.
  double xtuple_alternative_prob = 0.2;
  /// Maximum alternative tuples per x-tuple (>= 1).
  size_t max_xtuple_alternatives = 3;
  /// Probability an x-tuple is maybe (existence < 1).
  double maybe_prob = 0.1;
  /// Minimum existence probability of maybe x-tuples.
  double min_existence = 0.5;
};

/// Deterministic (seeded) uncertainty channel built on an error channel.
class UncertaintyInjector {
 public:
  /// `errors` must outlive the injector.
  UncertaintyInjector(UncertaintyOptions options, const ErrorInjector* errors)
      : options_(options), errors_(errors) {}

  /// Probabilistic value for an observed text: either certain, or a
  /// distribution whose dominant alternative is `truth` (possibly
  /// corrupted) with corrupted variants as minority alternatives, plus
  /// optional ⊥ mass.
  Value MakeValue(const std::string& truth, Rng* rng) const;

  /// X-tuple for a clean record: one alternative holding MakeValue()
  /// results, optionally extended by corrupted alternative tuples and
  /// scaled to maybe semantics.
  XTuple MakeXTuple(const std::string& id,
                    const std::vector<std::string>& truth, Rng* rng) const;

  const UncertaintyOptions& options() const { return options_; }

 private:
  UncertaintyOptions options_;
  const ErrorInjector* errors_;
};

}  // namespace pdd

#endif  // PDD_DATAGEN_UNCERTAINTY_INJECTOR_H_
