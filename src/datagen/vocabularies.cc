#include "datagen/vocabularies.h"

namespace pdd {

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string> names = {
      "Tim",      "Tom",      "Jim",      "Kim",      "John",    "Johan",
      "Jon",      "Sean",     "Timothy",  "Thomas",   "James",   "Jonathan",
      "Sebastian","Anna",     "Anne",     "Hannah",   "Johanna", "Maria",
      "Marie",    "Mary",     "Miriam",   "Peter",    "Petra",   "Paul",
      "Paula",    "Pauline",  "Michael",  "Michaela", "Mike",    "Mia",
      "Nina",     "Nils",     "Noah",     "Nora",     "Oliver",  "Olivia",
      "Oscar",    "Otto",     "Quentin",  "Rachel",   "Ralph",   "Rebecca",
      "Richard",  "Rita",     "Robert",   "Roberta",  "Ronald",  "Rosa",
      "Samuel",   "Sandra",   "Sara",     "Sarah",    "Simon",   "Simone",
      "Sofia",    "Sophie",   "Stefan",   "Stephan",  "Stephanie","Susan",
      "Susanne",  "Tamara",   "Tanja",    "Tara",     "Teresa",  "Tessa",
      "Theo",     "Theresa",  "Tobias",   "Ulrich",   "Ursula",  "Valentin",
      "Valerie",  "Vera",     "Victor",   "Victoria", "Vincent", "Viola",
      "Walter",   "Wanda",    "Werner",   "Wilhelm",  "William", "Willy",
      "Xavier",   "Yannick",  "Yvonne",   "Zachary",  "Zoe",     "Adam",
      "Adrian",   "Agnes",    "Alan",     "Albert",   "Alex",    "Alexander",
      "Alexandra","Alfred",   "Alice",    "Alicia",   "Amanda",  "Amelia",
      "Andre",    "Andrea",   "Andreas",  "Andrew",   "Angela",  "Anita",
      "Anton",    "Antonia",  "Arthur",   "Astrid",   "August",  "Aurora",
      "Barbara",  "Bastian",  "Beate",    "Ben",      "Benjamin","Bernd",
      "Bernhard", "Bert",     "Bettina",  "Bianca",   "Bill",    "Birgit",
      "Bjorn",    "Brandon",  "Brenda",   "Brian",    "Bruno",   "Carl",
      "Carla",    "Carlos",   "Carmen",   "Caroline", "Catherine","Cecilia",
      "Charles",  "Charlotte","Christian","Christina","Christopher","Clara",
  };
  return names;
}

const std::vector<std::string>& Surnames() {
  static const std::vector<std::string> names = {
      "Smith",     "Johnson",   "Williams",  "Brown",     "Jones",
      "Garcia",    "Miller",    "Davis",     "Rodriguez", "Martinez",
      "Hernandez", "Lopez",     "Gonzalez",  "Wilson",    "Anderson",
      "Taylor",    "Moore",     "Jackson",   "Martin",    "Lee",
      "Perez",     "Thompson",  "White",     "Harris",    "Sanchez",
      "Clark",     "Ramirez",   "Lewis",     "Robinson",  "Walker",
      "Young",     "Allen",     "King",      "Wright",    "Scott",
      "Torres",    "Nguyen",    "Hill",      "Flores",    "Green",
      "Adams",     "Nelson",    "Baker",     "Hall",      "Rivera",
      "Campbell",  "Mitchell",  "Carter",    "Roberts",   "Gomez",
      "Phillips",  "Evans",     "Turner",    "Diaz",      "Parker",
      "Cruz",      "Edwards",   "Collins",   "Reyes",     "Stewart",
      "Morris",    "Morales",   "Murphy",    "Cook",      "Rogers",
      "Gutierrez", "Ortiz",     "Morgan",    "Cooper",    "Peterson",
      "Bailey",    "Reed",      "Kelly",     "Howard",    "Ramos",
      "Kim",       "Cox",       "Ward",      "Richardson","Watson",
      "Brooks",    "Chavez",    "Wood",      "James",     "Bennett",
      "Gray",      "Mendoza",   "Ruiz",      "Hughes",    "Price",
      "Alvarez",   "Castillo",  "Sanders",   "Patel",     "Myers",
      "Long",      "Ross",      "Foster",    "Jimenez",   "Powell",
      "Jenkins",   "Perry",     "Russell",   "Sullivan",  "Bell",
      "Coleman",   "Butler",    "Henderson", "Barnes",    "Fisher",
      "Meyer",     "Schmidt",   "Mueller",   "Schneider", "Fischer",
  };
  return names;
}

const std::vector<std::string>& Jobs() {
  static const std::vector<std::string> jobs = {
      "machinist",    "mechanic",     "mechanist",    "baker",
      "confectioner", "confectionist","pilot",        "pianist",
      "musician",     "engineer",     "teacher",      "professor",
      "doctor",       "nurse",        "surgeon",      "dentist",
      "pharmacist",   "lawyer",       "judge",        "notary",
      "accountant",   "auditor",      "banker",       "cashier",
      "clerk",        "secretary",    "manager",      "director",
      "carpenter",    "plumber",      "electrician",  "welder",
      "painter",      "sculptor",     "designer",     "architect",
      "builder",      "mason",        "roofer",       "glazier",
      "farmer",       "gardener",     "florist",      "butcher",
      "fisherman",    "cook",         "chef",         "waiter",
      "bartender",    "barista",      "brewer",       "winemaker",
      "tailor",       "shoemaker",    "weaver",       "jeweler",
      "watchmaker",   "barber",       "hairdresser",  "optician",
      "librarian",    "archivist",    "journalist",   "editor",
      "translator",   "interpreter",  "author",       "poet",
      "actor",        "singer",       "dancer",       "composer",
      "conductor",    "drummer",      "guitarist",    "violinist",
      "programmer",   "analyst",      "scientist",    "chemist",
      "physicist",    "biologist",    "astronomer",   "geologist",
      "soldier",      "sailor",       "captain",      "driver",
      "machinery-operator",           "miner",        "smith",
  };
  return jobs;
}

const std::vector<std::string>& Cities() {
  static const std::vector<std::string> cities = {
      "Hamburg",   "Berlin",     "Munich",     "Cologne",   "Frankfurt",
      "Stuttgart", "Dusseldorf", "Dortmund",   "Essen",     "Leipzig",
      "Bremen",    "Dresden",    "Hanover",    "Nuremberg", "Duisburg",
      "Bochum",    "Wuppertal",  "Bielefeld",  "Bonn",      "Munster",
      "Enschede",  "Amsterdam",  "Rotterdam",  "Utrecht",   "Eindhoven",
      "Groningen", "Tilburg",    "Almere",     "Breda",     "Nijmegen",
      "London",    "Manchester", "Birmingham", "Leeds",     "Glasgow",
      "Liverpool", "Newcastle",  "Sheffield",  "Bristol",   "Edinburgh",
      "Paris",     "Marseille",  "Lyon",       "Toulouse",  "Nice",
      "Nantes",    "Strasbourg", "Montpellier","Bordeaux",  "Lille",
      "Madrid",    "Barcelona",  "Valencia",   "Seville",   "Zaragoza",
      "Malaga",    "Murcia",     "Bilbao",     "Alicante",  "Cordoba",
      "Rome",      "Milan",      "Naples",     "Turin",     "Palermo",
      "Genoa",     "Bologna",    "Florence",   "Venice",    "Verona",
      "Vienna",    "Graz",       "Linz",       "Salzburg",  "Innsbruck",
      "Zurich",    "Geneva",     "Basel",      "Bern",      "Lausanne",
  };
  return cities;
}

const std::vector<std::vector<std::string>>& JobSynonyms() {
  static const std::vector<std::vector<std::string>> groups = {
      {"baker", "confectioner", "confectionist"},
      {"machinist", "mechanic", "mechanist", "machinery-operator"},
      {"musician", "pianist", "violinist", "guitarist", "drummer"},
      {"doctor", "surgeon"},
      {"cook", "chef"},
      {"teacher", "professor"},
      {"barber", "hairdresser"},
      {"author", "poet"},
  };
  return groups;
}

}  // namespace pdd
