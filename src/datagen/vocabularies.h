// Embedded vocabularies for synthetic person data: the paper's running
// example uses first names and job titles; cities widen the schema for
// three-attribute experiments.

#ifndef PDD_DATAGEN_VOCABULARIES_H_
#define PDD_DATAGEN_VOCABULARIES_H_

#include <string>
#include <vector>

namespace pdd {

/// ~140 given names (includes the paper's: Tim, Tom, Jim, Kim, John,
/// Johan, Jon, Sean, Timothy).
const std::vector<std::string>& FirstNames();

/// ~110 family names.
const std::vector<std::string>& Surnames();

/// ~90 job titles (includes the paper's: machinist, mechanic, baker,
/// confectioner, confectionist, pilot, pianist, musician, engineer).
const std::vector<std::string>& Jobs();

/// ~80 city names.
const std::vector<std::string>& Cities();

/// Synonym groups among Jobs() (near-equivalent titles), usable with
/// SynonymComparator.
const std::vector<std::vector<std::string>>& JobSynonyms();

}  // namespace pdd

#endif  // PDD_DATAGEN_VOCABULARIES_H_
