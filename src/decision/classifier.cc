#include "decision/classifier.h"

#include "util/string_util.h"

namespace pdd {

char MatchClassCode(MatchClass c) {
  switch (c) {
    case MatchClass::kMatch:
      return 'm';
    case MatchClass::kPossible:
      return 'p';
    case MatchClass::kUnmatch:
      return 'u';
  }
  return '?';
}

const char* MatchClassName(MatchClass c) {
  switch (c) {
    case MatchClass::kMatch:
      return "match";
    case MatchClass::kPossible:
      return "possible";
    case MatchClass::kUnmatch:
      return "unmatch";
  }
  return "unknown";
}

Status Thresholds::Validate() const {
  if (t_lambda > t_mu) {
    return Status::InvalidArgument(
        "t_lambda=" + FormatDouble(t_lambda) + " exceeds t_mu=" +
        FormatDouble(t_mu));
  }
  return Status::OK();
}

MatchClass Classify(double sim, const Thresholds& thresholds) {
  if (sim > thresholds.t_mu) return MatchClass::kMatch;
  if (sim < thresholds.t_lambda) return MatchClass::kUnmatch;
  return MatchClass::kPossible;
}

}  // namespace pdd
