// Threshold classification of tuple pairs into M / P / U (Fig. 2):
// match when sim > Tμ, non-match when sim < Tλ, possible match between.

#ifndef PDD_DECISION_CLASSIFIER_H_
#define PDD_DECISION_CLASSIFIER_H_

#include <string>

#include "util/status.h"

namespace pdd {

/// The matching value η(t1,t2) ∈ {m, p, u}.
enum class MatchClass {
  kUnmatch = 0,   // u: assigned to U
  kPossible = 1,  // p: assigned to P (clerical review)
  kMatch = 2,     // m: assigned to M
};

/// The paper's single-letter code ('m', 'p', 'u').
char MatchClassCode(MatchClass c);

/// Full name ("match", "possible", "unmatch").
const char* MatchClassName(MatchClass c);

/// The pair of thresholds Tλ <= Tμ separating U, P and M. Setting
/// t_lambda == t_mu disables the possible-match band (knowledge-based
/// techniques usually do not use P).
struct Thresholds {
  double t_lambda = 0.4;
  double t_mu = 0.7;

  /// Fails unless t_lambda <= t_mu.
  Status Validate() const;
};

/// Classifies a similarity degree against the thresholds:
/// sim > Tμ ⇒ m;  sim < Tλ ⇒ u;  otherwise p.
MatchClass Classify(double sim, const Thresholds& thresholds);

}  // namespace pdd

#endif  // PDD_DECISION_CLASSIFIER_H_
