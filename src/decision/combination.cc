#include "decision/combination.h"

#include <algorithm>
#include <cmath>

#include "pdb/value.h"

namespace pdd {

namespace {

double WeightSum(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  return total;
}

}  // namespace

WeightedSumCombination::WeightedSumCombination(std::vector<double> weights)
    : weights_(std::move(weights)),
      normalized_(WeightSum(weights_) <= 1.0 + kProbEpsilon) {}

Result<WeightedSumCombination> WeightedSumCombination::Make(
    std::vector<double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("negative weight");
    total += w;
  }
  if (total <= 0.0) return Status::InvalidArgument("all weights zero");
  return WeightedSumCombination(std::move(weights));
}

double WeightedSumCombination::Combine(const ComparisonVector& c) const {
  double total = 0.0;
  size_t n = std::min(weights_.size(), c.size());
  for (size_t i = 0; i < n; ++i) total += weights_[i] * c[i];
  return total;
}

double WeightedProductCombination::Combine(const ComparisonVector& c) const {
  double result = 1.0;
  size_t n = std::min(weights_.size(), c.size());
  for (size_t i = 0; i < n; ++i) result *= std::pow(c[i], weights_[i]);
  return result;
}

double MinCombination::Combine(const ComparisonVector& c) const {
  double m = 1.0;
  for (size_t i = 0; i < c.size(); ++i) m = std::min(m, c[i]);
  return m;
}

double MaxCombination::Combine(const ComparisonVector& c) const {
  double m = 0.0;
  for (size_t i = 0; i < c.size(); ++i) m = std::max(m, c[i]);
  return m;
}

double MeanCombination::Combine(const ComparisonVector& c) const {
  if (c.size() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < c.size(); ++i) total += c[i];
  return total / static_cast<double>(c.size());
}

}  // namespace pdd
