// Combination functions φ : [0,1]^n → ℝ (Eq. 3) collapsing a comparison
// vector into a single similarity degree.

#ifndef PDD_DECISION_COMBINATION_H_
#define PDD_DECISION_COMBINATION_H_

#include <string>
#include <vector>

#include "match/comparison_vector.h"
#include "util/status.h"

namespace pdd {

/// Interface of a combination function φ.
class CombinationFunction {
 public:
  virtual ~CombinationFunction() = default;

  /// Collapses a comparison vector into one similarity degree. The result
  /// is normalized ([0,1]) for knowledge-based models and may be
  /// unnormalized for probabilistic ones (matching weights).
  virtual double Combine(const ComparisonVector& c) const = 0;

  /// Human-readable name.
  virtual std::string name() const = 0;

  /// True when results are guaranteed to lie in [0, 1].
  virtual bool normalized() const { return true; }
};

/// φ(c⃗) = Σ w_i · c_i. The paper's running example uses weights
/// (0.8, 0.2): sim(t11,t22) = 0.8·0.9 + 0.2·0.59 = 0.838.
class WeightedSumCombination : public CombinationFunction {
 public:
  /// Weights should be non-negative; results are in [0,1] iff they sum
  /// to at most 1.
  explicit WeightedSumCombination(std::vector<double> weights);

  /// Validated construction: weights non-negative, at least one positive.
  static Result<WeightedSumCombination> Make(std::vector<double> weights);

  double Combine(const ComparisonVector& c) const override;
  std::string name() const override { return "weighted_sum"; }
  bool normalized() const override { return normalized_; }

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
  bool normalized_;
};

/// φ(c⃗) = Π c_i^{w_i} (geometric blend; 0 components dominate).
class WeightedProductCombination : public CombinationFunction {
 public:
  explicit WeightedProductCombination(std::vector<double> weights)
      : weights_(std::move(weights)) {}
  double Combine(const ComparisonVector& c) const override;
  std::string name() const override { return "weighted_product"; }

 private:
  std::vector<double> weights_;
};

/// φ(c⃗) = min_i c_i (conservative conjunction).
class MinCombination : public CombinationFunction {
 public:
  double Combine(const ComparisonVector& c) const override;
  std::string name() const override { return "min"; }
};

/// φ(c⃗) = max_i c_i (optimistic disjunction).
class MaxCombination : public CombinationFunction {
 public:
  double Combine(const ComparisonVector& c) const override;
  std::string name() const override { return "max"; }
};

/// Arithmetic mean of the components.
class MeanCombination : public CombinationFunction {
 public:
  double Combine(const ComparisonVector& c) const override;
  std::string name() const override { return "mean"; }
};

}  // namespace pdd

#endif  // PDD_DECISION_COMBINATION_H_
