#include "decision/em_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace pdd {

namespace {

double Clamp(double v, double floor) {
  return std::min(1.0 - floor, std::max(floor, v));
}

}  // namespace

Result<EmEstimate> EstimateWithEm(const std::vector<ComparisonVector>& vectors,
                                  const EmOptions& options) {
  if (vectors.empty()) {
    return Status::InvalidArgument("EM needs at least one comparison vector");
  }
  const size_t n = vectors[0].size();
  if (n == 0) {
    return Status::InvalidArgument("EM needs at least one attribute");
  }
  for (const ComparisonVector& v : vectors) {
    if (v.size() != n) {
      return Status::InvalidArgument("comparison vectors of mixed arity");
    }
  }
  if (options.initial_p <= 0.0 || options.initial_p >= 1.0) {
    return Status::InvalidArgument("initial_p outside (0, 1)");
  }

  // Binarize once and aggregate identical agreement patterns (EM cost then
  // depends on distinct patterns, not pairs).
  std::map<std::vector<bool>, double> pattern_counts;
  for (const ComparisonVector& v : vectors) {
    std::vector<bool> pattern(n);
    for (size_t i = 0; i < n; ++i) {
      pattern[i] = v[i] >= options.agreement_threshold;
    }
    pattern_counts[pattern] += 1.0;
  }
  const double total = static_cast<double>(vectors.size());

  double p = options.initial_p;
  std::vector<double> m(n, Clamp(options.initial_m, options.probability_floor));
  std::vector<double> u(n, Clamp(options.initial_u, options.probability_floor));

  EmEstimate est;
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // E-step: responsibility of the match component per pattern.
    double ll = 0.0;
    double resp_total = 0.0;
    std::vector<double> m_num(n, 0.0), u_num(n, 0.0);
    for (const auto& [pattern, count] : pattern_counts) {
      double pm = p, pu = 1.0 - p;
      for (size_t i = 0; i < n; ++i) {
        pm *= pattern[i] ? m[i] : 1.0 - m[i];
        pu *= pattern[i] ? u[i] : 1.0 - u[i];
      }
      double denom = pm + pu;
      double gamma = denom > 0.0 ? pm / denom : 0.5;
      ll += count * std::log(std::max(denom, 1e-300));
      resp_total += count * gamma;
      for (size_t i = 0; i < n; ++i) {
        if (pattern[i]) {
          m_num[i] += count * gamma;
          u_num[i] += count * (1.0 - gamma);
        }
      }
    }
    est.trajectory.push_back(ll);
    est.iterations = iter + 1;
    // M-step.
    double match_mass = resp_total;
    double unmatch_mass = total - resp_total;
    p = Clamp(match_mass / total, options.probability_floor);
    for (size_t i = 0; i < n; ++i) {
      m[i] = Clamp(match_mass > 0.0 ? m_num[i] / match_mass : 0.5,
                   options.probability_floor);
      u[i] = Clamp(unmatch_mass > 0.0 ? u_num[i] / unmatch_mass : 0.5,
                   options.probability_floor);
    }
    if (ll - prev_ll < options.tolerance && iter > 0) break;
    prev_ll = ll;
  }
  est.p = p;
  est.log_likelihood = est.trajectory.back();
  est.attributes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // By convention the match component is the one with the higher
    // agreement rate; swap if EM converged to the mirrored labeling.
    est.attributes[i] = {m[i], u[i], options.agreement_threshold};
  }
  double mean_m = 0.0, mean_u = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_m += m[i];
    mean_u += u[i];
  }
  if (mean_m < mean_u) {
    for (size_t i = 0; i < n; ++i) std::swap(est.attributes[i].m,
                                             est.attributes[i].u);
    est.p = 1.0 - est.p;
  }
  return est;
}

}  // namespace pdd
