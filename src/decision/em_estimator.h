// Unsupervised estimation of Fellegi-Sunter m/u probabilities with the
// EM algorithm (Winkler [26]): comparison vectors are binarized into
// agreement patterns and modeled as a two-component mixture
// (matches with prior p, non-matches with prior 1-p), attributes
// conditionally independent given the component.

#ifndef PDD_DECISION_EM_ESTIMATOR_H_
#define PDD_DECISION_EM_ESTIMATOR_H_

#include <vector>

#include "decision/fellegi_sunter.h"
#include "match/comparison_vector.h"
#include "util/status.h"

namespace pdd {

/// Options for EM estimation.
struct EmOptions {
  /// Initial match prior P(M).
  double initial_p = 0.1;
  /// Initial per-attribute m probability.
  double initial_m = 0.8;
  /// Initial per-attribute u probability.
  double initial_u = 0.2;
  /// Per-attribute agreement threshold used to binarize vectors.
  double agreement_threshold = 0.8;
  /// Stop when the log-likelihood improves by less than this.
  double tolerance = 1e-9;
  /// Hard iteration cap.
  size_t max_iterations = 500;
  /// Probabilities are clamped to [floor, 1-floor] to avoid degeneracy.
  double probability_floor = 1e-6;
};

/// EM estimation result.
struct EmEstimate {
  /// Estimated match prior P(M).
  double p = 0.0;
  /// Estimated per-attribute parameters (agreement_threshold copied from
  /// the options).
  std::vector<FsAttribute> attributes;
  /// Final log-likelihood of the binarized data.
  double log_likelihood = 0.0;
  /// Log-likelihood after every iteration (non-decreasing; the property
  /// tests assert monotonicity).
  std::vector<double> trajectory;
  /// Iterations executed.
  size_t iterations = 0;
};

/// Runs EM on the comparison vectors. Fails when `vectors` is empty,
/// components have inconsistent arity, or options are out of range.
Result<EmEstimate> EstimateWithEm(const std::vector<ComparisonVector>& vectors,
                                  const EmOptions& options = {});

}  // namespace pdd

#endif  // PDD_DECISION_EM_ESTIMATOR_H_
