#include "decision/fellegi_sunter.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace pdd {

Result<FellegiSunterModel> FellegiSunterModel::Make(
    std::vector<FsAttribute> attributes, bool interpolated) {
  if (attributes.empty()) {
    return Status::InvalidArgument("Fellegi-Sunter model needs attributes");
  }
  for (const FsAttribute& a : attributes) {
    if (a.m <= 0.0 || a.m >= 1.0 || a.u <= 0.0 || a.u >= 1.0) {
      return Status::InvalidArgument(
          "m and u probabilities must lie in (0, 1); got m=" +
          FormatDouble(a.m) + ", u=" + FormatDouble(a.u));
    }
    if (a.agreement_threshold < 0.0 || a.agreement_threshold > 1.0) {
      return Status::InvalidArgument("agreement threshold outside [0, 1]");
    }
  }
  return FellegiSunterModel(std::move(attributes), interpolated);
}

std::vector<bool> FellegiSunterModel::Agreements(
    const ComparisonVector& c) const {
  std::vector<bool> out(attributes_.size(), false);
  for (size_t i = 0; i < attributes_.size() && i < c.size(); ++i) {
    out[i] = c[i] >= attributes_[i].agreement_threshold;
  }
  return out;
}

double FellegiSunterModel::MatchingWeight(const ComparisonVector& c) const {
  std::vector<bool> agree = Agreements(c);
  double weight = 1.0;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const FsAttribute& a = attributes_[i];
    weight *= agree[i] ? a.m / a.u : (1.0 - a.m) / (1.0 - a.u);
  }
  return weight;
}

double FellegiSunterModel::LogWeight(const ComparisonVector& c) const {
  return std::log2(MatchingWeight(c));
}

double FellegiSunterModel::InterpolatedWeight(
    const ComparisonVector& c) const {
  double log_weight = 0.0;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const FsAttribute& a = attributes_[i];
    double s = i < c.size() ? std::clamp(c[i], 0.0, 1.0) : 0.0;
    double agree_log = std::log(a.m / a.u);
    double disagree_log = std::log((1.0 - a.m) / (1.0 - a.u));
    log_weight += s * agree_log + (1.0 - s) * disagree_log;
  }
  return std::exp(log_weight);
}

Thresholds FellegiSunterModel::DeriveThresholds(double fp_bound,
                                                double fn_bound) const {
  // Enumerate all agreement patterns with their weight, m-probability and
  // u-probability; sort by weight descending. Matches are declared for the
  // top patterns while accumulated u-mass stays within fp_bound; non-matches
  // for the bottom patterns while accumulated m-mass stays within fn_bound.
  struct Pattern {
    double weight;
    double m_prob;
    double u_prob;
  };
  size_t n = attributes_.size();
  std::vector<Pattern> patterns;
  patterns.reserve(size_t{1} << n);
  for (size_t mask = 0; mask < (size_t{1} << n); ++mask) {
    Pattern p{1.0, 1.0, 1.0};
    for (size_t i = 0; i < n; ++i) {
      const FsAttribute& a = attributes_[i];
      if (mask & (size_t{1} << i)) {
        p.m_prob *= a.m;
        p.u_prob *= a.u;
      } else {
        p.m_prob *= 1.0 - a.m;
        p.u_prob *= 1.0 - a.u;
      }
    }
    p.weight = p.m_prob / p.u_prob;
    patterns.push_back(p);
  }
  std::sort(patterns.begin(), patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              return a.weight > b.weight;
            });
  // Match set: top patterns while accumulated u-mass fits fp_bound.
  // Non-match set: bottom patterns while accumulated m-mass fits fn_bound.
  const size_t total = patterns.size();
  size_t k_match = 0;
  double u_mass = 0.0;
  while (k_match < total &&
         u_mass + patterns[k_match].u_prob <= fp_bound + 1e-15) {
    u_mass += patterns[k_match].u_prob;
    ++k_match;
  }
  size_t k_unmatch = 0;
  double m_mass = 0.0;
  while (k_unmatch < total &&
         m_mass + patterns[total - 1 - k_unmatch].m_prob <=
             fn_bound + 1e-15) {
    m_mass += patterns[total - 1 - k_unmatch].m_prob;
    ++k_unmatch;
  }
  // Generous bounds can make the sets overlap; shrink the larger one
  // until the sets are disjoint (the possible band vanishes).
  while (k_match + k_unmatch > total) {
    if (k_match >= k_unmatch) {
      --k_match;
    } else {
      --k_unmatch;
    }
  }
  // Classify() uses strict comparisons (sim > Tμ ⇒ match), but the FS rule
  // declares the boundary patterns matches/non-matches; nudge the
  // thresholds so boundary weights classify per the FS rule.
  Thresholds t;
  t.t_mu = k_match == 0
               ? patterns.front().weight
               : std::nexttoward(patterns[k_match - 1].weight, 0.0L);
  t.t_lambda = k_unmatch == 0
                   ? patterns.back().weight
                   : std::nexttoward(patterns[total - k_unmatch].weight,
                                     1e300L);
  if (t.t_lambda > t.t_mu) t.t_lambda = t.t_mu;
  return t;
}

}  // namespace pdd
