// Probabilistic decision model after Fellegi & Sunter [16] (Section III-D):
// per-attribute conditional agreement probabilities m_i and u_i, matching
// weight R = m(c⃗)/u(c⃗), and thresholds Tμ, Tλ.

#ifndef PDD_DECISION_FELLEGI_SUNTER_H_
#define PDD_DECISION_FELLEGI_SUNTER_H_

#include <vector>

#include "decision/classifier.h"
#include "decision/combination.h"
#include "match/comparison_vector.h"
#include "util/status.h"

namespace pdd {

/// Per-attribute Fellegi-Sunter parameters.
struct FsAttribute {
  /// m_i = P(agree on attribute i | pair is a match).
  double m = 0.9;
  /// u_i = P(agree on attribute i | pair is a non-match).
  double u = 0.1;
  /// Continuous similarities above this count as agreement.
  double agreement_threshold = 0.8;
};

/// The Fellegi-Sunter model over binarized comparison vectors, assuming
/// conditional independence of attribute agreements. With `interpolated`
/// set, Combine() uses the Winkler-style interpolated weight instead of
/// the binarized one.
class FellegiSunterModel : public CombinationFunction {
 public:
  explicit FellegiSunterModel(std::vector<FsAttribute> attributes,
                              bool interpolated = false)
      : attributes_(std::move(attributes)), interpolated_(interpolated) {}

  /// Validated construction: every m, u in (0, 1) (open interval so the
  /// disagreement ratios stay finite).
  static Result<FellegiSunterModel> Make(std::vector<FsAttribute> attributes,
                                         bool interpolated = false);

  /// The matching weight R = m(c⃗)/u(c⃗) = Π ratio_i, where ratio_i is
  /// m_i/u_i on agreement and (1-m_i)/(1-u_i) on disagreement.
  /// Unnormalized (a likelihood ratio), per the paper.
  double MatchingWeight(const ComparisonVector& c) const;

  /// log2 of MatchingWeight — the additive weight record linkers sum.
  double LogWeight(const ComparisonVector& c) const;

  /// Winkler-style interpolated matching weight: instead of binarizing,
  /// each attribute contributes a log-linear interpolation between the
  /// full-agreement ratio m/u and the full-disagreement ratio
  /// (1-m)/(1-u), driven by the continuous similarity c_i ∈ [0,1].
  /// Continuous comparator evidence (0.9 vs 0.81) is preserved instead
  /// of being thresholded away.
  double InterpolatedWeight(const ComparisonVector& c) const;

  /// CombinationFunction interface: φ(c⃗) = MatchingWeight(c⃗), or the
  /// interpolated weight when configured.
  double Combine(const ComparisonVector& c) const override {
    return interpolated_ ? InterpolatedWeight(c) : MatchingWeight(c);
  }
  std::string name() const override { return "fellegi_sunter"; }
  bool normalized() const override { return false; }

  /// Binarizes a comparison vector into agreement indicators.
  std::vector<bool> Agreements(const ComparisonVector& c) const;

  /// Derives thresholds on the matching weight from tolerated error
  /// rates: `fp_bound` bounds P(declare match | non-match mass above Tμ)
  /// and `fn_bound` bounds P(declare non-match | match mass below Tλ),
  /// evaluated over all 2^n agreement patterns (n = attribute count;
  /// intended for the usual small n). Follows the Fellegi-Sunter optimal
  /// decision rule construction.
  Thresholds DeriveThresholds(double fp_bound, double fn_bound) const;

  const std::vector<FsAttribute>& attributes() const { return attributes_; }

 private:
  std::vector<FsAttribute> attributes_;
  bool interpolated_ = false;
};

}  // namespace pdd

#endif  // PDD_DECISION_FELLEGI_SUNTER_H_
