#include "decision/rule_engine.h"

#include <algorithm>

#include "util/string_util.h"

namespace pdd {

bool IdentificationRule::Fires(const ComparisonVector& c) const {
  for (const RuleCondition& cond : conditions) {
    if (cond.attribute >= c.size() || c[cond.attribute] <= cond.threshold) {
      return false;
    }
  }
  return true;
}

Result<RuleEngine> RuleEngine::Make(std::vector<IdentificationRule> rules,
                                    const Schema& schema, Policy policy) {
  for (const IdentificationRule& rule : rules) {
    if (rule.certainty < 0.0 || rule.certainty > 1.0) {
      return Status::InvalidArgument("rule certainty " +
                                     FormatDouble(rule.certainty) +
                                     " outside [0, 1]");
    }
    for (const RuleCondition& cond : rule.conditions) {
      if (cond.attribute >= schema.arity()) {
        return Status::InvalidArgument(
            "rule references attribute index " +
            std::to_string(cond.attribute) + " beyond schema arity " +
            std::to_string(schema.arity()));
      }
      if (cond.threshold < 0.0 || cond.threshold > 1.0) {
        return Status::InvalidArgument("rule threshold " +
                                       FormatDouble(cond.threshold) +
                                       " outside [0, 1]");
      }
    }
  }
  return RuleEngine(std::move(rules), policy);
}

double RuleEngine::Evaluate(const ComparisonVector& c) const {
  double result = 0.0;
  for (const IdentificationRule& rule : rules_) {
    if (!rule.Fires(c)) continue;
    switch (policy_) {
      case Policy::kMax:
        result = std::max(result, rule.certainty);
        break;
      case Policy::kNoisyOr:
        result = 1.0 - (1.0 - result) * (1.0 - rule.certainty);
        break;
    }
  }
  return result;
}

}  // namespace pdd
