// Knowledge-based decision model (Section III-D, Fig. 1): domain experts
// define identification rules that declare two tuples duplicates with a
// certainty factor when attribute similarities exceed thresholds.

#ifndef PDD_DECISION_RULE_ENGINE_H_
#define PDD_DECISION_RULE_ENGINE_H_

#include <string>
#include <vector>

#include "decision/combination.h"
#include "match/comparison_vector.h"
#include "pdb/schema.h"
#include "util/status.h"

namespace pdd {

/// One conjunct of a rule: attribute similarity strictly above a threshold.
struct RuleCondition {
  /// Index of the attribute in the schema / comparison vector.
  size_t attribute = 0;
  /// Similarity threshold in [0, 1].
  double threshold = 0.0;
};

/// "IF name > th1 AND job > th2 THEN DUPLICATES WITH CERTAINTY 0.8".
struct IdentificationRule {
  std::vector<RuleCondition> conditions;
  /// Certainty factor in [0, 1] assigned when all conditions hold.
  double certainty = 1.0;

  /// True iff every condition holds for the comparison vector.
  bool Fires(const ComparisonVector& c) const;
};

/// A knowledge-based decision model: a rule set combined by a certainty
/// combination policy, yielding a normalized similarity degree.
class RuleEngine {
 public:
  /// How the certainties of multiple firing rules combine.
  enum class Policy {
    /// max over firing rules (standard certainty-factor semantics).
    kMax = 0,
    /// Probabilistic sum: 1 - Π (1 - cf_i); rewards independent evidence.
    kNoisyOr = 1,
  };

  explicit RuleEngine(std::vector<IdentificationRule> rules,
                      Policy policy = Policy::kMax)
      : rules_(std::move(rules)), policy_(policy) {}

  /// Validated construction: thresholds and certainties in [0,1], and
  /// every attribute index within the schema arity.
  static Result<RuleEngine> Make(std::vector<IdentificationRule> rules,
                                 const Schema& schema,
                                 Policy policy = Policy::kMax);

  /// Combined certainty in [0, 1] that the pair is a duplicate
  /// (0 when no rule fires).
  double Evaluate(const ComparisonVector& c) const;

  /// Rules in evaluation order.
  const std::vector<IdentificationRule>& rules() const { return rules_; }

 private:
  std::vector<IdentificationRule> rules_;
  Policy policy_;
};

/// CombinationFunction adapter so the knowledge-based model plugs into
/// the generic decision pipeline: φ(c⃗) is the combined certainty of the
/// firing rules — normalized, as Section III-D states for
/// knowledge-based techniques.
class RuleCombination : public CombinationFunction {
 public:
  explicit RuleCombination(RuleEngine engine) : engine_(std::move(engine)) {}

  double Combine(const ComparisonVector& c) const override {
    return engine_.Evaluate(c);
  }
  std::string name() const override { return "rules"; }

  const RuleEngine& engine() const { return engine_; }

 private:
  RuleEngine engine_;
};

}  // namespace pdd

#endif  // PDD_DECISION_RULE_ENGINE_H_
