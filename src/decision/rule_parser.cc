#include "decision/rule_parser.h"

#include <cctype>

#include "util/string_util.h"

namespace pdd {

namespace {

// Cursor-based token scanner over the rule text.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  // Next whitespace-delimited token, also splitting on '>' and '='
  // so "name>0.8" and "CERTAINTY=0.8" tokenize correctly.
  std::string Next() {
    SkipSpace();
    if (pos_ >= text_.size()) return "";
    char c = text_[pos_];
    if (c == '>' || c == '=') {
      ++pos_;
      return std::string(1, c);
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
           text_[pos_] != '>' && text_[pos_] != '=') {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string Peek() {
    size_t saved = pos_;
    std::string token = Next();
    pos_ = saved;
    return token;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<IdentificationRule> ParseRule(std::string_view text,
                                     const Schema& schema) {
  Scanner scanner(text);
  if (!EqualsIgnoreCase(scanner.Next(), "IF")) {
    return Status::ParseError("rule must start with IF");
  }
  IdentificationRule rule;
  // Conditions: <attr> > <threshold> [AND ...]
  while (true) {
    std::string attr = scanner.Next();
    if (attr.empty()) return Status::ParseError("expected attribute name");
    PDD_ASSIGN_OR_RETURN(size_t index, schema.IndexOf(attr));
    std::string op = scanner.Next();
    if (op != ">") {
      return Status::ParseError("expected '>' after attribute '" + attr +
                                "', got '" + op + "'");
    }
    std::string threshold_token = scanner.Next();
    double threshold = 0.0;
    if (!ParseDouble(threshold_token, &threshold)) {
      return Status::ParseError("malformed threshold '" + threshold_token +
                                "'");
    }
    if (threshold < 0.0 || threshold > 1.0) {
      return Status::ParseError("threshold " + threshold_token +
                                " outside [0, 1]");
    }
    rule.conditions.push_back({index, threshold});
    std::string next = scanner.Next();
    if (EqualsIgnoreCase(next, "AND")) continue;
    if (EqualsIgnoreCase(next, "THEN")) break;
    return Status::ParseError("expected AND or THEN, got '" + next + "'");
  }
  if (!EqualsIgnoreCase(scanner.Next(), "DUPLICATES")) {
    return Status::ParseError("expected DUPLICATES after THEN");
  }
  rule.certainty = 1.0;
  if (scanner.AtEnd()) return rule;
  // Optional: WITH CERTAINTY <x>  |  CERTAINTY = <x>  |  CERTAINTY <x>
  std::string token = scanner.Next();
  if (EqualsIgnoreCase(token, "WITH")) token = scanner.Next();
  if (!EqualsIgnoreCase(token, "CERTAINTY")) {
    return Status::ParseError("expected CERTAINTY clause, got '" + token +
                              "'");
  }
  token = scanner.Next();
  if (token == "=") token = scanner.Next();
  double certainty = 0.0;
  if (!ParseDouble(token, &certainty)) {
    return Status::ParseError("malformed certainty '" + token + "'");
  }
  if (certainty < 0.0 || certainty > 1.0) {
    return Status::ParseError("certainty " + token + " outside [0, 1]");
  }
  rule.certainty = certainty;
  if (!scanner.AtEnd()) {
    return Status::ParseError("trailing input after certainty: '" +
                              scanner.Next() + "'");
  }
  return rule;
}

Result<std::vector<IdentificationRule>> ParseRules(std::string_view text,
                                                   const Schema& schema) {
  std::vector<IdentificationRule> rules;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    PDD_ASSIGN_OR_RETURN(IdentificationRule rule, ParseRule(trimmed, schema));
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace pdd
