// Parser for the paper's identification rule syntax (Fig. 1):
//
//   IF name > 0.8 AND job > 0.5 THEN DUPLICATES WITH CERTAINTY 0.8
//
// Attribute names are resolved against a schema; the comparison operator
// is the strict '>' of the paper. Keywords are case-insensitive; the
// "WITH CERTAINTY x" clause is optional ("CERTAINTY=x" is also accepted).

#ifndef PDD_DECISION_RULE_PARSER_H_
#define PDD_DECISION_RULE_PARSER_H_

#include <string_view>
#include <vector>

#include "decision/rule_engine.h"
#include "pdb/schema.h"
#include "util/status.h"

namespace pdd {

/// Parses a single identification rule.
Result<IdentificationRule> ParseRule(std::string_view text,
                                     const Schema& schema);

/// Parses one rule per non-empty, non-'#'-comment line.
Result<std::vector<IdentificationRule>> ParseRules(std::string_view text,
                                                   const Schema& schema);

}  // namespace pdd

#endif  // PDD_DECISION_RULE_PARSER_H_
