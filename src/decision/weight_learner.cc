#include "decision/weight_learner.h"

#include <algorithm>
#include <cmath>

namespace pdd {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

double LearnedWeights::Predict(const ComparisonVector& c) const {
  double z = bias;
  for (size_t i = 0; i < weights.size() && i < c.size(); ++i) {
    z += weights[i] * c[i];
  }
  return Sigmoid(z);
}

std::pair<std::vector<double>, Thresholds> LearnedWeights::ToCombination()
    const {
  // Clip negatives (φ weights are non-negative by convention), normalize
  // to sum 1, and translate the decision boundary bias + Σ w_i c_i = 0
  // into a threshold on the normalized sum.
  std::vector<double> clipped = weights;
  double total = 0.0;
  for (double& w : clipped) {
    w = std::max(0.0, w);
    total += w;
  }
  Thresholds t;
  if (total <= 0.0) {
    return {std::vector<double>(
                weights.size(),
                weights.empty()
                    ? 0.0
                    : 1.0 / static_cast<double>(weights.size())),
            t};
  }
  for (double& w : clipped) w /= total;
  // Boundary: Σ w_i c_i = -bias  =>  normalized sum = -bias / total.
  double cut = std::clamp(-bias / total, 0.0, 1.0);
  t.t_lambda = cut;
  t.t_mu = cut;
  return {clipped, t};
}

Result<LearnedWeights> LearnWeights(const std::vector<LabeledVector>& data,
                                    const WeightLearnOptions& options) {
  if (data.empty()) {
    return Status::InvalidArgument("no training data");
  }
  const size_t n = data[0].comparison.size();
  if (n == 0) return Status::InvalidArgument("empty comparison vectors");
  bool any_match = false, any_unmatch = false;
  for (const LabeledVector& lv : data) {
    if (lv.comparison.size() != n) {
      return Status::InvalidArgument("comparison vectors of mixed arity");
    }
    (lv.is_match ? any_match : any_unmatch) = true;
  }
  if (!any_match || !any_unmatch) {
    return Status::FailedPrecondition(
        "training data needs both matches and non-matches");
  }
  LearnedWeights model;
  model.weights.assign(n, 0.0);
  model.bias = 0.0;
  const double scale = 1.0 / static_cast<double>(data.size());
  for (size_t iter = 0; iter < options.iterations; ++iter) {
    std::vector<double> grad(n, 0.0);
    double grad_bias = 0.0;
    double ll = 0.0;
    for (const LabeledVector& lv : data) {
      double p = model.Predict(lv.comparison);
      double y = lv.is_match ? 1.0 : 0.0;
      double error = y - p;
      for (size_t i = 0; i < n; ++i) grad[i] += error * lv.comparison[i];
      grad_bias += error;
      ll += y * std::log(std::max(p, 1e-12)) +
            (1.0 - y) * std::log(std::max(1.0 - p, 1e-12));
    }
    for (size_t i = 0; i < n; ++i) {
      model.weights[i] += options.learning_rate *
                          (grad[i] * scale - options.l2 * model.weights[i]);
    }
    model.bias += options.learning_rate * grad_bias * scale;
    model.log_likelihood = ll;
  }
  return model;
}

}  // namespace pdd
