// Supervised learning of weighted-sum combination weights from labeled
// pairs (the "with labeled training data" branch of the estimation
// methods the paper cites [25]-[28]): logistic regression on comparison
// vectors via gradient ascent, with the learned model mapped back to a
// φ-compatible weight vector plus a decision threshold.

#ifndef PDD_DECISION_WEIGHT_LEARNER_H_
#define PDD_DECISION_WEIGHT_LEARNER_H_

#include <vector>

#include "decision/classifier.h"
#include "match/comparison_vector.h"
#include "util/status.h"

namespace pdd {

/// One labeled training pair.
struct LabeledVector {
  ComparisonVector comparison;
  bool is_match = false;
};

/// Options of the learner.
struct WeightLearnOptions {
  double learning_rate = 0.5;
  size_t iterations = 500;
  /// L2 regularization strength.
  double l2 = 1e-3;
};

/// Learned model: P(match | c⃗) = sigmoid(bias + Σ w_i c_i).
struct LearnedWeights {
  std::vector<double> weights;
  double bias = 0.0;
  /// Final training log-likelihood.
  double log_likelihood = 0.0;

  /// Match probability of one comparison vector.
  double Predict(const ComparisonVector& c) const;

  /// Maps the model onto the φ = weighted-sum convention: non-negative
  /// weights normalized to sum 1 plus equivalent thresholds such that
  /// Classify(φ(c⃗)) declares a match iff Predict(c⃗) > probability 0.5
  /// (approximately, when negative weights were clipped).
  std::pair<std::vector<double>, Thresholds> ToCombination() const;
};

/// Trains on labeled comparison vectors. Fails on empty/inconsistent
/// input or single-class training data.
Result<LearnedWeights> LearnWeights(const std::vector<LabeledVector>& data,
                                    const WeightLearnOptions& options = {});

}  // namespace pdd

#endif  // PDD_DECISION_WEIGHT_LEARNER_H_
