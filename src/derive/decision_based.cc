#include "derive/decision_based.h"

#include <limits>

namespace pdd {

std::vector<MatchClass> ClassifyAlternativePairs(
    const AlternativePairScores& scores, const Thresholds& thresholds) {
  std::vector<MatchClass> eta(scores.sims.size());
  for (size_t idx = 0; idx < scores.sims.size(); ++idx) {
    eta[idx] = Classify(scores.sims[idx], thresholds);
  }
  return eta;
}

MatchingMass ComputeMatchingMass(const AlternativePairScores& scores,
                                 const Thresholds& thresholds) {
  MatchingMass mass;
  for (size_t i = 0; i < scores.rows; ++i) {
    for (size_t j = 0; j < scores.cols; ++j) {
      double w = scores.weight(i, j);
      switch (Classify(scores.sim(i, j), thresholds)) {
        case MatchClass::kMatch:
          mass.p_match += w;
          break;
        case MatchClass::kPossible:
          mass.p_possible += w;
          break;
        case MatchClass::kUnmatch:
          mass.p_unmatch += w;
          break;
      }
    }
  }
  return mass;
}

double MatchingWeightDerivation::Derive(
    const AlternativePairScores& scores) const {
  MatchingMass mass = ComputeMatchingMass(scores, intermediate_);
  if (mass.p_unmatch <= 0.0) {
    return mass.p_match > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
  }
  return mass.p_match / mass.p_unmatch;
}

double ExpectedMatchingDerivation::Derive(
    const AlternativePairScores& scores) const {
  MatchingMass mass = ComputeMatchingMass(scores, intermediate_);
  double expected = 2.0 * mass.p_match + 1.0 * mass.p_possible;
  return normalize_ ? expected / 2.0 : expected;
}

}  // namespace pdd
