// Decision-based derivation (Fig. 6 right): every alternative tuple pair
// is first classified into {M, P, U} with intermediate thresholds; the
// x-tuple similarity is then derived from the matching vector η⃗.

#ifndef PDD_DERIVE_DECISION_BASED_H_
#define PDD_DERIVE_DECISION_BASED_H_

#include <vector>

#include "decision/classifier.h"
#include "derive/derivation.h"

namespace pdd {

/// The per-alternative-pair matching vector η⃗(t1,t2) ∈ {m,p,u}^{k×l}
/// (Step 1.2 of Fig. 6 right).
std::vector<MatchClass> ClassifyAlternativePairs(
    const AlternativePairScores& scores, const Thresholds& thresholds);

/// Aggregated world masses of Eq. 8/9: P(m), P(p), P(u) — the overall
/// conditioned probabilities of the worlds whose alternative pair is
/// declared match / possible / unmatch. The three sum to 1.
struct MatchingMass {
  double p_match = 0.0;
  double p_possible = 0.0;
  double p_unmatch = 0.0;
};

/// Computes the matching masses for the given thresholds.
MatchingMass ComputeMatchingMass(const AlternativePairScores& scores,
                                 const Thresholds& thresholds);

/// Eq. 7: sim(t1,t2) = P(m)/P(u) (a matching-weight-style unnormalized
/// score; the paper computes (3/9)/(4/9) = 0.75 for (t32,t42)).
///
/// Edge cases (not defined by the paper): P(u)=0 with P(m)>0 yields
/// +infinity (certain match evidence); P(u)=0 with P(m)=0 — all mass on
/// possible matches — yields 1 (neutral evidence).
class MatchingWeightDerivation : public DerivationFunction {
 public:
  explicit MatchingWeightDerivation(Thresholds intermediate)
      : intermediate_(intermediate) {}

  double Derive(const AlternativePairScores& scores) const override;
  std::string name() const override { return "matching_weight"; }
  bool normalized() const override { return false; }

  const Thresholds& intermediate_thresholds() const { return intermediate_; }

 private:
  Thresholds intermediate_;
};

/// The paper's second decision-based variant: the expected matching
/// result E(η(t1^i,t2^j) | B) with η coded m=2, p=1, u=0. When
/// `normalize` is set the result is divided by 2, mapping to [0,1].
class ExpectedMatchingDerivation : public DerivationFunction {
 public:
  ExpectedMatchingDerivation(Thresholds intermediate, bool normalize = false)
      : intermediate_(intermediate), normalize_(normalize) {}

  double Derive(const AlternativePairScores& scores) const override;
  std::string name() const override { return "expected_matching"; }
  bool normalized() const override { return normalize_; }

 private:
  Thresholds intermediate_;
  bool normalize_;
};

}  // namespace pdd

#endif  // PDD_DERIVE_DECISION_BASED_H_
