#include "derive/derivation.h"

namespace pdd {

AlternativePairScores BuildAlternativePairScores(
    const XTuple& t1, const XTuple& t2, const TupleMatcher& matcher,
    const CombinationFunction& phi) {
  return CombineComparisonMatrix(t1, t2, matcher.CompareXTuples(t1, t2),
                                 phi);
}

AlternativePairScores CombineComparisonMatrix(const XTuple& t1,
                                              const XTuple& t2,
                                              const ComparisonMatrix& matrix,
                                              const CombinationFunction& phi) {
  AlternativePairScores scores;
  scores.rows = matrix.rows();
  scores.cols = matrix.cols();
  scores.p1 = t1.ConditionedProbabilities();
  scores.p2 = t2.ConditionedProbabilities();
  scores.sims.resize(scores.rows * scores.cols);
  for (size_t i = 0; i < scores.rows; ++i) {
    for (size_t j = 0; j < scores.cols; ++j) {
      scores.sims[i * scores.cols + j] = phi.Combine(matrix.at(i, j));
    }
  }
  return scores;
}

}  // namespace pdd
