#include "derive/derivation.h"

namespace pdd {

AlternativePairScores BuildAlternativePairScores(
    const XTuple& t1, const XTuple& t2, const TupleMatcher& matcher,
    const CombinationFunction& phi) {
  AlternativePairScores scores;
  scores.rows = t1.size();
  scores.cols = t2.size();
  scores.p1 = t1.ConditionedProbabilities();
  scores.p2 = t2.ConditionedProbabilities();
  scores.sims.resize(scores.rows * scores.cols);
  for (size_t i = 0; i < scores.rows; ++i) {
    for (size_t j = 0; j < scores.cols; ++j) {
      ComparisonVector c =
          matcher.CompareAlternatives(t1.alternative(i), t2.alternative(j));
      scores.sims[i * scores.cols + j] = phi.Combine(c);
    }
  }
  return scores;
}

}  // namespace pdd
