// Derivation functions ϑ for x-tuple pairs (Section IV-B, Fig. 6).
//
// Step 1 of both adapted decision models evaluates the combination
// function φ on every alternative tuple pair, producing a k×l score grid
// together with the conditioned alternative probabilities p(t_i)/p(t).
// A DerivationFunction then collapses that grid into the x-tuple pair
// similarity sim(t1, t2).

#ifndef PDD_DERIVE_DERIVATION_H_
#define PDD_DERIVE_DERIVATION_H_

#include <string>
#include <vector>

#include "decision/combination.h"
#include "match/tuple_matcher.h"
#include "pdb/xtuple.h"

namespace pdd {

/// φ scores of all alternative tuple pairs of one x-tuple pair, plus the
/// conditioned alternative probabilities (tuple membership must not
/// influence duplicate detection, so probabilities are p(t_i)/p(t)).
struct AlternativePairScores {
  size_t rows = 0;  // k: alternatives of t1
  size_t cols = 0;  // l: alternatives of t2
  /// Row-major φ(c⃗_ij) values.
  std::vector<double> sims;
  /// Conditioned probabilities of t1's / t2's alternatives (sum to 1).
  std::vector<double> p1;
  std::vector<double> p2;

  double sim(size_t i, size_t j) const { return sims[i * cols + j]; }
  /// Conditioned probability of the world picking alternatives (i, j).
  double weight(size_t i, size_t j) const { return p1[i] * p2[j]; }
};

/// Step 1 of Fig. 6: builds the score grid for an x-tuple pair using the
/// matcher (attribute value matching, Section IV-A) and φ.
AlternativePairScores BuildAlternativePairScores(
    const XTuple& t1, const XTuple& t2, const TupleMatcher& matcher,
    const CombinationFunction& phi);

/// The φ half of Step 1 over a precomputed comparison matrix. The one
/// live copy of the combine arithmetic, shared by
/// BuildAlternativePairScores and the staged pipeline's combine stage.
AlternativePairScores CombineComparisonMatrix(const XTuple& t1,
                                              const XTuple& t2,
                                              const ComparisonMatrix& matrix,
                                              const CombinationFunction& phi);

/// Interface of a derivation function ϑ (Step 2 of Fig. 6).
class DerivationFunction {
 public:
  virtual ~DerivationFunction() = default;

  /// Collapses the alternative pair scores into sim(t1, t2).
  virtual double Derive(const AlternativePairScores& scores) const = 0;

  /// Human-readable name.
  virtual std::string name() const = 0;

  /// True when results are guaranteed normalized given normalized inputs.
  virtual bool normalized() const { return true; }
};

}  // namespace pdd

#endif  // PDD_DERIVE_DERIVATION_H_
