// Convenience header re-exporting the expected-matching derivation
// declared alongside the other decision-based derivations.

#ifndef PDD_DERIVE_EXPECTED_MATCHING_H_
#define PDD_DERIVE_EXPECTED_MATCHING_H_

#include "derive/decision_based.h"
#include "derive/xtuple_decision_model.h"

#endif  // PDD_DERIVE_EXPECTED_MATCHING_H_
