#include "derive/monte_carlo.h"

#include <cmath>
#include <limits>

namespace pdd {

McEstimate EstimateSimilarityMc(const XTuple& t1, const XTuple& t2,
                                const TupleMatcher& matcher,
                                const CombinationFunction& phi, Rng* rng,
                                const McOptions& options) {
  McEstimate est;
  if (t1.size() == 0 || t2.size() == 0 || options.samples == 0) return est;
  // Conditioned alternative distributions (event B: both tuples exist).
  std::vector<double> p1 = t1.ConditionedProbabilities();
  std::vector<double> p2 = t2.ConditionedProbabilities();
  // Memoize φ per alternative pair: sampling revisits cells, and the
  // expensive part is the Eq. 5 attribute matching inside.
  std::vector<double> cache(t1.size() * t2.size(),
                            std::numeric_limits<double>::quiet_NaN());
  double sum = 0.0;
  double sum_sq = 0.0;
  size_t n = 0;
  while (n < options.samples) {
    size_t i = rng->Discrete(p1);
    size_t j = rng->Discrete(p2);
    double& cell = cache[i * t2.size() + j];
    if (std::isnan(cell)) {
      cell = phi.Combine(
          matcher.CompareAlternatives(t1.alternative(i), t2.alternative(j)));
    }
    sum += cell;
    sum_sq += cell * cell;
    ++n;
    if (options.target_standard_error > 0.0 && n >= 2 &&
        n % options.check_interval == 0) {
      double mean = sum / static_cast<double>(n);
      double variance =
          (sum_sq - static_cast<double>(n) * mean * mean) /
          static_cast<double>(n - 1);
      double se = std::sqrt(std::max(0.0, variance) /
                            static_cast<double>(n));
      if (se <= options.target_standard_error) break;
    }
  }
  est.samples = n;
  est.similarity = sum / static_cast<double>(n);
  if (n >= 2) {
    double variance = (sum_sq - static_cast<double>(n) * est.similarity *
                                    est.similarity) /
                      static_cast<double>(n - 1);
    est.standard_error =
        std::sqrt(std::max(0.0, variance) / static_cast<double>(n));
  }
  return est;
}

}  // namespace pdd
