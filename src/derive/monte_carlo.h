// Monte-Carlo estimation of x-tuple pair similarity by possible-world
// sampling: draws worlds of the pair conditioned on both tuples
// existing, evaluates φ on the sampled alternative pair, and averages.
//
// Converges to the Eq. 6 conditional expectation (the similarity-based
// derivation) and gives the anytime/approximate path for pairs whose
// k×l alternative grid — or whose value-level alternative counts — make
// the exact computation expensive.

#ifndef PDD_DERIVE_MONTE_CARLO_H_
#define PDD_DERIVE_MONTE_CARLO_H_

#include "decision/combination.h"
#include "match/tuple_matcher.h"
#include "pdb/xtuple.h"
#include "util/random.h"

namespace pdd {

/// Result of a Monte-Carlo similarity estimate.
struct McEstimate {
  /// The sample mean of φ over the drawn worlds.
  double similarity = 0.0;
  /// Sample standard error (σ̂ / √n); 0 for fewer than two samples.
  double standard_error = 0.0;
  /// Worlds drawn.
  size_t samples = 0;
};

/// Options of the estimator.
struct McOptions {
  /// Number of sampled worlds (conditioned on both tuples existing).
  size_t samples = 1000;
  /// Stop early once the standard error drops below this (0 disables).
  double target_standard_error = 0.0;
  /// Check the early-stop criterion every this many samples.
  size_t check_interval = 64;
};

/// Estimates E[sim(t1, t2) | B] by sampling alternative pairs
/// proportionally to their conditioned probabilities. Deterministic for
/// a given `rng` state.
McEstimate EstimateSimilarityMc(const XTuple& t1, const XTuple& t2,
                                const TupleMatcher& matcher,
                                const CombinationFunction& phi, Rng* rng,
                                const McOptions& options = {});

}  // namespace pdd

#endif  // PDD_DERIVE_MONTE_CARLO_H_
