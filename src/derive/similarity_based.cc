#include "derive/similarity_based.h"

#include <algorithm>

namespace pdd {

double ExpectedSimilarityDerivation::Derive(
    const AlternativePairScores& scores) const {
  double total = 0.0;
  for (size_t i = 0; i < scores.rows; ++i) {
    for (size_t j = 0; j < scores.cols; ++j) {
      total += scores.weight(i, j) * scores.sim(i, j);
    }
  }
  return total;
}

double MaxSimilarityDerivation::Derive(
    const AlternativePairScores& scores) const {
  double best = 0.0;
  for (double s : scores.sims) best = std::max(best, s);
  return best;
}

double MinSimilarityDerivation::Derive(
    const AlternativePairScores& scores) const {
  if (scores.sims.empty()) return 0.0;
  double worst = scores.sims[0];
  for (double s : scores.sims) worst = std::min(worst, s);
  return worst;
}

double ModeSimilarityDerivation::Derive(
    const AlternativePairScores& scores) const {
  double best_weight = -1.0;
  double result = 0.0;
  for (size_t i = 0; i < scores.rows; ++i) {
    for (size_t j = 0; j < scores.cols; ++j) {
      if (scores.weight(i, j) > best_weight + kProbEpsilon) {
        best_weight = scores.weight(i, j);
        result = scores.sim(i, j);
      }
    }
  }
  return result;
}

}  // namespace pdd
