// Similarity-based derivation (Fig. 6 left): sim(t1,t2) is derived
// directly from the alternative pair similarities.

#ifndef PDD_DERIVE_SIMILARITY_BASED_H_
#define PDD_DERIVE_SIMILARITY_BASED_H_

#include "derive/derivation.h"

namespace pdd {

/// Eq. 6: the conditional expectation E(sim(t1^i, t2^j) | B) =
/// Σ_i Σ_j p(t1^i)/p(t1) · p(t2^j)/p(t2) · sim(t1^i, t2^j).
///
/// Equals the expected similarity over all possible worlds containing
/// both tuples (the paper's Fig. 7 example yields 7/15 for (t32, t42)).
/// The paper notes this derivation suits knowledge-based (normalized φ)
/// techniques; with unnormalized φ the expectation can become
/// unrepresentative.
class ExpectedSimilarityDerivation : public DerivationFunction {
 public:
  double Derive(const AlternativePairScores& scores) const override;
  std::string name() const override { return "expected_similarity"; }
};

/// Optimistic variant: the maximal alternative pair similarity.
class MaxSimilarityDerivation : public DerivationFunction {
 public:
  double Derive(const AlternativePairScores& scores) const override;
  std::string name() const override { return "max_similarity"; }
};

/// Conservative variant: the minimal alternative pair similarity.
class MinSimilarityDerivation : public DerivationFunction {
 public:
  double Derive(const AlternativePairScores& scores) const override;
  std::string name() const override { return "min_similarity"; }
};

/// The similarity of the most probable alternative pair (the pair
/// maximizing the conditioned probability p1_i·p2_j; ties break toward
/// lower indices). Equivalent to evaluating only the most probable world.
class ModeSimilarityDerivation : public DerivationFunction {
 public:
  double Derive(const AlternativePairScores& scores) const override;
  std::string name() const override { return "mode_similarity"; }
};

}  // namespace pdd

#endif  // PDD_DERIVE_SIMILARITY_BASED_H_
