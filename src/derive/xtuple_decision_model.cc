#include "derive/xtuple_decision_model.h"

namespace pdd {

double XTupleDecisionModel::Similarity(const XTuple& t1,
                                       const XTuple& t2) const {
  AlternativePairScores scores =
      BuildAlternativePairScores(t1, t2, *matcher_, *phi_);
  return theta_->Derive(scores);
}

XPairDecision XTupleDecisionModel::Decide(const XTuple& t1,
                                          const XTuple& t2) const {
  XPairDecision decision;
  decision.similarity = Similarity(t1, t2);
  decision.match_class = Classify(decision.similarity, final_thresholds_);
  return decision;
}

}  // namespace pdd
