// The complete adapted decision model for x-tuple pairs (Fig. 6):
//   1. φ on every alternative tuple pair (and, for the decision-based
//      path, classification with intermediate thresholds),
//   2. derivation function ϑ,
//   3. classification of the pair into {M, P, U} with final thresholds.

#ifndef PDD_DERIVE_XTUPLE_DECISION_MODEL_H_
#define PDD_DERIVE_XTUPLE_DECISION_MODEL_H_

#include <string>

#include "decision/classifier.h"
#include "decision/combination.h"
#include "derive/derivation.h"
#include "match/tuple_matcher.h"
#include "pdb/xtuple.h"

namespace pdd {

/// Outcome of deciding one x-tuple pair.
struct XPairDecision {
  /// sim(t1, t2) produced by the derivation function (Step 2).
  double similarity = 0.0;
  /// η(t1, t2) from the final classification (Step 3).
  MatchClass match_class = MatchClass::kUnmatch;
};

/// Orchestrates Fig. 6 for x-tuple pairs. The combination function,
/// derivation function and matcher must outlive the model.
class XTupleDecisionModel {
 public:
  XTupleDecisionModel(const TupleMatcher* matcher,
                      const CombinationFunction* phi,
                      const DerivationFunction* theta,
                      Thresholds final_thresholds)
      : matcher_(matcher),
        phi_(phi),
        theta_(theta),
        final_thresholds_(final_thresholds) {}

  /// Runs the full three-step procedure on one x-tuple pair.
  XPairDecision Decide(const XTuple& t1, const XTuple& t2) const;

  /// Step 1+2 only: the derived similarity sim(t1, t2).
  double Similarity(const XTuple& t1, const XTuple& t2) const;

  const Thresholds& final_thresholds() const { return final_thresholds_; }
  const DerivationFunction& derivation() const { return *theta_; }

 private:
  const TupleMatcher* matcher_;
  const CombinationFunction* phi_;
  const DerivationFunction* theta_;
  Thresholds final_thresholds_;
};

}  // namespace pdd

#endif  // PDD_DERIVE_XTUPLE_DECISION_MODEL_H_
