#include "fusion/conflict_resolution.h"

#include <cassert>

namespace pdd {

Result<ConflictStrategy> ParseConflictStrategy(std::string_view name) {
  if (name == "most_probable") return ConflictStrategy::kMostProbable;
  if (name == "first") return ConflictStrategy::kFirst;
  if (name == "longest") return ConflictStrategy::kLongest;
  if (name == "shortest") return ConflictStrategy::kShortest;
  if (name == "lex_min") return ConflictStrategy::kLexicographicMin;
  return Status::NotFound("no conflict strategy named '" + std::string(name) +
                          "'");
}

const char* ConflictStrategyName(ConflictStrategy strategy) {
  switch (strategy) {
    case ConflictStrategy::kMostProbable:
      return "most_probable";
    case ConflictStrategy::kFirst:
      return "first";
    case ConflictStrategy::kLongest:
      return "longest";
    case ConflictStrategy::kShortest:
      return "shortest";
    case ConflictStrategy::kLexicographicMin:
      return "lex_min";
  }
  return "unknown";
}

std::string ResolveValue(const Value& value, ConflictStrategy strategy) {
  if (value.is_null()) return "";
  const auto& alts = value.alternatives();
  switch (strategy) {
    case ConflictStrategy::kMostProbable:
      return value.MostProbableText();
    case ConflictStrategy::kFirst:
      return alts[0].text;
    case ConflictStrategy::kLongest: {
      const Alternative* best = &alts[0];
      for (const Alternative& a : alts) {
        if (a.text.size() > best->text.size()) best = &a;
      }
      return best->text;
    }
    case ConflictStrategy::kShortest: {
      const Alternative* best = &alts[0];
      for (const Alternative& a : alts) {
        if (a.text.size() < best->text.size()) best = &a;
      }
      return best->text;
    }
    case ConflictStrategy::kLexicographicMin: {
      const Alternative* best = &alts[0];
      for (const Alternative& a : alts) {
        if (a.text < best->text) best = &a;
      }
      return best->text;
    }
  }
  return "";
}

namespace {

std::string ConcatenatedResolution(const AltTuple& alt,
                                   ConflictStrategy strategy) {
  std::string out;
  for (const Value& v : alt.values) out += ResolveValue(v, strategy);
  return out;
}

}  // namespace

size_t ResolveAlternative(const XTuple& xtuple, ConflictStrategy strategy) {
  assert(xtuple.size() > 0);
  if (xtuple.size() == 1) return 0;
  switch (strategy) {
    case ConflictStrategy::kMostProbable: {
      size_t best = 0;
      for (size_t i = 1; i < xtuple.size(); ++i) {
        if (xtuple.alternative(i).prob >
            xtuple.alternative(best).prob + kProbEpsilon) {
          best = i;
        }
      }
      return best;
    }
    case ConflictStrategy::kFirst:
      return 0;
    case ConflictStrategy::kLongest:
    case ConflictStrategy::kShortest:
    case ConflictStrategy::kLexicographicMin: {
      size_t best = 0;
      std::string best_text =
          ConcatenatedResolution(xtuple.alternative(0), strategy);
      for (size_t i = 1; i < xtuple.size(); ++i) {
        std::string text =
            ConcatenatedResolution(xtuple.alternative(i), strategy);
        bool better = false;
        if (strategy == ConflictStrategy::kLongest) {
          better = text.size() > best_text.size();
        } else if (strategy == ConflictStrategy::kShortest) {
          better = text.size() < best_text.size();
        } else {
          better = text < best_text;
        }
        if (better) {
          best = i;
          best_text = std::move(text);
        }
      }
      return best;
    }
  }
  return 0;
}

}  // namespace pdd
