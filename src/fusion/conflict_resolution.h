// Conflict resolution strategies from data fusion (Bleiholder & Naumann
// [17]), used by "creation of certain key values" (Section V-A.2): unify
// tuple alternatives to a single one before key creation.

#ifndef PDD_FUSION_CONFLICT_RESOLUTION_H_
#define PDD_FUSION_CONFLICT_RESOLUTION_H_

#include <string>

#include "pdb/value.h"
#include "pdb/xtuple.h"
#include "util/status.h"

namespace pdd {

/// How a set of conflicting alternatives is collapsed to one.
enum class ConflictStrategy {
  /// Metadata-based deciding: pick the most probable alternative
  /// (the paper's example; equivalent to the most probable world).
  kMostProbable = 0,
  /// Keep the first alternative (source order).
  kFirst = 1,
  /// Pick the longest text (most informative heuristic).
  kLongest = 2,
  /// Pick the shortest text.
  kShortest = 3,
  /// Pick the lexicographically smallest text (deterministic tie-break).
  kLexicographicMin = 4,
};

/// Parses a strategy name ("most_probable", "first", "longest",
/// "shortest", "lex_min").
Result<ConflictStrategy> ParseConflictStrategy(std::string_view name);

/// Stable name of a strategy.
const char* ConflictStrategyName(ConflictStrategy strategy);

/// Collapses a probabilistic value to one certain text; empty string
/// denotes ⊥. Pattern alternatives contribute their literal prefix.
/// For kMostProbable, a dominant ⊥ mass resolves to ⊥.
std::string ResolveValue(const Value& value, ConflictStrategy strategy);

/// Picks one alternative index of an x-tuple. Text-based strategies
/// compare the concatenation of the alternatives' resolved values.
/// Returns 0 for single-alternative x-tuples.
size_t ResolveAlternative(const XTuple& xtuple, ConflictStrategy strategy);

}  // namespace pdd

#endif  // PDD_FUSION_CONFLICT_RESOLUTION_H_
