#include "fusion/probabilistic_merge.h"

#include <map>

namespace pdd {

Value FuseValues(const Value& a, const Value& b,
                 const MergeOptions& options) {
  double wa = options.weight_a;
  double wb = 1.0 - wa;
  std::vector<std::string> order;
  std::map<std::pair<std::string, bool>, double> mass;
  auto add = [&](const Alternative& alt, double w) {
    auto key = std::make_pair(alt.text, alt.is_pattern);
    auto [it, inserted] = mass.emplace(key, 0.0);
    if (inserted) order.push_back(alt.text);
    it->second += w * alt.prob;
  };
  for (const Alternative& alt : a.alternatives()) add(alt, wa);
  for (const Alternative& alt : b.alternatives()) add(alt, wb);
  std::vector<Alternative> fused;
  fused.reserve(mass.size());
  // Rebuild in the deterministic map order (text, pattern-flag).
  for (const auto& [key, prob] : mass) {
    if (prob < options.min_alternative_prob) continue;
    fused.push_back({key.first, prob, key.second});
  }
  return Value::Unchecked(std::move(fused));
}

namespace {

bool SameValues(const AltTuple& a, const AltTuple& b) {
  if (a.values.size() != b.values.size()) return false;
  for (size_t i = 0; i < a.values.size(); ++i) {
    if (!(a.values[i] == b.values[i])) return false;
  }
  return true;
}

}  // namespace

XTuple FuseXTuples(const XTuple& a, const XTuple& b, std::string fused_id,
                   const MergeOptions& options) {
  double wa = options.weight_a;
  double wb = 1.0 - wa;
  // Mixture over conditioned alternatives, scaled back by the mixed
  // existence probability: tuple membership carries fusion semantics,
  // alternative choice carries value semantics.
  double existence =
      wa * a.existence_probability() + wb * b.existence_probability();
  std::vector<double> pa = a.ConditionedProbabilities();
  std::vector<double> pb = b.ConditionedProbabilities();
  std::vector<AltTuple> fused;
  auto add = [&](const AltTuple& alt, double prob) {
    if (prob < options.min_alternative_prob) return;
    for (AltTuple& existing : fused) {
      if (SameValues(existing, alt)) {
        existing.prob += prob;
        return;
      }
    }
    AltTuple copy = alt;
    copy.prob = prob;
    fused.push_back(std::move(copy));
  };
  for (size_t i = 0; i < a.size(); ++i) {
    add(a.alternative(i), wa * pa[i] * existence);
  }
  for (size_t j = 0; j < b.size(); ++j) {
    add(b.alternative(j), wb * pb[j] * existence);
  }
  return XTuple(std::move(fused_id), std::move(fused));
}

}  // namespace pdd
