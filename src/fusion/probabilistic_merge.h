// Data fusion of probabilistic duplicates: merging two probabilistic
// representations of the same real-world entity into one. The paper
// defers full probabilistic data fusion to future work (Section VI);
// this module implements the natural mixture semantics so the
// uncertain-result builder (core/uncertain_result.h) has a merge
// operator to work with.

#ifndef PDD_FUSION_PROBABILISTIC_MERGE_H_
#define PDD_FUSION_PROBABILISTIC_MERGE_H_

#include <string>

#include "pdb/value.h"
#include "pdb/xtuple.h"

namespace pdd {

/// Options of the probabilistic merge.
struct MergeOptions {
  /// Mixture weight of the first source in [0, 1] (e.g. source
  /// reliability); the second source receives 1 - weight_a.
  double weight_a = 0.5;
  /// Alternatives with merged probability below this are dropped and
  /// their mass renormalized over the survivors (keeps fused tuples from
  /// accumulating negligible alternatives).
  double min_alternative_prob = 1e-6;
};

/// Fuses two probabilistic values as a mixture: every outcome's
/// probability is weight_a·P_a(outcome) + (1-weight_a)·P_b(outcome);
/// equal texts merge, and ⊥ mass mixes the same way. The result is a
/// valid distribution whenever the inputs are.
Value FuseValues(const Value& a, const Value& b, const MergeOptions& options);

/// Fuses two x-tuples believed to represent the same entity: the fused
/// alternative set is the weighted union of both tuples' conditioned
/// alternatives (alternatives with pairwise identical values merge).
/// The fused existence probability is the mixture of both existence
/// probabilities.
XTuple FuseXTuples(const XTuple& a, const XTuple& b, std::string fused_id,
                   const MergeOptions& options);

}  // namespace pdd

#endif  // PDD_FUSION_PROBABILISTIC_MERGE_H_
