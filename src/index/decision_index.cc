#include "index/decision_index.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "plan/plan_spec.h"

namespace pdd {

namespace {

/// Bytes a fixed-layout section needs given the header counts.
uint64_t FixedSectionBytes(IndexSection section, const IndexHeader& h) {
  switch (section) {
    case kIdOffsets:
      return (h.record_count + 1) * 4;
    case kIdSorted:
    case kAdjBase:
    case kClusterOf:
    case kClusterMembers:
      return h.record_count * 4;
    case kAdjEntryOffsets:
    case kAdjByteOffsets:
      return (h.record_count + 1) * 8;
    case kAdjWidth:
      return h.record_count;
    case kEdgeClass:
      return (h.pair_count + 3) / 4;
    case kEdgeSim:
      return h.pair_count * 8;
    case kClusterOffsets:
      return (h.cluster_count + 1) * 8;
    case kIdArena:
    case kAdjData:
    case kIndexSectionCount:
      return 0;  // variable; validated from the offset arrays
  }
  return 0;
}

Status Corrupt(const std::string& what) {
  return Status::ParseError("decision index: corrupted file: " + what);
}

}  // namespace

Result<DecisionIndex> DecisionIndex::Open(const std::string& path,
                                          const OpenOptions& options) {
  DecisionIndex index;
  PDD_RETURN_IF_ERROR(index.file_.Open(path));
  Status attached = index.Attach(options);
  if (!attached.ok()) {
    return Status(attached.code(),
                  attached.message() + " ('" + path + "')");
  }
  return index;
}

Result<DecisionIndex> DecisionIndex::FromImage(std::string image,
                                               const OpenOptions& options) {
  DecisionIndex index;
  index.image_ = std::move(image);
  PDD_RETURN_IF_ERROR(index.Attach(options));
  return index;
}

Status DecisionIndex::Attach(const OpenOptions& options) {
  const unsigned char* data =
      file_.mapped() ? file_.data()
                     : reinterpret_cast<const unsigned char*>(image_.data());
  size_ = file_.mapped() ? file_.size() : image_.size();
  Result<IndexHeader> header = DecodeIndexHeader(data, size_);
  if (!header.ok()) return header.status();
  header_ = *header;
  const IndexHeader& h = header_;
  if (options.verify_digest) {
    uint64_t digest = IndexHashBytes(kIndexFnvOffset, data + kIndexHeaderBytes,
                                     h.payload_bytes);
    if (digest != h.payload_digest) {
      return Corrupt("payload digest mismatch");
    }
  }
  // Section extents: every fixed-size section must fit between its
  // offset and the next section's (the last one inside the payload).
  for (uint32_t s = 0; s < kIndexSectionCount; ++s) {
    uint64_t end = s + 1 < kIndexSectionCount ? h.section_offsets[s + 1]
                                              : h.payload_bytes;
    uint64_t need = FixedSectionBytes(static_cast<IndexSection>(s), h);
    if (h.section_offsets[s] + need > end) {
      return Corrupt("section " + std::to_string(s) +
                     " smaller than its declared contents");
    }
  }
  // Offset arrays: monotone, consistent with the variable sections.
  const uint32_t* id_offsets = Section<uint32_t>(kIdOffsets);
  for (uint64_t r = 0; r < h.record_count; ++r) {
    if (id_offsets[r] > id_offsets[r + 1]) {
      return Corrupt("id offsets not monotone");
    }
  }
  if (h.section_offsets[kIdArena] + id_offsets[h.record_count] >
      h.section_offsets[kIdSorted]) {
    return Corrupt("id arena overflows its section");
  }
  const uint64_t* entry_offsets = Section<uint64_t>(kAdjEntryOffsets);
  const uint64_t* byte_offsets = Section<uint64_t>(kAdjByteOffsets);
  const uint8_t* widths = Section<uint8_t>(kAdjWidth);
  for (uint64_t r = 0; r < h.record_count; ++r) {
    uint64_t entries = entry_offsets[r + 1] - entry_offsets[r];
    if (entry_offsets[r] > entry_offsets[r + 1] ||
        byte_offsets[r] > byte_offsets[r + 1]) {
      return Corrupt("adjacency offsets not monotone");
    }
    if (widths[r] != 1 && widths[r] != 2 && widths[r] != 4) {
      return Corrupt("adjacency delta width not in {1,2,4}");
    }
    if (byte_offsets[r + 1] - byte_offsets[r] != entries * widths[r]) {
      return Corrupt("adjacency run bytes disagree with entry count");
    }
  }
  if (entry_offsets[h.record_count] != h.pair_count) {
    return Corrupt("adjacency entries disagree with the pair count");
  }
  if (h.section_offsets[kAdjData] + byte_offsets[h.record_count] >
      h.section_offsets[kEdgeClass]) {
    return Corrupt("adjacency data overflows its section");
  }
  const uint64_t* cluster_offsets = Section<uint64_t>(kClusterOffsets);
  for (uint64_t c = 0; c < h.cluster_count; ++c) {
    if (cluster_offsets[c] > cluster_offsets[c + 1]) {
      return Corrupt("cluster offsets not monotone");
    }
  }
  if (cluster_offsets[h.cluster_count] != h.record_count) {
    return Corrupt("cluster membership does not cover every record");
  }
  return Status::OK();
}

std::optional<IndexedDecision> DecisionIndex::Lookup(uint32_t a,
                                                     uint32_t b) const {
  const uint64_t n = header_.record_count;
  if (a == b || a >= n || b >= n) return std::nullopt;
  const uint32_t lo = std::min(a, b);
  const uint32_t hi = std::max(a, b);
  const uint64_t* entry_offsets = Section<uint64_t>(kAdjEntryOffsets);
  const uint64_t e0 = entry_offsets[lo];
  const uint64_t count = entry_offsets[lo + 1] - e0;
  if (count == 0) return std::nullopt;
  const uint32_t run_base = Section<uint32_t>(kAdjBase)[lo];
  if (hi < run_base) return std::nullopt;
  const uint32_t target = hi - run_base;
  const uint32_t width = Section<uint8_t>(kAdjWidth)[lo];
  const unsigned char* run =
      Section<unsigned char>(kAdjData) + Section<uint64_t>(kAdjByteOffsets)[lo];
  // Binary search over the monotone frame-of-reference deltas.
  uint64_t left = 0;
  uint64_t right = count;
  while (left < right) {
    const uint64_t mid = left + (right - left) / 2;
    if (IndexReadDelta(run + mid * width, width) < target) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  if (left == count || IndexReadDelta(run + left * width, width) != target) {
    return std::nullopt;
  }
  return EdgeAt(e0 + left);
}

std::optional<IndexedDecision> DecisionIndex::Lookup(
    std::string_view id1, std::string_view id2) const {
  std::optional<uint32_t> a = FindRecord(id1);
  if (!a.has_value()) return std::nullopt;
  std::optional<uint32_t> b = FindRecord(id2);
  if (!b.has_value()) return std::nullopt;
  return Lookup(*a, *b);
}

std::optional<uint32_t> DecisionIndex::ClusterOf(uint32_t x) const {
  if (x >= header_.record_count) return std::nullopt;
  return Section<uint32_t>(kClusterOf)[x];
}

RecordSpan DecisionIndex::Members(uint32_t c) const {
  if (c >= header_.cluster_count) return {};
  const uint64_t* offsets = Section<uint64_t>(kClusterOffsets);
  RecordSpan span;
  span.data = Section<uint32_t>(kClusterMembers) + offsets[c];
  span.size = static_cast<size_t>(offsets[c + 1] - offsets[c]);
  return span;
}

std::optional<uint32_t> DecisionIndex::FindRecord(std::string_view id) const {
  const uint32_t* sorted = Section<uint32_t>(kIdSorted);
  uint64_t left = 0;
  uint64_t right = header_.record_count;
  while (left < right) {
    const uint64_t mid = left + (right - left) / 2;
    if (RecordId(sorted[mid]) < id) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  if (left == header_.record_count || RecordId(sorted[left]) != id) {
    return std::nullopt;
  }
  return sorted[left];
}

std::string_view DecisionIndex::RecordId(uint32_t r) const {
  const uint32_t* offsets = Section<uint32_t>(kIdOffsets);
  const char* arena = Section<char>(kIdArena);
  return std::string_view(arena + offsets[r], offsets[r + 1] - offsets[r]);
}

size_t DecisionIndex::RunLength(uint32_t r) const {
  if (r >= header_.record_count) return 0;
  const uint64_t* entry_offsets = Section<uint64_t>(kAdjEntryOffsets);
  return static_cast<size_t>(entry_offsets[r + 1] - entry_offsets[r]);
}

void DecisionIndex::RunEntry(uint32_t r, size_t k, uint32_t* neighbor,
                             IndexedDecision* decision) const {
  const uint64_t e0 = Section<uint64_t>(kAdjEntryOffsets)[r];
  const uint32_t width = Section<uint8_t>(kAdjWidth)[r];
  const unsigned char* run =
      Section<unsigned char>(kAdjData) + Section<uint64_t>(kAdjByteOffsets)[r];
  *neighbor = Section<uint32_t>(kAdjBase)[r] +
              IndexReadDelta(run + k * width, width);
  *decision = EdgeAt(e0 + k);
}

IndexedDecision DecisionIndex::EdgeAt(uint64_t e) const {
  IndexedDecision out;
  const uint8_t packed = Section<uint8_t>(kEdgeClass)[e >> 2];
  out.match_class =
      static_cast<MatchClass>((packed >> ((e & 3u) * 2u)) & 3u);
  const uint64_t bits = Section<uint64_t>(kEdgeSim)[e];
  std::memcpy(&out.similarity, &bits, sizeof(out.similarity));
  return out;
}

Status DecisionIndex::VerifyPlanFingerprint(uint64_t plan_fingerprint) const {
  if (header_.plan_fingerprint == plan_fingerprint) return Status::OK();
  return Status::FailedPrecondition(
      "stale index: compiled from plan " +
      FingerprintHex(header_.plan_fingerprint) + ", queried with plan " +
      FingerprintHex(plan_fingerprint) + " — rebuild the index");
}

Status DecisionIndex::VerifySourceDigest(uint64_t source_digest) const {
  if (header_.source_digest == source_digest) return Status::OK();
  return Status::FailedPrecondition(
      "stale index: compiled from a report with content digest " +
      FingerprintHex(header_.source_digest) +
      ", the fresh run's report digests to " + FingerprintHex(source_digest) +
      " — rebuild the index");
}

}  // namespace pdd
