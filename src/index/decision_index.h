// DecisionIndex: the query half of the decision serving layer. Opens a
// pdd.index.v1 file (mmap) or an in-memory image and answers
//
//   Lookup(a, b)      -> the run's decision for the pair (class +
//                        bit-exact similarity), or nothing when the
//                        run never examined it   [O(log degree)]
//   ClusterOf(x)      -> entity-cluster id of record x        [O(1)]
//   Members(c)        -> the cluster's records, ascending      [O(1)]
//   FindRecord(id)    -> record index of an id       [O(log records)]
//
// Zero allocation per query: every answer is computed with pointer
// arithmetic into the mapped region and returned by value
// (tests/decision_index_test.cc asserts this with operator-new
// counting hooks). The object is immutable after Open and safe to
// share across threads.
//
// Staleness is checked structurally: Open validates magic, version,
// endianness, size and the payload digest (corrupted or truncated
// files are rejected with a diagnostic, never served), and
// VerifyPlanFingerprint / VerifySourceDigest compare the stamped
// identities against a live plan or a fresh run's report.

#ifndef PDD_INDEX_DECISION_INDEX_H_
#define PDD_INDEX_DECISION_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "decision/classifier.h"
#include "index/format.h"
#include "index/mapped_file.h"
#include "util/status.h"

namespace pdd {

/// One indexed pair decision (what the report recorded for the pair).
struct IndexedDecision {
  MatchClass match_class = MatchClass::kUnmatch;
  /// The derived similarity, bit-identical to the report's.
  double similarity = 0.0;
};

/// A contiguous run of record indices inside the mapped region (the
/// zero-copy answer to Members()). Valid while the index is open.
struct RecordSpan {
  const uint32_t* data = nullptr;
  size_t size = 0;

  const uint32_t* begin() const { return data; }
  const uint32_t* end() const { return data + size; }
  bool empty() const { return size == 0; }
  uint32_t operator[](size_t i) const { return data[i]; }
};

class DecisionIndex {
 public:
  /// Options of Open/FromImage. Verification hashes the whole payload
  /// once; serving processes that reopen a file they just validated
  /// can skip it.
  struct OpenOptions {
    bool verify_digest = true;
  };

  DecisionIndex() = default;

  /// Maps and validates an index file.
  static Result<DecisionIndex> Open(const std::string& path,
                                    const OpenOptions& options);
  static Result<DecisionIndex> Open(const std::string& path) {
    return Open(path, OpenOptions());
  }

  /// Adopts and validates an in-memory image (builder output — the
  /// fileless round trip used by tests and benches).
  static Result<DecisionIndex> FromImage(std::string image,
                                         const OpenOptions& options);
  static Result<DecisionIndex> FromImage(std::string image) {
    return FromImage(std::move(image), OpenOptions());
  }

  // --- queries (all zero-allocation) ---------------------------------

  /// The run's decision for the unordered pair (a, b), or nullopt when
  /// the run never examined it. Out-of-range or equal indices resolve
  /// to nullopt (not an error: "not a candidate pair" is an answer).
  std::optional<IndexedDecision> Lookup(uint32_t a, uint32_t b) const;

  /// Id-keyed form of Lookup (two binary searches + one Lookup).
  std::optional<IndexedDecision> Lookup(std::string_view id1,
                                        std::string_view id2) const;

  /// Entity-cluster id of record `x` (clusters are transitive closures
  /// of the run's duplicate decisions; singletons included). nullopt
  /// when out of range.
  std::optional<uint32_t> ClusterOf(uint32_t x) const;

  /// Records of cluster `c`, ascending. Empty span when out of range.
  RecordSpan Members(uint32_t c) const;

  /// Record index of `id`, or nullopt when unknown.
  std::optional<uint32_t> FindRecord(std::string_view id) const;

  /// Id of record `r` (view into the mapped arena).
  std::string_view RecordId(uint32_t r) const;

  /// Neighbors of `r` with a decided pair where r is the lower index
  /// (the record's own adjacency run; full-degree walks also consult
  /// runs of lower records). For inspect/bench sweeps.
  size_t RunLength(uint32_t r) const;
  /// The k-th neighbor of r's run plus its decision.
  void RunEntry(uint32_t r, size_t k, uint32_t* neighbor,
                IndexedDecision* decision) const;

  // --- identity / staleness ------------------------------------------

  uint64_t plan_fingerprint() const { return header_.plan_fingerprint; }
  uint64_t source_digest() const { return header_.source_digest; }
  uint64_t record_count() const { return header_.record_count; }
  uint64_t pair_count() const { return header_.pair_count; }
  uint64_t cluster_count() const { return header_.cluster_count; }
  uint64_t bytes() const { return size_; }
  /// True when the view is a real file mapping (false: heap image).
  bool is_mmap() const { return file_.is_mmap(); }

  /// OK iff the index was compiled from a run of the plan with this
  /// fingerprint; FailedPrecondition("stale index: ...") otherwise.
  Status VerifyPlanFingerprint(uint64_t plan_fingerprint) const;

  /// OK iff the index was compiled from a report with this content
  /// digest (DetectionResult::ContentDigest of a fresh run);
  /// FailedPrecondition("stale index: ...") otherwise.
  Status VerifySourceDigest(uint64_t source_digest) const;

 private:
  Status Attach(const OpenOptions& options);

  /// Base of the open image. Derived per access (not cached as a
  /// member) so moving the object — which may relocate the in-memory
  /// image's buffer — can never leave a dangling pointer behind.
  const unsigned char* base() const {
    return file_.mapped()
               ? file_.data()
               : reinterpret_cast<const unsigned char*>(image_.data());
  }

  /// Typed pointer to a payload section start.
  template <typename T>
  const T* Section(IndexSection section) const {
    return reinterpret_cast<const T*>(base() + kIndexHeaderBytes +
                                      header_.section_offsets[section]);
  }

  /// Global edge index -> packed payload.
  IndexedDecision EdgeAt(uint64_t e) const;

  MappedFile file_;
  /// Backing storage of FromImage.
  std::string image_;
  size_t size_ = 0;
  IndexHeader header_;
};

}  // namespace pdd

#endif  // PDD_INDEX_DECISION_INDEX_H_
