#include "index/format.h"

#include <cstring>

namespace pdd {

namespace {

void PutU32(std::string* out, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, sizeof(value));
  out->append(buf, sizeof(buf));
}

void PutU64(std::string* out, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, sizeof(value));
  out->append(buf, sizeof(buf));
}

uint32_t GetU32(const unsigned char* at) {
  uint32_t value = 0;
  std::memcpy(&value, at, sizeof(value));
  return value;
}

uint64_t GetU64(const unsigned char* at) {
  uint64_t value = 0;
  std::memcpy(&value, at, sizeof(value));
  return value;
}

}  // namespace

std::string EncodeIndexHeader(const IndexHeader& header) {
  std::string out;
  out.reserve(kIndexHeaderBytes);
  out.append(kIndexMagic, sizeof(kIndexMagic));
  PutU32(&out, header.version);
  PutU32(&out, kIndexEndianTag);
  PutU64(&out, header.plan_fingerprint);
  PutU64(&out, header.source_digest);
  PutU64(&out, header.record_count);
  PutU64(&out, header.pair_count);
  PutU64(&out, header.cluster_count);
  PutU64(&out, header.payload_bytes);
  PutU64(&out, header.payload_digest);
  for (uint64_t offset : header.section_offsets) PutU64(&out, offset);
  return out;
}

Result<IndexHeader> DecodeIndexHeader(const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  if (size < kIndexHeaderBytes) {
    return Status::ParseError(
        "decision index: file smaller than the header (" +
        std::to_string(size) + " bytes) — truncated or not an index");
  }
  if (std::memcmp(bytes, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    return Status::ParseError(
        "decision index: bad magic — not a pdd.index file");
  }
  IndexHeader header;
  size_t at = sizeof(kIndexMagic);
  header.version = GetU32(bytes + at);
  at += 4;
  uint32_t endian = GetU32(bytes + at);
  at += 4;
  if (header.version != kIndexVersion) {
    return Status::ParseError("decision index: unknown format version " +
                              std::to_string(header.version) +
                              " (this reader knows version " +
                              std::to_string(kIndexVersion) + ")");
  }
  if (endian != kIndexEndianTag) {
    return Status::ParseError(
        "decision index: endianness mismatch — the index was written on "
        "a machine with different byte order");
  }
  header.plan_fingerprint = GetU64(bytes + at);
  at += 8;
  header.source_digest = GetU64(bytes + at);
  at += 8;
  header.record_count = GetU64(bytes + at);
  at += 8;
  header.pair_count = GetU64(bytes + at);
  at += 8;
  header.cluster_count = GetU64(bytes + at);
  at += 8;
  header.payload_bytes = GetU64(bytes + at);
  at += 8;
  header.payload_digest = GetU64(bytes + at);
  at += 8;
  for (size_t i = 0; i < kIndexSectionCount; ++i) {
    header.section_offsets[i] = GetU64(bytes + at);
    at += 8;
  }
  if (size != kIndexHeaderBytes + header.payload_bytes) {
    return Status::ParseError(
        "decision index: size mismatch — header declares " +
        std::to_string(kIndexHeaderBytes + header.payload_bytes) +
        " bytes, file has " + std::to_string(size) +
        " (truncated or trailing garbage)");
  }
  uint64_t previous = 0;
  for (size_t i = 0; i < kIndexSectionCount; ++i) {
    uint64_t offset = header.section_offsets[i];
    if (offset % 8 != 0) {
      return Status::ParseError("decision index: section " +
                                std::to_string(i) + " offset " +
                                std::to_string(offset) + " is unaligned");
    }
    if (offset < previous || offset > header.payload_bytes) {
      return Status::ParseError("decision index: section " +
                                std::to_string(i) +
                                " offset out of order or past the payload");
    }
    previous = offset;
  }
  return header;
}

}  // namespace pdd
