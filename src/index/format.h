// On-disk layout of the decision index (`pdd.index.v1`): an immutable,
// versioned, single-file binary compiled from one detection run so
// point queries ("are a and b duplicates?") and membership queries
// ("which cluster is x in?") resolve with pointer arithmetic into an
// mmap'd region — no pipeline, no parsing, no allocation.
//
// File layout (all integers little-endian / native on the writing
// machine; the header's endian tag rejects cross-endian readers):
//
//   header (176 bytes, format.cc EncodeIndexHeader):
//     magic "pddidx1\n", version, endian tag,
//     plan fingerprint + source-report content digest (staleness),
//     record/pair/cluster counts, payload size + payload FNV digest,
//     one offset per section (relative to the payload start)
//   payload (13 sections, each 8-byte aligned, in enum order):
//     kIdOffsets       u32[records+1]  byte offsets into kIdArena
//     kIdArena         bytes           record ids, concatenated
//     kIdSorted        u32[records]    record indices sorted by id
//     kAdjEntryOffsets u64[records+1]  cumulative edges per record
//     kAdjByteOffsets  u64[records+1]  cumulative bytes in kAdjData
//     kAdjBase         u32[records]    first neighbor id of each run
//     kAdjWidth        u8[records]     delta width of each run (1/2/4)
//     kAdjData         bytes           delta-encoded neighbor runs
//     kEdgeClass       u8[ceil(pairs/4)]  2-bit match class per edge
//     kEdgeSim         u64[pairs]      similarity doubles, bit pattern
//     kClusterOf       u32[records]    record -> cluster id
//     kClusterOffsets  u64[clusters+1] member ranges
//     kClusterMembers  u32[records]    cluster members, ascending
//
// An edge (a, b) lives in the adjacency run of min(a, b); runs are
// sorted by neighbor id and frame-of-reference coded (per-run base +
// fixed-width deltas), so the encoded values stay monotone and a point
// query is a binary search over O(degree) deltas. The edge's position
// in the global (run-concatenated) order indexes kEdgeClass/kEdgeSim.
//
// Staleness is structural, not advisory: the header stamps the plan
// fingerprint and the content digest of the source report, so a reader
// can prove an index matches (or no longer matches) a plan or a fresh
// run without re-deciding anything. The payload digest rejects
// corrupted files; the size fields reject truncated ones.

#ifndef PDD_INDEX_FORMAT_H_
#define PDD_INDEX_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "util/status.h"

namespace pdd {

/// First bytes of every decision-index file.
inline constexpr char kIndexMagic[8] = {'p', 'd', 'd', 'i',
                                        'd', 'x', '1', '\n'};
/// Format version ("pdd.index.v1"). Bumped on any layout change;
/// readers reject versions they do not know.
inline constexpr uint32_t kIndexVersion = 1;
/// Written as-is; a reader on the other endianness sees it reversed.
inline constexpr uint32_t kIndexEndianTag = 0x01020304u;

/// The payload sections, in file order.
enum IndexSection : uint32_t {
  kIdOffsets = 0,
  kIdArena = 1,
  kIdSorted = 2,
  kAdjEntryOffsets = 3,
  kAdjByteOffsets = 4,
  kAdjBase = 5,
  kAdjWidth = 6,
  kAdjData = 7,
  kEdgeClass = 8,
  kEdgeSim = 9,
  kClusterOf = 10,
  kClusterOffsets = 11,
  kClusterMembers = 12,
  kIndexSectionCount = 13,
};

/// Serialized header size in bytes.
inline constexpr size_t kIndexHeaderBytes =
    8 + 4 + 4 + 7 * 8 + kIndexSectionCount * 8;

/// Decoded form of the fixed-size file header.
struct IndexHeader {
  uint32_t version = kIndexVersion;
  /// DetectionPlan::fingerprint() of the producing run.
  uint64_t plan_fingerprint = 0;
  /// DetectionResult::ContentDigest() of the source report.
  uint64_t source_digest = 0;
  uint64_t record_count = 0;
  uint64_t pair_count = 0;
  uint64_t cluster_count = 0;
  /// Bytes after the header. File size must equal
  /// kIndexHeaderBytes + payload_bytes exactly.
  uint64_t payload_bytes = 0;
  /// FNV-1a 64 over the payload bytes.
  uint64_t payload_digest = 0;
  /// Section start offsets relative to the payload start, each 8-byte
  /// aligned, ascending in enum order.
  uint64_t section_offsets[kIndexSectionCount] = {};
};

// --- hashing ---------------------------------------------------------

/// FNV-1a 64-bit over a byte range, continuing from `hash`. Seed new
/// digests with kIndexFnvOffset.
inline constexpr uint64_t kIndexFnvOffset = 14695981039346656037ull;
inline constexpr uint64_t kIndexFnvPrime = 1099511628211ull;

inline uint64_t IndexHashBytes(uint64_t hash, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kIndexFnvPrime;
  }
  return hash;
}

// --- header serialization -------------------------------------------

/// Serializes `header` into exactly kIndexHeaderBytes bytes.
std::string EncodeIndexHeader(const IndexHeader& header);

/// Decodes and structurally validates a header against the image size:
/// magic, version, endianness, header/payload size agreement, section
/// offset monotonicity and alignment. Does NOT hash the payload — the
/// reader decides whether to pay the digest pass (it does by default).
Result<IndexHeader> DecodeIndexHeader(const void* data, size_t size);

/// Number of bytes a frame-of-reference delta needs (1, 2 or 4).
inline uint32_t IndexDeltaWidth(uint64_t max_delta) {
  if (max_delta <= 0xFFu) return 1;
  if (max_delta <= 0xFFFFu) return 2;
  return 4;
}

/// Reads one `width`-byte little-endian delta (query hot path; memcpy
/// keeps it alignment- and aliasing-safe, compilers fold it to a load).
inline uint32_t IndexReadDelta(const unsigned char* at, uint32_t width) {
  uint32_t value = 0;
  std::memcpy(&value, at, width);
  return value;
}

}  // namespace pdd

#endif  // PDD_INDEX_FORMAT_H_
