#include "index/index_builder.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <limits>

#include "index/format.h"
#include "obs/metrics_registry.h"
#include "util/union_find.h"

namespace pdd {

namespace {

/// One adjacency entry under its run owner: the higher record id plus
/// the decision it came from (kept as an index into
/// `result.decisions` so the edge arrays can copy class/similarity in
/// the final global order).
struct Edge {
  uint32_t lo = 0;
  uint32_t hi = 0;
  uint32_t decision = 0;
};

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendArray(std::string* out, const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable<T>::value, "raw section");
  AppendRaw(out, values.data(), values.size() * sizeof(T));
}

/// Pads to the next 8-byte boundary and records the section start.
void BeginSection(std::string* payload, IndexHeader* header,
                  IndexSection section) {
  while (payload->size() % 8 != 0) payload->push_back('\0');
  header->section_offsets[section] = payload->size();
}

}  // namespace

Result<std::string> BuildDecisionIndexImage(
    const std::vector<std::string>& record_ids, const DetectionResult& result,
    IndexBuildStats* stats) {
  const auto started = std::chrono::steady_clock::now();
  const size_t n = record_ids.size();
  if (n > std::numeric_limits<uint32_t>::max()) {
    return Status::OutOfRange(
        "decision index: record count exceeds the format's 32-bit id "
        "space");
  }
  // --- validate and canonicalize the edges ---------------------------
  std::vector<Edge> edges;
  edges.reserve(result.decisions.size());
  for (size_t d = 0; d < result.decisions.size(); ++d) {
    const PairDecisionRecord& rec = result.decisions[d];
    if (rec.index1 >= n || rec.index2 >= n) {
      return Status::InvalidArgument(
          "decision index: decision " + std::to_string(d) +
          " addresses record " +
          std::to_string(std::max(rec.index1, rec.index2)) +
          " outside the " + std::to_string(n) + "-record universe");
    }
    if (rec.index1 == rec.index2) {
      return Status::InvalidArgument("decision index: decision " +
                                     std::to_string(d) +
                                     " pairs a record with itself");
    }
    if (record_ids[rec.index1] != rec.id1 ||
        record_ids[rec.index2] != rec.id2) {
      return Status::InvalidArgument(
          "decision index: decision " + std::to_string(d) +
          " ids disagree with the record universe ('" + rec.id1 + "','" +
          rec.id2 + "' vs '" + record_ids[rec.index1] + "','" +
          record_ids[rec.index2] + "')");
    }
    Edge edge;
    edge.lo = static_cast<uint32_t>(std::min(rec.index1, rec.index2));
    edge.hi = static_cast<uint32_t>(std::max(rec.index1, rec.index2));
    edge.decision = static_cast<uint32_t>(d);
    edges.push_back(edge);
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
  });
  for (size_t e = 1; e < edges.size(); ++e) {
    if (edges[e].lo == edges[e - 1].lo && edges[e].hi == edges[e - 1].hi) {
      return Status::InvalidArgument(
          "decision index: duplicate decision for pair (" +
          record_ids[edges[e].lo] + ", " + record_ids[edges[e].hi] + ")");
    }
  }
  const uint64_t pair_count = edges.size();

  // --- id table -------------------------------------------------------
  std::vector<uint32_t> id_offsets(n + 1, 0);
  uint64_t arena_bytes = 0;
  for (size_t r = 0; r < n; ++r) {
    arena_bytes += record_ids[r].size();
    if (arena_bytes > std::numeric_limits<uint32_t>::max()) {
      return Status::OutOfRange(
          "decision index: record ids exceed the format's 4 GiB arena");
    }
    id_offsets[r + 1] = static_cast<uint32_t>(arena_bytes);
  }
  std::vector<uint32_t> id_sorted(n);
  for (size_t r = 0; r < n; ++r) id_sorted[r] = static_cast<uint32_t>(r);
  std::sort(id_sorted.begin(), id_sorted.end(),
            [&](uint32_t a, uint32_t b) { return record_ids[a] < record_ids[b]; });
  for (size_t r = 1; r < n; ++r) {
    if (record_ids[id_sorted[r - 1]] == record_ids[id_sorted[r]]) {
      return Status::InvalidArgument(
          "decision index: duplicate record id '" +
          record_ids[id_sorted[r]] + "' — id lookup requires unique ids");
    }
  }

  // --- adjacency runs (frame-of-reference deltas) ---------------------
  std::vector<uint64_t> entry_offsets(n + 1, 0);
  std::vector<uint64_t> byte_offsets(n + 1, 0);
  std::vector<uint32_t> bases(n, 0);
  std::vector<uint8_t> widths(n, 1);
  {
    size_t e = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
    for (size_t r = 0; r < n; ++r) {
      entry_offsets[r] = entries;
      byte_offsets[r] = bytes;
      size_t first = e;
      while (e < edges.size() && edges[e].lo == r) ++e;
      size_t count = e - first;
      if (count > 0) {
        bases[r] = edges[first].hi;
        widths[r] = static_cast<uint8_t>(
            IndexDeltaWidth(edges[e - 1].hi - edges[first].hi));
      }
      entries += count;
      bytes += count * widths[r];
    }
    entry_offsets[n] = entries;
    byte_offsets[n] = bytes;
  }
  std::string adj_data;
  adj_data.reserve(byte_offsets[n]);
  for (size_t r = 0, e = 0; r < n; ++r) {
    size_t count = static_cast<size_t>(entry_offsets[r + 1] - entry_offsets[r]);
    for (size_t k = 0; k < count; ++k, ++e) {
      uint32_t delta = edges[e].hi - bases[r];
      AppendRaw(&adj_data, &delta, widths[r]);
    }
  }

  // --- edge payloads in global (run-concatenated) order ---------------
  std::vector<uint8_t> edge_class((pair_count + 3) / 4, 0);
  std::vector<uint64_t> edge_sim(pair_count, 0);
  for (size_t e = 0; e < edges.size(); ++e) {
    const PairDecisionRecord& rec = result.decisions[edges[e].decision];
    edge_class[e >> 2] = static_cast<uint8_t>(
        edge_class[e >> 2] |
        (static_cast<unsigned>(rec.match_class) & 3u) << ((e & 3u) * 2u));
    std::memcpy(&edge_sim[e], &rec.similarity, sizeof(uint64_t));
  }

  // --- clusters: union-find over the duplicate decisions --------------
  UnionFind sets(n);
  for (const Edge& edge : edges) {
    const PairDecisionRecord& rec = result.decisions[edge.decision];
    if (rec.match_class == MatchClass::kMatch) sets.Union(edge.lo, edge.hi);
  }
  std::vector<std::vector<size_t>> groups = sets.Groups();
  const uint64_t cluster_count = groups.size();
  std::vector<uint32_t> cluster_of(n, 0);
  std::vector<uint64_t> cluster_offsets(cluster_count + 1, 0);
  std::vector<uint32_t> cluster_members;
  cluster_members.reserve(n);
  for (size_t c = 0; c < groups.size(); ++c) {
    cluster_offsets[c] = cluster_members.size();
    for (size_t member : groups[c]) {
      cluster_of[member] = static_cast<uint32_t>(c);
      cluster_members.push_back(static_cast<uint32_t>(member));
    }
  }
  cluster_offsets[cluster_count] = cluster_members.size();

  // --- serialize ------------------------------------------------------
  IndexHeader header;
  header.plan_fingerprint = result.plan_fingerprint;
  header.source_digest = result.ContentDigest();
  header.record_count = n;
  header.pair_count = pair_count;
  header.cluster_count = cluster_count;

  std::string payload;
  BeginSection(&payload, &header, kIdOffsets);
  AppendArray(&payload, id_offsets);
  BeginSection(&payload, &header, kIdArena);
  for (const std::string& id : record_ids) AppendRaw(&payload, id.data(), id.size());
  BeginSection(&payload, &header, kIdSorted);
  AppendArray(&payload, id_sorted);
  BeginSection(&payload, &header, kAdjEntryOffsets);
  AppendArray(&payload, entry_offsets);
  BeginSection(&payload, &header, kAdjByteOffsets);
  AppendArray(&payload, byte_offsets);
  BeginSection(&payload, &header, kAdjBase);
  AppendArray(&payload, bases);
  BeginSection(&payload, &header, kAdjWidth);
  AppendArray(&payload, widths);
  BeginSection(&payload, &header, kAdjData);
  payload += adj_data;
  BeginSection(&payload, &header, kEdgeClass);
  AppendArray(&payload, edge_class);
  BeginSection(&payload, &header, kEdgeSim);
  AppendArray(&payload, edge_sim);
  BeginSection(&payload, &header, kClusterOf);
  AppendArray(&payload, cluster_of);
  BeginSection(&payload, &header, kClusterOffsets);
  AppendArray(&payload, cluster_offsets);
  BeginSection(&payload, &header, kClusterMembers);
  AppendArray(&payload, cluster_members);
  while (payload.size() % 8 != 0) payload.push_back('\0');

  header.payload_bytes = payload.size();
  header.payload_digest =
      IndexHashBytes(kIndexFnvOffset, payload.data(), payload.size());
  std::string image = EncodeIndexHeader(header);
  image += payload;

  if (stats != nullptr) {
    stats->record_count = n;
    stats->pair_count = pair_count;
    stats->cluster_count = cluster_count;
    stats->bytes = image.size();
    stats->build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
  }
  return image;
}

Result<std::string> BuildDecisionIndexImage(const XRelation& rel,
                                            const DetectionResult& result,
                                            IndexBuildStats* stats) {
  std::vector<std::string> record_ids;
  record_ids.reserve(rel.size());
  for (const XTuple& tuple : rel.xtuples()) record_ids.push_back(tuple.id());
  return BuildDecisionIndexImage(record_ids, result, stats);
}

Status WriteDecisionIndexFile(const std::string& path,
                              const std::string& image) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot write '" + path + "'");
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  if (!out.good()) return Status::Internal("error writing '" + path + "'");
  return Status::OK();
}

void AddIndexBuildMetrics(const IndexBuildStats& stats,
                          MetricsRegistry* metrics) {
  metrics->SetCounter("exec.index.records", stats.record_count);
  metrics->SetCounter("exec.index.pairs", stats.pair_count);
  metrics->SetCounter("exec.index.clusters", stats.cluster_count);
  metrics->SetCounter("exec.index.bytes", stats.bytes);
  metrics->SetGauge("exec.index.bytes_per_pair", stats.BytesPerPair());
  metrics->SetGauge("time.index.build_seconds", stats.build_seconds);
}

}  // namespace pdd
