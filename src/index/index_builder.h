// Compiles one detection run into a decision-index image (the
// build-once half of the serving layer; index/format.h describes the
// bytes, index/decision_index.h reads them back). The builder compacts
// the run's pair decisions into per-record sorted adjacency runs
// (frame-of-reference delta coding + 2-bit packed classes + bit-exact
// similarities), derives entity clusters via union-find over the
// duplicate decisions, and lays the record-id -> cluster-id and
// cluster-id -> member-range tables out flat, so every query the
// reader answers is pointer arithmetic.
//
// Determinism: the image is a pure function of (record ids, report
// content). Serial, pooled, sharded and cached runs of one plan
// produce byte-identical reports, so they compile to byte-identical
// index files — gated by tests/decision_index_test.cc.

#ifndef PDD_INDEX_INDEX_BUILDER_H_
#define PDD_INDEX_INDEX_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdb/xrelation.h"
#include "pipeline/detection_result.h"
#include "util/status.h"

namespace pdd {

class MetricsRegistry;

/// What one compile produced, for reports and the `exec.index.*`
/// metrics namespace.
struct IndexBuildStats {
  uint64_t record_count = 0;
  uint64_t pair_count = 0;
  uint64_t cluster_count = 0;
  /// Total file bytes (header + payload).
  uint64_t bytes = 0;
  /// Wall time of the compile (steady clock around Build).
  double build_seconds = 0.0;

  /// Index bytes per decided pair; 0 when the run decided none.
  double BytesPerPair() const {
    return pair_count == 0
               ? 0.0
               : static_cast<double>(bytes) / static_cast<double>(pair_count);
  }
};

/// Compiles `result` into a pdd.index.v1 image. `record_ids` is the
/// full record universe in tuple-index order (records without any
/// decision still get cluster/membership entries as singletons); the
/// decisions' indices must address it and their ids must agree with
/// it. Fails on inconsistent or duplicate decisions rather than
/// guessing. `stats` (optional) receives the compile accounting.
Result<std::string> BuildDecisionIndexImage(
    const std::vector<std::string>& record_ids, const DetectionResult& result,
    IndexBuildStats* stats = nullptr);

/// Convenience form taking the record universe from the relation the
/// run examined (the result -> builder handoff used by the tools).
Result<std::string> BuildDecisionIndexImage(const XRelation& rel,
                                            const DetectionResult& result,
                                            IndexBuildStats* stats = nullptr);

/// Writes an image to `path` (binary, whole-file replace).
Status WriteDecisionIndexFile(const std::string& path,
                              const std::string& image);

/// Records a compile into the registry: `exec.index.records/pairs/
/// clusters/bytes` counters, the `exec.index.bytes_per_pair` gauge and
/// the timing-namespace `time.index.build_seconds` gauge (obs
/// discipline: counts are deterministic, build time never is).
void AddIndexBuildMetrics(const IndexBuildStats& stats,
                          MetricsRegistry* metrics);

}  // namespace pdd

#endif  // PDD_INDEX_INDEX_BUILDER_H_
