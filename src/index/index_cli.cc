#include "index/index_cli.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "core/detector.h"
#include "core/entity_clusters.h"
#include "index/decision_index.h"
#include "index/index_builder.h"
#include "obs/export.h"
#include "obs/run_telemetry.h"
#include "pdb/text_format.h"
#include "pipeline/detection_plan.h"
#include "plan/plan_spec.h"
#include "plan/translate.h"
#include "util/string_util.h"

namespace pdd {

namespace {

int Fail(const std::string& message) {
  std::cerr << "pddquery: " << message << "\n";
  return 1;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<XRelation> LoadRelation(const std::string& path) {
  PDD_ASSIGN_OR_RETURN(std::string text, ReadWholeFile(path));
  return ParseXRelation(text);
}

/// Plan/executor flags shared by `build` and `verify`: the subset of
/// `pddcli detect` that affects which plan runs (--plan/--set) plus
/// the placement knobs that never change the report (--workers,
/// --batch, --shards, --kernel) and the telemetry sidecar flags.
struct PlanArgs {
  DetectorConfig config;
  size_t shard_override = 0;
  std::string metrics_file;
  std::string metrics_format = "json";
  /// Positional (non-flag) operands, in order.
  std::vector<std::string> positional;
};

Result<PlanArgs> ParsePlanArgs(const std::vector<std::string>& args) {
  PlanArgs out;
  // Every flag of this surface takes exactly one value, so the
  // positional scan skips `--flag value` as a unit.
  for (size_t i = 0; i < args.size(); ++i) {
    if (!args[i].empty() && args[i][0] == '-') {
      ++i;
    } else {
      out.positional.push_back(args[i]);
    }
  }
  if (out.positional.empty()) {
    return Status::InvalidArgument("missing relation file operand");
  }
  PDD_ASSIGN_OR_RETURN(XRelation rel, LoadRelation(out.positional[0]));
  // Default key mirrors `pddcli detect`: first two attributes,
  // prefixes 3 and 2, uniform weights.
  out.config.key.clear();
  out.config.key.emplace_back(rel.schema().attribute(0).name, 3);
  if (rel.schema().arity() > 1) {
    out.config.key.emplace_back(rel.schema().attribute(1).name, 2);
  }
  out.config.weights.assign(
      rel.schema().arity(), 1.0 / static_cast<double>(rel.schema().arity()));
  // --plan applies before any other flag, wherever it appears.
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--plan") {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("--plan needs a file");
      }
      PDD_ASSIGN_OR_RETURN(std::string text, ReadWholeFile(args[i + 1]));
      PDD_ASSIGN_OR_RETURN(PlanSpec spec, PlanSpec::Parse(text));
      PDD_ASSIGN_OR_RETURN(
          out.config, DetectorConfig::FromSpec(spec, std::move(out.config)));
    }
  }
  PlanSpec overrides;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    if (arg[0] != '-') continue;
    if (arg == "--plan") {
      ++i;  // applied above
    } else if (arg == "--set") {
      const std::string* v = next();
      if (v == nullptr) return Status::InvalidArgument("--set needs key=value");
      PDD_RETURN_IF_ERROR(overrides.SetAssignment(*v));
    } else if (arg == "--workers") {
      const std::string* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(*v, &n) || n < 0) {
        return Status::InvalidArgument("--workers needs a non-negative number");
      }
      out.config.workers = static_cast<size_t>(n);
    } else if (arg == "--batch") {
      const std::string* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(*v, &n) || n < 1) {
        return Status::InvalidArgument("--batch needs a positive number");
      }
      out.config.batch_size = static_cast<size_t>(n);
    } else if (arg == "--shards") {
      const std::string* v = next();
      double n = 0.0;
      if (v == nullptr || !ParseDouble(*v, &n) || n < 1) {
        return Status::InvalidArgument("--shards needs a positive number");
      }
      out.shard_override = static_cast<size_t>(n);
    } else if (arg == "--kernel") {
      const std::string* v = next();
      if (v == nullptr) {
        return Status::InvalidArgument("--kernel needs auto, scalar or columnar");
      }
      PDD_ASSIGN_OR_RETURN(out.config.match_kernel, MatchKernelFromName(*v));
    } else if (arg == "--metrics") {
      const std::string* v = next();
      if (v == nullptr) return Status::InvalidArgument("--metrics needs a file");
      out.metrics_file = *v;
    } else if (arg == "--metrics-format") {
      const std::string* v = next();
      if (v == nullptr || (*v != "json" && *v != "prom")) {
        return Status::InvalidArgument("--metrics-format needs json or prom");
      }
      out.metrics_format = *v;
    } else {
      return Status::InvalidArgument("unknown option '" + arg + "'");
    }
  }
  if (!overrides.params().empty()) {
    PDD_ASSIGN_OR_RETURN(
        out.config, DetectorConfig::FromSpec(overrides, std::move(out.config)));
  }
  return out;
}

Result<DetectionResult> RunPipeline(const PlanArgs& plan,
                                    const XRelation& rel) {
  PDD_ASSIGN_OR_RETURN(DuplicateDetector detector,
                       DuplicateDetector::Make(plan.config, rel.schema()));
  if (plan.shard_override > 0) {
    detector.set_shard_options({plan.shard_override, ShardStrategy::kAuto});
  }
  return detector.Run(rel);
}

int WriteMetricsSidecar(const RunTelemetry& telemetry,
                        const std::string& path, const std::string& format) {
  std::ofstream out(path);
  if (!out) return Fail("cannot write '" + path + "'");
  out << (format == "prom" ? TelemetryToPrometheus(telemetry)
                           : TelemetryToJson(telemetry));
  if (!out.good()) return Fail("error writing '" + path + "'");
  return 0;
}

/// The report's --csv row format, so indexed answers diff cleanly
/// against a fresh run's CSV (report_writer.cc's field formatting).
std::string DecisionCsvRow(std::string_view id1, std::string_view id2,
                           const IndexedDecision& decision) {
  return std::string(id1) + "," + std::string(id2) + "," +
         FormatDouble(decision.similarity, 6) + "," +
         MatchClassName(decision.match_class);
}

Result<DecisionIndex> OpenIndex(const std::string& path) {
  return DecisionIndex::Open(path);
}

int CmdPair(const DecisionIndex& index, const std::string& id1,
            const std::string& id2) {
  std::optional<uint32_t> a = index.FindRecord(id1);
  if (!a.has_value()) return Fail("unknown record id '" + id1 + "'");
  std::optional<uint32_t> b = index.FindRecord(id2);
  if (!b.has_value()) return Fail("unknown record id '" + id2 + "'");
  std::optional<IndexedDecision> decision = index.Lookup(*a, *b);
  if (!decision.has_value()) {
    // Not an error: "the run never examined this pair" is an answer.
    std::cout << id1 << "," << id2 << ",,none\n";
    return 0;
  }
  std::cout << DecisionCsvRow(id1, id2, *decision) << "\n";
  return 0;
}

int CmdCluster(const DecisionIndex& index, const std::string& id) {
  std::optional<uint32_t> r = index.FindRecord(id);
  if (!r.has_value()) return Fail("unknown record id '" + id + "'");
  uint32_t cluster = *index.ClusterOf(*r);
  RecordSpan members = index.Members(cluster);
  std::cout << "record '" << id << "' (index " << *r << "): cluster "
            << cluster << " (" << members.size << " members):";
  for (uint32_t member : members) {
    std::cout << " " << index.RecordId(member);
  }
  std::cout << "\n";
  return 0;
}

int CmdMembers(const DecisionIndex& index, const std::string& cluster_arg) {
  double parsed = 0.0;
  if (!ParseDouble(cluster_arg, &parsed) || parsed < 0 ||
      static_cast<uint64_t>(parsed) >= index.cluster_count()) {
    return Fail("cluster id '" + cluster_arg + "' out of range (index has " +
                std::to_string(index.cluster_count()) + " clusters)");
  }
  uint32_t cluster = static_cast<uint32_t>(parsed);
  RecordSpan members = index.Members(cluster);
  std::cout << "cluster " << cluster << " (" << members.size << " members):";
  for (uint32_t member : members) {
    std::cout << " " << index.RecordId(member);
  }
  std::cout << "\n";
  return 0;
}

int CmdInspect(const DecisionIndex& index, const std::string& path) {
  std::cout << "pdd.index.v1: " << path << "\n"
            << "  records:          " << index.record_count() << "\n"
            << "  pairs:            " << index.pair_count() << "\n"
            << "  clusters:         " << index.cluster_count() << "\n"
            << "  bytes:            " << index.bytes();
  if (index.pair_count() > 0) {
    std::cout << " ("
              << FormatDouble(static_cast<double>(index.bytes()) /
                                  static_cast<double>(index.pair_count()),
                              2)
              << " bytes/pair)";
  }
  std::cout << "\n"
            << "  plan fingerprint: "
            << FingerprintHex(index.plan_fingerprint()) << "\n"
            << "  source digest:    " << FingerprintHex(index.source_digest())
            << "\n"
            << "  mapping:          " << (index.is_mmap() ? "mmap" : "heap")
            << "\n";
  return 0;
}

int CmdVerify(const std::vector<std::string>& args) {
  if (args.empty()) {
    return Fail("verify needs <index> <relation.pxr> [plan flags]");
  }
  const std::string index_path = args[0];
  Result<DecisionIndex> index = OpenIndex(index_path);
  if (!index.ok()) return Fail(index.status().ToString());
  Result<PlanArgs> plan =
      ParsePlanArgs({args.begin() + 1, args.end()});
  if (!plan.ok()) return Fail(plan.status().ToString());
  Result<XRelation> rel = LoadRelation(plan->positional[0]);
  if (!rel.ok()) return Fail(rel.status().ToString());
  // Fast structural staleness check before paying for a pipeline run:
  // the plan fingerprint alone rejects an index built under another
  // plan.
  Result<DuplicateDetector> detector =
      DuplicateDetector::Make(plan->config, rel->schema());
  if (!detector.ok()) return Fail(detector.status().ToString());
  Status fresh_plan =
      index->VerifyPlanFingerprint(detector->plan().fingerprint());
  if (!fresh_plan.ok()) return Fail(fresh_plan.ToString());
  Result<DetectionResult> result = RunPipeline(*plan, *rel);
  if (!result.ok()) return Fail(result.status().ToString());
  Status fresh_source = index->VerifySourceDigest(result->ContentDigest());
  if (!fresh_source.ok()) return Fail(fresh_source.ToString());
  // Digest equality already implies identical decisions; the explicit
  // sweep turns "should be" into "checked, answer by answer".
  for (const PairDecisionRecord& rec : result->decisions) {
    std::optional<IndexedDecision> decision =
        index->Lookup(static_cast<uint32_t>(rec.index1),
                      static_cast<uint32_t>(rec.index2));
    if (!decision.has_value() ||
        decision->match_class != rec.match_class ||
        DecisionCsvRow(rec.id1, rec.id2, *decision) !=
            DecisionCsvRow(rec.id1, rec.id2,
                           {rec.match_class, rec.similarity})) {
      return Fail("indexed answer diverges for pair (" + rec.id1 + ", " +
                  rec.id2 + ")");
    }
  }
  std::vector<std::vector<size_t>> clusters =
      ClusterEntities(rel->size(), *result);
  if (clusters.size() != index->cluster_count()) {
    return Fail("cluster count diverges from the fresh run");
  }
  for (size_t c = 0; c < clusters.size(); ++c) {
    RecordSpan members = index->Members(static_cast<uint32_t>(c));
    if (members.size != clusters[c].size()) {
      return Fail("cluster " + std::to_string(c) +
                  " membership diverges from the fresh run");
    }
    for (size_t k = 0; k < members.size; ++k) {
      if (members[k] != clusters[c][k]) {
        return Fail("cluster " + std::to_string(c) +
                    " membership diverges from the fresh run");
      }
    }
  }
  std::cout << "index verify: OK — " << result->decisions.size()
            << " pair answers and " << index->cluster_count()
            << " clusters byte-identical to the fresh run (plan "
            << FingerprintHex(index->plan_fingerprint()) << ")\n";
  return 0;
}

int CmdBench(const std::vector<std::string>& args) {
  if (args.empty()) return Fail("bench needs <index> [--point N] ...");
  Result<DecisionIndex> opened = OpenIndex(args[0]);
  if (!opened.ok()) return Fail(opened.status().ToString());
  const DecisionIndex& index = *opened;
  size_t point_target = 2'000'000;
  size_t membership_target = 2'000'000;
  std::string metrics_file;
  std::string metrics_format = "json";
  for (size_t i = 1; i < args.size(); ++i) {
    auto next = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    double n = 0.0;
    if (args[i] == "--point") {
      const std::string* v = next();
      if (v == nullptr || !ParseDouble(*v, &n) || n < 1) {
        return Fail("--point needs a positive number");
      }
      point_target = static_cast<size_t>(n);
    } else if (args[i] == "--membership") {
      const std::string* v = next();
      if (v == nullptr || !ParseDouble(*v, &n) || n < 1) {
        return Fail("--membership needs a positive number");
      }
      membership_target = static_cast<size_t>(n);
    } else if (args[i] == "--metrics") {
      const std::string* v = next();
      if (v == nullptr) return Fail("--metrics needs a file");
      metrics_file = *v;
    } else if (args[i] == "--metrics-format") {
      const std::string* v = next();
      if (v == nullptr || (*v != "json" && *v != "prom")) {
        return Fail("--metrics-format needs json or prom");
      }
      metrics_format = *v;
    } else {
      return Fail("unknown option '" + args[i] + "'");
    }
  }
  // The query load is every decided pair (in index order) repeated to
  // the target — deterministic, no RNG, covers every run and width.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.reserve(static_cast<size_t>(index.pair_count()));
  for (uint64_t r = 0; r < index.record_count(); ++r) {
    const uint32_t record = static_cast<uint32_t>(r);
    const size_t degree = index.RunLength(record);
    for (size_t k = 0; k < degree; ++k) {
      uint32_t neighbor = 0;
      IndexedDecision decision;
      index.RunEntry(record, k, &neighbor, &decision);
      pairs.emplace_back(record, neighbor);
    }
  }
  RunTelemetry telemetry;
  telemetry.root.name = "index.bench";
  IndexBuildStats shape;
  shape.record_count = index.record_count();
  shape.pair_count = index.pair_count();
  shape.cluster_count = index.cluster_count();
  shape.bytes = index.bytes();
  // Build time is unknown here; the zero gauge stays unrendered.
  AddIndexBuildMetrics(shape, &telemetry.metrics);
  uint64_t checksum = 0;
  if (!pairs.empty()) {
    size_t done = 0;
    const auto started = std::chrono::steady_clock::now();
    while (done < point_target) {
      for (const auto& [a, b] : pairs) {
        std::optional<IndexedDecision> decision = index.Lookup(a, b);
        checksum += decision.has_value()
                        ? static_cast<uint64_t>(decision->match_class) + 1
                        : 0;
        ++done;
      }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    telemetry.metrics.SetCounter("exec.index.point_queries", done);
    telemetry.metrics.SetGauge(
        "time.index.point_queries_per_sec",
        seconds > 0.0 ? static_cast<double>(done) / seconds : 0.0);
  }
  if (index.record_count() > 0) {
    size_t done = 0;
    const auto started = std::chrono::steady_clock::now();
    while (done < membership_target) {
      for (uint64_t r = 0; r < index.record_count() && done < membership_target;
           ++r) {
        const uint32_t record = static_cast<uint32_t>(r);
        const uint32_t cluster = *index.ClusterOf(record);
        RecordSpan members = index.Members(cluster);
        checksum += members.size + members[0];
        ++done;
      }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    telemetry.metrics.SetCounter("exec.index.membership_queries", done);
    telemetry.metrics.SetGauge(
        "time.index.membership_queries_per_sec",
        seconds > 0.0 ? static_cast<double>(done) / seconds : 0.0);
  }
  std::cout << RenderIndexStats(telemetry);
  // The checksum keeps the query loops observable (and honest).
  std::cout << "  checksum: " << checksum << "\n";
  if (!metrics_file.empty()) {
    return WriteMetricsSidecar(telemetry, metrics_file, metrics_format);
  }
  return 0;
}

}  // namespace

int RunIndexBuild(const std::vector<std::string>& args) {
  Result<PlanArgs> plan = ParsePlanArgs(args);
  if (!plan.ok()) return Fail(plan.status().ToString());
  if (plan->positional.size() != 2) {
    return Fail("build needs <relation.pxr> <out.pddindex>");
  }
  Result<XRelation> rel = LoadRelation(plan->positional[0]);
  if (!rel.ok()) return Fail(rel.status().ToString());
  Result<DetectionResult> result = RunPipeline(*plan, *rel);
  if (!result.ok()) return Fail(result.status().ToString());
  IndexBuildStats stats;
  Result<std::string> image = BuildDecisionIndexImage(*rel, *result, &stats);
  if (!image.ok()) return Fail(image.status().ToString());
  Status written = WriteDecisionIndexFile(plan->positional[1], *image);
  if (!written.ok()) return Fail(written.ToString());
  RunTelemetry telemetry = result->telemetry != nullptr
                               ? *result->telemetry
                               : TelemetryFromResult(*result);
  AddIndexBuildMetrics(stats, &telemetry.metrics);
  std::cout << "index: wrote " << plan->positional[1] << " (plan "
            << FingerprintHex(result->plan_fingerprint) << ", source digest "
            << FingerprintHex(result->ContentDigest()) << ")\n"
            << RenderIndexStats(telemetry);
  if (!plan->metrics_file.empty()) {
    return WriteMetricsSidecar(telemetry, plan->metrics_file,
                               plan->metrics_format);
  }
  return 0;
}

int RunIndexQuery(const std::string& mode,
                  const std::vector<std::string>& args) {
  if (mode == "verify") return CmdVerify(args);
  if (mode == "bench") return CmdBench(args);
  if (args.empty()) return Fail(mode + " needs an index file");
  Result<DecisionIndex> index = OpenIndex(args[0]);
  if (!index.ok()) return Fail(index.status().ToString());
  if (mode == "pair") {
    if (args.size() != 3) return Fail("pair needs <index> <id1> <id2>");
    return CmdPair(*index, args[1], args[2]);
  }
  if (mode == "cluster") {
    if (args.size() != 2) return Fail("cluster needs <index> <id>");
    return CmdCluster(*index, args[1]);
  }
  if (mode == "members") {
    if (args.size() != 2) return Fail("members needs <index> <cluster-id>");
    return CmdMembers(*index, args[1]);
  }
  if (mode == "inspect") {
    if (args.size() != 1) return Fail("inspect needs <index>");
    return CmdInspect(*index, args[0]);
  }
  return Fail("unknown index query mode '" + mode +
              "' (pair|cluster|members|inspect|verify|bench)");
}

}  // namespace pdd
