// Shared command implementations of the decision-index tool surface.
// `tools/pddquery.cc` (the standalone build/query tool, mirroring
// pestrie's pes-indexer/pes-querier split) and `pddcli index-build` /
// `pddcli index-query` both dispatch here, so the two entry points
// cannot drift.
//
//   build    <relation.pxr> <out.pddindex> [plan/executor flags]
//            run the pipeline, compile the result into an index file
//   pair     <index> <id1> <id2>      one point query (CSV-formatted
//            exactly like the report's --csv rows, so answers diff
//            cleanly against a fresh run)
//   cluster  <index> <id>             cluster id + members of a record
//   members  <index> <cluster-id>     members of a cluster
//   inspect  <index>                  header/identity/size dump
//   verify   <index> <relation.pxr> [plan flags]
//            recompute: reject stale plan fingerprint / source digest,
//            then prove every indexed answer equals the fresh report
//   bench    <index> [--point N] [--membership N]
//            deterministic query sweep; records queries/sec
//
// `build`, `verify` and `bench` accept `--metrics FILE
// [--metrics-format json|prom]` and write a pdd.telemetry.v1 sidecar
// with the `exec.index.*` / `time.index.*` metrics.

#ifndef PDD_INDEX_INDEX_CLI_H_
#define PDD_INDEX_INDEX_CLI_H_

#include <string>
#include <vector>

namespace pdd {

/// `build` with everything after the subcommand in `args`. Returns the
/// process exit code (0 success, 1 failure) and prints diagnostics to
/// stderr, results to stdout.
int RunIndexBuild(const std::vector<std::string>& args);

/// One of the query subcommands (`pair`, `cluster`, `members`,
/// `inspect`, `verify`, `bench`) with its operands in `args`.
int RunIndexQuery(const std::string& mode,
                  const std::vector<std::string>& args);

}  // namespace pdd

#endif  // PDD_INDEX_INDEX_CLI_H_
