#include "index/mapped_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define PDD_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pdd {

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    // The fallback string's buffer must move before data_ is taken:
    // data_ may point into it.
    fallback_ = std::move(other.fallback_);
    data_ = other.data_;
    size_ = other.size_;
    is_mmap_ = other.is_mmap_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.is_mmap_ = false;
  }
  return *this;
}

void MappedFile::Reset() {
#if PDD_HAVE_MMAP
  if (is_mmap_ && data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  is_mmap_ = false;
  fallback_.clear();
}

Status MappedFile::Open(const std::string& path) {
  Reset();
#if PDD_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat info;
  if (::fstat(fd, &info) != 0) {
    Status status = Status::Internal("cannot stat '" + path +
                                     "': " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  size_t size = static_cast<size_t>(info.st_size);
  if (size == 0) {
    // mmap of length 0 is invalid; an empty file is still a valid
    // (trivially too short) view the format layer rejects with a
    // proper diagnostic.
    ::close(fd);
    data_ = reinterpret_cast<const unsigned char*>(fallback_.data());
    size_ = 0;
    return Status::OK();
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return Status::Internal("cannot mmap '" + path +
                            "': " + std::strerror(errno));
  }
  data_ = static_cast<const unsigned char*>(mapping);
  size_ = size;
  is_mmap_ = true;
  return Status::OK();
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  fallback_ = std::move(buffer).str();
  data_ = reinterpret_cast<const unsigned char*>(fallback_.data());
  size_ = fallback_.size();
  is_mmap_ = false;
  return Status::OK();
#endif
}

}  // namespace pdd
