// Read-only memory mapping of one file (the serving half of the
// decision index's build-once/query-many split). POSIX mmap with a
// read-into-memory fallback so non-mmap platforms still open indexes —
// queries only ever see a (pointer, size) view either way.

#ifndef PDD_INDEX_MAPPED_FILE_H_
#define PDD_INDEX_MAPPED_FILE_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace pdd {

/// An immutable byte view of a file, mmap'd when the platform allows.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Replaces any previous mapping.
  Status Open(const std::string& path);

  /// Unmaps / frees the view.
  void Reset();

  const unsigned char* data() const { return data_; }
  size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }
  /// True when the view is a real mmap (false: heap fallback copy).
  bool is_mmap() const { return is_mmap_; }

 private:
  const unsigned char* data_ = nullptr;
  size_t size_ = 0;
  bool is_mmap_ = false;
  /// Backing storage of the non-mmap fallback.
  std::string fallback_;
};

}  // namespace pdd

#endif  // PDD_INDEX_MAPPED_FILE_H_
