#include "ingest/ingest_queue.h"

#include <algorithm>
#include <utility>

namespace pdd {

IngestQueue::IngestQueue(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

bool IngestQueue::TryPush(XTuple tuple, uint64_t stamp) {
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++arrivals_;
    if (closed_ || items_.size() >= capacity_) {
      ++dropped_;
    } else {
      items_.push_back({std::move(tuple), stamp});
      high_water_ = std::max<uint64_t>(high_water_, items_.size());
      ++admitted_;
      admitted = true;
    }
  }
  if (admitted) not_empty_.notify_one();
  return admitted;
}

bool IngestQueue::Push(XTuple tuple, uint64_t stamp) {
  bool admitted = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++arrivals_;
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      ++dropped_;
    } else {
      items_.push_back({std::move(tuple), stamp});
      high_water_ = std::max<uint64_t>(high_water_, items_.size());
      ++admitted_;
      admitted = true;
    }
  }
  if (admitted) not_empty_.notify_one();
  return admitted;
}

size_t IngestQueue::PopBatch(size_t max, std::vector<IngestItem>* out) {
  out->clear();
  bool freed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t count = std::min(max, items_.size());
    for (size_t i = 0; i < count; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    freed = count > 0;
  }
  // Wake every producer parked on the full queue: more than one slot
  // may have opened up.
  if (freed) not_full_.notify_all();
  return out->size();
}

bool IngestQueue::AwaitNonEmpty() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
  return !items_.empty();
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  // Wake everyone: blocked producers fail, the consumer sees the
  // drained backlog and ends its drain.
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

IngestQueueStats IngestQueue::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IngestQueueStats stats;
  stats.arrivals = arrivals_;
  stats.admitted = admitted_;
  stats.dropped = dropped_;
  stats.depth = items_.size();
  stats.high_water = high_water_;
  stats.capacity = capacity_;
  return stats;
}

}  // namespace pdd
