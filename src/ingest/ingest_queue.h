// IngestQueue: the bounded MPSC handoff between tuple producers and
// the standing drain (the odin-data-dpdk ring idiom: fixed capacity,
// explicit backpressure, per-stage rate/drop accounting). Producers
// either block while the queue is full (Push — backpressure) or are
// rejected with a counted drop (TryPush — load shedding); the queue
// NEVER grows beyond its capacity. The consumer side is pull-shaped to
// match the executor's drain loop: PopBatch takes whatever is ready
// without blocking, and AwaitNonEmpty is the blocking edge the
// IngestStream's AwaitMore() stands on.
//
// The queue is deterministic-core clean: it reads no clocks and no
// randomness. The per-item `stamp` is an opaque caller-supplied value
// (pddserve passes a steady-clock microsecond reading so the decision
// sink can measure admission-to-decision latency; deterministic
// callers pass 0).

#ifndef PDD_INGEST_INGEST_QUEUE_H_
#define PDD_INGEST_INGEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "pdb/xtuple.h"

namespace pdd {

/// One arrival: the tuple plus the producer's opaque stamp.
struct IngestItem {
  XTuple tuple;
  uint64_t stamp = 0;
};

/// Point-in-time queue accounting (folded into the exec.ingest.*
/// metric family by the standing session). arrivals = admitted +
/// dropped, always.
struct IngestQueueStats {
  uint64_t arrivals = 0;
  uint64_t admitted = 0;
  uint64_t dropped = 0;
  uint64_t depth = 0;
  uint64_t high_water = 0;
  uint64_t capacity = 0;
};

class IngestQueue {
 public:
  /// `capacity` is clamped to at least 1 (a zero-capacity ring could
  /// never admit anything).
  explicit IngestQueue(size_t capacity);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Non-blocking admission: rejects with a counted drop when the
  /// queue is full or closed. The load-shedding edge of the
  /// backpressure policy.
  bool TryPush(XTuple tuple, uint64_t stamp = 0);

  /// Blocking admission: waits while the queue is full (backpressure
  /// propagates to the producer). Returns false — with a counted drop
  /// — only when the queue is (or becomes) closed.
  bool Push(XTuple tuple, uint64_t stamp = 0);

  /// Pops up to `max` items in FIFO order into `*out` (cleared first);
  /// never blocks. 0 means idle-or-closed, not necessarily done —
  /// pair with AwaitNonEmpty.
  size_t PopBatch(size_t max, std::vector<IngestItem>* out);

  /// Blocks until an item is available (true) or the queue is closed
  /// AND drained (false — the standing drain's termination signal).
  bool AwaitNonEmpty();

  /// Ends admission: subsequent pushes fail, producers blocked in Push
  /// wake with false, and AwaitNonEmpty returns false once the backlog
  /// is drained. Idempotent.
  void Close();

  bool closed() const;
  IngestQueueStats Stats() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<IngestItem> items_;
  bool closed_ = false;
  uint64_t arrivals_ = 0;
  uint64_t admitted_ = 0;
  uint64_t dropped_ = 0;
  uint64_t high_water_ = 0;
};

}  // namespace pdd

#endif  // PDD_INGEST_INGEST_QUEUE_H_
