#include "ingest/ingest_stream.h"

#include <algorithm>
#include <utility>

#include "util/checked_math.h"

namespace pdd {

IngestStream::IngestStream(std::shared_ptr<const DetectionPlan> plan,
                           XRelation raw, XRelation standing,
                           Options options)
    : plan_(std::move(plan)),
      max_admitted_(std::max<size_t>(options.max_admitted, 1)),
      queue_(options.queue_capacity),
      raw_(std::move(raw)),
      standing_(std::move(standing)) {
  base_ = standing_.size();
  next_second_ = base_;
  // The reservation is the concurrency contract: appends within it
  // never reallocate, so already-published tuples stay readable while
  // later arrivals append (see the header).
  raw_.Reserve(base_ + max_admitted_);
  standing_.Reserve(base_ + max_admitted_);
  stamps_.reserve(max_admitted_);
  for (const XTuple& tuple : standing_.xtuples()) {
    seen_ids_.insert(tuple.id());
  }
}

Result<std::unique_ptr<IngestStream>> IngestStream::Make(
    std::shared_ptr<const DetectionPlan> plan, const XRelation* seed,
    Options options) {
  if (plan == nullptr) {
    return Status::InvalidArgument("ingest stream needs a plan");
  }
  XRelation raw = seed != nullptr ? *seed
                                  : XRelation("standing", plan->schema());
  if (!raw.schema().CompatibleWith(plan->schema())) {
    return Status::InvalidArgument(
        "seed relation schema incompatible with plan schema");
  }
  // Live decisions must match the batch path bit for bit, so arrivals
  // and the seed go through the same preparation step the batch stream
  // factories apply.
  XRelation standing = plan->config().preparation.has_value()
                           ? plan->config().preparation->Prepare(raw)
                           : raw;
  return std::unique_ptr<IngestStream>(
      new IngestStream(std::move(plan), std::move(raw), std::move(standing),
                       options));
}

size_t IngestStream::Admit(std::vector<IngestItem>* items) {
  if (items->empty()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  size_t admitted = 0;
  for (IngestItem& item : *items) {
    if (standing_.size() - base_ >= max_admitted_) {
      ++stats_.rejected_capacity;
      continue;
    }
    if (seen_ids_.count(item.tuple.id()) > 0) {
      ++stats_.duplicate_ids;
      continue;
    }
    std::string id = item.tuple.id();
    XTuple prepared = plan_->config().preparation.has_value()
                          ? plan_->config().preparation->PrepareXTuple(
                                item.tuple)
                          : item.tuple;
    // Append (not AppendUnchecked): arrivals are untrusted; a tuple
    // that fails schema validation is a counted drop, never a crash.
    Status appended = raw_.Append(std::move(item.tuple));
    if (!appended.ok()) {
      ++stats_.invalid;
      continue;
    }
    seen_ids_.insert(std::move(id));
    standing_.AppendUnchecked(std::move(prepared));
    stamps_.push_back(item.stamp);
    ++stats_.admitted;
    ++admitted;
  }
  return admitted;
}

size_t IngestStream::NextBatch(size_t max_batch,
                               std::vector<CandidatePair>* out) {
  out->clear();
  if (max_batch == 0) return 0;
  std::vector<IngestItem> popped;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const size_t size = standing_.size();
      // Lazy crossing-pair emission: (0,j) … (j-1,j) for each admitted
      // tuple j in admission order — the O(1)-state generalization of
      // the incremental crossing filter (every emitted pair has
      // second >= base_ because the cursor starts there).
      while (out->size() < max_batch && next_second_ < size) {
        if (next_first_ == next_second_) {
          // Tuple j's pairs are done (j == 0 has none): next tuple.
          ++next_second_;
          next_first_ = 0;
          continue;
        }
        out->push_back({next_first_, next_second_});
        ++next_first_;
      }
    }
    if (out->size() >= max_batch) return out->size();
    // Cursor caught up with the standing relation: admit whatever the
    // queue holds right now. Nothing there means idle-or-closed — the
    // executor settles which via AwaitMore().
    if (queue_.PopBatch(max_batch, &popped) == 0) return out->size();
    Admit(&popped);
  }
}

size_t IngestStream::Pump() {
  std::vector<IngestItem> popped;
  size_t total = 0;
  while (queue_.PopBatch(256, &popped) > 0) {
    total += Admit(&popped);
  }
  return total;
}

size_t IngestStream::total_pairs() const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t admitted = standing_.size() - base_;
  return SaturatingAdd(SaturatingMul(base_, admitted),
                       TriangularPairCount(admitted));
}

XRelation IngestStream::SnapshotRaw() const {
  std::lock_guard<std::mutex> lock(mu_);
  return raw_;
}

IngestStream::AdmissionStats IngestStream::admission_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pdd
