// IngestStream: the push-based CandidateStream of the standing ingest
// service. Producers push tuples into the bounded IngestQueue; the
// executor's drain loop pulls candidate batches as usual. Each
// NextBatch first emits the pending crossing pairs of already-admitted
// tuples, then admits whatever the queue holds (schema validation,
// id dedup, the plan's preparation step) into the standing relation and
// continues emitting; when it has nothing, the executor blocks in
// AwaitMore() on the queue until producers deliver or close. Candidate
// generation is the generalized incremental crossing filter: tuple j
// (j >= base, the seeded prefix) yields (0,j), (1,j), …, (j-1,j) — the
// full crossing set against the standing relation, emitted lazily with
// an O(1) cursor, never materialized.
//
// Concurrency contract: NextBatch/Pump calls are serialized by the
// executor's drain mutex (or a single caller); the standing relation's
// storage is Reserve()d up front so concurrent READERS of
// already-published tuples (executor workers deciding earlier batches)
// never see a reallocation, and every pair referencing tuple j is
// published only after j's append under the same locks. SnapshotRaw()
// may be called from any thread (pddserve's maintenance thread).
//
// The live pair order depends on arrival order, so the drain's record
// order does too: the deterministic byte-identical report is produced
// by StandingSession::Finish(), which re-runs the canonical relation
// through the batch path — with the shared decision cache turning that
// re-run into ~100% hits.

#ifndef PDD_INGEST_INGEST_STREAM_H_
#define PDD_INGEST_INGEST_STREAM_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ingest/ingest_queue.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/detection_plan.h"

namespace pdd {

class IngestStream : public CandidateStream {
 public:
  struct Options {
    /// Bounded queue capacity (the backpressure point).
    size_t queue_capacity = 256;
    /// Hard bound on tuples admitted into the standing relation (on
    /// top of the seed); the relation reserves this up front and
    /// arrivals beyond it are rejected with a counted drop.
    size_t max_admitted = 1 << 20;
  };

  /// Admission accounting past the queue (folded into exec.ingest.*).
  struct AdmissionStats {
    uint64_t admitted = 0;
    uint64_t duplicate_ids = 0;
    uint64_t invalid = 0;
    uint64_t rejected_capacity = 0;
  };

  /// `seed` (optional, copied) is the already-deduplicated standing
  /// prefix: crossing pairs are only emitted for arrivals, exactly like
  /// the incremental scenario. The seed is prepared per the plan, and
  /// arriving tuples are prepared the same way at admission, so live
  /// decisions match what the batch path would decide.
  static Result<std::unique_ptr<IngestStream>> Make(
      std::shared_ptr<const DetectionPlan> plan, const XRelation* seed,
      Options options);

  IngestStream(const IngestStream&) = delete;
  IngestStream& operator=(const IngestStream&) = delete;

  // CandidateStream:
  const XRelation& relation() const override { return standing_; }
  size_t NextBatch(size_t max_batch, std::vector<CandidatePair>* out) override;
  /// Standing streams drain once; Reset is a no-op (a re-Execute would
  /// simply continue from the live cursor).
  void Reset() override {}
  bool AwaitMore() override { return queue_.AwaitNonEmpty(); }
  size_t tuple_capacity() const override { return base_ + max_admitted_; }
  /// Pairs are generated lazily from the cursor: nothing buffered.
  size_t buffered_candidates() const override { return 0; }
  /// Grows as tuples are admitted: base*m + m(m-1)/2 crossing pairs
  /// for m admitted tuples (the executor re-reads after the drain).
  size_t total_pairs() const override;
  std::string name() const override { return "ingest"; }

  /// The producers' handle.
  IngestQueue& queue() { return queue_; }
  const IngestQueue& queue() const { return queue_; }

  /// Admits everything currently queued without emitting pairs. The
  /// finish paths use this after Close() so tuples that were never
  /// live-drained still reach the standing relation. Must not run
  /// concurrently with an active drain.
  size_t Pump();

  /// Number of seeded tuples (admitted arrivals start at this index).
  size_t base() const { return base_; }

  /// Thread-safe copy of the RAW standing relation (seed + admitted,
  /// arrival order, before preparation) — what the canonical finish
  /// run and `pddserve --dump-relation` serialize.
  XRelation SnapshotRaw() const;

  /// The producer stamp recorded when standing tuple `index` was
  /// admitted (0 for seeded tuples). Only call for indices already
  /// published through a candidate pair.
  uint64_t admitted_stamp(size_t index) const {
    return index < base_ ? 0 : stamps_[index - base_];
  }

  AdmissionStats admission_stats() const;

 private:
  IngestStream(std::shared_ptr<const DetectionPlan> plan, XRelation raw,
               XRelation standing, Options options);

  /// Validates, dedups, prepares and appends items; returns the number
  /// admitted. Serialized with the cursor by mu_.
  size_t Admit(std::vector<IngestItem>* items);

  std::shared_ptr<const DetectionPlan> plan_;
  const size_t max_admitted_;
  IngestQueue queue_;

  mutable std::mutex mu_;
  /// Raw arrivals (seed + admitted, unprepared) — the canonical-run
  /// input. Reserved; append-only under mu_.
  XRelation raw_;
  /// The prepared standing relation candidate indices refer to.
  /// Reserved; append-only under mu_; elements readable lock-free once
  /// published through a pair.
  XRelation standing_;
  size_t base_ = 0;
  /// Ids standing so far (membership only — never iterated).
  std::set<std::string> seen_ids_;
  /// Producer stamps per admitted index; reserved like the relations.
  std::vector<uint64_t> stamps_;
  /// Crossing-pair cursor: next pair to emit is (next_first_,
  /// next_second_); pairs advance first-minor within each second.
  size_t next_first_ = 0;
  size_t next_second_ = 0;
  AdmissionStats stats_;
};

}  // namespace pdd

#endif  // PDD_INGEST_INGEST_STREAM_H_
