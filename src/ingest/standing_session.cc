#include "ingest/standing_session.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "obs/run_telemetry.h"
#include "pipeline/candidate_stream.h"

namespace pdd {

Result<std::unique_ptr<StandingSession>> StandingSession::Make(
    std::shared_ptr<const DetectionPlan> plan, const XRelation* seed,
    Options options) {
  PDD_ASSIGN_OR_RETURN(std::unique_ptr<IngestStream> stream,
                       IngestStream::Make(plan, seed, options.stream));
  return std::unique_ptr<StandingSession>(new StandingSession(
      std::move(plan), std::move(stream), std::move(options)));
}

StageExecutorOptions StandingSession::ExecutorOptions(bool live) const {
  StageExecutorOptions exec;
  exec.batch_size = options_.batch_size;
  exec.workers = options_.workers;
  exec.stage_timings = options_.stage_timings;
  exec.cache = options_.cache;
  // The sink streams LIVE decisions only; finish runs are ordinary
  // batch drains whose order the result itself carries.
  if (live) exec.decision_sink = options_.decision_sink;
  return exec;
}

Result<DetectionResult> StandingSession::Drain() {
  return StageExecutor(plan_, ExecutorOptions(/*live=*/true))
      .Execute(*stream_);
}

XRelation StandingSession::CanonicalRelation() {
  XRelation raw = stream_->SnapshotRaw();
  std::vector<XTuple> tuples(raw.xtuples().begin(), raw.xtuples().end());
  std::sort(tuples.begin(), tuples.end(),
            [](const XTuple& a, const XTuple& b) { return a.id() < b.id(); });
  XRelation canonical(raw.name(), raw.schema());
  canonical.Reserve(tuples.size());
  for (XTuple& tuple : tuples) {
    canonical.AppendUnchecked(std::move(tuple));
  }
  return canonical;
}

Result<DetectionResult> StandingSession::Finish(ShardOptions shards) {
  // Tuples that never went through a live drain (queue closed with a
  // backlog, or no drain at all) still belong to the standing set.
  stream_->Pump();
  XRelation canonical = CanonicalRelation();
  PDD_ASSIGN_OR_RETURN(
      std::unique_ptr<CandidateStream> batch,
      shards.count > 1 ? MakeShardedFullStream(*plan_, canonical, shards)
                       : MakeFullStream(*plan_, canonical));
  return StageExecutor(plan_, ExecutorOptions(/*live=*/false))
      .Execute(*batch);
}

Result<DetectionResult> StandingSession::FinishIncremental(
    const XRelation& existing, ShardOptions shards) {
  stream_->Pump();
  const IngestStream::AdmissionStats admission = stream_->admission_stats();
  const IngestQueueStats queue = stream_->queue().Stats();
  if (queue.dropped > 0 || admission.duplicate_ids > 0 ||
      admission.invalid > 0 || admission.rejected_capacity > 0) {
    return Status::InvalidArgument(
        "incremental finish requires lossless admission (" +
        std::to_string(queue.dropped) + " queue drops, " +
        std::to_string(admission.duplicate_ids) + " duplicate ids, " +
        std::to_string(admission.invalid) + " invalid, " +
        std::to_string(admission.rejected_capacity) + " beyond capacity)");
  }
  // The admitted suffix, in admission == arrival order: with lossless
  // admission that is exactly the additions relation the caller fed,
  // so the incremental stream (and its report) matches the classic
  // RunIncremental byte for byte.
  XRelation raw = stream_->SnapshotRaw();
  XRelation additions("additions", raw.schema());
  additions.Reserve(raw.size() - stream_->base());
  for (size_t i = stream_->base(); i < raw.size(); ++i) {
    additions.AppendUnchecked(raw.xtuple(i));
  }
  PDD_ASSIGN_OR_RETURN(
      std::unique_ptr<CandidateStream> batch,
      shards.count > 1
          ? MakeShardedIncrementalStream(*plan_, existing, additions, shards)
          : MakeIncrementalStream(*plan_, existing, additions));
  return StageExecutor(plan_, ExecutorOptions(/*live=*/false))
      .Execute(*batch);
}

void StandingSession::AddIngestStats(MetricsRegistry* metrics) const {
  const IngestQueueStats queue = stream_->queue().Stats();
  const IngestStream::AdmissionStats admission = stream_->admission_stats();
  metrics->SetCounter(kMetricIngestArrivals, queue.arrivals);
  metrics->SetCounter(kMetricIngestAdmitted, admission.admitted);
  metrics->SetCounter(kMetricIngestDropped, queue.dropped);
  metrics->SetCounter(kMetricIngestDuplicateIds, admission.duplicate_ids);
  metrics->SetCounter(kMetricIngestInvalid, admission.invalid);
  metrics->SetCounter(kMetricIngestRejectedCapacity,
                      admission.rejected_capacity);
  metrics->SetCounter(kMetricIngestQueueCapacity, queue.capacity);
  metrics->SetGauge(kGaugeIngestQueueDepth,
                    static_cast<double>(queue.depth));
  metrics->SetGauge(kGaugeIngestQueueHighWater,
                    static_cast<double>(queue.high_water));
}

}  // namespace pdd
