// StandingSession: wires the push-based ingest path (IngestQueue →
// IngestStream) to the shared StageExecutor and owns the service
// lifecycle a standing consumer (pddserve, the RunIncremental adapter)
// needs:
//
//   * Drain() — the live loop: decides every crossing pair of every
//     admitted tuple through the plan's decide path (cache → columnar
//     match → combine → derive → classify), streaming records through
//     the configured decision sink until the queue closes. Live record
//     order depends on arrival order by construction.
//   * Finish() — THE deterministic report: the canonical (id-sorted)
//     raw relation re-run through the ordinary batch path with the
//     session's shared decision cache. Because the live drain decided
//     the FULL crossing set (a superset of any reduction's candidate
//     set over content-identical tuples), the re-run is ~100% cache
//     hits, and its report is byte-identical to a one-shot batch run
//     of the same tuple set — for ANY arrival order, and for
//     serial/pooled/sharded finish drains alike.
//   * FinishIncremental() — the RunIncremental bridge: the admitted
//     suffix re-run as a classic incremental scenario against the
//     caller's existing relation, byte-identical to the pre-standing
//     RunIncremental.
//
// One session = one standing run. The decision cache (and its disk
// snapshots) carries warmth across sessions and process restarts.

#ifndef PDD_INGEST_STANDING_SESSION_H_
#define PDD_INGEST_STANDING_SESSION_H_

#include <functional>
#include <memory>

#include "cache/decision_cache.h"
#include "ingest/ingest_stream.h"
#include "obs/metrics_registry.h"
#include "pipeline/detection_result.h"
#include "pipeline/sharded_stream.h"
#include "pipeline/stage_executor.h"

namespace pdd {

class StandingSession {
 public:
  struct Options {
    IngestStream::Options stream;
    /// Executor shape of the live drain (Finish re-runs share
    /// batch_size/workers unless sharded).
    size_t batch_size = 256;
    size_t workers = 0;
    bool stage_timings = false;
    /// Shared decision store: what makes Finish() nearly free and
    /// crash-restart warm-up possible. Null runs uncached (Finish then
    /// re-decides from scratch — same bytes, full cost).
    std::shared_ptr<DecisionCache> cache;
    /// Receives each live decision as it commits (see
    /// StageExecutorOptions::decision_sink for the ordering contract).
    std::function<void(const PairDecisionRecord&)> decision_sink;
  };

  static Result<std::unique_ptr<StandingSession>> Make(
      std::shared_ptr<const DetectionPlan> plan, const XRelation* seed,
      Options options);

  StandingSession(const StandingSession&) = delete;
  StandingSession& operator=(const StandingSession&) = delete;

  /// The producers' handle (thread-safe).
  IngestQueue& queue() { return stream_->queue(); }
  IngestStream& stream() { return *stream_; }
  const IngestStream& stream() const { return *stream_; }
  const std::shared_ptr<const DetectionPlan>& plan() const { return plan_; }
  const std::shared_ptr<DecisionCache>& cache() const {
    return options_.cache;
  }

  /// Runs the live drain on the calling thread until the queue is
  /// closed and every admitted pair is decided. Call once.
  Result<DetectionResult> Drain();

  /// Seed + admitted raw tuples, sorted by tuple id — the arrival-
  /// order-independent input of the deterministic finish run (ids are
  /// unique by admission dedup, so the order is total).
  XRelation CanonicalRelation();

  /// The deterministic final report (see file comment). Pumps any
  /// still-queued tuples first; call after Close()+Drain().
  Result<DetectionResult> Finish(ShardOptions shards = {});

  /// RunIncremental bridge: pumps, then re-runs the admitted suffix
  /// (arrival order) as an incremental scenario against `existing`.
  /// Fails if any arrival was dropped (duplicate/invalid/capacity/
  /// queue) — the batch RunIncremental contract has no lossy mode.
  Result<DetectionResult> FinishIncremental(const XRelation& existing,
                                            ShardOptions shards = {});

  /// Folds the queue + admission accounting into the exec.ingest.*
  /// metric family.
  void AddIngestStats(MetricsRegistry* metrics) const;

 private:
  StandingSession(std::shared_ptr<const DetectionPlan> plan,
                  std::unique_ptr<IngestStream> stream, Options options)
      : plan_(std::move(plan)),
        stream_(std::move(stream)),
        options_(std::move(options)) {}

  StageExecutorOptions ExecutorOptions(bool live) const;

  std::shared_ptr<const DetectionPlan> plan_;
  std::unique_ptr<IngestStream> stream_;
  Options options_;
};

}  // namespace pdd

#endif  // PDD_INGEST_STANDING_SESSION_H_
