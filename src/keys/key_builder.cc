#include "keys/key_builder.h"

#include <map>

#include "util/string_util.h"

namespace pdd {

double KeyDistribution::TotalMass() const {
  double total = 0.0;
  for (const auto& [key, prob] : entries) total += prob;
  return total;
}

std::string KeyDistribution::MostProbableKey() const {
  std::string best;
  double best_prob = -1.0;
  for (const auto& [key, prob] : entries) {
    if (prob > best_prob + kProbEpsilon) {
      best_prob = prob;
      best = key;
    }
  }
  return best;
}

std::string KeyBuilder::KeyForAlternative(const AltTuple& alt,
                                          ConflictStrategy strategy) const {
  std::vector<std::string> texts;
  texts.reserve(spec_.components().size());
  for (const KeyComponent& c : spec_.components()) {
    texts.push_back(ResolveValue(alt.values[c.attribute], strategy));
  }
  return spec_.KeyFromTexts(texts);
}

std::string KeyBuilder::CertainKey(const XTuple& xtuple,
                                   ConflictStrategy strategy) const {
  size_t alt = ResolveAlternative(xtuple, strategy);
  return KeyForAlternative(xtuple.alternative(alt), strategy);
}

std::vector<std::string> KeyBuilder::AlternativeKeys(
    const XTuple& xtuple) const {
  std::vector<std::string> keys;
  keys.reserve(xtuple.size());
  for (const AltTuple& alt : xtuple.alternatives()) {
    std::string key = KeyForAlternative(alt);
    if (keys.empty() || keys.back() != key) keys.push_back(std::move(key));
  }
  return keys;
}

std::vector<std::pair<size_t, std::string>> KeyBuilder::KeysForWorld(
    const World& world, const XRelation& rel) const {
  std::vector<std::pair<size_t, std::string>> out;
  for (size_t i = 0; i < world.choice.size(); ++i) {
    if (world.choice[i] == kAbsent) continue;
    const AltTuple& alt =
        rel.xtuple(i).alternative(static_cast<size_t>(world.choice[i]));
    out.emplace_back(i, KeyForAlternative(alt));
  }
  return out;
}

std::vector<std::vector<std::pair<std::string, double>>>
KeyBuilder::ComponentOutcomes(const AltTuple& alt) const {
  std::vector<std::vector<std::pair<std::string, double>>> outcomes;
  outcomes.reserve(spec_.components().size());
  for (const KeyComponent& c : spec_.components()) {
    const Value& v = alt.values[c.attribute];
    std::vector<std::pair<std::string, double>> comp;
    for (const Alternative& a : v.alternatives()) {
      // Pattern alternatives contribute their literal prefix text; the key
      // prefix cut happens in KeyFromTexts.
      comp.emplace_back(a.text, a.prob);
    }
    if (v.null_probability() > kProbEpsilon) {
      comp.emplace_back("", v.null_probability());  // ⊥ contributes nothing
    }
    outcomes.push_back(std::move(comp));
  }
  return outcomes;
}

KeyDistribution KeyBuilder::DistributionFor(const XTuple& xtuple,
                                            bool conditioned) const {
  // Merge masses per key string, preserving first-seen order (Fig. 13
  // lists keys in alternative order).
  std::vector<std::string> order;
  std::map<std::string, double> mass;
  auto add = [&](const std::string& key, double p) {
    auto [it, inserted] = mass.emplace(key, 0.0);
    if (inserted) order.push_back(key);
    it->second += p;
  };
  std::vector<double> alt_probs;
  alt_probs.reserve(xtuple.size());
  if (conditioned) {
    alt_probs = xtuple.ConditionedProbabilities();
  } else {
    for (const AltTuple& alt : xtuple.alternatives()) {
      alt_probs.push_back(alt.prob);
    }
  }
  for (size_t a = 0; a < xtuple.size(); ++a) {
    const AltTuple& alt = xtuple.alternative(a);
    std::vector<std::vector<std::pair<std::string, double>>> outcomes =
        ComponentOutcomes(alt);
    // Cartesian product over component outcomes (key attributes only; key
    // attribute counts are small by construction).
    std::vector<size_t> pos(outcomes.size(), 0);
    while (true) {
      std::vector<std::string> texts;
      texts.reserve(outcomes.size());
      double p = alt_probs[a];
      for (size_t i = 0; i < outcomes.size(); ++i) {
        texts.push_back(outcomes[i][pos[i]].first);
        p *= outcomes[i][pos[i]].second;
      }
      add(spec_.KeyFromTexts(texts), p);
      size_t i = outcomes.size();
      bool done = true;
      while (i > 0) {
        --i;
        if (++pos[i] < outcomes[i].size()) {
          done = false;
          break;
        }
        pos[i] = 0;
      }
      if (done) break;
    }
  }
  KeyDistribution dist;
  dist.entries.reserve(order.size());
  for (const std::string& key : order) {
    dist.entries.emplace_back(key, mass[key]);
  }
  return dist;
}

}  // namespace pdd
