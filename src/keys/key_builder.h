// Key creation for probabilistic tuples (Section V-A): certain keys via
// conflict resolution, per-alternative keys, per-world keys, and full
// probabilistic key distributions (Fig. 13).

#ifndef PDD_KEYS_KEY_BUILDER_H_
#define PDD_KEYS_KEY_BUILDER_H_

#include <string>
#include <vector>

#include "fusion/conflict_resolution.h"
#include "keys/key_spec.h"
#include "pdb/possible_worlds.h"
#include "pdb/xrelation.h"

namespace pdd {

/// A probabilistic key value: distribution over key strings. Entries keep
/// raw (unconditioned) alternative probabilities as in Fig. 13, where
/// t32's key values carry 0.3/0.2/0.4 — not renormalized by p(t)=0.9.
struct KeyDistribution {
  std::vector<std::pair<std::string, double>> entries;

  /// Total probability mass (< 1 for maybe x-tuples).
  double TotalMass() const;
  /// The highest-probability key (ties toward the earlier entry).
  std::string MostProbableKey() const;
};

/// Builds keys for the x-tuples of one x-relation under a key spec.
class KeyBuilder {
 public:
  /// `schema` must outlive the builder.
  KeyBuilder(KeySpec spec, const Schema* schema)
      : spec_(std::move(spec)), schema_(schema) {}

  /// Key of one alternative tuple. Values that are themselves uncertain
  /// are collapsed with `strategy` (the default matches the paper:
  /// most probable). Pattern values contribute their literal prefix
  /// ('mu*' with prefix length 2 yields "mu", as in Fig. 9/13).
  std::string KeyForAlternative(const AltTuple& alt,
                                ConflictStrategy strategy =
                                    ConflictStrategy::kMostProbable) const;

  /// Certain key for an entire x-tuple via conflict resolution
  /// (Section V-A.2): picks one alternative with `strategy`, then
  /// collapses any value-level uncertainty with the same strategy.
  std::string CertainKey(const XTuple& xtuple,
                         ConflictStrategy strategy =
                             ConflictStrategy::kMostProbable) const;

  /// One key per alternative (Section V-A.3, Fig. 11). Consecutive equal
  /// keys of the same x-tuple are collapsed; remaining duplicates are kept
  /// so callers can demonstrate the omission step themselves.
  std::vector<std::string> AlternativeKeys(const XTuple& xtuple) const;

  /// Keys of every x-tuple under one possible world (Section V-A.1):
  /// the world fixes each x-tuple's alternative; value-level uncertainty
  /// inside the chosen alternative is collapsed most-probably. Absent
  /// tuples yield no entry.
  std::vector<std::pair<size_t, std::string>> KeysForWorld(
      const World& world, const XRelation& rel) const;

  /// Full probabilistic key value (Section V-A.4, Fig. 13): expands the
  /// x-tuple's alternatives and any value-level uncertainty inside the
  /// key attributes; equal key strings are merged. Probabilities are raw
  /// alternative masses (set `conditioned` to renormalize by p(t)).
  KeyDistribution DistributionFor(const XTuple& xtuple,
                                  bool conditioned = false) const;

  const KeySpec& spec() const { return spec_; }

 private:
  /// Per-component (text, probability) outcomes of one alternative tuple,
  /// including a ⊥ outcome rendered as "".
  std::vector<std::vector<std::pair<std::string, double>>> ComponentOutcomes(
      const AltTuple& alt) const;

  KeySpec spec_;
  const Schema* schema_;
};

}  // namespace pdd

#endif  // PDD_KEYS_KEY_BUILDER_H_
