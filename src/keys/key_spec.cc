#include "keys/key_spec.h"

#include "util/string_util.h"

namespace pdd {

Result<KeySpec> KeySpec::Make(std::vector<KeyComponent> components,
                              const Schema& schema) {
  if (components.empty()) {
    return Status::InvalidArgument("key spec needs at least one component");
  }
  for (const KeyComponent& c : components) {
    if (c.attribute >= schema.arity()) {
      return Status::InvalidArgument(
          "key component references attribute index " +
          std::to_string(c.attribute) + " beyond schema arity " +
          std::to_string(schema.arity()));
    }
  }
  return KeySpec(std::move(components));
}

Result<KeySpec> KeySpec::FromNames(
    const std::vector<std::pair<std::string, size_t>>& name_prefixes,
    const Schema& schema) {
  std::vector<KeyComponent> components;
  components.reserve(name_prefixes.size());
  for (const auto& [name, prefix] : name_prefixes) {
    PDD_ASSIGN_OR_RETURN(size_t index, schema.IndexOf(name));
    components.push_back({index, prefix});
  }
  return Make(std::move(components), schema);
}

std::string KeySpec::KeyFromTexts(const std::vector<std::string>& texts) const {
  std::string key;
  for (size_t i = 0; i < components_.size(); ++i) {
    const std::string& text = texts[i];
    size_t n = components_[i].prefix_length;
    key += n == 0 ? text : std::string(Prefix(text, n));
  }
  return key;
}

}  // namespace pdd
