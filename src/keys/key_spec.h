// Sorting/blocking key specifications (Section V): a key concatenates
// character prefixes of selected attributes. The paper's running example
// uses the first three characters of name plus the first two of job
// ("Johpi" for (John, pilot)); ⊥ values contribute nothing ("Joh" for
// (John, ⊥)).

#ifndef PDD_KEYS_KEY_SPEC_H_
#define PDD_KEYS_KEY_SPEC_H_

#include <string>
#include <vector>

#include "pdb/schema.h"
#include "util/status.h"

namespace pdd {

/// One component of a key: a character prefix of an attribute's value.
struct KeyComponent {
  /// Attribute index in the schema.
  size_t attribute = 0;
  /// Number of leading characters used; 0 means the whole value.
  size_t prefix_length = 0;
};

/// An ordered list of key components.
class KeySpec {
 public:
  KeySpec() = default;
  explicit KeySpec(std::vector<KeyComponent> components)
      : components_(std::move(components)) {}

  /// Validated construction against a schema (attribute indices in range,
  /// at least one component).
  static Result<KeySpec> Make(std::vector<KeyComponent> components,
                              const Schema& schema);

  /// Convenience: resolves attribute names against the schema.
  static Result<KeySpec> FromNames(
      const std::vector<std::pair<std::string, size_t>>& name_prefixes,
      const Schema& schema);

  /// The components in concatenation order.
  const std::vector<KeyComponent>& components() const { return components_; }

  /// Builds the key from one certain text per component (empty text = ⊥).
  std::string KeyFromTexts(const std::vector<std::string>& texts) const;

 private:
  std::vector<KeyComponent> components_;
};

}  // namespace pdd

#endif  // PDD_KEYS_KEY_SPEC_H_
