#include "match/attribute_matcher.h"

#include <optional>

namespace pdd {

double OutcomeSimilarity(const std::optional<std::string_view>& a,
                         const std::optional<std::string_view>& b,
                         const Comparator& cmp) {
  if (!a.has_value() && !b.has_value()) return 1.0;  // sim(⊥,⊥) = 1
  if (!a.has_value() || !b.has_value()) return 0.0;  // sim(a,⊥) = 0
  return cmp.Compare(*a, *b);
}

double ExpectedSimilarity(const Value& a, const Value& b,
                          const Comparator& cmp) {
  double total = 0.0;
  // Cross product of explicit alternatives.
  for (const Alternative& da : a.alternatives()) {
    for (const Alternative& db : b.alternatives()) {
      total += da.prob * db.prob * cmp.Compare(da.text, db.text);
    }
  }
  // ⊥ outcomes: only the (⊥,⊥) cell contributes (similarity 1);
  // mixed cells have similarity 0.
  total += a.null_probability() * b.null_probability();
  return total;
}

double EqualityProbability(const Value& a, const Value& b) {
  static const ExactComparator exact;
  return ExpectedSimilarity(a, b, exact);
}

}  // namespace pdd
