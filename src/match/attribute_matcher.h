// Attribute value matching for probabilistic values (Section IV-A).
//
// Implements the paper's Eq. 4 (error-free data: probability of equality)
// and Eq. 5 (erroneous data: expected similarity under a base comparison
// function), with the non-existence semantics
//   sim(⊥,⊥) = 1,   sim(a,⊥) = sim(⊥,a) = 0  (a ≠ ⊥).

#ifndef PDD_MATCH_ATTRIBUTE_MATCHER_H_
#define PDD_MATCH_ATTRIBUTE_MATCHER_H_

#include <optional>
#include <string_view>

#include "pdb/value.h"
#include "sim/comparator.h"

namespace pdd {

/// Eq. 5: expected similarity of two probabilistic values under `cmp`:
///   sim(a1,a2) = Σ_{d1} Σ_{d2} P(a1=d1)·P(a2=d2)·sim(d1,d2)
/// including the ⊥ outcomes with the semantics above. Pattern
/// alternatives must be expanded beforehand (see Value::Expanded);
/// unexpanded patterns are treated as their literal prefix text.
///
/// Reproduces the paper's worked example: with normalized Hamming,
/// sim(t11.name, t22.name) = 0.9 and sim(t11.job, t22.job) = 0.59.
double ExpectedSimilarity(const Value& a, const Value& b,
                          const Comparator& cmp);

/// Eq. 4: probability that both values are equal (error-free data).
/// Equivalent to ExpectedSimilarity with the exact comparator.
double EqualityProbability(const Value& a, const Value& b);

/// The ⊥-aware similarity of two *certain* outcomes, where the empty
/// optional denotes ⊥: sim(⊥,⊥)=1, sim(a,⊥)=0, else cmp.
double OutcomeSimilarity(const std::optional<std::string_view>& a,
                         const std::optional<std::string_view>& b,
                         const Comparator& cmp);

}  // namespace pdd

#endif  // PDD_MATCH_ATTRIBUTE_MATCHER_H_
