#include "match/columnar_matcher.h"

#include <algorithm>
#include <chrono>

#include "decision/combination.h"
#include "match/comparison_vector.h"

namespace pdd {

namespace {

using Clock = std::chrono::steady_clock;

inline double Elapsed(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

ColumnarMatcher::ColumnarMatcher(const DetectionPlan& plan,
                                 const RelationArena& arena)
    : plan_(plan), arena_(arena) {
  if (const auto* wsum =
          dynamic_cast<const WeightedSumCombination*>(&plan.combination())) {
    weights_ = &wsum->weights();
  }
  c_.resize(plan.schema().arity());
}

double ColumnarMatcher::MatchValue(ColumnarKernelFn kernel, size_t v1,
                                   size_t v2) {
  const RelationArena& a = arena_;
  const uint32_t a_begin = a.value_alt_begin(v1);
  const uint32_t a_end = a.value_alt_end(v1);
  const uint32_t b_begin = a.value_alt_begin(v2);
  const uint32_t b_end = a.value_alt_end(v2);
  // ExpectedSimilarity's accumulation, term for term: cross product of
  // explicit alternatives in storage order, then the (⊥,⊥) cell.
  double total = 0.0;
  for (uint32_t ka = a_begin; ka < a_end; ++ka) {
    const std::string_view text_a = a.alt_text(ka);
    const double prob_a = a.alt_prob(ka);
    const uint64_t sig_a = a.alt_sig(ka);
    for (uint32_t kb = b_begin; kb < b_end; ++kb) {
      total += prob_a * a.alt_prob(kb) *
               kernel(text_a, a.alt_text(kb), sig_a, a.alt_sig(kb), scratch_);
    }
  }
  total += a.value_null_prob(v1) * a.value_null_prob(v2);
  return total;
}

void ColumnarMatcher::FillScores(size_t t1, size_t t2) {
  const RelationArena& a = arena_;
  const std::vector<ColumnarKernelFn>& kernels = plan_.columnar_kernels();
  const size_t arity = a.arity();
  const uint32_t r1_begin = a.tuple_row_begin(t1);
  const uint32_t r1_end = a.tuple_row_end(t1);
  const uint32_t r2_begin = a.tuple_row_begin(t2);
  const uint32_t r2_end = a.tuple_row_end(t2);
  scores_.rows = r1_end - r1_begin;
  scores_.cols = r2_end - r2_begin;
  const double* cond = a.row_cond_prob_data();
  scores_.p1.assign(cond + r1_begin, cond + r1_end);
  scores_.p2.assign(cond + r2_begin, cond + r2_end);
  scores_.sims.resize(scores_.rows * scores_.cols);
  size_t cell = 0;
  for (uint32_t r1 = r1_begin; r1 < r1_end; ++r1) {
    for (uint32_t r2 = r2_begin; r2 < r2_end; ++r2) {
      double sim;
      if (weights_ != nullptr) {
        // WeightedSumCombination::Combine's loop with the comparison
        // value computed in place of the c[i] load: φ components
        // beyond min(|w|, arity) never contribute, so their attribute
        // similarities are skipped entirely.
        const size_t n = std::min(weights_->size(), arity);
        double combined = 0.0;
        for (size_t attr = 0; attr < n; ++attr) {
          combined += (*weights_)[attr] *
                      MatchValue(kernels[attr], size_t{r1} * arity + attr,
                                 size_t{r2} * arity + attr);
        }
        sim = combined;
      } else {
        for (size_t attr = 0; attr < arity; ++attr) {
          c_[attr] = MatchValue(kernels[attr], size_t{r1} * arity + attr,
                                size_t{r2} * arity + attr);
        }
        sim = plan_.combination().Combine(ComparisonVector(c_));
      }
      scores_.sims[cell++] = sim;
    }
  }
}

XPairDecision ColumnarMatcher::Decide(size_t t1, size_t t2) {
  XPairDecision decision;
  for (PipelineStage stage : plan_.stages()) {
    switch (stage) {
      case PipelineStage::kMatch:
        FillScores(t1, t2);
        break;
      case PipelineStage::kCombine:
        break;  // fused into kMatch (see header)
      case PipelineStage::kDerive:
        decision.similarity = plan_.RunDeriveStage(scores_);
        break;
      case PipelineStage::kClassify:
        decision.match_class = plan_.RunClassifyStage(decision.similarity);
        break;
    }
  }
  return decision;
}

XPairDecision ColumnarMatcher::DecideTimed(size_t t1, size_t t2,
                                           StageTimings* timings) {
  XPairDecision decision;
  for (PipelineStage stage : plan_.stages()) {
    Clock::time_point start = Clock::now();
    switch (stage) {
      case PipelineStage::kMatch:
        FillScores(t1, t2);
        timings->match_seconds += Elapsed(start);
        break;
      case PipelineStage::kCombine:
        // Fused into kMatch: the clock read would only measure itself.
        break;
      case PipelineStage::kDerive:
        decision.similarity = plan_.RunDeriveStage(scores_);
        timings->derive_seconds += Elapsed(start);
        break;
      case PipelineStage::kClassify:
        decision.match_class = plan_.RunClassifyStage(decision.similarity);
        timings->classify_seconds += Elapsed(start);
        break;
    }
  }
  return decision;
}

}  // namespace pdd
