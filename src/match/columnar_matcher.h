// ColumnarMatcher: decides candidate pairs over a RelationArena using
// the plan's columnar kernels — the batched replacement for the
// per-pair TupleMatcher virtual-call path in the match hot loop.
//
// One matcher instance is per-worker mutable scratch (its SimScratch,
// score grid and comparison-vector buffers are reused across pairs and
// never reallocate after warmup); the plan and arena it reads are
// shared and immutable. The executor constructs one matcher per worker
// thread / per shard worker.
//
// Bit-identity contract: Decide(i, j) returns exactly what
// plan.DecidePair(rel.xtuple(i), rel.xtuple(j)) returns, bit for bit.
// That holds because
//   * the arena stores the expanded alternatives in the order
//     Value::Expanded produces (the same expansion MatchAttribute does
//     per pair),
//   * the per-value loop replicates ExpectedSimilarity's accumulation
//     order (outer a-alternatives, inner b-alternatives, then the
//     ⊥·⊥ term),
//   * each kernel is bit-identical to its registry comparator, and
//   * the weighted-sum fast path replicates
//     WeightedSumCombination::Combine's flat loop (same order, same
//     arithmetic); other φ implementations go through the same
//     Combine virtual call the scalar path uses.
//
// DecideTimed walks the plan's stage graph like the executor's timed
// scalar path, but the columnar match stage computes φ inline while
// the comparison values are hot (fusing match + combine), so the fused
// cost is billed to match_seconds and combine_seconds stays 0 on the
// columnar path.

#ifndef PDD_MATCH_COLUMNAR_MATCHER_H_
#define PDD_MATCH_COLUMNAR_MATCHER_H_

#include <vector>

#include "columnar/relation_arena.h"
#include "derive/xtuple_decision_model.h"
#include "pipeline/detection_plan.h"
#include "pipeline/detection_result.h"
#include "sim/columnar_kernels.h"
#include "sim/sim_scratch.h"

namespace pdd {

class ColumnarMatcher {
 public:
  /// `plan` must have use_columnar_kernels(); both referents must
  /// outlive the matcher.
  ColumnarMatcher(const DetectionPlan& plan, const RelationArena& arena);

  /// Decides the pair of arena tuples (t1, t2); bit-identical to
  /// plan.DecidePair on the corresponding x-tuples.
  XPairDecision Decide(size_t t1, size_t t2);

  /// Decide with per-stage wall times accumulated into `timings`
  /// (match_seconds carries the fused match+combine cost).
  XPairDecision DecideTimed(size_t t1, size_t t2, StageTimings* timings);

  /// The arena this matcher decides over (precomputed tuple digests
  /// for the executor's cache path live here).
  const RelationArena& arena() const { return arena_; }

 private:
  /// Fused match+combine: fills scores_ for the pair.
  void FillScores(size_t t1, size_t t2);

  /// ExpectedSimilarity of two arena values under `kernel` (Eq. 5),
  /// replicated term for term.
  double MatchValue(ColumnarKernelFn kernel, size_t v1, size_t v2);

  const DetectionPlan& plan_;
  const RelationArena& arena_;
  /// Non-null iff φ is a weighted sum (the fast fused-combine path).
  const std::vector<double>* weights_ = nullptr;
  SimScratch scratch_;
  AlternativePairScores scores_;
  std::vector<double> c_;  // comparison-vector buffer, arity entries
};

}  // namespace pdd

#endif  // PDD_MATCH_COLUMNAR_MATCHER_H_
