#include "match/comparison_matrix.h"

namespace pdd {

std::string ComparisonMatrix::ToString() const {
  std::string out;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out += "(";
      out += std::to_string(i + 1);
      out += ",";
      out += std::to_string(j + 1);
      out += "): ";
      out += at(i, j).ToString();
      out += "\n";
    }
  }
  return out;
}

}  // namespace pdd
