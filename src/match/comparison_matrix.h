// Comparison matrices for x-tuple pairs (Section IV-B, Fig. 6 input):
// for x-tuples with k and l alternatives, a k×l grid of comparison vectors.

#ifndef PDD_MATCH_COMPARISON_MATRIX_H_
#define PDD_MATCH_COMPARISON_MATRIX_H_

#include <string>
#include <vector>

#include "match/comparison_vector.h"

namespace pdd {

/// A k×l matrix of comparison vectors, one per alternative tuple pair.
class ComparisonMatrix {
 public:
  ComparisonMatrix() = default;

  /// Constructs a k×l matrix of empty vectors.
  ComparisonMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), cells_(rows * cols) {}

  /// Number of alternatives of the first x-tuple (k).
  size_t rows() const { return rows_; }

  /// Number of alternatives of the second x-tuple (l).
  size_t cols() const { return cols_; }

  /// The comparison vector of alternative pair (i, j).
  const ComparisonVector& at(size_t i, size_t j) const {
    return cells_[i * cols_ + j];
  }
  ComparisonVector& at(size_t i, size_t j) { return cells_[i * cols_ + j]; }

  /// Multi-line rendering for diagnostics.
  std::string ToString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<ComparisonVector> cells_;
};

}  // namespace pdd

#endif  // PDD_MATCH_COMPARISON_MATRIX_H_
