#include "match/comparison_vector.h"

#include "pdb/value.h"
#include "util/string_util.h"

namespace pdd {

Status ComparisonVector::Validate() const {
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] < -kProbEpsilon || values_[i] > 1.0 + kProbEpsilon) {
      return Status::OutOfRange("comparison vector component " +
                                std::to_string(i) + " = " +
                                FormatDouble(values_[i]) +
                                " outside [0, 1]");
    }
  }
  return Status::OK();
}

std::string ComparisonVector::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(values_[i], 4);
  }
  return out + "]";
}

}  // namespace pdd
