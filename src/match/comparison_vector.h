// Comparison vectors c⃗ = [c1, ..., cn] (Section III-C): one normalized
// similarity per attribute of a tuple pair.

#ifndef PDD_MATCH_COMPARISON_VECTOR_H_
#define PDD_MATCH_COMPARISON_VECTOR_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace pdd {

/// The per-attribute similarity vector of one tuple pair.
class ComparisonVector {
 public:
  ComparisonVector() = default;

  /// Constructs from per-attribute similarities (each expected in [0, 1]).
  explicit ComparisonVector(std::vector<double> values)
      : values_(std::move(values)) {}

  /// Number of attributes.
  size_t size() const { return values_.size(); }

  /// Similarity of attribute `i`.
  double operator[](size_t i) const { return values_[i]; }

  /// All similarities, attribute order.
  const std::vector<double>& values() const { return values_; }

  /// Verifies every component lies in [0, 1].
  Status Validate() const;

  /// "[0.9, 0.59]" rendering.
  std::string ToString() const;

 private:
  std::vector<double> values_;
};

}  // namespace pdd

#endif  // PDD_MATCH_COMPARISON_VECTOR_H_
