#include "match/tuple_matcher.h"

#include <cassert>

namespace pdd {

TupleMatcher::TupleMatcher(Schema schema,
                           std::vector<const Comparator*> comparators)
    : schema_(std::move(schema)), comparators_(std::move(comparators)) {
  assert(comparators_.size() == schema_.arity());
}

Result<TupleMatcher> TupleMatcher::Make(
    Schema schema, std::vector<const Comparator*> comparators) {
  if (comparators.size() != schema.arity()) {
    return Status::InvalidArgument(
        "comparator count " + std::to_string(comparators.size()) +
        " does not match schema arity " + std::to_string(schema.arity()));
  }
  for (const Comparator* cmp : comparators) {
    if (cmp == nullptr) {
      return Status::InvalidArgument("null comparator");
    }
  }
  return TupleMatcher(std::move(schema), std::move(comparators));
}

double TupleMatcher::MatchAttribute(size_t attr, const Value& a,
                                    const Value& b) const {
  const std::vector<std::string>& vocab = schema_.attribute(attr).vocabulary;
  const Value& ea = a.has_pattern() ? a.Expanded(vocab) : a;
  const Value& eb = b.has_pattern() ? b.Expanded(vocab) : b;
  return ExpectedSimilarity(ea, eb, *comparators_[attr]);
}

ComparisonVector TupleMatcher::Compare(const Tuple& a, const Tuple& b) const {
  std::vector<double> c(schema_.arity());
  for (size_t i = 0; i < schema_.arity(); ++i) {
    c[i] = MatchAttribute(i, a.value(i), b.value(i));
  }
  return ComparisonVector(std::move(c));
}

ComparisonVector TupleMatcher::CompareAlternatives(const AltTuple& a,
                                                   const AltTuple& b) const {
  std::vector<double> c(schema_.arity());
  for (size_t i = 0; i < schema_.arity(); ++i) {
    c[i] = MatchAttribute(i, a.values[i], b.values[i]);
  }
  return ComparisonVector(std::move(c));
}

ComparisonMatrix TupleMatcher::CompareXTuples(const XTuple& a,
                                              const XTuple& b) const {
  ComparisonMatrix matrix(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      matrix.at(i, j) = CompareAlternatives(a.alternative(i),
                                            b.alternative(j));
    }
  }
  return matrix;
}

}  // namespace pdd
