// Tuple-level attribute value matching: builds comparison vectors for
// tuple pairs (Section IV-A) and comparison matrices for x-tuple pairs
// (Section IV-B). Pattern values are expanded against the schema's
// attribute vocabularies before matching.

#ifndef PDD_MATCH_TUPLE_MATCHER_H_
#define PDD_MATCH_TUPLE_MATCHER_H_

#include <vector>

#include "match/attribute_matcher.h"
#include "match/comparison_matrix.h"
#include "match/comparison_vector.h"
#include "pdb/relation.h"
#include "pdb/schema.h"
#include "pdb/xtuple.h"
#include "sim/comparator.h"
#include "util/status.h"

namespace pdd {

/// Computes comparison vectors/matrices with one comparator per attribute.
class TupleMatcher {
 public:
  /// `comparators` holds one non-null comparator per schema attribute and
  /// must outlive the matcher (registry comparators have static storage).
  TupleMatcher(Schema schema, std::vector<const Comparator*> comparators);

  /// Validated construction; fails when the comparator count does not
  /// match the schema arity or a comparator is null.
  static Result<TupleMatcher> Make(Schema schema,
                                   std::vector<const Comparator*> comparators);

  /// The schema attribute values are matched under.
  const Schema& schema() const { return schema_; }

  /// Eq. 5 similarity of attribute `attr` of two values, with pattern
  /// expansion against the attribute's vocabulary.
  double MatchAttribute(size_t attr, const Value& a, const Value& b) const;

  /// Comparison vector of two tuples of the dependency-free model.
  ComparisonVector Compare(const Tuple& a, const Tuple& b) const;

  /// Comparison vector of two alternative tuples (their values may still
  /// be probabilistic, Fig. 5's 'mu*'; Section IV-A formulas apply).
  ComparisonVector CompareAlternatives(const AltTuple& a,
                                       const AltTuple& b) const;

  /// k×l comparison matrix of an x-tuple pair (Fig. 6 input).
  ComparisonMatrix CompareXTuples(const XTuple& a, const XTuple& b) const;

 private:
  Schema schema_;
  std::vector<const Comparator*> comparators_;
};

}  // namespace pdd

#endif  // PDD_MATCH_TUPLE_MATCHER_H_
