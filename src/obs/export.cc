#include "obs/export.h"

#include <array>

#include "cache/decision_cache.h"
#include "obs/json.h"
#include "pipeline/detection_result.h"
#include "util/string_util.h"

namespace pdd {

namespace {

/// Uniform filter over metric names: the full export keeps everything,
/// the identity export keeps only the identity namespace.
using NameFilter = bool (*)(std::string_view);

bool KeepAll(std::string_view) { return true; }

void AppendHistogramJson(const std::string& indent, const LogHistogram& h,
                         std::string* out) {
  *out += "{\n";
  const std::string inner = indent + "  ";
  *out += inner + "\"count\": " + std::to_string(h.count()) + ",\n";
  *out += inner + "\"max\": " + std::to_string(h.max()) + ",\n";
  *out += inner + "\"min\": " + std::to_string(h.min()) + ",\n";
  *out += inner + "\"p50\": " + std::to_string(h.Quantile(0.50)) + ",\n";
  *out += inner + "\"p95\": " + std::to_string(h.Quantile(0.95)) + ",\n";
  *out += inner + "\"p99\": " + std::to_string(h.Quantile(0.99)) + ",\n";
  *out += inner + "\"sum\": " + std::to_string(h.sum()) + ",\n";
  *out += inner + "\"buckets\": [";
  bool first = true;
  for (size_t i = 0; i < LogHistogram::kBucketCount; ++i) {
    if (h.buckets()[i] == 0) continue;
    if (!first) *out += ", ";
    first = false;
    *out += "[" + std::to_string(LogHistogram::BucketUpperBound(i)) + ", " +
            std::to_string(h.buckets()[i]) + "]";
  }
  *out += "]\n" + indent + "}";
}

void AppendSpanJson(const std::string& indent, const TelemetrySpan& span,
                    std::string* out) {
  *out += "{\n";
  const std::string inner = indent + "  ";
  *out += inner + "\"name\": " + JsonQuote(span.name) + ",\n";
  *out += inner + "\"seconds\": " + JsonNumber(span.seconds) + ",\n";
  *out += inner + "\"counts\": {";
  bool first = true;
  for (const auto& [name, value] : span.counts) {
    *out += first ? "\n" : ",\n";
    first = false;
    *out += inner + "  " + JsonQuote(name) + ": " + std::to_string(value);
  }
  *out += first ? "},\n" : "\n" + inner + "},\n";
  *out += inner + "\"children\": [";
  first = true;
  for (const TelemetrySpan& child : span.children) {
    *out += first ? "\n" : ",\n";
    first = false;
    *out += inner + "  ";
    AppendSpanJson(inner + "  ", child, out);
  }
  *out += first ? "]\n" : "\n" + inner + "]\n";
  *out += indent + "}";
}

std::string ToJsonFiltered(const RunTelemetry& telemetry, NameFilter keep,
                           bool include_spans) {
  const MetricsRegistry& m = telemetry.metrics;
  std::string out = "{\n";
  out += "  \"schema\": " +
         JsonQuote(RunTelemetry::kSchemaVersion) + ",\n";

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : m.counters()) {
    if (!keep(name)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonQuote(name) + ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : m.gauges()) {
    if (!keep(name)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonQuote(name) + ": " + JsonNumber(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : m.histograms()) {
    if (!keep(name)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonQuote(name) + ": ";
    AppendHistogramJson("    ", histogram, &out);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"info\": {";
  first = true;
  for (const auto& [name, value] : m.infos()) {
    if (!keep(name)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonQuote(name) + ": " + JsonQuote(value);
  }
  out += first ? "}" : "\n  }";

  if (include_spans) {
    out += ",\n  \"spans\": [\n    ";
    AppendSpanJson("    ", telemetry.root, &out);
    out += "\n  ]\n";
  } else {
    out += "\n";
  }
  out += "}\n";
  return out;
}

std::string PrometheusName(std::string_view name) {
  std::string out = "pdd_";
  for (char c : name) {
    bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9');
    out += alnum ? c : '_';
  }
  return out;
}

}  // namespace

std::string TelemetryToJson(const RunTelemetry& telemetry) {
  return ToJsonFiltered(telemetry, KeepAll, /*include_spans=*/true);
}

std::string IdentityMetricsJson(const RunTelemetry& telemetry) {
  return ToJsonFiltered(telemetry, IsIdentityMetricName,
                        /*include_spans=*/false);
}

std::string TelemetryToPrometheus(const RunTelemetry& telemetry) {
  const MetricsRegistry& m = telemetry.metrics;
  std::string out = "# " + std::string(RunTelemetry::kSchemaVersion) + "\n";
  for (const auto& [name, value] : m.counters()) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : m.gauges()) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + JsonNumber(value) + "\n";
  }
  for (const auto& [name, histogram] : m.histograms()) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < LogHistogram::kBucketCount; ++i) {
      if (histogram.buckets()[i] == 0) continue;
      cumulative += histogram.buckets()[i];
      out += prom + "_bucket{le=\"" +
             std::to_string(LogHistogram::BucketUpperBound(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(histogram.count()) +
           "\n";
    out += prom + "_sum " + std::to_string(histogram.sum()) + "\n";
    out += prom + "_count " + std::to_string(histogram.count()) + "\n";
  }
  for (const auto& [name, value] : m.infos()) {
    out += "pdd_info{name=\"" + name + "\",value=\"" + value + "\"} 1\n";
  }
  return out;
}

namespace {

Result<TelemetrySpan> SpanFromJson(const JsonValue& value) {
  if (!value.IsObject()) {
    return Status::InvalidArgument("telemetry: span is not an object");
  }
  TelemetrySpan span;
  if (const JsonValue* name = value.Find("name"); name != nullptr) {
    span.name = name->string_value;
  }
  if (const JsonValue* seconds = value.Find("seconds"); seconds != nullptr) {
    span.seconds = seconds->ToDouble();
  }
  if (const JsonValue* counts = value.Find("counts");
      counts != nullptr && counts->IsObject()) {
    for (const auto& [count_name, count] : counts->members) {
      span.counts[count_name] = count.ToUint64();
    }
  }
  if (const JsonValue* children = value.Find("children");
      children != nullptr && children->IsArray()) {
    for (const JsonValue& child : children->elements) {
      PDD_ASSIGN_OR_RETURN(TelemetrySpan parsed, SpanFromJson(child));
      span.children.push_back(std::move(parsed));
    }
  }
  return span;
}

Result<LogHistogram> HistogramFromJson(const JsonValue& value) {
  if (!value.IsObject()) {
    return Status::InvalidArgument("telemetry: histogram is not an object");
  }
  std::array<uint64_t, LogHistogram::kBucketCount> buckets{};
  if (const JsonValue* pairs = value.Find("buckets");
      pairs != nullptr && pairs->IsArray()) {
    for (const JsonValue& pair : pairs->elements) {
      if (!pair.IsArray() || pair.elements.size() != 2) {
        return Status::InvalidArgument("telemetry: malformed bucket pair");
      }
      uint64_t upper = pair.elements[0].ToUint64();
      buckets[LogHistogram::BucketIndex(upper)] +=
          pair.elements[1].ToUint64();
    }
  }
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  if (const JsonValue* v = value.Find("sum"); v != nullptr) {
    sum = v->ToUint64();
  }
  if (const JsonValue* v = value.Find("min"); v != nullptr) {
    min = v->ToUint64();
  }
  if (const JsonValue* v = value.Find("max"); v != nullptr) {
    max = v->ToUint64();
  }
  return LogHistogram::FromState(buckets, sum, min, max);
}

}  // namespace

Result<RunTelemetry> ParseRunTelemetryJson(std::string_view json) {
  PDD_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(json));
  if (!doc.IsObject()) {
    return Status::InvalidArgument("telemetry: document is not an object");
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->IsString() ||
      schema->string_value != RunTelemetry::kSchemaVersion) {
    return Status::InvalidArgument(
        "telemetry: missing or unsupported schema version (want " +
        std::string(RunTelemetry::kSchemaVersion) + ")");
  }
  RunTelemetry telemetry;
  if (const JsonValue* counters = doc.Find("counters");
      counters != nullptr && counters->IsObject()) {
    for (const auto& [name, value] : counters->members) {
      telemetry.metrics.SetCounter(name, value.ToUint64());
    }
  }
  if (const JsonValue* gauges = doc.Find("gauges");
      gauges != nullptr && gauges->IsObject()) {
    for (const auto& [name, value] : gauges->members) {
      telemetry.metrics.SetGauge(name, value.ToDouble());
    }
  }
  if (const JsonValue* histograms = doc.Find("histograms");
      histograms != nullptr && histograms->IsObject()) {
    for (const auto& [name, value] : histograms->members) {
      PDD_ASSIGN_OR_RETURN(LogHistogram histogram, HistogramFromJson(value));
      *telemetry.metrics.MutableHistogram(name) = histogram;
    }
  }
  if (const JsonValue* infos = doc.Find("info");
      infos != nullptr && infos->IsObject()) {
    for (const auto& [name, value] : infos->members) {
      telemetry.metrics.SetInfo(name, value.string_value);
    }
  }
  if (const JsonValue* spans = doc.Find("spans");
      spans != nullptr && spans->IsArray() && !spans->elements.empty()) {
    PDD_ASSIGN_OR_RETURN(telemetry.root, SpanFromJson(spans->elements[0]));
  }
  return telemetry;
}

std::string RenderExecutionStats(const RunTelemetry& telemetry) {
  const MetricsRegistry& m = telemetry.metrics;
  std::string out = "# Execution statistics\n\n";
  // Which match implementation ran — execution detail only; the
  // detection report never mentions it (columnar ≡ scalar bit for bit).
  if (std::string kernel = m.info(kInfoMatchKernel); !kernel.empty()) {
    out += "- match kernel: " + kernel + "\n\n";
  }
  const StageTimings timings = StageTimingsView(telemetry);
  double total = timings.TotalSeconds();
  out += "## Stage timings\n\n";
  if (total > 0.0) {
    out += "| stage | seconds | share |\n|---|---|---|\n";
    const std::pair<const char*, double> rows[] = {
        {"match", timings.match_seconds},
        {"combine", timings.combine_seconds},
        {"derive", timings.derive_seconds},
        {"classify", timings.classify_seconds},
        {"cache lookup", timings.cache_lookup_seconds},
    };
    for (const auto& [name, seconds] : rows) {
      out += std::string("| ") + name + " | " + FormatDouble(seconds, 6) +
             " | " + FormatDouble(100.0 * seconds / total, 1) + "% |\n";
    }
    out += "| total | " + FormatDouble(total, 6) + " | 100.0% |\n";
  } else if (m.info(kInfoTimings) == "collected") {
    // Collected but every stage stayed below clock resolution: a real
    // (tiny) run, not a disabled one.
    out += "(all stages below clock resolution)\n";
  } else {
    // Timing collection was off: 0.000000-second rows would read as
    // "instant stages", so say what actually happened.
    out += "(disabled)\n";
  }
  if (std::optional<CacheRunStats> cache = CacheRunStatsView(telemetry)) {
    out += "\n## Decision cache\n\n";
    out += "- cache: " + std::to_string(cache->hits) + " hits / " +
           std::to_string(cache->lookups) + " lookups (" +
           FormatDouble(cache->HitRate() * 100.0, 1) + "% hit rate), " +
           std::to_string(cache->inserts) + " inserts\n";
    if (m.counters().count("exec.cache.lifetime.hits") > 0) {
      DecisionCacheStats lifetime;
      lifetime.hits = m.counter("exec.cache.lifetime.hits");
      lifetime.misses = m.counter("exec.cache.lifetime.misses");
      lifetime.inserts = m.counter("exec.cache.lifetime.inserts");
      lifetime.evictions = m.counter("exec.cache.lifetime.evictions");
      lifetime.size = m.counter("exec.cache.lifetime.size");
      out += "- cache lifetime: " + lifetime.ToString() + "\n";
    }
  }
  const StreamRunStats stream = StreamRunStatsView(telemetry);
  out += "\n## Candidate stream\n\n";
  out += "- stream: " + std::to_string(m.counter(kMetricCandidatePairs)) +
         " candidates in " + std::to_string(stream.batches) +
         " batches, live high-water " +
         std::to_string(stream.live_candidate_high_water) + " candidates\n";
  // Per-shard drain accounting of a sharded run: each shard's
  // high-water is the live bound a node hosting it must provision for
  // (the top-level high-water above is their sum).
  for (size_t i = 0; i < stream.per_shard.size(); ++i) {
    const StreamRunStats& shard = stream.per_shard[i];
    out += "- shard " + std::to_string(i) + ": " +
           std::to_string(shard.batches) + " batches, live high-water " +
           std::to_string(shard.live_candidate_high_water) + " candidates\n";
  }
  // Standing-ingest runs (pddserve, the RunIncremental adapter with
  // metrics enabled) carry the exec.ingest.* family; batch runs don't.
  if (m.counters().count(kMetricIngestArrivals) > 0) {
    out += "\n## Standing ingest\n\n";
    out += "- arrivals: " + std::to_string(m.counter(kMetricIngestArrivals)) +
           " (" + std::to_string(m.counter(kMetricIngestAdmitted)) +
           " admitted, " + std::to_string(m.counter(kMetricIngestDropped)) +
           " queue drops, " +
           std::to_string(m.counter(kMetricIngestDuplicateIds)) +
           " duplicate ids, " + std::to_string(m.counter(kMetricIngestInvalid)) +
           " invalid, " +
           std::to_string(m.counter(kMetricIngestRejectedCapacity)) +
           " beyond capacity)\n";
    out += "- queue: capacity " +
           std::to_string(m.counter(kMetricIngestQueueCapacity)) +
           ", high-water " +
           std::to_string(static_cast<uint64_t>(
               m.gauge(kGaugeIngestQueueHighWater))) +
           ", final depth " +
           std::to_string(static_cast<uint64_t>(
               m.gauge(kGaugeIngestQueueDepth))) + "\n";
    if (m.counter(kMetricIngestCacheSnapshots) > 0 ||
        m.counter(kMetricIngestIndexBuilds) > 0) {
      out += "- maintenance: " +
             std::to_string(m.counter(kMetricIngestCacheSnapshots)) +
             " cache snapshots, " +
             std::to_string(m.counter(kMetricIngestIndexBuilds)) +
             " index builds\n";
    }
    if (const LogHistogram* lat =
            m.histogram(kMetricIngestAdmitToDecideMicros);
        lat != nullptr && lat->count() > 0) {
      out += "- admit-to-decide latency (us): p50 " +
             std::to_string(lat->Quantile(0.50)) + ", p95 " +
             std::to_string(lat->Quantile(0.95)) + ", p99 " +
             std::to_string(lat->Quantile(0.99)) + ", max " +
             std::to_string(lat->max()) + " over " +
             std::to_string(lat->count()) + " tuples\n";
    }
  }
  return out;
}

std::string RenderStreamDiagnostics(const RunTelemetry& telemetry) {
  const MetricsRegistry& m = telemetry.metrics;
  const StreamRunStats stream = StreamRunStatsView(telemetry);
  std::string out = "candidate stream:";
  if (std::string reduction = m.info("exec.reduction"); !reduction.empty()) {
    out += " reduction " + reduction;
    out += m.info("exec.streaming") == "native" ? " (native streaming)"
                                                : " (materializing adapter)";
    out += ",";
  }
  out += " " + std::to_string(m.counter(kMetricCandidatePairs)) +
         " candidates in " + std::to_string(stream.batches) +
         " batches, live high-water " +
         std::to_string(stream.live_candidate_high_water) + " candidates\n";
  for (size_t i = 0; i < stream.per_shard.size(); ++i) {
    const StreamRunStats& shard = stream.per_shard[i];
    out += "  shard " + std::to_string(i) + ": " +
           std::to_string(shard.batches) + " batches, live high-water " +
           std::to_string(shard.live_candidate_high_water) + " candidates\n";
  }
  return out;
}

std::string RenderIndexStats(const RunTelemetry& telemetry) {
  const MetricsRegistry& m = telemetry.metrics;
  std::string out;
  if (m.counter("exec.index.records") != 0 ||
      m.counter("exec.index.bytes") != 0) {
    out += "decision index: " + std::to_string(m.counter("exec.index.records")) +
           " records, " + std::to_string(m.counter("exec.index.pairs")) +
           " pairs, " + std::to_string(m.counter("exec.index.clusters")) +
           " clusters, " + std::to_string(m.counter("exec.index.bytes")) +
           " bytes (" + FormatDouble(m.gauge("exec.index.bytes_per_pair"), 2) +
           " bytes/pair)\n";
  }
  if (double seconds = m.gauge("time.index.build_seconds"); seconds > 0.0) {
    out += "  build: " + FormatDouble(seconds, 4) + " s\n";
  }
  if (double rate = m.gauge("time.index.point_queries_per_sec"); rate > 0.0) {
    out += "  point queries: " +
           std::to_string(m.counter("exec.index.point_queries")) + " at " +
           FormatDouble(rate / 1e6, 2) + " M/s\n";
  }
  if (double rate = m.gauge("time.index.membership_queries_per_sec");
      rate > 0.0) {
    out += "  membership queries: " +
           std::to_string(m.counter("exec.index.membership_queries")) +
           " at " + FormatDouble(rate / 1e6, 2) + " M/s\n";
  }
  return out;
}

}  // namespace pdd
