// Telemetry exporters: every machine- and human-readable rendering of
// a RunTelemetry lives here, so there is exactly one code path per
// format and all of them iterate the registry's sorted maps — no
// export ever observes unordered iteration (pddlint's rule holds with
// zero allowlist entries).
//
//   TelemetryToJson         schema-versioned JSON sidecar (sorted
//                           keys; superseded bench_util.h's ad-hoc
//                           BenchJsonWriter format — bench sidecars
//                           and `pddcli --metrics` emit this schema)
//   IdentityMetricsJson     the identity subset only (no time.*/
//                           exec.*, no spans): the byte-comparable
//                           form the determinism gates diff
//   TelemetryToPrometheus   Prometheus text exposition
//   ParseRunTelemetryJson   reads TelemetryToJson output back
//                           (round-trip tests, sidecar tooling)
//   RenderExecutionStats    the Markdown execution-statistics report
//                           (ExecutionStatsReport renders through it)
//   RenderStreamDiagnostics the `--stream-candidates` stderr block

#ifndef PDD_OBS_EXPORT_H_
#define PDD_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/run_telemetry.h"
#include "util/status.h"

namespace pdd {

/// Schema-versioned JSON export: `schema`, `counters`, `gauges`,
/// `histograms` (count/sum/min/max, bucket-resolution p50/p95/p99 and
/// the non-empty [upper_bound, count] buckets), `info` and the nested
/// `spans` tree. Every object level is emitted in sorted key order;
/// spans keep their (deterministic) insertion order.
std::string TelemetryToJson(const RunTelemetry& telemetry);

/// The identity-namespace subset of TelemetryToJson (drops every
/// time.* / exec.* metric and all spans). Byte-identical across
/// serial/pooled/sharded/cached runs of the same plan + input.
std::string IdentityMetricsJson(const RunTelemetry& telemetry);

/// Prometheus text exposition: counters, gauges, cumulative histogram
/// buckets (+Inf included) with _sum/_count, and infos as
/// `pdd_info{name=...,value=...} 1` series. Metric names are
/// dot→underscore sanitized and prefixed `pdd_`.
std::string TelemetryToPrometheus(const RunTelemetry& telemetry);

/// Parses TelemetryToJson output back into a RunTelemetry. Rejects
/// unknown schema versions.
Result<RunTelemetry> ParseRunTelemetryJson(std::string_view json);

/// The Markdown execution-statistics report: match kernel, stage
/// timing table ("(disabled)" when the run collected no timings),
/// decision-cache run and lifetime counters, candidate-stream drain
/// accounting with per-shard lines.
std::string RenderExecutionStats(const RunTelemetry& telemetry);

/// The candidate-streaming stderr diagnostics (reduction name, native
/// vs adapter, batches, live high-water, per-shard lines). Reads the
/// exec.reduction / exec.streaming infos when present.
std::string RenderStreamDiagnostics(const RunTelemetry& telemetry);

/// The decision-index diagnostics block (`pddquery` / `pddcli
/// index-build` stderr): records/pairs/clusters/bytes from the
/// `exec.index.*` counters, bytes/pair, build seconds and — when a
/// query sweep ran — point/membership query rates from the
/// `time.index.*` gauges. Renders only what is present, so build-only
/// and query-only registries both produce a coherent block.
std::string RenderIndexStats(const RunTelemetry& telemetry);

}  // namespace pdd

#endif  // PDD_OBS_EXPORT_H_
