#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pdd {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    PDD_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (ConsumeLiteral("true")) {
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.bool_value = true;
      return value;
    }
    if (ConsumeLiteral("false")) {
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.bool_value = false;
      return value;
    }
    if (ConsumeLiteral("null")) {
      JsonValue value;
      value.kind = JsonValue::Kind::kNull;
      return value;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    while (true) {
      SkipWhitespace();
      PDD_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      PDD_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.members.emplace_back(std::move(key.string_value),
                                 std::move(member));
      SkipWhitespace();
      if (Consume('}')) return value;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    while (true) {
      PDD_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.elements.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return value;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Error("expected string");
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    std::string& out = value.string_value;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("malformed \\u escape");
            }
          }
          // The exporters only emit \u00XX for control bytes; decode
          // the Latin-1 range and reject the rest rather than silently
          // mangling astral-plane input.
          if (code > 0xFF) return Error("\\u escape beyond exporter subset");
          out += static_cast<char>(code);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ == start) return Error("malformed number");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number_token = std::string(text_.substr(start, pos_ - start));
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::ToDouble() const {
  if (kind != Kind::kNumber) return 0.0;
  return std::strtod(number_token.c_str(), nullptr);
}

uint64_t JsonValue::ToUint64() const {
  if (kind != Kind::kNumber) return 0;
  return std::strtoull(number_token.c_str(), nullptr, 10);
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonQuote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  // Shortest precision that round-trips this exact double: identity
  // gauges (if any) must export bit-stably, and %.17g everywhere would
  // bloat the common short values (0.5, 100).
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace pdd
