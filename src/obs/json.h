// Minimal JSON support for the telemetry subsystem: escaping for the
// writers and a small recursive-descent parser for reading telemetry
// sidecars back (the span-nesting round-trip test, future tooling that
// consumes its own exports). Not a general-purpose JSON library — it
// covers the subset the exporters emit (objects, arrays, strings,
// numbers, booleans, null) with two deliberate properties:
//
//   * object member order is preserved (the exporters write sorted
//     keys; the parser must not re-order or the round-trip test would
//     prove nothing), and
//   * number tokens are kept verbatim, so a uint64 counter above 2^53
//     survives a parse → re-export cycle without drifting through a
//     double.

#ifndef PDD_OBS_JSON_H_
#define PDD_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace pdd {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  /// Verbatim number token ("42", "1.5e-3") — parse on demand.
  std::string number_token;
  std::string string_value;
  /// Members in document order (the exporters emit sorted keys).
  std::vector<std::pair<std::string, JsonValue>> members;
  std::vector<JsonValue> elements;

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsNumber() const { return kind == Kind::kNumber; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Number accessors; 0 on kind mismatch or malformed token.
  double ToDouble() const;
  uint64_t ToUint64() const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
Result<JsonValue> ParseJson(std::string_view text);

/// Double-quoted JSON string literal of `s` (escapes quotes,
/// backslashes and control characters).
std::string JsonQuote(std::string_view s);

/// Shortest decimal form of `value` that parses back bit-identically
/// (%.17g fallback); "null" for non-finite values, which JSON cannot
/// represent.
std::string JsonNumber(double value);

}  // namespace pdd

#endif  // PDD_OBS_JSON_H_
