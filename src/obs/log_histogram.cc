#include "obs/log_histogram.h"

#include <algorithm>
#include <cmath>

namespace pdd {

size_t LogHistogram::BucketIndex(uint64_t value) {
  size_t width = 0;
  while (value != 0) {
    value >>= 1;
    ++width;
  }
  return width;
}

uint64_t LogHistogram::BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= 64) return UINT64_MAX;
  return (uint64_t{1} << index) - 1;
}

void LogHistogram::RecordN(uint64_t value, uint64_t repeat) {
  if (repeat == 0) return;
  buckets_[BucketIndex(value)] += repeat;
  count_ += repeat;
  sum_ += value * repeat;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

uint64_t LogHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the requested quantile, 1-based: ceil(q * count), clamped
  // into [1, count]. Pure integer walk afterwards — deterministic for
  // any insertion or merge order.
  double scaled = std::ceil(q * static_cast<double>(count_));
  uint64_t rank = scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
  rank = std::min(rank, count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBucketCount - 1);
}

LogHistogram LogHistogram::FromState(
    const std::array<uint64_t, kBucketCount>& bucket_counts, uint64_t sum,
    uint64_t min, uint64_t max) {
  LogHistogram out;
  out.buckets_ = bucket_counts;
  out.count_ = 0;
  for (uint64_t c : bucket_counts) out.count_ += c;
  out.sum_ = sum;
  out.min_ = out.count_ == 0 ? UINT64_MAX : min;
  out.max_ = max;
  return out;
}

}  // namespace pdd
