// LogHistogram: a log2-bucketed histogram over unsigned 64-bit values
// with exact, deterministic counts. The bucket layout is fixed (bucket
// 0 holds the value 0, bucket i >= 1 holds [2^(i-1), 2^i - 1]), so two
// histograms fed the same multiset of values are equal member for
// member regardless of insertion order, thread interleaving or merge
// grouping — the property the telemetry identity gate relies on.
//
// Quantile extraction (p50/p95/p99) is bucket-resolution: it returns
// the inclusive upper bound of the bucket containing the requested
// rank, a deterministic function of the counts alone. Exact sum, min
// and max ride along for averages and range reporting.
//
// Latency recordings conventionally use microseconds (the telemetry
// namespace doc in metrics_registry.h), but the histogram itself is
// unit-agnostic.

#ifndef PDD_OBS_LOG_HISTOGRAM_H_
#define PDD_OBS_LOG_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace pdd {

class LogHistogram {
 public:
  /// Bucket 0 plus one bucket per bit width 1..64.
  static constexpr size_t kBucketCount = 65;

  /// The bucket holding `value`: 0 for 0, else the value's bit width.
  static size_t BucketIndex(uint64_t value);

  /// Inclusive upper bound of bucket `index` (0, 1, 3, 7, ..., 2^63-1,
  /// UINT64_MAX).
  static uint64_t BucketUpperBound(size_t index);

  void Record(uint64_t value) { RecordN(value, 1); }
  void RecordN(uint64_t value, uint64_t repeat);

  /// Element-wise accumulation; merging in any grouping or order yields
  /// the same state as recording every value into one histogram.
  void Merge(const LogHistogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// Smallest / largest recorded value; 0 when empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  /// Exact mean rounded down; 0 when empty.
  uint64_t MeanFloor() const { return count_ == 0 ? 0 : sum_ / count_; }

  /// Upper bound of the bucket containing rank ceil(q * count) (clamped
  /// to [1, count]); 0 when empty. q outside [0, 1] is clamped.
  uint64_t Quantile(double q) const;

  const std::array<uint64_t, kBucketCount>& buckets() const {
    return buckets_;
  }

  bool operator==(const LogHistogram& other) const {
    return buckets_ == other.buckets_ && count_ == other.count_ &&
           sum_ == other.sum_ && min() == other.min() && max_ == other.max_;
  }
  bool operator!=(const LogHistogram& other) const {
    return !(*this == other);
  }

  /// Rebuilds a histogram from exported state (telemetry JSON
  /// round-trip). `bucket_counts` must have kBucketCount entries; count
  /// is derived from them.
  static LogHistogram FromState(
      const std::array<uint64_t, kBucketCount>& bucket_counts, uint64_t sum,
      uint64_t min, uint64_t max);

 private:
  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace pdd

#endif  // PDD_OBS_LOG_HISTOGRAM_H_
