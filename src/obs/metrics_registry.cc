#include "obs/metrics_registry.h"

#include <utility>

#include "util/string_util.h"

namespace pdd {

bool IsIdentityMetricName(std::string_view name) {
  return !StartsWith(name, kTimingNamespace) &&
         !StartsWith(name, kExecNamespace);
}

void MetricsRegistry::AddCounter(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::SetCounter(const std::string& name, uint64_t value) {
  counters_[name] = value;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::SetInfo(const std::string& name, std::string value) {
  infos_[name] = std::move(value);
}

void MetricsRegistry::Observe(const std::string& name, uint64_t value) {
  histograms_[name].Record(value);
}

LogHistogram* MetricsRegistry::MutableHistogram(const std::string& name) {
  return &histograms_[name];
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::string MetricsRegistry::info(const std::string& name) const {
  auto it = infos_.find(name);
  return it == infos_.end() ? std::string() : it->second;
}

const LogHistogram* MetricsRegistry::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, value] : other.infos_) infos_[name] = value;
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].Merge(histogram);
  }
}

}  // namespace pdd
