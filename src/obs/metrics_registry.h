// MetricsRegistry: the one queryable telemetry surface of a detection
// run. Four metric kinds, all stored in sorted (std::map) order so
// every export path iterates deterministically:
//
//   counters    monotonically accumulated uint64 event counts
//   gauges      last-written double readings
//   infos       string-valued annotations (kernel name, fingerprints)
//   histograms  log2-bucketed value distributions (obs/log_histogram.h)
//
// Namespace discipline (metric names are dotted paths):
//
//   time.*      timing-derived: wall-clock seconds, latency histograms.
//               Nondeterministic by nature — NEVER identity-gated.
//   exec.*      execution-shape diagnostics: batch/worker/shard counts,
//               cache hit/miss traffic, live high-water marks. These
//               are honest counts, but they legitimately vary across
//               placement knobs (worker count, shard count, batch
//               size, cache warmth) and — for the pooled high-water —
//               across runs, so they are excluded from identity gating
//               alongside time.*.
//   (rest)      identity metrics: counts and annotations that must be
//               bit-identical across serial/pooled/sharded/cached runs
//               of the same plan and input (pairs examined, decisions
//               per class, the similarity distribution, the plan
//               fingerprint). The obs_test ctest and the CI metrics
//               smoke gate exactly this subset.
//
// Merge() is order-insensitive for counters and histograms (element-
// wise addition), which is what lets per-worker registries collapse
// into one deterministic run registry.

#ifndef PDD_OBS_METRICS_REGISTRY_H_
#define PDD_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/log_histogram.h"

namespace pdd {

/// Prefix of timing-derived (always nondeterministic) metrics.
inline constexpr std::string_view kTimingNamespace = "time.";
/// Prefix of execution-shape metrics (vary across placement knobs).
inline constexpr std::string_view kExecNamespace = "exec.";

/// Whether `name` belongs to the identity subset (neither time.* nor
/// exec.*): the metrics gated bit-identical across run shapes.
bool IsIdentityMetricName(std::string_view name);

class MetricsRegistry {
 public:
  // --- writers ------------------------------------------------------

  /// Adds `delta` to the counter `name` (created at 0).
  void AddCounter(const std::string& name, uint64_t delta = 1);
  /// Sets the counter `name` to an absolute value.
  void SetCounter(const std::string& name, uint64_t value);
  void SetGauge(const std::string& name, double value);
  void SetInfo(const std::string& name, std::string value);
  /// Records `value` into the histogram `name` (created empty).
  void Observe(const std::string& name, uint64_t value);
  /// The histogram `name`, created empty if absent (bulk recording,
  /// state restore).
  LogHistogram* MutableHistogram(const std::string& name);

  // --- readers ------------------------------------------------------

  /// Counter value, 0 when absent.
  uint64_t counter(const std::string& name) const;
  /// Gauge value, 0.0 when absent.
  double gauge(const std::string& name) const;
  /// Info value, "" when absent.
  std::string info(const std::string& name) const;
  /// Histogram, nullptr when absent.
  const LogHistogram* histogram(const std::string& name) const;

  const std::map<std::string, uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, std::string>& infos() const { return infos_; }
  const std::map<std::string, LogHistogram>& histograms() const {
    return histograms_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && infos_.empty() &&
           histograms_.empty();
  }

  /// Accumulates `other`: counters and histograms add element-wise
  /// (order-insensitive), gauges and infos are overwritten by `other`'s
  /// entries (workers must not write conflicting gauges/infos).
  void Merge(const MetricsRegistry& other);

  bool operator==(const MetricsRegistry& other) const {
    return counters_ == other.counters_ && gauges_ == other.gauges_ &&
           infos_ == other.infos_ && histograms_ == other.histograms_;
  }
  bool operator!=(const MetricsRegistry& other) const {
    return !(*this == other);
  }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::string> infos_;
  std::map<std::string, LogHistogram> histograms_;
};

}  // namespace pdd

#endif  // PDD_OBS_METRICS_REGISTRY_H_
