#include "obs/run_telemetry.h"

#include <cmath>

#include "cache/decision_cache.h"
#include "pipeline/detection_result.h"
#include "plan/plan_spec.h"

namespace pdd {

TelemetrySpan* TelemetrySpan::AddChild(std::string child_name) {
  children.emplace_back(std::move(child_name));
  return &children.back();
}

const TelemetrySpan* TelemetrySpan::FindChild(
    std::string_view child_name) const {
  for (const TelemetrySpan& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

TelemetrySpan* TelemetrySpan::FindChild(std::string_view child_name) {
  for (TelemetrySpan& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

const TelemetrySpan* TelemetrySpan::Find(std::string_view path) const {
  const TelemetrySpan* at = this;
  while (!path.empty() && at != nullptr) {
    size_t sep = path.find('/');
    std::string_view head =
        sep == std::string_view::npos ? path : path.substr(0, sep);
    path = sep == std::string_view::npos ? std::string_view()
                                         : path.substr(sep + 1);
    at = at->FindChild(head);
  }
  return at;
}

namespace {

/// Similarity in deterministic integer micro-units. Similarities are
/// bit-identical across run shapes, so the rounded micro value is too.
uint64_t SimilarityMicros(double similarity) {
  if (!(similarity > 0.0)) return 0;
  return static_cast<uint64_t>(std::llround(similarity * 1e6));
}

}  // namespace

RunTelemetry TelemetryFromResult(const DetectionResult& result) {
  RunTelemetry telemetry;
  MetricsRegistry& m = telemetry.metrics;

  // Identity metrics: pure functions of the (deterministic) decisions.
  m.SetCounter(kMetricCandidatePairs, result.candidate_count);
  m.SetCounter(kMetricTotalPairs, result.total_pairs);
  m.SetCounter(kMetricDecisions, result.decisions.size());
  m.SetCounter(kMetricMatches, result.CountClass(MatchClass::kMatch));
  m.SetCounter(kMetricPossibles, result.CountClass(MatchClass::kPossible));
  m.SetCounter(kMetricUnmatches, result.CountClass(MatchClass::kUnmatch));
  LogHistogram* similarity = m.MutableHistogram(kMetricSimilarityMicros);
  for (const PairDecisionRecord& rec : result.decisions) {
    similarity->Record(SimilarityMicros(rec.similarity));
  }
  if (result.plan_fingerprint != 0) {
    m.SetInfo(kInfoPlanFingerprint, FingerprintHex(result.plan_fingerprint));
  }

  // Execution-shape metrics.
  m.SetCounter(kMetricStreamBatches, result.stream_stats.batches);
  m.SetCounter(kMetricStreamHighWater,
               result.stream_stats.live_candidate_high_water);
  m.SetCounter(kMetricStreamShards, result.stream_stats.per_shard.size());
  if (result.cache_stats.has_value()) {
    m.SetCounter(kMetricCacheAttached, 1);
    m.SetCounter(kMetricCacheLookups, result.cache_stats->lookups);
    m.SetCounter(kMetricCacheHits, result.cache_stats->hits);
    m.SetCounter(kMetricCacheMisses, result.cache_stats->misses);
    m.SetCounter(kMetricCacheInserts, result.cache_stats->inserts);
  }
  if (!result.match_kernel.empty()) {
    m.SetInfo(kInfoMatchKernel, result.match_kernel);
  }
  m.SetInfo(kInfoTimings,
            result.stage_timings_collected ? "collected" : "disabled");

  // Timing metrics + stage spans, only for runs that collected them.
  TelemetrySpan* drain = telemetry.root.AddChild("drain");
  if (result.stage_timings_collected) {
    const StageTimings& t = result.stage_timings;
    m.SetGauge(kGaugeMatchSeconds, t.match_seconds);
    m.SetGauge(kGaugeCombineSeconds, t.combine_seconds);
    m.SetGauge(kGaugeDeriveSeconds, t.derive_seconds);
    m.SetGauge(kGaugeClassifySeconds, t.classify_seconds);
    m.SetGauge(kGaugeCacheLookupSeconds, t.cache_lookup_seconds);
    drain->AddChild("stage.match")->seconds = t.match_seconds;
    drain->AddChild("stage.combine")->seconds = t.combine_seconds;
    drain->AddChild("stage.derive")->seconds = t.derive_seconds;
    drain->AddChild("stage.classify")->seconds = t.classify_seconds;
    drain->AddChild("stage.cache_lookup")->seconds = t.cache_lookup_seconds;
  }

  // Per-shard child spans of a sharded drain.
  for (size_t i = 0; i < result.stream_stats.per_shard.size(); ++i) {
    const StreamRunStats& shard = result.stream_stats.per_shard[i];
    TelemetrySpan* span = drain->AddChild("shard." + std::to_string(i));
    span->counts["batches"] = shard.batches;
    span->counts["live_high_water"] = shard.live_candidate_high_water;
  }
  return telemetry;
}

void AddCacheLifetimeStats(const DecisionCacheStats& stats,
                           MetricsRegistry* metrics) {
  metrics->SetCounter("exec.cache.lifetime.hits", stats.hits);
  metrics->SetCounter("exec.cache.lifetime.misses", stats.misses);
  metrics->SetCounter("exec.cache.lifetime.inserts", stats.inserts);
  metrics->SetCounter("exec.cache.lifetime.evictions", stats.evictions);
  metrics->SetCounter("exec.cache.lifetime.size", stats.size);
}

StageTimings StageTimingsView(const RunTelemetry& telemetry) {
  const MetricsRegistry& m = telemetry.metrics;
  StageTimings timings;
  timings.match_seconds = m.gauge(kGaugeMatchSeconds);
  timings.combine_seconds = m.gauge(kGaugeCombineSeconds);
  timings.derive_seconds = m.gauge(kGaugeDeriveSeconds);
  timings.classify_seconds = m.gauge(kGaugeClassifySeconds);
  timings.cache_lookup_seconds = m.gauge(kGaugeCacheLookupSeconds);
  return timings;
}

std::optional<CacheRunStats> CacheRunStatsView(const RunTelemetry& telemetry) {
  const MetricsRegistry& m = telemetry.metrics;
  if (m.counter(kMetricCacheAttached) == 0) return std::nullopt;
  CacheRunStats stats;
  stats.lookups = m.counter(kMetricCacheLookups);
  stats.hits = m.counter(kMetricCacheHits);
  stats.misses = m.counter(kMetricCacheMisses);
  stats.inserts = m.counter(kMetricCacheInserts);
  return stats;
}

StreamRunStats StreamRunStatsView(const RunTelemetry& telemetry) {
  const MetricsRegistry& m = telemetry.metrics;
  StreamRunStats stats;
  stats.batches = m.counter(kMetricStreamBatches);
  stats.live_candidate_high_water = m.counter(kMetricStreamHighWater);
  if (const TelemetrySpan* drain = telemetry.root.FindChild("drain")) {
    for (const TelemetrySpan& child : drain->children) {
      if (child.name.rfind("shard.", 0) != 0) continue;
      StreamRunStats shard;
      auto batches = child.counts.find("batches");
      if (batches != child.counts.end()) shard.batches = batches->second;
      auto high_water = child.counts.find("live_high_water");
      if (high_water != child.counts.end()) {
        shard.live_candidate_high_water = high_water->second;
      }
      stats.per_shard.push_back(std::move(shard));
    }
  }
  return stats;
}

}  // namespace pdd
