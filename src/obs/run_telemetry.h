// RunTelemetry: the unified telemetry of one detection run — a
// MetricsRegistry (the queryable metric surface) plus a tree of stage/
// span records (generate → drain → match/combine/derive/classify, with
// per-worker and per-shard child spans). The StageExecutor builds one
// per run and attaches it to DetectionResult::telemetry; the legacy
// stat structs (StageTimings, CacheRunStats, StreamRunStats) are
// reconstructed from the registry by the *View functions below, so the
// registry is the single source every consumer — ExecutionStatsReport,
// `pddcli --metrics`, the stderr diagnostics, the bench sidecars —
// renders from.
//
// Span seconds and every `time.*` metric are wall-clock-derived and
// therefore nondeterministic; span COUNT fields on worker spans vary
// with thread timing too. Identity gating (obs_test, the CI metrics
// smoke) covers only the registry's identity namespace — see
// metrics_registry.h for the namespace table and export.h for the
// exporters.

#ifndef PDD_OBS_RUN_TELEMETRY_H_
#define PDD_OBS_RUN_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics_registry.h"

namespace pdd {

struct DetectionResult;
struct StageTimings;
struct CacheRunStats;
struct StreamRunStats;
struct DecisionCacheStats;

// Registry metric names (the stable schema surface; see README
// "Observability" for the full table).
//
// Identity namespace — bit-identical across serial/pooled/sharded/
// cached runs of one plan + input:
inline constexpr char kMetricCandidatePairs[] = "pairs.candidates";
inline constexpr char kMetricTotalPairs[] = "pairs.total";
inline constexpr char kMetricDecisions[] = "decisions.total";
inline constexpr char kMetricMatches[] = "decisions.match";
inline constexpr char kMetricPossibles[] = "decisions.possible";
inline constexpr char kMetricUnmatches[] = "decisions.unmatch";
/// Histogram of derived similarities in integer micro-units
/// (round(sim * 1e6)): a deterministic distribution of a
/// deterministic value.
inline constexpr char kMetricSimilarityMicros[] =
    "decisions.similarity_micros";
inline constexpr char kInfoPlanFingerprint[] = "plan.fingerprint";
// Execution-shape namespace — excluded from identity gating:
inline constexpr char kMetricStreamBatches[] = "exec.stream.batches";
inline constexpr char kMetricStreamHighWater[] =
    "exec.stream.live_high_water";
inline constexpr char kMetricStreamShards[] = "exec.stream.shards";
inline constexpr char kMetricCacheAttached[] = "exec.cache.attached";
inline constexpr char kMetricCacheLookups[] = "exec.cache.lookups";
inline constexpr char kMetricCacheHits[] = "exec.cache.hits";
inline constexpr char kMetricCacheMisses[] = "exec.cache.misses";
inline constexpr char kMetricCacheInserts[] = "exec.cache.inserts";
inline constexpr char kInfoMatchKernel[] = "exec.match_kernel";
/// "collected" or "disabled" — whether the run accumulated wall times.
inline constexpr char kInfoTimings[] = "exec.timings";
// Standing-ingest family (recorded by StandingSession / pddserve; see
// README "Standing ingest"). Queue shape and drop accounting are
// execution-shape metrics; the namespace contract keeps the invariant
//   arrivals == admitted + duplicate_ids + invalid + rejected_capacity
//               + dropped + queue_depth
// machine-checkable (tools/telemetry_check.py):
inline constexpr char kMetricIngestArrivals[] = "exec.ingest.arrivals";
/// Tuples admitted into the standing relation (past dedup/validation).
inline constexpr char kMetricIngestAdmitted[] = "exec.ingest.admitted";
/// Rejected at the full (or closed) queue — the backpressure drops.
inline constexpr char kMetricIngestDropped[] = "exec.ingest.dropped";
inline constexpr char kMetricIngestDuplicateIds[] =
    "exec.ingest.duplicate_ids";
inline constexpr char kMetricIngestInvalid[] = "exec.ingest.invalid";
inline constexpr char kMetricIngestRejectedCapacity[] =
    "exec.ingest.rejected_capacity";
inline constexpr char kMetricIngestQueueCapacity[] =
    "exec.ingest.queue_capacity";
inline constexpr char kGaugeIngestQueueDepth[] = "exec.ingest.queue_depth";
inline constexpr char kGaugeIngestQueueHighWater[] =
    "exec.ingest.queue_high_water";
/// Maintenance cadence counters (pddserve).
inline constexpr char kMetricIngestCacheSnapshots[] =
    "exec.ingest.cache_snapshots";
inline constexpr char kMetricIngestIndexBuilds[] =
    "exec.ingest.index_builds";
// Timing namespace — nondeterministic by nature:
inline constexpr char kGaugeMatchSeconds[] = "time.stage.match_seconds";
inline constexpr char kGaugeCombineSeconds[] = "time.stage.combine_seconds";
inline constexpr char kGaugeDeriveSeconds[] = "time.stage.derive_seconds";
inline constexpr char kGaugeClassifySeconds[] =
    "time.stage.classify_seconds";
inline constexpr char kGaugeCacheLookupSeconds[] =
    "time.stage.cache_lookup_seconds";
/// Per-batch decide latency histogram (microseconds), recorded only
/// when stage timings are on.
inline constexpr char kMetricBatchDecideMicros[] =
    "time.batch_decide_micros";
/// Admission-to-decision latency histogram (microseconds): for each
/// admitted tuple, producer push → last crossing pair committed
/// (recorded by pddserve's decision sink).
inline constexpr char kMetricIngestAdmitToDecideMicros[] =
    "time.ingest.admit_to_decide_micros";

/// One node of the span tree. `seconds` is 0 when the run had timing
/// collection off; `counts` carries span-local counters (batches,
/// candidates, live_high_water).
struct TelemetrySpan {
  std::string name;
  double seconds = 0.0;
  std::map<std::string, uint64_t> counts;
  std::vector<TelemetrySpan> children;

  TelemetrySpan() = default;
  explicit TelemetrySpan(std::string span_name) : name(std::move(span_name)) {}

  /// Appends a child and returns it (valid until the next append).
  TelemetrySpan* AddChild(std::string child_name);

  /// First child with `child_name`, nullptr when absent.
  const TelemetrySpan* FindChild(std::string_view child_name) const;
  TelemetrySpan* FindChild(std::string_view child_name);

  /// Descendant lookup by '/'-separated path ("drain/shard.0").
  const TelemetrySpan* Find(std::string_view path) const;

  bool operator==(const TelemetrySpan& other) const {
    return name == other.name && seconds == other.seconds &&
           counts == other.counts && children == other.children;
  }
  bool operator!=(const TelemetrySpan& other) const {
    return !(*this == other);
  }
};

struct RunTelemetry {
  /// Version tag of the exported schema (JSON sidecars, bench
  /// sidecars). Bump when a metric name or the export layout changes
  /// incompatibly.
  static constexpr std::string_view kSchemaVersion = "pdd.telemetry.v1";

  MetricsRegistry metrics;
  TelemetrySpan root{"run"};

  bool operator==(const RunTelemetry& other) const {
    return metrics == other.metrics && root == other.root;
  }
  bool operator!=(const RunTelemetry& other) const {
    return !(*this == other);
  }
};

/// Builds the registry + shard spans from a DetectionResult's stat
/// fields — the bridge for hand-assembled results (executor-produced
/// results carry a richer telemetry with worker/generate spans
/// already attached).
RunTelemetry TelemetryFromResult(const DetectionResult& result);

/// Folds a cache's lifetime counters (DecisionCache::Stats()) into the
/// registry under exec.cache.lifetime.*.
void AddCacheLifetimeStats(const DecisionCacheStats& stats,
                           MetricsRegistry* metrics);

// --- views ----------------------------------------------------------
// The legacy stat structs as pure functions of one RunTelemetry: the
// executor assigns DetectionResult's fields from these, making every
// struct a view over the registry rather than a second bookkeeping
// path.

StageTimings StageTimingsView(const RunTelemetry& telemetry);
/// nullopt when the run had no cache attached.
std::optional<CacheRunStats> CacheRunStatsView(const RunTelemetry& telemetry);
StreamRunStats StreamRunStatsView(const RunTelemetry& telemetry);

}  // namespace pdd

#endif  // PDD_OBS_RUN_TELEMETRY_H_
