#include "pdb/algebra.h"

namespace pdd {

XRelation Select(const XRelation& rel, const AlternativePredicate& predicate,
                 std::string result_name) {
  XRelation out(result_name.empty() ? rel.name() + "_sel" : result_name,
                rel.schema());
  for (const XTuple& t : rel.xtuples()) {
    std::vector<AltTuple> kept;
    for (const AltTuple& alt : t.alternatives()) {
      if (predicate(alt)) kept.push_back(alt);
    }
    if (!kept.empty()) {
      out.AppendUnchecked(XTuple(t.id(), std::move(kept)));
    }
  }
  return out;
}

Result<XRelation> SelectWhereExists(const XRelation& rel,
                                    std::string_view attribute,
                                    std::string result_name) {
  PDD_ASSIGN_OR_RETURN(size_t index, rel.schema().IndexOf(attribute));
  XRelation out(result_name.empty() ? rel.name() + "_exists" : result_name,
                rel.schema());
  for (const XTuple& t : rel.xtuples()) {
    std::vector<AltTuple> kept;
    for (const AltTuple& alt : t.alternatives()) {
      const Value& v = alt.values[index];
      double exists = v.existence_probability();
      if (exists <= kProbEpsilon) continue;  // certainly ⊥ in this branch
      AltTuple copy = alt;
      if (v.null_probability() > kProbEpsilon) {
        // Split the value's worlds: keep only the existing outcomes,
        // conditioned to a full distribution, and scale the alternative
        // by the existence share.
        std::vector<Alternative> existing = v.alternatives();
        for (Alternative& a : existing) a.prob /= exists;
        copy.values[index] = Value::Unchecked(std::move(existing));
        copy.prob = alt.prob * exists;
      }
      kept.push_back(std::move(copy));
    }
    if (!kept.empty()) {
      out.AppendUnchecked(XTuple(t.id(), std::move(kept)));
    }
  }
  return out;
}

namespace {

bool SameValues(const AltTuple& a, const AltTuple& b) {
  if (a.values.size() != b.values.size()) return false;
  for (size_t i = 0; i < a.values.size(); ++i) {
    if (!(a.values[i] == b.values[i])) return false;
  }
  return true;
}

}  // namespace

Result<XRelation> Project(const XRelation& rel,
                          const std::vector<size_t>& attributes,
                          std::string result_name) {
  if (attributes.empty()) {
    return Status::InvalidArgument("projection needs at least one attribute");
  }
  std::vector<AttributeDef> defs;
  for (size_t idx : attributes) {
    if (idx >= rel.schema().arity()) {
      return Status::InvalidArgument("projection index " +
                                     std::to_string(idx) +
                                     " beyond schema arity");
    }
    defs.push_back(rel.schema().attribute(idx));
  }
  PDD_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(defs)));
  XRelation out(result_name.empty() ? rel.name() + "_proj" : result_name,
                schema);
  for (const XTuple& t : rel.xtuples()) {
    std::vector<AltTuple> projected;
    for (const AltTuple& alt : t.alternatives()) {
      AltTuple narrowed;
      narrowed.prob = alt.prob;
      for (size_t idx : attributes) {
        narrowed.values.push_back(alt.values[idx]);
      }
      // Merge with an existing identical alternative.
      bool merged = false;
      for (AltTuple& existing : projected) {
        if (SameValues(existing, narrowed)) {
          existing.prob += narrowed.prob;
          merged = true;
          break;
        }
      }
      if (!merged) projected.push_back(std::move(narrowed));
    }
    out.AppendUnchecked(XTuple(t.id(), std::move(projected)));
  }
  return out;
}

Result<XRelation> ProjectByName(const XRelation& rel,
                                const std::vector<std::string>& names,
                                std::string result_name) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) {
    PDD_ASSIGN_OR_RETURN(size_t idx, rel.schema().IndexOf(name));
    indices.push_back(idx);
  }
  return Project(rel, indices, std::move(result_name));
}

}  // namespace pdd
