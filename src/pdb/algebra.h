// Probabilistic relational algebra over x-relations: selection and
// projection with possible-world semantics.
//
// Selection is where the paper's Section IV membership example comes
// from: a person who is jobless with confidence 90 % belongs to the
// "people having a job" relation with p(t) = 0.1 — selecting on a
// probabilistic predicate prunes alternatives and shrinks the existence
// probability, producing maybe x-tuples from certain ones. Tuple
// membership probabilities "result from the application context".

#ifndef PDD_PDB_ALGEBRA_H_
#define PDD_PDB_ALGEBRA_H_

#include <functional>
#include <string>
#include <vector>

#include "pdb/xrelation.h"
#include "util/status.h"

namespace pdd {

/// Predicate over one alternative tuple (certain within a world).
using AlternativePredicate = std::function<bool(const AltTuple&)>;

/// Selection σ: keeps, within every x-tuple, exactly the alternatives
/// satisfying the predicate. Alternative probabilities are preserved
/// (not renormalized), so the x-tuple's existence probability drops by
/// the discarded mass — the possible-world semantics of filtering.
/// X-tuples losing every alternative disappear.
XRelation Select(const XRelation& rel, const AlternativePredicate& predicate,
                 std::string result_name = "");

/// Convenience selection: the named attribute exists (is not ⊥) in the
/// world. Values with partial ⊥ mass split their mass: the alternative
/// is replaced by one carrying only the existing outcomes, scaled by the
/// existence share (per-value worlds are integrated out).
Result<XRelation> SelectWhereExists(const XRelation& rel,
                                    std::string_view attribute,
                                    std::string result_name = "");

/// Projection π: keeps the given attributes (by index, in the given
/// order). Alternatives of an x-tuple that become value-wise identical
/// merge, their probabilities summing — projection can reduce
/// tuple-level uncertainty.
Result<XRelation> Project(const XRelation& rel,
                          const std::vector<size_t>& attributes,
                          std::string result_name = "");

/// Projection by attribute names.
Result<XRelation> ProjectByName(const XRelation& rel,
                                const std::vector<std::string>& names,
                                std::string result_name = "");

}  // namespace pdd

#endif  // PDD_PDB_ALGEBRA_H_
