#include "pdb/conditioning.h"

namespace pdd {

ConditionedWorlds ConditionOnAllPresent(const std::vector<World>& worlds) {
  ConditionedWorlds out;
  for (const World& w : worlds) {
    if (w.AllPresent()) {
      out.worlds.push_back(w);
      out.event_probability += w.probability;
    }
  }
  if (out.event_probability > 0.0) {
    for (World& w : out.worlds) w.probability /= out.event_probability;
  }
  return out;
}

XTuple ConditionXTuple(const XTuple& xtuple) {
  std::vector<double> conditioned = xtuple.ConditionedProbabilities();
  std::vector<AltTuple> alts = xtuple.alternatives();
  for (size_t i = 0; i < alts.size(); ++i) alts[i].prob = conditioned[i];
  return XTuple(xtuple.id(), std::move(alts));
}

XRelation ConditionXRelation(const XRelation& rel) {
  XRelation out(rel.name(), rel.schema());
  for (const XTuple& t : rel.xtuples()) {
    out.AppendUnchecked(ConditionXTuple(t));
  }
  return out;
}

double PairExistenceProbability(const XTuple& t1, const XTuple& t2) {
  return t1.existence_probability() * t2.existence_probability();
}

}  // namespace pdd
