// Conditioning of probabilistic data on the existence event B
// (Koch & Olteanu [32]; the paper's "scaling"/normalization step).
//
// Duplicate detection compares two tuples under the assumption that both
// belong to their relations; all probabilities are therefore renormalized
// by the existence probabilities (Section IV-B, Fig. 7).

#ifndef PDD_PDB_CONDITIONING_H_
#define PDD_PDB_CONDITIONING_H_

#include <vector>

#include "pdb/possible_worlds.h"
#include "pdb/xrelation.h"

namespace pdd {

/// Result of conditioning a set of worlds on "all tuples present".
struct ConditionedWorlds {
  /// Surviving worlds with renormalized probabilities (sum to 1).
  std::vector<World> worlds;
  /// P(B): total unconditioned mass of the surviving worlds.
  double event_probability = 0.0;
};

/// Removes worlds with absent tuples and renormalizes the rest by P(B)
/// (Fig. 7: worlds I4..I8 are removed; I1..I3 divide by P(B)=0.72).
ConditionedWorlds ConditionOnAllPresent(const std::vector<World>& worlds);

/// Returns an x-tuple whose alternative probabilities are conditioned on
/// existence: p(t_i)/p(t). The result's existence probability is 1.
XTuple ConditionXTuple(const XTuple& xtuple);

/// Conditions every x-tuple of a relation on existence.
XRelation ConditionXRelation(const XRelation& rel);

/// P(B) for a pair of x-tuples: p(t1) * p(t2) (independence across
/// x-tuples; the paper computes 0.9 * 0.8 = 0.72 for (t32, t42)).
double PairExistenceProbability(const XTuple& t1, const XTuple& t2);

}  // namespace pdd

#endif  // PDD_PDB_CONDITIONING_H_
