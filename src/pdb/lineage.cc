#include "pdb/lineage.h"

#include <algorithm>

namespace pdd {

std::string LineageAtom::ToString() const {
  return tuple_id + "/" + std::to_string(alternative + 1);
}

Lineage Lineage::True() { return Lineage(); }

Lineage Lineage::Atom(std::string tuple_id, size_t alternative) {
  Lineage l;
  l.kind_ = Kind::kAtom;
  l.atom_ = {std::move(tuple_id), alternative};
  return l;
}

Lineage Lineage::And(Lineage a, Lineage b) {
  if (a.is_true()) return b;
  if (b.is_true()) return a;
  Lineage l;
  l.kind_ = Kind::kAnd;
  l.left_ = std::make_shared<const Lineage>(std::move(a));
  l.right_ = std::make_shared<const Lineage>(std::move(b));
  return l;
}

Lineage Lineage::Or(Lineage a, Lineage b) {
  Lineage l;
  l.kind_ = Kind::kOr;
  l.left_ = std::make_shared<const Lineage>(std::move(a));
  l.right_ = std::make_shared<const Lineage>(std::move(b));
  return l;
}

Lineage Lineage::Not(Lineage a) {
  Lineage l;
  l.kind_ = Kind::kNot;
  l.left_ = std::make_shared<const Lineage>(std::move(a));
  return l;
}

bool Lineage::Evaluate(
    const std::vector<std::pair<std::string, size_t>>& chosen) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kAtom: {
      for (const auto& [id, alternative] : chosen) {
        if (id == atom_.tuple_id) return alternative == atom_.alternative;
      }
      return false;  // base tuple absent
    }
    case Kind::kAnd:
      return left_->Evaluate(chosen) && right_->Evaluate(chosen);
    case Kind::kOr:
      return left_->Evaluate(chosen) || right_->Evaluate(chosen);
    case Kind::kNot:
      return !left_->Evaluate(chosen);
  }
  return false;
}

std::vector<std::string> Lineage::ReferencedTuples() const {
  std::vector<std::string> out;
  CollectInto(&out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Lineage::CollectInto(std::vector<std::string>* out) const {
  switch (kind_) {
    case Kind::kTrue:
      return;
    case Kind::kAtom:
      out->push_back(atom_.tuple_id);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      left_->CollectInto(out);
      right_->CollectInto(out);
      return;
    case Kind::kNot:
      left_->CollectInto(out);
      return;
  }
}

std::string Lineage::ToString() const {
  // Append-style concatenation (also sidesteps GCC 12's -Wrestrict
  // false positive on operator+ chains, bug 105329).
  std::string out;
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kAtom:
      return atom_.ToString();
    case Kind::kAnd:
    case Kind::kOr:
      out += "(";
      out += left_->ToString();
      out += kind_ == Kind::kAnd ? " ∧ " : " ∨ ";
      out += right_->ToString();
      out += ")";
      return out;
    case Kind::kNot:
      out += "¬";
      out += left_->ToString();
      return out;
  }
  return "?";
}

}  // namespace pdd
