// ULDB-style lineage (Benjelloun et al. [29]; the paper's Section VI):
// boolean derivations over base alternative symbols. Lineage lets a
// probabilistic result relation express dependencies between x-tuple
// sets — e.g. "this merged tuple exists exactly in the worlds where t32
// and t42 were declared duplicates".

#ifndef PDD_PDB_LINEAGE_H_
#define PDD_PDB_LINEAGE_H_

#include <memory>
#include <string>
#include <vector>

namespace pdd {

/// A base symbol: one alternative of one base x-tuple, written
/// "tuple/alternative" ("t32/1").
struct LineageAtom {
  std::string tuple_id;
  size_t alternative = 0;

  bool operator==(const LineageAtom& other) const {
    return tuple_id == other.tuple_id && alternative == other.alternative;
  }
  std::string ToString() const;
};

/// A boolean lineage expression over base alternative symbols.
class Lineage {
 public:
  /// The constant-true lineage (base tuples have it).
  static Lineage True();

  /// A single base symbol.
  static Lineage Atom(std::string tuple_id, size_t alternative);

  /// Conjunction / disjunction / negation.
  static Lineage And(Lineage a, Lineage b);
  static Lineage Or(Lineage a, Lineage b);
  static Lineage Not(Lineage a);

  /// Evaluates the expression given the chosen alternative per base
  /// tuple id (absent id = tuple absent; any referenced atom of an
  /// absent tuple is false).
  bool Evaluate(
      const std::vector<std::pair<std::string, size_t>>& chosen) const;

  /// Collects the distinct tuple ids the expression references.
  std::vector<std::string> ReferencedTuples() const;

  /// Infix rendering, e.g. "(t32/1 ∧ t42/1)".
  std::string ToString() const;

  /// True iff this is the constant-true lineage.
  bool is_true() const { return kind_ == Kind::kTrue; }

 private:
  enum class Kind { kTrue, kAtom, kAnd, kOr, kNot };

  Lineage() = default;

  /// Appends referenced tuple ids (with duplicates) to `out`.
  void CollectInto(std::vector<std::string>* out) const;

  Kind kind_ = Kind::kTrue;
  LineageAtom atom_;
  std::shared_ptr<const Lineage> left_;
  std::shared_ptr<const Lineage> right_;
};

}  // namespace pdd

#endif  // PDD_PDB_LINEAGE_H_
