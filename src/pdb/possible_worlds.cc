#include "pdb/possible_worlds.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>

#include "util/string_util.h"

namespace pdd {

bool World::AllPresent() const {
  return std::none_of(choice.begin(), choice.end(),
                      [](int c) { return c == kAbsent; });
}

namespace {

// Per-x-tuple options: (alternative index or kAbsent, probability),
// restricted to positive-probability options.
struct TupleOptions {
  std::vector<std::pair<int, double>> options;
};

std::vector<TupleOptions> BuildOptions(const XRelation& rel,
                                       bool all_present_only,
                                       bool sort_descending) {
  std::vector<TupleOptions> out(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    const XTuple& t = rel.xtuple(i);
    for (size_t a = 0; a < t.size(); ++a) {
      out[i].options.emplace_back(static_cast<int>(a), t.alternative(a).prob);
    }
    double absent = 1.0 - t.existence_probability();
    if (!all_present_only && absent > kProbEpsilon) {
      out[i].options.emplace_back(kAbsent, absent);
    }
    if (sort_descending) {
      std::stable_sort(out[i].options.begin(), out[i].options.end(),
                       [](const auto& x, const auto& y) {
                         return x.second > y.second;
                       });
    }
  }
  return out;
}

}  // namespace

Result<std::vector<World>> EnumerateWorlds(const XRelation& rel,
                                           const EnumerateOptions& options) {
  std::vector<TupleOptions> opts =
      BuildOptions(rel, options.all_present_only, /*sort_descending=*/false);
  // Overflow-safe world count check.
  size_t count = 1;
  for (const TupleOptions& to : opts) {
    if (to.options.empty()) return std::vector<World>{};  // impossible event
    if (count > options.max_worlds / to.options.size() &&
        count * to.options.size() > options.max_worlds) {
      return Status::ResourceExhausted(
          "world count exceeds max_worlds=" +
          std::to_string(options.max_worlds));
    }
    count *= to.options.size();
  }
  std::vector<World> worlds;
  worlds.reserve(count);
  World current;
  current.choice.assign(rel.size(), 0);
  current.probability = 1.0;
  // Iterative odometer over the choice lattice.
  std::vector<size_t> pos(rel.size(), 0);
  while (true) {
    World w;
    w.choice.resize(rel.size());
    w.probability = 1.0;
    for (size_t i = 0; i < rel.size(); ++i) {
      w.choice[i] = opts[i].options[pos[i]].first;
      w.probability *= opts[i].options[pos[i]].second;
    }
    worlds.push_back(std::move(w));
    // Advance odometer (last tuple fastest).
    size_t i = rel.size();
    while (i > 0) {
      --i;
      if (++pos[i] < opts[i].options.size()) break;
      pos[i] = 0;
      if (i == 0) return worlds;
    }
    if (rel.size() == 0) return worlds;  // single empty world emitted
  }
}

size_t CountWorlds(const XRelation& rel) {
  size_t count = 1;
  for (const XTuple& t : rel.xtuples()) {
    size_t n = t.size() + (t.is_maybe() ? 1 : 0);
    if (n != 0 && count > std::numeric_limits<size_t>::max() / n) {
      return std::numeric_limits<size_t>::max();
    }
    count *= n;
  }
  return count;
}

std::vector<World> TopKWorlds(const XRelation& rel, size_t k,
                              bool all_present_only) {
  std::vector<World> out;
  if (k == 0 || rel.size() == 0) {
    if (k > 0 && rel.size() == 0) out.push_back({{}, 1.0});
    return out;
  }
  std::vector<TupleOptions> opts =
      BuildOptions(rel, all_present_only, /*sort_descending=*/true);
  for (const TupleOptions& to : opts) {
    if (to.options.empty()) return out;  // impossible event
  }
  // Best-first search over rank vectors. State: per-tuple rank into the
  // descending option list. Children advance one coordinate; to avoid
  // revisiting states, a child may only advance coordinates >= the parent's
  // last advanced coordinate (classic k-best for independent factors).
  struct State {
    std::vector<uint32_t> rank;
    double prob;
    size_t last;  // last advanced coordinate
    bool operator<(const State& other) const { return prob < other.prob; }
  };
  std::priority_queue<State> heap;
  State root;
  root.rank.assign(rel.size(), 0);
  root.prob = 1.0;
  for (size_t i = 0; i < rel.size(); ++i) root.prob *= opts[i].options[0].second;
  root.last = 0;
  heap.push(root);
  while (!heap.empty() && out.size() < k) {
    State s = heap.top();
    heap.pop();
    World w;
    w.choice.resize(rel.size());
    w.probability = s.prob;
    for (size_t i = 0; i < rel.size(); ++i) {
      w.choice[i] = opts[i].options[s.rank[i]].first;
    }
    out.push_back(std::move(w));
    for (size_t i = s.last; i < rel.size(); ++i) {
      if (s.rank[i] + 1 < opts[i].options.size()) {
        State child = s;
        child.rank[i] += 1;
        child.prob = s.prob / opts[i].options[s.rank[i]].second *
                     opts[i].options[child.rank[i]].second;
        child.last = i;
        heap.push(child);
      }
    }
  }
  return out;
}

World SampleWorld(const XRelation& rel, Rng* rng) {
  World w;
  w.choice.resize(rel.size());
  w.probability = 1.0;
  for (size_t i = 0; i < rel.size(); ++i) {
    const XTuple& t = rel.xtuple(i);
    std::vector<double> weights;
    weights.reserve(t.size() + 1);
    for (const AltTuple& alt : t.alternatives()) weights.push_back(alt.prob);
    double absent = 1.0 - t.existence_probability();
    if (absent > kProbEpsilon) weights.push_back(absent);
    size_t pick = rng->Discrete(weights);
    if (pick < t.size()) {
      w.choice[i] = static_cast<int>(pick);
      w.probability *= t.alternative(pick).prob;
    } else {
      w.choice[i] = kAbsent;
      w.probability *= absent;
    }
  }
  return w;
}

World MostProbableWorld(const XRelation& rel, bool all_present_only) {
  std::vector<World> top = TopKWorlds(rel, 1, all_present_only);
  if (top.empty()) return World{std::vector<int>(rel.size(), kAbsent), 0.0};
  return top[0];
}

std::vector<std::pair<size_t, size_t>> WorldTuples(const World& world) {
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t i = 0; i < world.choice.size(); ++i) {
    if (world.choice[i] != kAbsent) {
      out.emplace_back(i, static_cast<size_t>(world.choice[i]));
    }
  }
  return out;
}

std::string WorldToString(const World& world, const XRelation& rel) {
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < world.choice.size(); ++i) {
    if (world.choice[i] == kAbsent) continue;
    if (!first) out += ", ";
    first = false;
    out += rel.xtuple(i).id() + "/" + std::to_string(world.choice[i] + 1);
  }
  out += "} p=" + FormatDouble(world.probability, 6);
  return out;
}

}  // namespace pdd
