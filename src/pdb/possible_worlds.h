// Possible-world semantics for x-relations.
//
// A possible world fixes, for every x-tuple, either one alternative or
// absence (possible only for maybe x-tuples). World probability is the
// product of the chosen alternative probabilities and, for absent tuples,
// (1 - p(t)). Fig. 7 of the paper enumerates the eight worlds of {t32, t42}.

#ifndef PDD_PDB_POSSIBLE_WORLDS_H_
#define PDD_PDB_POSSIBLE_WORLDS_H_

#include <string>
#include <vector>

#include "pdb/xrelation.h"
#include "util/random.h"
#include "util/status.h"

namespace pdd {

/// Index marking an absent x-tuple in a world's choice vector.
inline constexpr int kAbsent = -1;

/// One possible world of an x-relation.
struct World {
  /// Per x-tuple (in relation order): chosen alternative index, or kAbsent.
  std::vector<int> choice;
  /// The world's probability (positive).
  double probability = 0.0;

  /// True iff every x-tuple is present.
  bool AllPresent() const;
};

/// Options bounding world enumeration.
struct EnumerateOptions {
  /// Hard cap on the number of generated worlds; enumeration fails with
  /// ResourceExhausted when the world count would exceed it.
  size_t max_worlds = 1u << 20;
  /// When true, only worlds with all x-tuples present are generated
  /// (the paper's event B), with *unconditioned* probabilities; see
  /// ConditionWorlds() to renormalize.
  bool all_present_only = false;
};

/// Enumerates possible worlds of `rel` in lexicographic choice order
/// (alternative 0 first, absence last). Probabilities sum to 1 (to P(B)
/// when all_present_only). Fails when the cap would be exceeded.
Result<std::vector<World>> EnumerateWorlds(const XRelation& rel,
                                           const EnumerateOptions& options = {});

/// Number of possible worlds of `rel` (saturates at SIZE_MAX on overflow).
size_t CountWorlds(const XRelation& rel);

/// The `k` most probable worlds in descending probability order, computed
/// lazily (best-first over the independent choice lattice), without
/// enumerating the full world set.
std::vector<World> TopKWorlds(const XRelation& rel, size_t k,
                              bool all_present_only = false);

/// Draws one world at random according to the world distribution.
World SampleWorld(const XRelation& rel, Rng* rng);

/// The single most probable world (ties break toward lower alternative
/// indices). Equivalent to TopKWorlds(rel, 1)[0].
World MostProbableWorld(const XRelation& rel, bool all_present_only = false);

/// Materializes the tuples of a world: pairs of (x-tuple index,
/// alternative index). Absent tuples are skipped.
std::vector<std::pair<size_t, size_t>> WorldTuples(const World& world);

/// Renders a world like Fig. 7: "{t32/1, t42/1} p=0.24".
std::string WorldToString(const World& world, const XRelation& rel);

}  // namespace pdd

#endif  // PDD_PDB_POSSIBLE_WORLDS_H_
