#include "pdb/relation.h"

#include <cassert>

namespace pdd {

Status Relation::Append(Tuple tuple) {
  if (tuple.arity() != schema_.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.arity()) +
        " does not match schema arity " + std::to_string(schema_.arity()));
  }
  if (tuple.membership() <= 0.0 || tuple.membership() > 1.0 + kProbEpsilon) {
    return Status::InvalidArgument("tuple membership outside (0, 1]");
  }
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

void Relation::AppendUnchecked(Tuple tuple) {
  Status s = Append(std::move(tuple));
  assert(s.ok());
  (void)s;
}

std::string Relation::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < schema_.arity(); ++i) {
    if (i > 0) out += ", ";
    out += schema_.attribute(i).name;
  }
  out += ")\n";
  for (const Tuple& t : tuples_) out += "  " + t.ToString() + "\n";
  return out;
}

}  // namespace pdd
