// Probabilistic relations of the dependency-free model (Fig. 4).

#ifndef PDD_PDB_RELATION_H_
#define PDD_PDB_RELATION_H_

#include <string>
#include <vector>

#include "pdb/schema.h"
#include "pdb/tuple.h"
#include "util/status.h"

namespace pdd {

/// A named probabilistic relation: schema plus tuples whose attribute
/// values are independent probabilistic values (no x-tuple dependencies).
class Relation {
 public:
  Relation() = default;

  /// Constructs an empty relation with the given name and schema.
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  /// Appends a tuple; fails when the tuple arity does not match the schema
  /// or the membership probability is outside (0, 1].
  Status Append(Tuple tuple);

  /// Unchecked append for trusted construction (asserts in debug builds).
  void AppendUnchecked(Tuple tuple);

  /// Relation name.
  const std::string& name() const { return name_; }

  /// The schema.
  const Schema& schema() const { return schema_; }

  /// All tuples in insertion order.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Tuple at position `i`.
  const Tuple& tuple(size_t i) const { return tuples_[i]; }

  /// Mutable tuple access (used by uncertainty injection).
  Tuple* mutable_tuple(size_t i) { return &tuples_[i]; }

  /// Number of tuples.
  size_t size() const { return tuples_.size(); }

  /// Paper-style multi-line rendering.
  std::string ToString() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace pdd

#endif  // PDD_PDB_RELATION_H_
