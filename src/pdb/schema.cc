#include "pdb/schema.h"

#include <cassert>
#include <unordered_set>

namespace pdd {

namespace {

Status ValidateAttributes(const std::vector<AttributeDef>& attributes) {
  std::unordered_set<std::string> seen;
  for (const AttributeDef& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("empty attribute name");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute name '" +
                                     attr.name + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Schema::Schema(std::vector<AttributeDef> attributes)
    : attributes_(std::move(attributes)) {
  assert(ValidateAttributes(attributes_).ok());
}

Result<Schema> Schema::Make(std::vector<AttributeDef> attributes) {
  PDD_RETURN_IF_ERROR(ValidateAttributes(attributes));
  Schema schema;
  schema.attributes_ = std::move(attributes);
  return schema;
}

Schema Schema::Strings(std::vector<std::string> names) {
  std::vector<AttributeDef> attrs;
  attrs.reserve(names.size());
  for (std::string& name : names) {
    attrs.push_back({std::move(name), ValueType::kString, {}});
  }
  return Schema(std::move(attrs));
}

Result<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + std::string(name) + "'");
}

bool Schema::CompatibleWith(const Schema& other) const {
  if (arity() != other.arity()) return false;
  for (size_t i = 0; i < arity(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name ||
        attributes_[i].type != other.attributes_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace pdd
