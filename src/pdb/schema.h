// Relation schemas: attribute names, types and optional domain
// vocabularies (used to expand pattern values and by the semantic
// comparator).

#ifndef PDD_PDB_SCHEMA_H_
#define PDD_PDB_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pdd {

/// Logical attribute type; drives the default comparator choice.
enum class ValueType {
  kString = 0,
  kNumeric = 1,
};

/// Definition of one attribute of a relation.
struct AttributeDef {
  /// Attribute name, unique within a schema.
  std::string name;
  /// Logical type of the attribute's values.
  ValueType type = ValueType::kString;
  /// Optional closed domain vocabulary (expands 'mu*'-style patterns).
  std::vector<std::string> vocabulary;
};

/// An ordered list of attribute definitions.
class Schema {
 public:
  Schema() = default;

  /// Constructs from attribute definitions; names must be unique
  /// (asserted in debug builds — use Make() for untrusted input).
  explicit Schema(std::vector<AttributeDef> attributes);

  /// Validated construction; fails on duplicate or empty attribute names.
  static Result<Schema> Make(std::vector<AttributeDef> attributes);

  /// Convenience: all-string schema from attribute names.
  static Schema Strings(std::vector<std::string> names);

  /// Number of attributes.
  size_t arity() const { return attributes_.size(); }

  /// Definition of attribute `i`.
  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }

  /// All attribute definitions in order.
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, or error when absent.
  Result<size_t> IndexOf(std::string_view name) const;

  /// True iff both schemas have the same attribute names and types
  /// in the same order (vocabularies are ignored).
  bool CompatibleWith(const Schema& other) const;

 private:
  std::vector<AttributeDef> attributes_;
};

}  // namespace pdd

#endif  // PDD_PDB_SCHEMA_H_
