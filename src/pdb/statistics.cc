#include "pdb/statistics.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace pdd {

namespace {

double ValueEntropyBits(const Value& v) {
  double entropy = 0.0;
  auto add = [&](double p) {
    if (p > 0.0) entropy -= p * std::log2(p);
  };
  for (const Alternative& alt : v.alternatives()) add(alt.prob);
  add(v.null_probability());
  return entropy;
}

}  // namespace

RelationStatistics ComputeStatistics(const XRelation& rel) {
  RelationStatistics stats;
  stats.tuple_count = rel.size();
  if (rel.size() == 0) return stats;
  size_t maybe = 0;
  double existence_sum = 0.0;
  size_t value_count = 0;
  size_t uncertain_values = 0;
  size_t value_alternatives = 0;
  size_t null_values = 0;
  size_t pattern_values = 0;
  double entropy_sum = 0.0;
  double log10_worlds = 0.0;
  for (const XTuple& t : rel.xtuples()) {
    stats.alternative_count += t.size();
    stats.max_alternatives = std::max(stats.max_alternatives, t.size());
    if (t.is_maybe()) ++maybe;
    existence_sum += t.existence_probability();
    log10_worlds +=
        std::log10(static_cast<double>(t.size() + (t.is_maybe() ? 1 : 0)));
    for (const AltTuple& alt : t.alternatives()) {
      for (const Value& v : alt.values) {
        ++value_count;
        value_alternatives += v.size();
        if (!v.is_certain()) ++uncertain_values;
        if (v.null_probability() > kProbEpsilon) ++null_values;
        if (v.has_pattern()) ++pattern_values;
        entropy_sum += ValueEntropyBits(v);
      }
    }
  }
  stats.mean_alternatives = static_cast<double>(stats.alternative_count) /
                            static_cast<double>(rel.size());
  stats.maybe_fraction =
      static_cast<double>(maybe) / static_cast<double>(rel.size());
  stats.mean_existence = existence_sum / static_cast<double>(rel.size());
  if (value_count > 0) {
    stats.uncertain_value_fraction = static_cast<double>(uncertain_values) /
                                     static_cast<double>(value_count);
    stats.mean_value_alternatives = static_cast<double>(value_alternatives) /
                                    static_cast<double>(value_count);
    stats.null_mass_fraction = static_cast<double>(null_values) /
                               static_cast<double>(value_count);
    stats.pattern_fraction = static_cast<double>(pattern_values) /
                             static_cast<double>(value_count);
    stats.mean_value_entropy = entropy_sum / static_cast<double>(value_count);
  }
  stats.log10_world_count = log10_worlds;
  return stats;
}

std::string RelationStatistics::ToString() const {
  std::string out;
  out += "tuples: " + std::to_string(tuple_count) + " (" +
         std::to_string(alternative_count) + " alternatives, mean " +
         FormatDouble(mean_alternatives, 2) + ", max " +
         std::to_string(max_alternatives) + ")\n";
  out += "maybe fraction: " + FormatDouble(maybe_fraction, 4) +
         ", mean existence: " + FormatDouble(mean_existence, 4) + "\n";
  out += "uncertain values: " + FormatDouble(uncertain_value_fraction, 4) +
         " (mean alternatives " + FormatDouble(mean_value_alternatives, 2) +
         ", null-mass " + FormatDouble(null_mass_fraction, 4) +
         ", patterns " + FormatDouble(pattern_fraction, 4) + ")\n";
  out += "mean value entropy: " + FormatDouble(mean_value_entropy, 4) +
         " bits, log10(worlds): " + FormatDouble(log10_world_count, 2) +
         "\n";
  return out;
}

}  // namespace pdd
