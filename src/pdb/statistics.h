// Profiling statistics of probabilistic relations: how much uncertainty
// a dataset carries on each of the paper's two levels. Used by reports,
// experiments and generator validation.

#ifndef PDD_PDB_STATISTICS_H_
#define PDD_PDB_STATISTICS_H_

#include <string>

#include "pdb/xrelation.h"

namespace pdd {

/// Uncertainty profile of one x-relation.
struct RelationStatistics {
  size_t tuple_count = 0;
  size_t alternative_count = 0;
  /// Mean alternatives per x-tuple (tuple-level uncertainty width).
  double mean_alternatives = 0.0;
  /// Maximum alternatives of any x-tuple.
  size_t max_alternatives = 0;
  /// Fraction of maybe x-tuples (existence < 1).
  double maybe_fraction = 0.0;
  /// Mean existence probability p(t).
  double mean_existence = 0.0;
  /// Fraction of attribute values that are uncertain (more than one
  /// alternative or partial ⊥ mass).
  double uncertain_value_fraction = 0.0;
  /// Mean alternatives per attribute value.
  double mean_value_alternatives = 0.0;
  /// Fraction of values carrying any ⊥ mass.
  double null_mass_fraction = 0.0;
  /// Fraction of values with pattern alternatives.
  double pattern_fraction = 0.0;
  /// Mean Shannon entropy (bits) of the value distributions (⊥ treated
  /// as an outcome). 0 for certain values.
  double mean_value_entropy = 0.0;
  /// log10 of the number of possible worlds (capped world counting).
  double log10_world_count = 0.0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Computes the profile of `rel`.
RelationStatistics ComputeStatistics(const XRelation& rel);

}  // namespace pdd

#endif  // PDD_PDB_STATISTICS_H_
