#include "pdb/text_format.h"

#include <string>

#include "util/string_util.h"

namespace pdd {

namespace {

constexpr std::string_view kStructural = ";,:{}|";

bool HasStructuralChar(std::string_view text) {
  return text.find_first_of(kStructural) != std::string_view::npos;
}

Status ValidateText(std::string_view text) {
  if (HasStructuralChar(text)) {
    return Status::InvalidArgument("value text '" + std::string(text) +
                                   "' contains structural characters");
  }
  return Status::OK();
}

std::string SerializeAlternativeEntry(const Alternative& alt) {
  std::string text = alt.text;
  if (alt.is_pattern) text += "*";
  return text;
}

}  // namespace

std::string SerializeValue(const Value& value) {
  if (value.is_null()) return "_";
  if (value.is_certain()) {
    return SerializeAlternativeEntry(value.alternatives()[0]);
  }
  std::string out = "{";
  for (size_t i = 0; i < value.alternatives().size(); ++i) {
    if (i > 0) out += ", ";
    const Alternative& alt = value.alternatives()[i];
    out += SerializeAlternativeEntry(alt) + ":" + FormatDouble(alt.prob, 9);
  }
  return out + "}";
}

Result<Value> ParseValue(std::string_view text) {
  text = Trim(text);
  if (text.empty()) {
    return Status::ParseError("empty value");
  }
  if (text == "_") return Value::Null();
  if (text.front() == '{') {
    if (text.back() != '}') {
      return Status::ParseError("unterminated distribution '" +
                                std::string(text) + "'");
    }
    std::string_view body = text.substr(1, text.size() - 2);
    std::vector<Alternative> alternatives;
    for (const std::string& entry : Split(body, ',')) {
      std::string_view trimmed = Trim(entry);
      if (trimmed.empty()) {
        return Status::ParseError("empty distribution entry");
      }
      size_t colon = trimmed.rfind(':');
      if (colon == std::string_view::npos) {
        return Status::ParseError("distribution entry '" +
                                  std::string(trimmed) + "' lacks ':prob'");
      }
      std::string_view key = Trim(trimmed.substr(0, colon));
      double prob = 0.0;
      if (!ParseDouble(trimmed.substr(colon + 1), &prob)) {
        return Status::ParseError("malformed probability in '" +
                                  std::string(trimmed) + "'");
      }
      bool is_pattern = false;
      if (!key.empty() && key.back() == '*') {
        is_pattern = true;
        key.remove_suffix(1);
      }
      if (key.empty()) {
        return Status::ParseError("empty alternative text");
      }
      alternatives.push_back({std::string(key), prob, is_pattern});
    }
    return Value::Make(std::move(alternatives));
  }
  // Certain value or pattern.
  bool is_pattern = text.back() == '*';
  if (is_pattern) text.remove_suffix(1);
  PDD_RETURN_IF_ERROR(ValidateText(text));
  if (text.empty()) {
    return Status::ParseError("empty value text");
  }
  if (is_pattern) return Value::Pattern(std::string(text));
  return Value::Certain(std::string(text));
}

std::string SerializeXRelation(const XRelation& rel) {
  std::string out = "relation " + rel.name() + "\n";
  out += "schema ";
  for (size_t i = 0; i < rel.schema().arity(); ++i) {
    if (i > 0) out += ", ";
    const AttributeDef& attr = rel.schema().attribute(i);
    out += attr.name;
    out += attr.type == ValueType::kNumeric ? ":numeric" : ":string";
  }
  out += "\n";
  for (const AttributeDef& attr : rel.schema().attributes()) {
    if (!attr.vocabulary.empty()) {
      out += "vocab " + attr.name + " " + Join(attr.vocabulary, ", ") + "\n";
    }
  }
  for (const XTuple& t : rel.xtuples()) {
    out += "tuple " + t.id() + "\n";
    for (const AltTuple& alt : t.alternatives()) {
      out += "alt " + FormatDouble(alt.prob, 9) + " | ";
      for (size_t i = 0; i < alt.values.size(); ++i) {
        if (i > 0) out += " ; ";
        out += SerializeValue(alt.values[i]);
      }
      out += "\n";
    }
  }
  return out;
}

namespace {

Status LineError(size_t line_no, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line_no) + ": " +
                            message);
}

}  // namespace

Result<XRelation> ParseXRelation(std::string_view text) {
  std::string name;
  Schema schema;
  bool have_schema = false;
  std::vector<AttributeDef> attributes;
  XRelation rel;
  bool rel_initialized = false;
  std::string pending_id;
  std::vector<AltTuple> pending_alternatives;

  auto flush_tuple = [&]() -> Status {
    if (pending_id.empty()) return Status::OK();
    PDD_RETURN_IF_ERROR(
        rel.Append(XTuple(pending_id, std::move(pending_alternatives))));
    pending_id.clear();
    pending_alternatives.clear();
    return Status::OK();
  };
  auto ensure_relation = [&]() -> Status {
    if (rel_initialized) return Status::OK();
    if (name.empty()) {
      return Status::ParseError("missing 'relation <name>' header");
    }
    if (!have_schema) {
      return Status::ParseError("missing 'schema ...' line");
    }
    PDD_ASSIGN_OR_RETURN(schema, Schema::Make(attributes));
    rel = XRelation(name, schema);
    rel_initialized = true;
    return Status::OK();
  };

  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    if (StartsWith(line, "relation ")) {
      name = std::string(Trim(line.substr(9)));
      if (name.empty()) return LineError(line_no, "empty relation name");
    } else if (StartsWith(line, "schema ")) {
      for (const std::string& piece : Split(line.substr(7), ',')) {
        std::string_view field = Trim(piece);
        size_t colon = field.find(':');
        if (colon == std::string_view::npos) {
          return LineError(line_no, "schema field '" + std::string(field) +
                                        "' lacks ':type'");
        }
        AttributeDef attr;
        attr.name = std::string(Trim(field.substr(0, colon)));
        std::string_view type = Trim(field.substr(colon + 1));
        if (type == "string") {
          attr.type = ValueType::kString;
        } else if (type == "numeric") {
          attr.type = ValueType::kNumeric;
        } else {
          return LineError(line_no,
                           "unknown type '" + std::string(type) + "'");
        }
        attributes.push_back(std::move(attr));
      }
      have_schema = true;
    } else if (StartsWith(line, "vocab ")) {
      if (rel_initialized) {
        return LineError(line_no, "'vocab' must precede the first tuple");
      }
      std::string_view rest = Trim(line.substr(6));
      size_t space = rest.find(' ');
      if (space == std::string_view::npos) {
        return LineError(line_no, "vocab needs '<attr> <words>'");
      }
      std::string attr_name(Trim(rest.substr(0, space)));
      bool found = false;
      for (AttributeDef& attr : attributes) {
        if (attr.name == attr_name) {
          for (const std::string& word : Split(rest.substr(space + 1), ',')) {
            attr.vocabulary.emplace_back(Trim(word));
          }
          found = true;
          break;
        }
      }
      if (!found) {
        return LineError(line_no, "vocab references unknown attribute '" +
                                      attr_name + "'");
      }
    } else if (StartsWith(line, "tuple ")) {
      PDD_RETURN_IF_ERROR(ensure_relation());
      Status flushed = flush_tuple();
      if (!flushed.ok()) return LineError(line_no, flushed.message());
      pending_id = std::string(Trim(line.substr(6)));
      if (pending_id.empty()) return LineError(line_no, "empty tuple id");
    } else if (StartsWith(line, "alt ")) {
      if (pending_id.empty()) {
        return LineError(line_no, "'alt' outside of a tuple");
      }
      std::string_view rest = line.substr(4);
      size_t bar = rest.find('|');
      if (bar == std::string_view::npos) {
        return LineError(line_no, "alt needs '<prob> | <values>'");
      }
      AltTuple alt;
      if (!ParseDouble(rest.substr(0, bar), &alt.prob)) {
        return LineError(line_no, "malformed alternative probability");
      }
      for (const std::string& piece : Split(rest.substr(bar + 1), ';')) {
        Result<Value> value = ParseValue(piece);
        if (!value.ok()) return LineError(line_no, value.status().message());
        alt.values.push_back(std::move(value).value());
      }
      pending_alternatives.push_back(std::move(alt));
    } else {
      return LineError(line_no, "unrecognized line '" + std::string(line) +
                                    "'");
    }
  }
  PDD_RETURN_IF_ERROR(ensure_relation());
  Status flushed = flush_tuple();
  if (!flushed.ok()) return Status::ParseError(flushed.message());
  return rel;
}

}  // namespace pdd
