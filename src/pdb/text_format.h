// A line-oriented text format for probabilistic x-relations, so datasets
// can be stored, versioned and exchanged outside the process:
//
//   # comment
//   relation R34
//   schema name:string, job:string
//   vocab job machinist, mechanic, musician
//   tuple t31
//   alt 0.7 | John ; pilot
//   alt 0.3 | Johan ; mu*
//   tuple t32
//   alt 0.3 | Tim ; mechanic
//   alt 0.2 | Jim ; mechanic
//   alt 0.4 | Jim ; baker
//
// Value syntax inside an alternative (';'-separated, schema order):
//   _                     the non-existent value ⊥
//   text                  a certain value
//   text*                 a prefix pattern ('mu*')
//   {a:0.5, b:0.3}        a distribution (residual mass is ⊥);
//                         pattern entries use 'text*' keys
//
// Restrictions: value texts must not contain the structural characters
// ';', ',', ':', '{', '}', '|' or leading/trailing whitespace.

#ifndef PDD_PDB_TEXT_FORMAT_H_
#define PDD_PDB_TEXT_FORMAT_H_

#include <string>
#include <string_view>

#include "pdb/xrelation.h"
#include "util/status.h"

namespace pdd {

/// Serializes an x-relation to the text format (stable round-trip with
/// ParseXRelation up to probability formatting).
std::string SerializeXRelation(const XRelation& rel);

/// Parses the text format. Errors carry the offending line number.
Result<XRelation> ParseXRelation(std::string_view text);

/// Serializes a single probabilistic value using the value syntax above.
std::string SerializeValue(const Value& value);

/// Parses a single value.
Result<Value> ParseValue(std::string_view text);

}  // namespace pdd

#endif  // PDD_PDB_TEXT_FORMAT_H_
