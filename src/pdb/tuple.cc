#include "pdb/tuple.h"

#include "util/string_util.h"

namespace pdd {

std::string Tuple::ToString() const {
  std::string out = id_ + "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ", p=" + FormatDouble(membership_, 4) + ")";
  return out;
}

}  // namespace pdd
