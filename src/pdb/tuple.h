// Tuples of the dependency-free probabilistic model (Section IV-A):
// attribute values are independent random variables; tuple membership in
// the relation carries its own probability p(t).

#ifndef PDD_PDB_TUPLE_H_
#define PDD_PDB_TUPLE_H_

#include <string>
#include <vector>

#include "pdb/value.h"

namespace pdd {

/// A probabilistic tuple: independent probabilistic attribute values plus
/// a membership probability p(t) in (0, 1].
///
/// Per the paper (Section IV), the membership probability must NOT
/// influence duplicate detection; it is carried along for completeness and
/// for possible-world semantics only.
class Tuple {
 public:
  Tuple() = default;

  /// Constructs a tuple with the given values and membership probability.
  Tuple(std::string id, std::vector<Value> values, double membership = 1.0)
      : id_(std::move(id)),
        values_(std::move(values)),
        membership_(membership) {}

  /// Identifier used in figures and gold standards (e.g. "t11").
  const std::string& id() const { return id_; }

  /// The attribute values, schema order.
  const std::vector<Value>& values() const { return values_; }

  /// Value of attribute `i`.
  const Value& value(size_t i) const { return values_[i]; }

  /// Mutable value access (used by uncertainty injection).
  Value* mutable_value(size_t i) { return &values_[i]; }

  /// Membership probability p(t) in (0, 1].
  double membership() const { return membership_; }

  /// Number of attributes.
  size_t arity() const { return values_.size(); }

  /// "id(values..., p)" rendering for diagnostics.
  std::string ToString() const;

 private:
  std::string id_;
  std::vector<Value> values_;
  double membership_ = 1.0;
};

}  // namespace pdd

#endif  // PDD_PDB_TUPLE_H_
