#include "pdb/value.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "util/string_util.h"

namespace pdd {

namespace {

Status ValidateAlternatives(const std::vector<Alternative>& alternatives) {
  double total = 0.0;
  for (const Alternative& alt : alternatives) {
    if (alt.prob <= 0.0 || alt.prob > 1.0 + kProbEpsilon) {
      return Status::InvalidArgument("alternative probability " +
                                     FormatDouble(alt.prob) +
                                     " outside (0, 1]");
    }
    total += alt.prob;
  }
  if (total > 1.0 + kProbEpsilon) {
    return Status::InvalidArgument("alternative probabilities sum to " +
                                   FormatDouble(total) + " > 1");
  }
  for (size_t i = 0; i < alternatives.size(); ++i) {
    for (size_t j = i + 1; j < alternatives.size(); ++j) {
      if (alternatives[i].text == alternatives[j].text &&
          alternatives[i].is_pattern == alternatives[j].is_pattern) {
        return Status::InvalidArgument("duplicate alternative '" +
                                       alternatives[i].text + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Value Value::Certain(std::string text) {
  return Value({{std::move(text), 1.0, false}});
}

Value Value::Null() { return Value(); }

Result<Value> Value::Make(std::vector<Alternative> alternatives) {
  PDD_RETURN_IF_ERROR(ValidateAlternatives(alternatives));
  return Value(std::move(alternatives));
}

Value Value::Unchecked(std::vector<Alternative> alternatives) {
  assert(ValidateAlternatives(alternatives).ok());
  return Value(std::move(alternatives));
}

Value Value::Dist(
    std::initializer_list<std::pair<std::string, double>> pairs) {
  std::vector<Alternative> alts;
  alts.reserve(pairs.size());
  for (const auto& [text, prob] : pairs) alts.push_back({text, prob, false});
  return Unchecked(std::move(alts));
}

Value Value::Pattern(std::string prefix, double prob) {
  return Unchecked({{std::move(prefix), prob, true}});
}

double Value::null_probability() const {
  return std::max(0.0, 1.0 - existence_probability());
}

double Value::existence_probability() const {
  double total = 0.0;
  for (const Alternative& alt : alternatives_) total += alt.prob;
  return std::min(1.0, total);
}

bool Value::is_certain() const {
  if (alternatives_.empty()) return true;  // certainly ⊥
  return alternatives_.size() == 1 &&
         alternatives_[0].prob >= 1.0 - kProbEpsilon;
}

bool Value::has_pattern() const {
  return std::any_of(alternatives_.begin(), alternatives_.end(),
                     [](const Alternative& a) { return a.is_pattern; });
}

std::string Value::MostProbableText() const {
  double best_prob = null_probability();
  std::string best;  // empty string denotes ⊥
  for (const Alternative& alt : alternatives_) {
    if (alt.prob > best_prob + kProbEpsilon) {
      best_prob = alt.prob;
      best = alt.text;
    }
  }
  return best;
}

Value Value::Expanded(const std::vector<std::string>& vocabulary) const {
  if (!has_pattern()) return *this;
  // Merge masses per concrete text; patterns expand uniformly over matches.
  std::vector<std::string> order;
  std::map<std::string, double> mass;
  auto add = [&](const std::string& text, double p) {
    auto [it, inserted] = mass.emplace(text, 0.0);
    if (inserted) order.push_back(text);
    it->second += p;
  };
  for (const Alternative& alt : alternatives_) {
    if (!alt.is_pattern) {
      add(alt.text, alt.prob);
      continue;
    }
    std::vector<const std::string*> matches;
    for (const std::string& word : vocabulary) {
      if (StartsWith(word, alt.text)) matches.push_back(&word);
    }
    if (matches.empty()) {
      add(alt.text, alt.prob);  // conservative literal fallback
    } else {
      double share = alt.prob / static_cast<double>(matches.size());
      for (const std::string* word : matches) add(*word, share);
    }
  }
  std::vector<Alternative> alts;
  alts.reserve(order.size());
  for (const std::string& text : order) {
    alts.push_back({text, mass[text], false});
  }
  return Value(std::move(alts));
}

std::string Value::ToString() const {
  if (is_null()) return "⊥";
  auto render = [](const Alternative& a) {
    return a.is_pattern ? a.text + "*" : a.text;
  };
  if (is_certain()) return render(alternatives_[0]);
  std::string out = "{";
  for (size_t i = 0; i < alternatives_.size(); ++i) {
    if (i > 0) out += ", ";
    out += render(alternatives_[i]) + ": " + FormatDouble(alternatives_[i].prob, 4);
  }
  double null_mass = null_probability();
  if (null_mass > kProbEpsilon) {
    out += ", ⊥: " + FormatDouble(null_mass, 4);
  }
  out += "}";
  return out;
}

}  // namespace pdd
