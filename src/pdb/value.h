// Probabilistic attribute values.
//
// In the paper's model (Section IV), uncertainty exists on two levels:
// tuple membership and attribute values. This file models the attribute
// value level: a Value is a discrete probability distribution over string
// alternatives, with any residual probability mass interpreted as
// non-existence (the paper's ⊥). A certain value is the special case of a
// single alternative with probability 1.
//
// Pattern alternatives ("mu*" in Fig. 5) represent a uniform distribution
// over all domain elements matching a prefix; they can be expanded against
// an attribute vocabulary.

#ifndef PDD_PDB_VALUE_H_
#define PDD_PDB_VALUE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace pdd {

/// Probability tolerance used when validating distributions.
inline constexpr double kProbEpsilon = 1e-9;

/// One weighted alternative of a probabilistic attribute value.
struct Alternative {
  /// The alternative's text, or the prefix for pattern alternatives
  /// (pattern "mu*" is stored as text="mu", is_pattern=true).
  std::string text;
  /// Probability mass of this alternative, in (0, 1].
  double prob = 1.0;
  /// True for prefix-pattern alternatives representing a uniform
  /// distribution over matching domain elements (Fig. 5, 'mu*').
  bool is_pattern = false;

  bool operator==(const Alternative& other) const {
    return text == other.text && prob == other.prob &&
           is_pattern == other.is_pattern;
  }
};

/// A probabilistic attribute value: a distribution over alternatives plus
/// an implicit non-existence (⊥) mass of 1 - sum(alternative probs).
class Value {
 public:
  /// The certainly non-existent value ⊥.
  Value() = default;

  /// A certain value: single alternative with probability 1.
  static Value Certain(std::string text);

  /// The certainly non-existent value ⊥ (alias of the default constructor).
  static Value Null();

  /// A validated distribution. Fails if any probability is outside
  /// (0, 1], the total mass exceeds 1, or an alternative text repeats.
  /// Total mass below 1 is allowed: the rest is ⊥ mass.
  static Result<Value> Make(std::vector<Alternative> alternatives);

  /// Unchecked construction for literals whose validity is known
  /// (asserts in debug builds). Prefer Make() for untrusted input.
  static Value Unchecked(std::vector<Alternative> alternatives);

  /// Convenience: distribution from (text, prob) pairs, unchecked.
  static Value Dist(
      std::initializer_list<std::pair<std::string, double>> pairs);

  /// A prefix-pattern alternative with probability `prob`
  /// (e.g. Pattern("mu", 0.3) is the paper's 'mu*' with mass 0.3).
  static Value Pattern(std::string prefix, double prob = 1.0);

  /// The explicit alternatives (excluding ⊥ mass).
  const std::vector<Alternative>& alternatives() const {
    return alternatives_;
  }

  /// Probability that the value does not exist: 1 - sum(alternative probs).
  double null_probability() const;

  /// Sum of alternative probabilities (existence probability).
  double existence_probability() const;

  /// True iff the value is a single alternative with probability 1,
  /// or certainly ⊥.
  bool is_certain() const;

  /// True iff the value is certainly ⊥ (no alternatives).
  bool is_null() const { return alternatives_.empty(); }

  /// True iff any alternative is a pattern.
  bool has_pattern() const;

  /// Number of explicit alternatives.
  size_t size() const { return alternatives_.size(); }

  /// The most probable alternative's text; empty string when ⊥ mass
  /// dominates every alternative or the value is ⊥. Ties break toward the
  /// earlier alternative.
  std::string MostProbableText() const;

  /// Expands pattern alternatives against a vocabulary: each pattern's mass
  /// is distributed uniformly over vocabulary entries with the pattern's
  /// prefix. Patterns matching nothing keep a single literal alternative
  /// equal to the prefix (a conservative fallback). Non-pattern
  /// alternatives are kept as is; equal texts are merged.
  Value Expanded(const std::vector<std::string>& vocabulary) const;

  /// Renders the value like the paper: "Tim", "{John: 0.5, Johan: 0.5}",
  /// "⊥" (with probability shown when the ⊥ mass is partial).
  std::string ToString() const;

  bool operator==(const Value& other) const {
    return alternatives_ == other.alternatives_;
  }

 private:
  explicit Value(std::vector<Alternative> alternatives)
      : alternatives_(std::move(alternatives)) {}

  std::vector<Alternative> alternatives_;
};

}  // namespace pdd

#endif  // PDD_PDB_VALUE_H_
