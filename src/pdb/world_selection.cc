#include "pdb/world_selection.h"

#include <algorithm>
#include <cassert>

namespace pdd {

double WorldSimilarity(const World& a, const World& b) {
  assert(a.choice.size() == b.choice.size());
  if (a.choice.empty()) return 1.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.choice.size(); ++i) {
    if (a.choice[i] == b.choice[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.choice.size());
}

std::vector<World> SelectWorlds(const XRelation& rel,
                                const WorldSelectionOptions& options) {
  if (options.count == 0) return {};
  size_t pool_size = options.strategy == WorldSelectionStrategy::kTopProbable
                         ? options.count
                         : std::max(options.candidate_pool, options.count);
  std::vector<World> pool =
      TopKWorlds(rel, pool_size, options.all_present_only);
  if (options.strategy == WorldSelectionStrategy::kTopProbable ||
      pool.size() <= options.count) {
    if (pool.size() > options.count) pool.resize(options.count);
    return pool;
  }
  // Greedy maximal-marginal-relevance over the candidate pool.
  std::vector<World> selected;
  std::vector<bool> used(pool.size(), false);
  selected.push_back(pool[0]);
  used[0] = true;
  while (selected.size() < options.count) {
    double best_score = -1e300;
    size_t best = pool.size();
    for (size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      double max_sim = 0.0;
      for (const World& s : selected) {
        max_sim = std::max(max_sim, WorldSimilarity(pool[i], s));
      }
      double score = pool[i].probability - options.lambda * max_sim;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == pool.size()) break;
    used[best] = true;
    selected.push_back(pool[best]);
  }
  return selected;
}

double MeanPairwiseSimilarity(const std::vector<World>& worlds) {
  if (worlds.size() < 2) return 1.0;
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < worlds.size(); ++i) {
    for (size_t j = i + 1; j < worlds.size(); ++j) {
      total += WorldSimilarity(worlds[i], worlds[j]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace pdd
