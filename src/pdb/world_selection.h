// World selection for multi-pass search space reduction (Section V-A.1).
//
// The paper observes that passes over the most probable worlds are often
// redundant because highly probable worlds tend to be similar; it calls for
// selecting "a set of highly probable and pairwise dissimilar worlds",
// which "requires comparison techniques on complete worlds". This module
// provides both the world similarity measure and the greedy diversified
// selection.

#ifndef PDD_PDB_WORLD_SELECTION_H_
#define PDD_PDB_WORLD_SELECTION_H_

#include <vector>

#include "pdb/possible_worlds.h"
#include "pdb/xrelation.h"

namespace pdd {

/// Similarity of two complete worlds of the same x-relation: the fraction
/// of x-tuples with an identical choice (same alternative, or both absent).
/// Returns 1 for empty relations.
double WorldSimilarity(const World& a, const World& b);

/// Strategy for picking the worlds of a multi-pass method.
enum class WorldSelectionStrategy {
  /// The k most probable worlds (may be near-duplicates of each other).
  kTopProbable = 0,
  /// Greedy maximal-marginal-relevance selection: start from the most
  /// probable world, then repeatedly add the world maximizing
  /// probability - lambda * max-similarity-to-selected.
  kDiverse = 1,
};

/// Options for SelectWorlds.
struct WorldSelectionOptions {
  WorldSelectionStrategy strategy = WorldSelectionStrategy::kTopProbable;
  /// Number of worlds to select.
  size_t count = 2;
  /// Diversity weight for kDiverse (0 reduces to kTopProbable).
  double lambda = 0.5;
  /// Candidate pool size: the kDiverse strategy first takes this many top
  /// probable worlds and then diversifies within them.
  size_t candidate_pool = 64;
  /// Restrict to worlds where every x-tuple is present (the paper's
  /// requirement for sorting keys: every tuple needs a key value).
  bool all_present_only = true;
};

/// Selects worlds of `rel` per the options. Returned worlds are unique
/// and ordered by selection sequence.
std::vector<World> SelectWorlds(const XRelation& rel,
                                const WorldSelectionOptions& options);

/// Mean pairwise similarity of a world set (1 for fewer than two worlds);
/// the redundancy measure used in experiment S3.
double MeanPairwiseSimilarity(const std::vector<World>& worlds);

}  // namespace pdd

#endif  // PDD_PDB_WORLD_SELECTION_H_
