#include "pdb/xrelation.h"

#include <cassert>
#include <unordered_set>

namespace pdd {

Status XRelation::Append(XTuple xtuple) {
  PDD_RETURN_IF_ERROR(xtuple.Validate());
  if (xtuple.arity() != schema_.arity()) {
    return Status::InvalidArgument(
        "x-tuple arity " + std::to_string(xtuple.arity()) +
        " does not match schema arity " + std::to_string(schema_.arity()));
  }
  xtuples_.push_back(std::move(xtuple));
  return Status::OK();
}

void XRelation::AppendUnchecked(XTuple xtuple) {
  Status s = Append(std::move(xtuple));
  assert(s.ok());
  (void)s;
}

size_t XRelation::TotalAlternatives() const {
  size_t total = 0;
  for (const XTuple& t : xtuples_) total += t.size();
  return total;
}

XRelation XRelation::FromRelation(const Relation& relation) {
  XRelation out(relation.name(), relation.schema());
  for (const Tuple& t : relation.tuples()) {
    out.AppendUnchecked(XTuple(t.id(), {{t.values(), t.membership()}}));
  }
  return out;
}

Result<XRelation> XRelation::Union(const XRelation& a, const XRelation& b,
                                   std::string name) {
  if (!a.schema().CompatibleWith(b.schema())) {
    return Status::InvalidArgument("union of incompatible schemas: " +
                                   a.name() + " vs " + b.name());
  }
  std::unordered_set<std::string> ids;
  XRelation out(std::move(name), a.schema());
  for (const XRelation* rel : {&a, &b}) {
    for (const XTuple& t : rel->xtuples()) {
      if (!ids.insert(t.id()).second) {
        return Status::InvalidArgument("duplicate x-tuple id '" + t.id() +
                                       "' in union");
      }
      out.xtuples_.push_back(t);
    }
  }
  return out;
}

std::string XRelation::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < schema_.arity(); ++i) {
    if (i > 0) out += ", ";
    out += schema_.attribute(i).name;
  }
  out += ")\n";
  for (const XTuple& t : xtuples_) out += t.ToString();
  return out;
}

}  // namespace pdd
