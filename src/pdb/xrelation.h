// X-relations (relations of x-tuples, Fig. 5) and conversions from the
// dependency-free model.

#ifndef PDD_PDB_XRELATION_H_
#define PDD_PDB_XRELATION_H_

#include <string>
#include <vector>

#include "pdb/relation.h"
#include "pdb/schema.h"
#include "pdb/xtuple.h"
#include "util/status.h"

namespace pdd {

/// A named relation containing one or more x-tuples.
class XRelation {
 public:
  XRelation() = default;

  /// Constructs an empty x-relation with the given name and schema.
  XRelation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  /// Appends an x-tuple after validating it against the schema.
  Status Append(XTuple xtuple);

  /// Unchecked append for trusted construction (asserts in debug builds).
  void AppendUnchecked(XTuple xtuple);

  /// Pre-allocates storage for `capacity` x-tuples. A standing relation
  /// (src/ingest) relies on this: appends within the reservation never
  /// reallocate, so references to already-appended tuples stay valid
  /// while later tuples arrive.
  void Reserve(size_t capacity) { xtuples_.reserve(capacity); }

  /// Relation name.
  const std::string& name() const { return name_; }

  /// The schema.
  const Schema& schema() const { return schema_; }

  /// All x-tuples in insertion order.
  const std::vector<XTuple>& xtuples() const { return xtuples_; }

  /// X-tuple at position `i`.
  const XTuple& xtuple(size_t i) const { return xtuples_[i]; }

  /// Number of x-tuples.
  size_t size() const { return xtuples_.size(); }

  /// Total number of alternative tuples across all x-tuples.
  size_t TotalAlternatives() const;

  /// Wraps every tuple of a dependency-free relation as a single-
  /// alternative x-tuple whose alternative probability is the tuple's
  /// membership probability. Attribute-level uncertainty is preserved
  /// inside the alternative's values.
  static XRelation FromRelation(const Relation& relation);

  /// Concatenates two x-relations with compatible schemas (the paper's
  /// R34 = R3 ∪ R4); fails on schema mismatch or duplicate tuple ids.
  static Result<XRelation> Union(const XRelation& a, const XRelation& b,
                                 std::string name);

  /// Paper-style rendering.
  std::string ToString() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<XTuple> xtuples_;
};

}  // namespace pdd

#endif  // PDD_PDB_XRELATION_H_
