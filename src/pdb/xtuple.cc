#include "pdb/xtuple.h"

#include <algorithm>

#include "util/string_util.h"

namespace pdd {

double XTuple::existence_probability() const {
  double total = 0.0;
  for (const AltTuple& alt : alternatives_) total += alt.prob;
  return std::min(1.0, total);
}

bool XTuple::is_maybe() const {
  return existence_probability() < 1.0 - kProbEpsilon;
}

std::vector<double> XTuple::ConditionedProbabilities() const {
  double p = 0.0;
  for (const AltTuple& alt : alternatives_) p += alt.prob;
  std::vector<double> out(alternatives_.size(), 0.0);
  if (p <= 0.0) return out;
  for (size_t i = 0; i < alternatives_.size(); ++i) {
    out[i] = alternatives_[i].prob / p;
  }
  return out;
}

Status XTuple::Validate() const {
  if (alternatives_.empty()) {
    return Status::InvalidArgument("x-tuple '" + id_ + "' has no alternatives");
  }
  size_t arity = alternatives_[0].values.size();
  double total = 0.0;
  for (const AltTuple& alt : alternatives_) {
    if (alt.values.size() != arity) {
      return Status::InvalidArgument("x-tuple '" + id_ +
                                     "' has alternatives of mixed arity");
    }
    if (alt.prob <= 0.0 || alt.prob > 1.0 + kProbEpsilon) {
      return Status::InvalidArgument("x-tuple '" + id_ +
                                     "' alternative probability outside (0, 1]");
    }
    total += alt.prob;
  }
  if (total > 1.0 + kProbEpsilon) {
    return Status::InvalidArgument("x-tuple '" + id_ +
                                   "' alternative probabilities sum to " +
                                   FormatDouble(total) + " > 1");
  }
  return Status::OK();
}

std::string XTuple::ToString() const {
  std::string out = id_;
  if (is_maybe()) out += " ?";
  out += "\n";
  for (const AltTuple& alt : alternatives_) {
    out += "  [";
    for (size_t i = 0; i < alt.values.size(); ++i) {
      if (i > 0) out += ", ";
      out += alt.values[i].ToString();
    }
    out += "] : " + FormatDouble(alt.prob, 4) + "\n";
  }
  return out;
}

}  // namespace pdd
