// X-tuples of the ULDB/Trio model (Section IV-B): a tuple is a set of
// mutually exclusive alternative tuples; the probability sum below 1
// marks a maybe x-tuple ('?') whose non-existence is possible.

#ifndef PDD_PDB_XTUPLE_H_
#define PDD_PDB_XTUPLE_H_

#include <string>
#include <vector>

#include "pdb/value.h"
#include "util/status.h"

namespace pdd {

/// One alternative of an x-tuple: a full tuple of (possibly probabilistic)
/// attribute values with the alternative's probability.
struct AltTuple {
  /// Attribute values in schema order. Individual values can themselves be
  /// uncertain (Fig. 5's 'mu*'), in which case Section IV-A formulas apply
  /// per alternative pair.
  std::vector<Value> values;
  /// Probability of this alternative, in (0, 1].
  double prob = 1.0;
};

/// An x-tuple: one or more mutually exclusive alternative tuples.
class XTuple {
 public:
  XTuple() = default;

  /// Constructs from alternatives; use Validate() or XRelation::Append for
  /// untrusted input.
  XTuple(std::string id, std::vector<AltTuple> alternatives)
      : id_(std::move(id)), alternatives_(std::move(alternatives)) {}

  /// Identifier used in figures and gold standards (e.g. "t32").
  const std::string& id() const { return id_; }

  /// The mutually exclusive alternatives.
  const std::vector<AltTuple>& alternatives() const { return alternatives_; }

  /// Alternative `i`.
  const AltTuple& alternative(size_t i) const { return alternatives_[i]; }

  /// Number of alternatives.
  size_t size() const { return alternatives_.size(); }

  /// Attribute count (0 for an empty x-tuple).
  size_t arity() const {
    return alternatives_.empty() ? 0 : alternatives_[0].values.size();
  }

  /// p(t) = sum of alternative probabilities; the probability the x-tuple
  /// exists at all.
  double existence_probability() const;

  /// True iff existence_probability() < 1: the paper's '?' maybe x-tuple.
  bool is_maybe() const;

  /// Alternative probabilities normalized by p(t) — the paper's
  /// conditioning p(t_i)/p(t) used everywhere in duplicate detection
  /// (tuple membership must not influence matching).
  std::vector<double> ConditionedProbabilities() const;

  /// Checks alternatives: non-empty, consistent arity, probabilities in
  /// (0, 1] summing to at most 1.
  Status Validate() const;

  /// Paper-style rendering, one alternative per line.
  std::string ToString() const;

 private:
  std::string id_;
  std::vector<AltTuple> alternatives_;
};

}  // namespace pdd

#endif  // PDD_PDB_XTUPLE_H_
