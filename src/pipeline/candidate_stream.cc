#include "pipeline/candidate_stream.h"

#include <algorithm>
#include <utility>

#include "util/checked_math.h"

namespace pdd {

void AttachArenaIfColumnar(const DetectionPlan& plan,
                           CandidateStream* stream) {
  if (!plan.use_columnar_kernels()) return;
  stream->set_arena(RelationArena::Build(stream->relation()));
}

Result<std::optional<XRelation>> PrepareStreamRelation(
    const DetectionPlan& plan, std::optional<XRelation> owned,
    const XRelation* borrowed) {
  const XRelation& input = owned.has_value() ? *owned : *borrowed;
  if (!input.schema().CompatibleWith(plan.schema())) {
    return Status::InvalidArgument(
        "relation schema incompatible with detector schema");
  }
  if (plan.config().preparation.has_value()) {
    owned = plan.config().preparation->Prepare(input);
  }
  return owned;
}

size_t MaterializedCandidateStream::NextBatch(
    size_t max_batch, std::vector<CandidatePair>* out) {
  out->clear();
  size_t count = std::min(max_batch, candidates_.size() - next_);
  out->insert(out->end(), candidates_.begin() + next_,
              candidates_.begin() + next_ + count);
  next_ += count;
  return count;
}

GeneratorCandidateStream::GeneratorCandidateStream(
    std::string name, std::optional<XRelation> owned,
    const XRelation* borrowed, std::unique_ptr<PairGenerator> generator,
    size_t total_pairs, size_t min_second)
    : name_(std::move(name)),
      owned_(std::move(owned)),
      rel_(owned_.has_value() ? &*owned_ : borrowed),
      generator_(std::move(generator)),
      total_pairs_(total_pairs),
      min_second_(min_second) {}

Status GeneratorCandidateStream::Open() {
  PDD_ASSIGN_OR_RETURN(std::unique_ptr<PairBatchSource> source,
                       generator_->Stream(*rel_));
  if (min_second_ > 0) {
    // Candidates are canonicalized with first < second, so a pair
    // crosses into the additions iff its second endpoint does.
    size_t min_second = min_second_;
    source = std::make_unique<FilteringPairSource>(
        std::move(source), [min_second](const CandidatePair& pair) {
          return pair.second >= min_second;
        });
  }
  source_ = std::move(source);
  return Status::OK();
}

Result<std::unique_ptr<CandidateStream>> GeneratorCandidateStream::Make(
    std::string name, std::optional<XRelation> owned,
    const XRelation* borrowed, std::unique_ptr<PairGenerator> generator,
    size_t total_pairs, size_t min_second) {
  std::unique_ptr<GeneratorCandidateStream> stream(
      new GeneratorCandidateStream(std::move(name), std::move(owned),
                                   borrowed, std::move(generator),
                                   total_pairs, min_second));
  PDD_RETURN_IF_ERROR(stream->Open());
  return std::unique_ptr<CandidateStream>(std::move(stream));
}

size_t GeneratorCandidateStream::NextBatch(size_t max_batch,
                                           std::vector<CandidatePair>* out) {
  if (source_ == nullptr) {
    out->clear();
    return 0;
  }
  return source_->NextBatch(max_batch, out);
}

void GeneratorCandidateStream::Reset() {
  // Make() opened the identical source once successfully, so a re-open
  // failure is a generator bug; fail closed (exhausted stream) rather
  // than serving a half-open source.
  if (!Open().ok()) source_ = nullptr;
}

std::optional<size_t> GeneratorCandidateStream::candidate_count_hint() const {
  if (source_ == nullptr) return std::nullopt;
  return source_->exact_count_hint();
}

size_t GeneratorCandidateStream::buffered_candidates() const {
  return source_ == nullptr ? 0 : source_->buffered_candidates();
}

Result<std::unique_ptr<CandidateStream>> MakeFullStream(
    const DetectionPlan& plan, const XRelation& rel) {
  PDD_ASSIGN_OR_RETURN(std::optional<XRelation> owned,
                       PrepareStreamRelation(plan, std::nullopt, &rel));
  PDD_ASSIGN_OR_RETURN(
      std::unique_ptr<CandidateStream> stream,
      GeneratorCandidateStream::Make("full", std::move(owned), &rel,
                                     plan.MakePairGenerator(),
                                     TriangularPairCount(rel.size())));
  AttachArenaIfColumnar(plan, stream.get());
  return stream;
}

Result<std::unique_ptr<CandidateStream>> MakeUnionStream(
    const DetectionPlan& plan, const XRelation& a, const XRelation& b) {
  PDD_ASSIGN_OR_RETURN(XRelation merged,
                       XRelation::Union(a, b, a.name() + "+" + b.name()));
  size_t total = TriangularPairCount(merged.size());
  PDD_ASSIGN_OR_RETURN(std::optional<XRelation> owned,
                       PrepareStreamRelation(plan, std::move(merged), nullptr));
  PDD_ASSIGN_OR_RETURN(
      std::unique_ptr<CandidateStream> stream,
      GeneratorCandidateStream::Make("union", std::move(owned), nullptr,
                                     plan.MakePairGenerator(), total));
  AttachArenaIfColumnar(plan, stream.get());
  return stream;
}

Result<std::unique_ptr<CandidateStream>> MakeIncrementalStream(
    const DetectionPlan& plan, const XRelation& existing,
    const XRelation& additions) {
  PDD_ASSIGN_OR_RETURN(
      XRelation merged,
      XRelation::Union(existing, additions,
                       existing.name() + "+" + additions.name()));
  const size_t base_count = existing.size();
  const size_t new_count = additions.size();
  // Only pairs touching a new tuple are (re-)examined; intra-existing
  // pairs were already decided in a previous run.
  size_t total = SaturatingAdd(SaturatingMul(base_count, new_count),
                               TriangularPairCount(new_count));
  PDD_ASSIGN_OR_RETURN(std::optional<XRelation> owned,
                       PrepareStreamRelation(plan, std::move(merged), nullptr));
  PDD_ASSIGN_OR_RETURN(
      std::unique_ptr<CandidateStream> stream,
      GeneratorCandidateStream::Make("incremental", std::move(owned), nullptr,
                                     plan.MakePairGenerator(), total,
                                     /*min_second=*/base_count));
  AttachArenaIfColumnar(plan, stream.get());
  return stream;
}

}  // namespace pdd
