#include "pipeline/candidate_stream.h"

#include <algorithm>

namespace pdd {

namespace {

/// The prepared relation and its materialized candidates, before any
/// scenario-specific filtering.
struct StreamParts {
  /// Holds the union and/or prepared copy when one was built.
  std::optional<XRelation> owned;
  /// Valid when `owned` is empty; points at the caller's relation.
  const XRelation* borrowed = nullptr;
  std::vector<CandidatePair> candidates;
};

/// Shared head of every factory: schema check, preparation (Section
/// III-A) when configured, candidate generation with the plan's
/// reduction method.
Result<StreamParts> BuildParts(const DetectionPlan& plan,
                               std::optional<XRelation> owned,
                               const XRelation* borrowed) {
  StreamParts parts;
  parts.owned = std::move(owned);
  parts.borrowed = borrowed;
  const XRelation& input =
      parts.owned.has_value() ? *parts.owned : *parts.borrowed;
  if (!input.schema().CompatibleWith(plan.schema())) {
    return Status::InvalidArgument(
        "relation schema incompatible with detector schema");
  }
  if (plan.config().preparation.has_value()) {
    parts.owned = plan.config().preparation->Prepare(input);
  }
  const XRelation& rel =
      parts.owned.has_value() ? *parts.owned : *parts.borrowed;
  std::unique_ptr<PairGenerator> generator = plan.MakePairGenerator();
  PDD_ASSIGN_OR_RETURN(parts.candidates, generator->Generate(rel));
  return parts;
}

std::unique_ptr<CandidateStream> WrapParts(std::string name,
                                           StreamParts parts,
                                           size_t total_pairs) {
  return std::make_unique<MaterializedCandidateStream>(
      std::move(name), std::move(parts.owned), parts.borrowed,
      std::move(parts.candidates), total_pairs);
}

}  // namespace

size_t MaterializedCandidateStream::NextBatch(
    size_t max_batch, std::vector<CandidatePair>* out) {
  out->clear();
  size_t count = std::min(max_batch, candidates_.size() - next_);
  out->insert(out->end(), candidates_.begin() + next_,
              candidates_.begin() + next_ + count);
  next_ += count;
  return count;
}

Result<std::unique_ptr<CandidateStream>> MakeFullStream(
    const DetectionPlan& plan, const XRelation& rel) {
  PDD_ASSIGN_OR_RETURN(StreamParts parts,
                       BuildParts(plan, std::nullopt, &rel));
  return WrapParts("full", std::move(parts),
                   rel.size() * (rel.size() - 1) / 2);
}

Result<std::unique_ptr<CandidateStream>> MakeUnionStream(
    const DetectionPlan& plan, const XRelation& a, const XRelation& b) {
  PDD_ASSIGN_OR_RETURN(XRelation merged,
                       XRelation::Union(a, b, a.name() + "+" + b.name()));
  size_t total = merged.size() * (merged.size() - 1) / 2;
  PDD_ASSIGN_OR_RETURN(StreamParts parts,
                       BuildParts(plan, std::move(merged), nullptr));
  return WrapParts("union", std::move(parts), total);
}

Result<std::unique_ptr<CandidateStream>> MakeIncrementalStream(
    const DetectionPlan& plan, const XRelation& existing,
    const XRelation& additions) {
  PDD_ASSIGN_OR_RETURN(
      XRelation merged,
      XRelation::Union(existing, additions,
                       existing.name() + "+" + additions.name()));
  const size_t base_count = existing.size();
  const size_t new_count = additions.size();
  // Only pairs touching a new tuple are (re-)examined; intra-existing
  // pairs were already decided in a previous run.
  size_t total = base_count * new_count + new_count * (new_count - 1) / 2;
  PDD_ASSIGN_OR_RETURN(StreamParts parts,
                       BuildParts(plan, std::move(merged), nullptr));
  // Candidates are canonicalized with first < second, so a pair crosses
  // into the additions iff its second endpoint does.
  parts.candidates.erase(
      std::remove_if(parts.candidates.begin(), parts.candidates.end(),
                     [base_count](const CandidatePair& pair) {
                       return pair.second < base_count;
                     }),
      parts.candidates.end());
  return WrapParts("incremental", std::move(parts), total);
}

}  // namespace pdd
