// CandidateStream: one interface over the three candidate pair sources
// of the detector — a full run on one relation, a cross-source union
// (Section I's integration scenario) and an incremental run that only
// examines pairs touching newly added tuples. A stream owns whatever
// derived relation the scenario needs (the prepared copy, the union)
// and yields candidates in a deterministic order in bounded batches,
// so the StageExecutor can drain it serially or feed a thread pool
// without knowing which scenario produced the pairs.

#ifndef PDD_PIPELINE_CANDIDATE_STREAM_H_
#define PDD_PIPELINE_CANDIDATE_STREAM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pdb/xrelation.h"
#include "pipeline/detection_plan.h"
#include "reduction/pair_generator.h"
#include "util/status.h"

namespace pdd {

class CandidateStream {
 public:
  virtual ~CandidateStream() = default;

  /// The relation candidate indices refer to (after union/preparation).
  virtual const XRelation& relation() const = 0;

  /// Appends up to `max_batch` candidates to `*out` (which is cleared
  /// first) and returns the number appended; 0 means exhausted. The
  /// concatenation of all batches is the stream's deterministic
  /// candidate order, independent of `max_batch`.
  virtual size_t NextBatch(size_t max_batch,
                           std::vector<CandidatePair>* out) = 0;

  /// Rewinds the stream to its first candidate.
  virtual void Reset() = 0;

  /// Total candidates this stream yields.
  virtual size_t candidate_count() const = 0;

  /// The scenario's pair universe (the denominator of verification
  /// metrics): n(n-1)/2 for full/union runs, only the addition-crossing
  /// pairs for incremental runs.
  virtual size_t total_pairs() const = 0;

  /// Scenario name for reports ("full", "union", "incremental").
  virtual std::string name() const = 0;
};

/// The shared implementation: a materialized candidate vector over a
/// borrowed or owned relation.
class MaterializedCandidateStream : public CandidateStream {
 public:
  /// Borrows `rel` (must outlive the stream) unless `owned` carries the
  /// scenario's derived relation, in which case `rel` points into it.
  MaterializedCandidateStream(std::string name,
                              std::optional<XRelation> owned,
                              const XRelation* rel,
                              std::vector<CandidatePair> candidates,
                              size_t total_pairs)
      : name_(std::move(name)),
        owned_(std::move(owned)),
        rel_(owned_.has_value() ? &*owned_ : rel),
        candidates_(std::move(candidates)),
        total_pairs_(total_pairs) {}

  // rel_ may point into owned_, so a defaulted copy/move would leave it
  // dangling into the source object.
  MaterializedCandidateStream(const MaterializedCandidateStream&) = delete;
  MaterializedCandidateStream& operator=(const MaterializedCandidateStream&) =
      delete;

  const XRelation& relation() const override { return *rel_; }
  size_t NextBatch(size_t max_batch,
                   std::vector<CandidatePair>* out) override;
  void Reset() override { next_ = 0; }
  size_t candidate_count() const override { return candidates_.size(); }
  size_t total_pairs() const override { return total_pairs_; }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::optional<XRelation> owned_;
  const XRelation* rel_;
  std::vector<CandidatePair> candidates_;
  size_t total_pairs_ = 0;
  size_t next_ = 0;
};

/// Full run on one relation: applies the plan's preparation step, then
/// the plan's reduction method. `rel` must outlive the stream unless
/// preparation produced an owned copy.
Result<std::unique_ptr<CandidateStream>> MakeFullStream(
    const DetectionPlan& plan, const XRelation& rel);

/// Cross-source union: R = a ∪ b (ids must be unique across sources),
/// then behaves like the full stream over the owned union.
Result<std::unique_ptr<CandidateStream>> MakeUnionStream(
    const DetectionPlan& plan, const XRelation& a, const XRelation& b);

/// Incremental run: candidates of existing ∪ additions restricted to
/// pairs with at least one endpoint in `additions` (intra-existing
/// pairs were already decided). total_pairs() covers only the
/// incremental pair universe.
Result<std::unique_ptr<CandidateStream>> MakeIncrementalStream(
    const DetectionPlan& plan, const XRelation& existing,
    const XRelation& additions);

}  // namespace pdd

#endif  // PDD_PIPELINE_CANDIDATE_STREAM_H_
