// CandidateStream: one interface over the three candidate pair sources
// of the detector — a full run on one relation, a cross-source union
// (Section I's integration scenario) and an incremental run that only
// examines pairs touching newly added tuples. A stream owns whatever
// derived relation the scenario needs (the prepared copy, the union)
// and yields candidates in a deterministic order in bounded batches,
// so the StageExecutor can drain it serially or feed a thread pool
// without knowing which scenario produced the pairs.
//
// Since the streaming refactor the default streams PULL from the
// reduction method's PairBatchSource instead of swallowing a
// materialized vector: a native-streaming reduction (full pairs, the
// SNM family, the blocking family) keeps only O(window)/O(block) live
// candidate pairs end to end, while adapter-backed reductions keep the
// legacy materialized cost behind the same interface. The batch-order
// contract is unchanged: the concatenation of all batches is the
// reduction's canonical candidate order, independent of batch size, so
// serial, pooled, cached and uncached runs stay bit-identical with the
// materialized path.

#ifndef PDD_PIPELINE_CANDIDATE_STREAM_H_
#define PDD_PIPELINE_CANDIDATE_STREAM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "columnar/relation_arena.h"
#include "pdb/xrelation.h"
#include "pipeline/detection_plan.h"
#include "reduction/pair_generator.h"
#include "util/status.h"

namespace pdd {

class CandidateStream {
 public:
  virtual ~CandidateStream() = default;

  /// The columnar arena over relation(), when one is attached — the
  /// factories attach one (via AttachArenaIfColumnar) exactly when the
  /// plan decides through the columnar kernels, built once per stream
  /// and shared by every executor worker and shard. Null otherwise
  /// (scalar plans, custom streams, arena overflow), in which case the
  /// executor takes the per-pair scalar path.
  const std::shared_ptr<const RelationArena>& arena() const { return arena_; }

  /// Attaches (or clears) the arena; it must describe relation().
  void set_arena(std::shared_ptr<const RelationArena> arena) {
    arena_ = std::move(arena);
  }

  /// The relation candidate indices refer to (after union/preparation).
  virtual const XRelation& relation() const = 0;

  /// Appends up to `max_batch` candidates to `*out` (which is cleared
  /// first) and returns the number appended; 0 means exhausted. The
  /// concatenation of all batches is the stream's deterministic
  /// candidate order, independent of `max_batch`.
  virtual size_t NextBatch(size_t max_batch,
                           std::vector<CandidatePair>* out) = 0;

  /// Rewinds the stream to its first candidate. Pull-based streams
  /// re-open their underlying source, so a drained stream replays the
  /// identical candidate sequence (cache-warm re-runs depend on this).
  virtual void Reset() = 0;

  /// Called by the executor when NextBatch returned 0: distinguishes a
  /// source that is *exhausted* (return false — the drain ends, as for
  /// every finite batch stream) from one that is *idle but open* (block
  /// until more candidates can arrive, then return true to resume
  /// pulling). A push-based stream (src/ingest) blocks here on its
  /// ingest queue; finite streams keep the default.
  virtual bool AwaitMore() { return false; }

  /// Upper bound on relation() growth over the drain. Finite streams
  /// never grow (the default); a standing stream reports its reserved
  /// maximum so per-tuple executor state (the digest memo) can be sized
  /// once for tuples that have not arrived yet.
  virtual size_t tuple_capacity() const { return relation().size(); }

  /// Exact candidate count when known without draining (materialized
  /// streams); nullopt for pull-based streams, whose count is only
  /// known once drained. A reservation hint, never control flow.
  virtual std::optional<size_t> candidate_count_hint() const {
    return std::nullopt;
  }

  /// Candidate pairs currently materialized inside the stream (the
  /// caller's batch vector excluded). A materialized stream reports its
  /// full vector — the O(candidates) buffer the streaming path deletes;
  /// pull-based streams report the source's small live buffer. Feeds
  /// the executor's live-candidate high-water accounting.
  virtual size_t buffered_candidates() const { return 0; }

  /// The scenario's pair universe (the denominator of verification
  /// metrics): n(n-1)/2 for full/union runs, only the addition-crossing
  /// pairs for incremental runs.
  virtual size_t total_pairs() const = 0;

  /// Scenario name for reports ("full", "union", "incremental").
  virtual std::string name() const = 0;

 private:
  std::shared_ptr<const RelationArena> arena_;
};

/// Builds and attaches the RelationArena for the stream's (final,
/// post-preparation/union) relation when the plan takes the columnar
/// kernel path; no-op for scalar plans. Arena overflow (uint32 column
/// limits) leaves the stream arena-less — a silent scalar fallback,
/// never an error.
void AttachArenaIfColumnar(const DetectionPlan& plan, CandidateStream* stream);

/// A materialized candidate vector over a borrowed or owned relation.
/// No longer on the default path (the factories below stream); kept for
/// custom RunStream seams and as the contrast case benchmarks measure
/// the streaming path against.
class MaterializedCandidateStream : public CandidateStream {
 public:
  /// Borrows `rel` (must outlive the stream) unless `owned` carries the
  /// scenario's derived relation, in which case `rel` points into it.
  MaterializedCandidateStream(std::string name,
                              std::optional<XRelation> owned,
                              const XRelation* rel,
                              std::vector<CandidatePair> candidates,
                              size_t total_pairs)
      : name_(std::move(name)),
        owned_(std::move(owned)),
        rel_(owned_.has_value() ? &*owned_ : rel),
        candidates_(std::move(candidates)),
        total_pairs_(total_pairs) {}

  // rel_ may point into owned_, so a defaulted copy/move would leave it
  // dangling into the source object.
  MaterializedCandidateStream(const MaterializedCandidateStream&) = delete;
  MaterializedCandidateStream& operator=(const MaterializedCandidateStream&) =
      delete;

  const XRelation& relation() const override { return *rel_; }
  size_t NextBatch(size_t max_batch,
                   std::vector<CandidatePair>* out) override;
  void Reset() override { next_ = 0; }
  std::optional<size_t> candidate_count_hint() const override {
    return candidates_.size();
  }
  size_t buffered_candidates() const override { return candidates_.size(); }
  size_t total_pairs() const override { return total_pairs_; }
  std::string name() const override { return name_; }

  /// Total candidates this stream serves (known because materialized).
  size_t candidate_count() const { return candidates_.size(); }

 private:
  std::string name_;
  std::optional<XRelation> owned_;
  const XRelation* rel_;
  std::vector<CandidatePair> candidates_;
  size_t total_pairs_ = 0;
  size_t next_ = 0;
};

/// The default stream: owns the scenario's relation (and/or borrows the
/// caller's), owns the plan's pair generator, and pulls batches from
/// the generator's PairBatchSource. An incremental scenario additionally
/// restricts to crossing pairs (second endpoint in the additions) as
/// the batches flow past — no scenario ever re-materializes.
class GeneratorCandidateStream : public CandidateStream {
 public:
  /// Builds the stream and opens the source once (errors surface here,
  /// not from NextBatch). `borrowed` must outlive the stream unless
  /// `owned` carries the relation. `min_second` > 0 keeps only pairs
  /// whose second endpoint is >= it (the incremental crossing filter).
  static Result<std::unique_ptr<CandidateStream>> Make(
      std::string name, std::optional<XRelation> owned,
      const XRelation* borrowed, std::unique_ptr<PairGenerator> generator,
      size_t total_pairs, size_t min_second = 0);

  GeneratorCandidateStream(const GeneratorCandidateStream&) = delete;
  GeneratorCandidateStream& operator=(const GeneratorCandidateStream&) =
      delete;

  const XRelation& relation() const override { return *rel_; }
  size_t NextBatch(size_t max_batch,
                   std::vector<CandidatePair>* out) override;
  /// Re-opens the underlying source, replaying the identical sequence.
  void Reset() override;
  /// Forwards the source's exact count when it knows one (adapter-backed
  /// reductions), preserving the serial path's decisions reserve.
  std::optional<size_t> candidate_count_hint() const override;
  size_t buffered_candidates() const override;
  size_t total_pairs() const override { return total_pairs_; }
  std::string name() const override { return name_; }

  /// Whether the owning generator streams natively (bounded memory)
  /// rather than through the materializing adapter.
  bool native_streaming() const { return generator_->native_streaming(); }

 private:
  GeneratorCandidateStream(std::string name, std::optional<XRelation> owned,
                           const XRelation* borrowed,
                           std::unique_ptr<PairGenerator> generator,
                           size_t total_pairs, size_t min_second);

  /// (Re-)opens source_ from the generator.
  Status Open();

  std::string name_;
  std::optional<XRelation> owned_;
  const XRelation* rel_;
  std::unique_ptr<PairGenerator> generator_;
  size_t total_pairs_ = 0;
  size_t min_second_ = 0;
  // Last member: the source borrows rel_ and generator_, so it must be
  // destroyed first.
  std::unique_ptr<PairBatchSource> source_;
};

/// Shared head of the stream factories: checks the relation's schema
/// against the plan and applies the configured preparation step
/// (Section III-A). On return `owned` holds the union and/or prepared
/// copy when one was built; otherwise the caller's `borrowed` relation
/// is the one to use. Exposed for the sharded factories
/// (pipeline/sharded_stream.h), which share this head.
Result<std::optional<XRelation>> PrepareStreamRelation(
    const DetectionPlan& plan, std::optional<XRelation> owned,
    const XRelation* borrowed);

/// Full run on one relation: applies the plan's preparation step, then
/// streams the plan's reduction method. `rel` must outlive the stream
/// unless preparation produced an owned copy.
Result<std::unique_ptr<CandidateStream>> MakeFullStream(
    const DetectionPlan& plan, const XRelation& rel);

/// Cross-source union: R = a ∪ b (ids must be unique across sources),
/// then behaves like the full stream over the owned union.
Result<std::unique_ptr<CandidateStream>> MakeUnionStream(
    const DetectionPlan& plan, const XRelation& a, const XRelation& b);

/// Incremental run: candidates of existing ∪ additions restricted to
/// pairs with at least one endpoint in `additions` (intra-existing
/// pairs were already decided). total_pairs() covers only the
/// incremental pair universe.
Result<std::unique_ptr<CandidateStream>> MakeIncrementalStream(
    const DetectionPlan& plan, const XRelation& existing,
    const XRelation& additions);

}  // namespace pdd

#endif  // PDD_PIPELINE_CANDIDATE_STREAM_H_
