#include "pipeline/detection_plan.h"

#include "decision/rule_engine.h"
#include "decision/rule_parser.h"
#include "derive/decision_based.h"
#include "derive/similarity_based.h"
#include "reduction/blocking.h"
#include "reduction/blocking_alternatives.h"
#include "reduction/blocking_clustered.h"
#include "reduction/full_pairs.h"
#include "reduction/pruning.h"
#include "reduction/snm_certain_keys.h"
#include "reduction/snm_multipass_worlds.h"
#include "reduction/snm_sorting_alternatives.h"
#include "reduction/snm_uncertain_ranking.h"
#include "sim/registry.h"

namespace pdd {

const char* PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kMatch:
      return "match";
    case PipelineStage::kCombine:
      return "combine";
    case PipelineStage::kDerive:
      return "derive";
    case PipelineStage::kClassify:
      return "classify";
  }
  return "unknown";
}

Result<std::shared_ptr<const DetectionPlan>> DetectionPlan::Compile(
    DetectorConfig config, Schema schema) {
  PDD_RETURN_IF_ERROR(config.Validate());
  std::shared_ptr<DetectionPlan> plan(new DetectionPlan());
  // Key spec.
  PDD_ASSIGN_OR_RETURN(plan->key_spec_,
                       KeySpec::FromNames(config.key, schema));
  // Comparators: explicit names or per-type defaults.
  std::vector<const Comparator*> comparators(schema.arity(), nullptr);
  if (!config.comparators.empty() &&
      config.comparators.size() != schema.arity()) {
    return Status::InvalidArgument(
        "comparator list must match schema arity or be empty");
  }
  if (!config.custom_comparators.empty() &&
      config.custom_comparators.size() != schema.arity()) {
    return Status::InvalidArgument(
        "custom comparator list must match schema arity or be empty");
  }
  for (size_t i = 0; i < schema.arity(); ++i) {
    if (!config.custom_comparators.empty() &&
        config.custom_comparators[i] != nullptr) {
      comparators[i] = config.custom_comparators[i];
      continue;
    }
    std::string name;
    if (!config.comparators.empty()) {
      name = config.comparators[i];
    } else {
      name = schema.attribute(i).type == ValueType::kNumeric ? "numeric_rel"
                                                             : "hamming";
    }
    PDD_ASSIGN_OR_RETURN(comparators[i], GetComparator(name));
  }
  PDD_ASSIGN_OR_RETURN(TupleMatcher matcher,
                       TupleMatcher::Make(schema, comparators));
  plan->matcher_ = std::make_unique<TupleMatcher>(std::move(matcher));
  // Combination function.
  switch (config.combination) {
    case CombinationKind::kWeightedSum: {
      std::vector<double> weights = config.weights;
      if (weights.empty()) {
        weights.assign(schema.arity(),
                       1.0 / static_cast<double>(schema.arity()));
      }
      if (weights.size() != schema.arity()) {
        return Status::InvalidArgument(
            "weight count must match schema arity");
      }
      PDD_ASSIGN_OR_RETURN(WeightedSumCombination sum,
                           WeightedSumCombination::Make(std::move(weights)));
      plan->combination_ =
          std::make_unique<WeightedSumCombination>(std::move(sum));
      break;
    }
    case CombinationKind::kFellegiSunter: {
      PDD_ASSIGN_OR_RETURN(FellegiSunterModel fs,
                           FellegiSunterModel::Make(config.fs_attributes,
                                                    config.fs_interpolated));
      plan->combination_ = std::make_unique<FellegiSunterModel>(std::move(fs));
      break;
    }
    case CombinationKind::kRules: {
      PDD_ASSIGN_OR_RETURN(std::vector<IdentificationRule> rules,
                           ParseRules(config.rules_text, schema));
      PDD_ASSIGN_OR_RETURN(RuleEngine engine,
                           RuleEngine::Make(std::move(rules), schema));
      plan->combination_ =
          std::make_unique<RuleCombination>(std::move(engine));
      break;
    }
  }
  // Derivation function.
  switch (config.derivation) {
    case DerivationKind::kExpectedSimilarity:
      plan->derivation_ = std::make_unique<ExpectedSimilarityDerivation>();
      break;
    case DerivationKind::kMatchingWeight:
      plan->derivation_ =
          std::make_unique<MatchingWeightDerivation>(config.intermediate);
      break;
    case DerivationKind::kExpectedMatching:
      plan->derivation_ = std::make_unique<ExpectedMatchingDerivation>(
          config.intermediate, /*normalize=*/true);
      break;
    case DerivationKind::kMaxSimilarity:
      plan->derivation_ = std::make_unique<MaxSimilarityDerivation>();
      break;
    case DerivationKind::kMinSimilarity:
      plan->derivation_ = std::make_unique<MinSimilarityDerivation>();
      break;
    case DerivationKind::kModeSimilarity:
      plan->derivation_ = std::make_unique<ModeSimilarityDerivation>();
      break;
  }
  plan->model_ = std::make_unique<XTupleDecisionModel>(
      plan->matcher_.get(), plan->combination_.get(),
      plan->derivation_.get(), config.final_thresholds);
  plan->stages_ = {PipelineStage::kMatch, PipelineStage::kCombine,
                   PipelineStage::kDerive, PipelineStage::kClassify};
  plan->schema_ = std::move(schema);
  plan->config_ = std::move(config);
  return std::shared_ptr<const DetectionPlan>(std::move(plan));
}

std::unique_ptr<PairGenerator> DetectionPlan::MakePairGenerator() const {
  std::unique_ptr<PairGenerator> inner = MakeReductionGenerator();
  if (!config_.prune) return inner;
  PruningOptions options;
  options.threshold = config_.prune_threshold;
  options.weights = config_.weights;
  return std::make_unique<PruningFilter>(std::move(inner), options);
}

std::unique_ptr<PairGenerator> DetectionPlan::MakeReductionGenerator() const {
  switch (config_.reduction) {
    case ReductionMethod::kFull:
      return std::make_unique<FullPairs>();
    case ReductionMethod::kSnmMultipassWorlds: {
      SnmMultipassOptions options;
      options.window = config_.window;
      options.selection = config_.world_selection;
      options.value_strategy = config_.conflict_strategy;
      return std::make_unique<SnmMultipassWorlds>(key_spec_, options);
    }
    case ReductionMethod::kSnmCertainKeys: {
      SnmCertainKeyOptions options;
      options.window = config_.window;
      options.strategy = config_.conflict_strategy;
      return std::make_unique<SnmCertainKeys>(key_spec_, options);
    }
    case ReductionMethod::kSnmSortingAlternatives: {
      SnmAlternativesOptions options;
      options.window = config_.window;
      return std::make_unique<SnmSortingAlternatives>(key_spec_, options);
    }
    case ReductionMethod::kSnmUncertainRanking: {
      SnmRankingOptions options;
      options.window = config_.window;
      options.method = config_.ranking_method;
      return std::make_unique<SnmUncertainRanking>(key_spec_, options);
    }
    case ReductionMethod::kBlockingCertainKeys:
      return std::make_unique<BlockingCertainKeys>(key_spec_,
                                                   config_.conflict_strategy);
    case ReductionMethod::kBlockingAlternatives:
      return std::make_unique<BlockingAlternatives>(key_spec_);
    case ReductionMethod::kBlockingMultipassWorlds:
      return std::make_unique<BlockingMultipassWorlds>(
          key_spec_, config_.world_selection);
    case ReductionMethod::kBlockingClustered:
      return std::make_unique<BlockingClustered>(key_spec_,
                                                 config_.clustering);
    case ReductionMethod::kCanopy:
      return std::make_unique<CanopyReduction>(key_spec_, config_.canopy);
    case ReductionMethod::kSnmAdaptive:
      return std::make_unique<SnmAdaptive>(key_spec_, config_.adaptive);
    case ReductionMethod::kQGramIndex:
      return std::make_unique<QGramIndexReduction>(key_spec_, config_.qgram);
  }
  return std::make_unique<FullPairs>();
}

ComparisonMatrix DetectionPlan::RunMatchStage(const XTuple& t1,
                                              const XTuple& t2) const {
  return matcher_->CompareXTuples(t1, t2);
}

AlternativePairScores DetectionPlan::RunCombineStage(
    const XTuple& t1, const XTuple& t2, const ComparisonMatrix& matrix) const {
  return CombineComparisonMatrix(t1, t2, matrix, *combination_);
}

double DetectionPlan::RunDeriveStage(const AlternativePairScores& scores) const {
  return derivation_->Derive(scores);
}

MatchClass DetectionPlan::RunClassifyStage(double similarity) const {
  return Classify(similarity, config_.final_thresholds);
}

XPairDecision DetectionPlan::DecidePair(const XTuple& t1,
                                        const XTuple& t2) const {
  // Walks the compiled stage graph, so stages() is the actual execution
  // order, not descriptive metadata.
  ComparisonMatrix matrix;
  AlternativePairScores scores;
  XPairDecision decision;
  for (PipelineStage stage : stages_) {
    switch (stage) {
      case PipelineStage::kMatch:
        matrix = RunMatchStage(t1, t2);
        break;
      case PipelineStage::kCombine:
        scores = RunCombineStage(t1, t2, matrix);
        break;
      case PipelineStage::kDerive:
        decision.similarity = RunDeriveStage(scores);
        break;
      case PipelineStage::kClassify:
        decision.match_class = RunClassifyStage(decision.similarity);
        break;
    }
  }
  return decision;
}

}  // namespace pdd
