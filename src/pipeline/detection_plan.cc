#include "pipeline/detection_plan.h"

#include "plan/registry.h"
#include "reduction/full_pairs.h"
#include "reduction/pruning.h"
#include "sim/registry.h"

namespace pdd {

/// Reduction/key/prune only choose WHICH pairs are examined,
/// preparation rewrites the content itself (captured by the pair
/// digest), and executor/shard tuning is a pure throughput/placement
/// knob. Keys added by future components default to decision-relevant,
/// which is the safe direction (fewer cross-plan cache hits, never
/// stale ones).
bool IsDecisionIrrelevantSpecKey(const std::string& key) {
  static const char* kPrefixes[] = {"key", "reduction", "prepare", "prune",
                                    "executor", "shard"};
  for (const char* prefix : kPrefixes) {
    size_t len = std::char_traits<char>::length(prefix);
    if (key.compare(0, len, prefix) == 0 &&
        (key.size() == len || key[len] == '.')) {
      return true;
    }
  }
  return false;
}

namespace {

/// The decide-stage subset of a plan spec, fingerprinted as the plan
/// half of the decision-cache key.
uint64_t DecisionFingerprint(const PlanSpec& spec) {
  PlanSpec subset;
  for (const auto& [key, value] : spec.params().entries()) {
    if (!IsDecisionIrrelevantSpecKey(key)) subset.params().Set(key, value);
  }
  return subset.Fingerprint();
}

}  // namespace

const char* PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kMatch:
      return "match";
    case PipelineStage::kCombine:
      return "combine";
    case PipelineStage::kDerive:
      return "derive";
    case PipelineStage::kClassify:
      return "classify";
  }
  return "unknown";
}

Result<std::shared_ptr<const DetectionPlan>> DetectionPlan::Compile(
    const PlanSpec& spec, Schema schema) {
  PDD_ASSIGN_OR_RETURN(DetectorConfig config, DetectorConfig::FromSpec(spec));
  return Compile(std::move(config), std::move(schema));
}

Result<std::shared_ptr<const DetectionPlan>> DetectionPlan::Compile(
    DetectorConfig config, Schema schema) {
  PDD_RETURN_IF_ERROR(config.Validate());
  const ComponentRegistry& registry = ComponentRegistry::Global();
  std::shared_ptr<DetectionPlan> plan(new DetectionPlan());
  // Key spec.
  PDD_ASSIGN_OR_RETURN(plan->key_spec_,
                       KeySpec::FromNames(config.key, schema));
  // Comparators: explicit names or per-type defaults (empty and
  // "default" entries select by attribute type).
  std::vector<const Comparator*> comparators(schema.arity(), nullptr);
  if (!config.comparators.empty() &&
      config.comparators.size() != schema.arity()) {
    return Status::InvalidArgument(
        "comparator list must match schema arity or be empty");
  }
  if (!config.custom_comparators.empty() &&
      config.custom_comparators.size() != schema.arity()) {
    return Status::InvalidArgument(
        "custom comparator list must match schema arity or be empty");
  }
  // Kernel resolution rides along with comparator resolution: the
  // columnar path needs a kernel for EVERY attribute (one scalar-only
  // comparator forces the whole plan scalar — a mixed per-attribute
  // path would split the batch loop and lose the flat-loop shape).
  std::vector<ColumnarKernelFn> kernels(schema.arity(), nullptr);
  std::string kernel_gap;  // why the columnar path is unavailable
  for (size_t i = 0; i < schema.arity(); ++i) {
    if (!config.custom_comparators.empty() &&
        config.custom_comparators[i] != nullptr) {
      comparators[i] = config.custom_comparators[i];
      if (kernel_gap.empty()) {
        kernel_gap = "attribute '" + schema.attribute(i).name +
                     "' uses a custom comparator instance";
      }
      continue;
    }
    std::string name;
    if (!config.comparators.empty()) {
      name = config.comparators[i];
    }
    if (name.empty() || name == "default") {
      name = schema.attribute(i).type == ValueType::kNumeric ? "numeric_rel"
                                                             : "hamming";
    }
    // Validate() already rejected named unsound comparators; with the
    // schema in hand we can also catch per-type defaults (numeric_rel
    // for numeric attributes) that would make the prune bound unsound.
    if (config.prune && !IsMaxLengthNormalizedComparator(name)) {
      return Status::InvalidArgument(
          "prune requires max-length-normalized comparators; attribute '" +
          schema.attribute(i).name + "' resolves to '" + name + "'");
    }
    PDD_ASSIGN_OR_RETURN(comparators[i], GetComparator(name));
    kernels[i] = FindColumnarKernel(name);
    if (kernels[i] == nullptr && kernel_gap.empty()) {
      kernel_gap = "attribute '" + schema.attribute(i).name +
                   "' resolves to '" + name + "', which has no columnar "
                   "kernel";
    }
  }
  if (config.match_kernel == MatchKernel::kColumnar && !kernel_gap.empty()) {
    return Status::InvalidArgument("match.kernel = columnar, but " +
                                   kernel_gap);
  }
  plan->use_columnar_kernels_ =
      config.match_kernel != MatchKernel::kScalar && kernel_gap.empty();
  if (plan->use_columnar_kernels_) plan->columnar_kernels_ = std::move(kernels);
  PDD_ASSIGN_OR_RETURN(TupleMatcher matcher,
                       TupleMatcher::Make(schema, comparators));
  plan->matcher_ = std::make_unique<TupleMatcher>(std::move(matcher));
  // Combination function φ, resolved by registry name.
  PDD_ASSIGN_OR_RETURN(
      const ComponentRegistry::CombinationEntry* combination,
      registry.FindCombination(CombinationKindName(config.combination)));
  PDD_ASSIGN_OR_RETURN(plan->combination_,
                       combination->make(config, schema));
  // Derivation function ϑ, resolved by registry name.
  PDD_ASSIGN_OR_RETURN(
      const ComponentRegistry::DerivationEntry* derivation,
      registry.FindDerivation(DerivationKindName(config.derivation)));
  plan->derivation_ = derivation->make(config);
  // Reduction is resolved here too so a bad enum value fails at
  // compile time rather than at the first run.
  PDD_RETURN_IF_ERROR(
      registry.FindReduction(ReductionMethodName(config.reduction)).status());
  plan->model_ = std::make_unique<XTupleDecisionModel>(
      plan->matcher_.get(), plan->combination_.get(),
      plan->derivation_.get(), config.final_thresholds);
  plan->stages_ = {PipelineStage::kMatch, PipelineStage::kCombine,
                   PipelineStage::kDerive, PipelineStage::kClassify};
  plan->spec_ = config.ToSpec();
  plan->fingerprint_ = plan->spec_.Fingerprint();
  // Custom comparator instances decide pairs through code the spec
  // cannot name; 0 marks the plan cache-ineligible so the executor
  // never memoizes (or serves) decisions it cannot key soundly.
  bool has_custom_comparator = false;
  for (const Comparator* comparator : config.custom_comparators) {
    has_custom_comparator = has_custom_comparator || comparator != nullptr;
  }
  plan->decision_fingerprint_ =
      has_custom_comparator ? 0 : DecisionFingerprint(plan->spec_);
  plan->schema_ = std::move(schema);
  plan->config_ = std::move(config);
  return std::shared_ptr<const DetectionPlan>(std::move(plan));
}

std::unique_ptr<PairGenerator> DetectionPlan::MakePairGenerator() const {
  std::unique_ptr<PairGenerator> inner = MakeReductionGenerator();
  if (!config_.prune) return inner;
  PruningOptions options;
  options.threshold = config_.prune_threshold;
  options.weights = config_.weights;
  return std::make_unique<PruningFilter>(std::move(inner), options);
}

std::unique_ptr<PairGenerator> DetectionPlan::MakeReductionGenerator() const {
  auto entry = ComponentRegistry::Global().FindReduction(
      ReductionMethodName(config_.reduction));
  if (!entry.ok()) return std::make_unique<FullPairs>();
  return (*entry)->make(config_, key_spec_);
}

ComparisonMatrix DetectionPlan::RunMatchStage(const XTuple& t1,
                                              const XTuple& t2) const {
  return matcher_->CompareXTuples(t1, t2);
}

AlternativePairScores DetectionPlan::RunCombineStage(
    const XTuple& t1, const XTuple& t2, const ComparisonMatrix& matrix) const {
  return CombineComparisonMatrix(t1, t2, matrix, *combination_);
}

double DetectionPlan::RunDeriveStage(const AlternativePairScores& scores) const {
  return derivation_->Derive(scores);
}

MatchClass DetectionPlan::RunClassifyStage(double similarity) const {
  return Classify(similarity, config_.final_thresholds);
}

XPairDecision DetectionPlan::DecidePair(const XTuple& t1,
                                        const XTuple& t2) const {
  // Walks the compiled stage graph, so stages() is the actual execution
  // order, not descriptive metadata.
  ComparisonMatrix matrix;
  AlternativePairScores scores;
  XPairDecision decision;
  for (PipelineStage stage : stages_) {
    switch (stage) {
      case PipelineStage::kMatch:
        matrix = RunMatchStage(t1, t2);
        break;
      case PipelineStage::kCombine:
        scores = RunCombineStage(t1, t2, matrix);
        break;
      case PipelineStage::kDerive:
        decision.similarity = RunDeriveStage(scores);
        break;
      case PipelineStage::kClassify:
        decision.match_class = RunClassifyStage(decision.similarity);
        break;
    }
  }
  return decision;
}

}  // namespace pdd
