// DetectionPlan: the compiled, immutable form of one DetectorConfig
// against one schema. Compilation resolves comparators, the key spec,
// the combination function φ, the derivation function ϑ and the final
// classifier once; every run then shares the plan. All methods are
// const and safe to call from multiple threads concurrently, which is
// what lets the StageExecutor fan candidate batches out to a pool.
//
// The plan also names the stage graph the executor walks per candidate
// (Fig. 6): attribute value matching (Section IV-A) → combination φ →
// derivation ϑ (Section IV-B) → final classification (Fig. 2). Each
// stage is independently executable through the Run*Stage entry points
// (explanations and diagnostics use them piecemeal).

#ifndef PDD_PIPELINE_DETECTION_PLAN_H_
#define PDD_PIPELINE_DETECTION_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "derive/xtuple_decision_model.h"
#include "keys/key_spec.h"
#include "match/tuple_matcher.h"
#include "pdb/xrelation.h"
#include "plan/plan_spec.h"
#include "reduction/pair_generator.h"
#include "sim/columnar_kernels.h"
#include "util/status.h"

namespace pdd {

/// The per-candidate pipeline stages, in execution order.
enum class PipelineStage {
  kMatch = 0,     // comparison matrix of the alternative pairs (§IV-A)
  kCombine = 1,   // φ on every comparison vector + conditioned probs
  kDerive = 2,    // derivation function ϑ (§IV-B)
  kClassify = 3,  // final threshold classification (Fig. 2)
};

/// Stable stage name for reports ("match", "combine", ...).
const char* PipelineStageName(PipelineStage stage);

/// True for spec keys that cannot change what DecidePair returns for a
/// given pair content (key/reduction/prepare/prune choose WHICH pairs
/// are examined; executor/shard tuning is pure throughput/placement).
/// These keys are excluded from decision_fingerprint(), so the
/// decision cache carries across them. Exposed for diagnostics
/// (`pddcli lint-plan`) and the spec-closure lint.
bool IsDecisionIrrelevantSpecKey(const std::string& key);

class DetectionPlan {
 public:
  /// Primary path: compiles a declarative plan spec against the schema.
  /// Component names resolve through the ComponentRegistry; the
  /// resulting plan's fingerprint identifies the spec.
  static Result<std::shared_ptr<const DetectionPlan>> Compile(
      const PlanSpec& spec, Schema schema);

  /// Compiles the C++-native configuration form. Equivalent to the spec
  /// path (components resolve through the same registry); the plan's
  /// spec()/fingerprint() are derived via DetectorConfig::ToSpec.
  static Result<std::shared_ptr<const DetectionPlan>> Compile(
      DetectorConfig config, Schema schema);

  const DetectorConfig& config() const { return config_; }

  /// The canonical declarative form of this plan (what --print-plan
  /// emits) and its stable 64-bit identity. Two plans with the same
  /// fingerprint decide pairs identically (modulo custom comparator /
  /// preparation instances, which fingerprint as opaque "custom"
  /// markers).
  const PlanSpec& spec() const { return spec_; }
  uint64_t fingerprint() const { return fingerprint_; }

  /// Fingerprint of only the decide-stage components (φ, ϑ,
  /// comparators, classification thresholds) — the plan half of the
  /// decision-cache key. Plans that differ solely in reduction, key,
  /// preparation, pruning or executor tuning share it: those knobs
  /// never change what DecidePair returns for a given pair content
  /// (preparation changes the content itself, which the pair digest
  /// captures), so sweep points can reuse each other's cached
  /// decisions. 0 when the plan is cache-ineligible (custom comparator
  /// instances have no stable identity to fingerprint).
  uint64_t decision_fingerprint() const { return decision_fingerprint_; }
  const Schema& schema() const { return schema_; }
  const KeySpec& key_spec() const { return key_spec_; }
  const TupleMatcher& matcher() const { return *matcher_; }
  const CombinationFunction& combination() const { return *combination_; }
  const DerivationFunction& derivation() const { return *derivation_; }
  const XTupleDecisionModel& model() const { return *model_; }

  /// The stage graph in execution order.
  const std::vector<PipelineStage>& stages() const { return stages_; }

  /// True when this plan decides pairs through the columnar kernel
  /// path (match.kernel resolved at compile time: kAuto selects it iff
  /// every resolved comparator has a kernel and no custom comparator
  /// instance is installed; kColumnar on an ineligible plan fails
  /// compilation). Both paths are bit-identical — this is purely the
  /// throughput choice the executor honours when an arena is attached.
  bool use_columnar_kernels() const { return use_columnar_kernels_; }

  /// One kernel per schema attribute; empty unless
  /// use_columnar_kernels().
  const std::vector<ColumnarKernelFn>& columnar_kernels() const {
    return columnar_kernels_;
  }

  /// The resolved match-kernel choice ("columnar" or "scalar") for
  /// execution-statistics reporting.
  const char* match_kernel_name() const {
    return use_columnar_kernels_ ? "columnar" : "scalar";
  }

  /// Builds the configured pair generator (stateless w.r.t. relations),
  /// wrapped in the pruning filter when configured.
  std::unique_ptr<PairGenerator> MakePairGenerator() const;

  // --- independently executable stage entry points ------------------

  /// Stage kMatch: the k×l comparison matrix of an x-tuple pair.
  ComparisonMatrix RunMatchStage(const XTuple& t1, const XTuple& t2) const;

  /// Stage kCombine: φ over a comparison matrix plus the conditioned
  /// alternative probabilities of the pair.
  AlternativePairScores RunCombineStage(const XTuple& t1, const XTuple& t2,
                                        const ComparisonMatrix& matrix) const;

  /// Stage kDerive: sim(t1, t2) from the alternative pair scores.
  double RunDeriveStage(const AlternativePairScores& scores) const;

  /// Stage kClassify: η(t1, t2) from the derived similarity.
  MatchClass RunClassifyStage(double similarity) const;

  /// All four stages on one candidate pair.
  XPairDecision DecidePair(const XTuple& t1, const XTuple& t2) const;

 private:
  DetectionPlan() = default;

  /// The bare reduction method without the pruning wrapper.
  std::unique_ptr<PairGenerator> MakeReductionGenerator() const;

  DetectorConfig config_;
  PlanSpec spec_;
  uint64_t fingerprint_ = 0;
  uint64_t decision_fingerprint_ = 0;
  Schema schema_;
  KeySpec key_spec_;
  std::vector<PipelineStage> stages_;
  bool use_columnar_kernels_ = false;
  std::vector<ColumnarKernelFn> columnar_kernels_;
  std::unique_ptr<TupleMatcher> matcher_;
  std::unique_ptr<CombinationFunction> combination_;
  std::unique_ptr<DerivationFunction> derivation_;
  std::unique_ptr<XTupleDecisionModel> model_;
};

}  // namespace pdd

#endif  // PDD_PIPELINE_DETECTION_PLAN_H_
