#include "pipeline/detection_result.h"

#include <cstring>

namespace pdd {

namespace {

// FNV-1a 64 (the PlanSpec::Fingerprint / pair_digest idiom), with
// length prefixes between strings so adjacent fields cannot alias and
// doubles hashed by bit pattern (bit-identical round trips).
constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t* hash, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    *hash ^= bytes[i];
    *hash *= kFnvPrime;
  }
}

void HashU64(uint64_t* hash, uint64_t value) {
  HashBytes(hash, &value, sizeof(value));
}

void HashString(uint64_t* hash, const std::string& s) {
  HashU64(hash, s.size());
  HashBytes(hash, s.data(), s.size());
}

// The one shared filtering walk: counts first so callers can reserve,
// then emits through `emit(record)`.
template <typename Emit>
void ForEachOfClass(const std::vector<PairDecisionRecord>& decisions,
                    MatchClass match_class, Emit emit) {
  for (const PairDecisionRecord& rec : decisions) {
    if (rec.match_class == match_class) emit(rec);
  }
}

}  // namespace

uint64_t DetectionResult::ContentDigest() const {
  uint64_t hash = kFnvOffset;
  HashU64(&hash, plan_fingerprint);
  HashU64(&hash, candidate_count);
  HashU64(&hash, total_pairs);
  HashU64(&hash, decisions.size());
  for (const PairDecisionRecord& rec : decisions) {
    HashString(&hash, rec.id1);
    HashString(&hash, rec.id2);
    HashU64(&hash, rec.index1);
    HashU64(&hash, rec.index2);
    uint64_t sim_bits = 0;
    static_assert(sizeof(sim_bits) == sizeof(rec.similarity),
                  "similarity must be a 64-bit double");
    std::memcpy(&sim_bits, &rec.similarity, sizeof(sim_bits));
    HashU64(&hash, sim_bits);
    HashU64(&hash, static_cast<uint64_t>(rec.match_class));
  }
  return hash;
}

size_t DetectionResult::CountClass(MatchClass match_class) const {
  size_t count = 0;
  ForEachOfClass(decisions, match_class,
                 [&](const PairDecisionRecord&) { ++count; });
  return count;
}

std::vector<const PairDecisionRecord*> DetectionResult::RecordsOfClass(
    MatchClass match_class) const {
  std::vector<const PairDecisionRecord*> out;
  out.reserve(CountClass(match_class));
  ForEachOfClass(decisions, match_class,
                 [&](const PairDecisionRecord& rec) { out.push_back(&rec); });
  return out;
}

std::vector<IdPair> DetectionResult::IdPairsOfClass(
    MatchClass match_class) const {
  std::vector<IdPair> out;
  out.reserve(CountClass(match_class));
  ForEachOfClass(decisions, match_class, [&](const PairDecisionRecord& rec) {
    out.push_back(MakeIdPair(rec.id1, rec.id2));
  });
  return out;
}

std::vector<IdPair> DetectionResult::Matches() const {
  return IdPairsOfClass(MatchClass::kMatch);
}

std::vector<IdPair> DetectionResult::PossibleMatches() const {
  return IdPairsOfClass(MatchClass::kPossible);
}

std::vector<IdPair> DetectionResult::Unmatches() const {
  return IdPairsOfClass(MatchClass::kUnmatch);
}

}  // namespace pdd
