#include "pipeline/detection_result.h"

namespace pdd {

namespace {

// The one shared filtering walk: counts first so callers can reserve,
// then emits through `emit(record)`.
template <typename Emit>
void ForEachOfClass(const std::vector<PairDecisionRecord>& decisions,
                    MatchClass match_class, Emit emit) {
  for (const PairDecisionRecord& rec : decisions) {
    if (rec.match_class == match_class) emit(rec);
  }
}

}  // namespace

size_t DetectionResult::CountClass(MatchClass match_class) const {
  size_t count = 0;
  ForEachOfClass(decisions, match_class,
                 [&](const PairDecisionRecord&) { ++count; });
  return count;
}

std::vector<const PairDecisionRecord*> DetectionResult::RecordsOfClass(
    MatchClass match_class) const {
  std::vector<const PairDecisionRecord*> out;
  out.reserve(CountClass(match_class));
  ForEachOfClass(decisions, match_class,
                 [&](const PairDecisionRecord& rec) { out.push_back(&rec); });
  return out;
}

std::vector<IdPair> DetectionResult::IdPairsOfClass(
    MatchClass match_class) const {
  std::vector<IdPair> out;
  out.reserve(CountClass(match_class));
  ForEachOfClass(decisions, match_class, [&](const PairDecisionRecord& rec) {
    out.push_back(MakeIdPair(rec.id1, rec.id2));
  });
  return out;
}

std::vector<IdPair> DetectionResult::Matches() const {
  return IdPairsOfClass(MatchClass::kMatch);
}

std::vector<IdPair> DetectionResult::PossibleMatches() const {
  return IdPairsOfClass(MatchClass::kPossible);
}

std::vector<IdPair> DetectionResult::Unmatches() const {
  return IdPairsOfClass(MatchClass::kUnmatch);
}

}  // namespace pdd
