// The output of one detection run: one decision record per examined
// candidate pair, plus the counts verification metrics need. Produced by
// the StageExecutor and consumed by core reports, verification and
// result fusion.

#ifndef PDD_PIPELINE_DETECTION_RESULT_H_
#define PDD_PIPELINE_DETECTION_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "decision/classifier.h"
#include "verify/gold_standard.h"

namespace pdd {

/// Decision record for one examined candidate pair.
struct PairDecisionRecord {
  std::string id1;
  std::string id2;
  size_t index1 = 0;
  size_t index2 = 0;
  /// The derived similarity sim(t1, t2).
  double similarity = 0.0;
  /// Final classification η(t1, t2).
  MatchClass match_class = MatchClass::kUnmatch;
};

/// Result of one detection run.
struct DetectionResult {
  /// One record per candidate pair, in candidate order.
  std::vector<PairDecisionRecord> decisions;
  /// Candidate pairs examined (after reduction).
  size_t candidate_count = 0;
  /// All pairs of the scenario (n(n-1)/2 for a full run; only the
  /// addition-crossing pairs for an incremental run).
  size_t total_pairs = 0;
  /// Fingerprint of the plan that produced this result
  /// (DetectionPlan::fingerprint(); 0 when unknown). Identifies which
  /// declarative plan the decisions belong to — the cache/merge key for
  /// repeated and incremental runs.
  uint64_t plan_fingerprint = 0;

  /// Number of decisions classified `match_class`.
  size_t CountClass(MatchClass match_class) const;

  /// Pointers into `decisions` for the records classified `match_class`,
  /// in candidate order. Invalidated when `decisions` mutates.
  std::vector<const PairDecisionRecord*> RecordsOfClass(
      MatchClass match_class) const;

  /// Id pairs of the records classified `match_class`, in candidate order.
  std::vector<IdPair> IdPairsOfClass(MatchClass match_class) const;

  /// Id pairs classified m / p / u.
  std::vector<IdPair> Matches() const;
  std::vector<IdPair> PossibleMatches() const;
  std::vector<IdPair> Unmatches() const;
};

}  // namespace pdd

#endif  // PDD_PIPELINE_DETECTION_RESULT_H_
