// The output of one detection run: one decision record per examined
// candidate pair, plus the counts verification metrics need. Produced by
// the StageExecutor and consumed by core reports, verification and
// result fusion.

#ifndef PDD_PIPELINE_DETECTION_RESULT_H_
#define PDD_PIPELINE_DETECTION_RESULT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "decision/classifier.h"
#include "verify/gold_standard.h"

namespace pdd {

struct RunTelemetry;

/// Accumulated wall time per pipeline stage over one run. With a
/// thread pool the per-worker accumulations are summed, so the numbers
/// are CPU-time-like: they compare stages against each other (which
/// stage is hottest), not against the run's elapsed wall clock.
struct StageTimings {
  double match_seconds = 0.0;
  double combine_seconds = 0.0;
  double derive_seconds = 0.0;
  double classify_seconds = 0.0;
  /// Digest computation + cache lookup on the memoized path.
  double cache_lookup_seconds = 0.0;

  double TotalSeconds() const {
    return match_seconds + combine_seconds + derive_seconds +
           classify_seconds + cache_lookup_seconds;
  }
  StageTimings& operator+=(const StageTimings& other) {
    match_seconds += other.match_seconds;
    combine_seconds += other.combine_seconds;
    derive_seconds += other.derive_seconds;
    classify_seconds += other.classify_seconds;
    cache_lookup_seconds += other.cache_lookup_seconds;
    return *this;
  }
};

/// Decision-cache activity of one run (run-local, unlike the cache's
/// own lifetime DecisionCacheStats).
struct CacheRunStats {
  size_t lookups = 0;
  size_t hits = 0;
  size_t misses = 0;
  size_t inserts = 0;

  double HitRate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
  CacheRunStats& operator+=(const CacheRunStats& other) {
    lookups += other.lookups;
    hits += other.hits;
    misses += other.misses;
    inserts += other.inserts;
    return *this;
  }
};

/// Candidate-stream accounting of one run (drain-loop
/// instrumentation). Rendered by ExecutionStatsReport and `pddcli
/// --stream-candidates`, never by the detection report itself, because
/// the pooled high-water depends on worker timing while reports must
/// stay byte-identical across worker counts.
struct StreamRunStats {
  /// Batches the executor pulled from the stream.
  size_t batches = 0;
  /// Peak candidate pairs simultaneously live: the stream's internal
  /// buffers plus all in-flight batches. A materialized stream peaks at
  /// its full candidate count — the O(candidates) buffer the streaming
  /// path deletes; native-streaming reductions peak at
  /// O(window/block + workers · batch). For a sharded drain this is the
  /// sum of the per-shard high-waters (the worst-case simultaneous
  /// residency when every shard runs in one process; on a multi-node
  /// placement each shard pays only its own entry below).
  size_t live_candidate_high_water = 0;
  /// Per-shard drain accounting of a sharded run (one entry per shard,
  /// empty for unsharded streams). Each entry's high-water is that
  /// shard's own live bound — the number a node hosting the shard must
  /// provision for.
  std::vector<StreamRunStats> per_shard;
};

/// Decision record for one examined candidate pair.
struct PairDecisionRecord {
  std::string id1;
  std::string id2;
  size_t index1 = 0;
  size_t index2 = 0;
  /// The derived similarity sim(t1, t2).
  double similarity = 0.0;
  /// Final classification η(t1, t2).
  MatchClass match_class = MatchClass::kUnmatch;
};

/// Result of one detection run.
struct DetectionResult {
  /// One record per candidate pair, in candidate order.
  std::vector<PairDecisionRecord> decisions;
  /// Candidate pairs examined (after reduction).
  size_t candidate_count = 0;
  /// All pairs of the scenario (n(n-1)/2 for a full run; only the
  /// addition-crossing pairs for an incremental run).
  size_t total_pairs = 0;
  /// Fingerprint of the plan that produced this result
  /// (DetectionPlan::fingerprint()). 0 means unknown — a result that
  /// was hand-assembled rather than produced by the executor; every
  /// executor entry path (Run/RunOnSources/RunIncremental/RunStream)
  /// stamps a real, non-zero fingerprint. Identifies which declarative
  /// plan the decisions belong to — the merge key for repeated and
  /// incremental runs.
  uint64_t plan_fingerprint = 0;
  /// Accumulated per-stage wall times (executor instrumentation; all
  /// zero when the executor ran with stage_timings off).
  StageTimings stage_timings;
  /// Whether the run collected stage timings at all. An all-zero
  /// `stage_timings` is ambiguous — a tiny timed run can finish below
  /// clock resolution — so reports need this flag to distinguish
  /// "(disabled)" from genuinely instant stages.
  bool stage_timings_collected = false;
  /// Decision-cache activity of this run; nullopt when the run had no
  /// cache attached.
  std::optional<CacheRunStats> cache_stats;
  /// Candidate-stream drain accounting (always collected; the counters
  /// are two integers per batch).
  StreamRunStats stream_stats;
  /// Which match-stage implementation the executor ran: "columnar"
  /// (batched kernels over the stream's RelationArena) or "scalar"
  /// (per-pair TupleMatcher). Rendered by ExecutionStatsReport only —
  /// both paths are bit-identical, so the detection report never
  /// mentions it. Empty for hand-assembled results.
  std::string match_kernel;
  /// Unified telemetry of the run: the metrics registry plus the span
  /// tree (see obs/run_telemetry.h). Attached by the executor; null for
  /// hand-assembled results (consumers fall back to
  /// TelemetryFromResult over the stat fields above, which are
  /// themselves views over this registry when it is present).
  std::shared_ptr<RunTelemetry> telemetry;

  /// FNV-1a 64-bit digest of this result's decision content: the plan
  /// fingerprint, the pair counts and every decision record (ids,
  /// indices, similarity bit pattern, class) in candidate order. Two
  /// runs with byte-identical reports share it; any divergence —
  /// different plan, different input, different decisions — changes
  /// it. The decision-index builder stamps it into the index header so
  /// staleness against a later run is detected structurally (see
  /// index/format.h); excludes telemetry and the stage/cache/stream
  /// stats, which legitimately vary across execution shapes.
  uint64_t ContentDigest() const;

  /// Number of decisions classified `match_class`.
  size_t CountClass(MatchClass match_class) const;

  /// Pointers into `decisions` for the records classified `match_class`,
  /// in candidate order. Invalidated when `decisions` mutates.
  std::vector<const PairDecisionRecord*> RecordsOfClass(
      MatchClass match_class) const;

  /// Id pairs of the records classified `match_class`, in candidate order.
  std::vector<IdPair> IdPairsOfClass(MatchClass match_class) const;

  /// Id pairs classified m / p / u.
  std::vector<IdPair> Matches() const;
  std::vector<IdPair> PossibleMatches() const;
  std::vector<IdPair> Unmatches() const;
};

}  // namespace pdd

#endif  // PDD_PIPELINE_DETECTION_RESULT_H_
