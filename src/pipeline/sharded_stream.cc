#include "pipeline/sharded_stream.h"

#include <algorithm>
#include <utility>

#include "keys/key_builder.h"
#include "util/checked_math.h"

namespace pdd {

ShardStrategy ResolveShardStrategy(ShardStrategy requested,
                                   ReductionMethod method) {
  if (requested != ShardStrategy::kAuto) return requested;
  switch (method) {
    case ReductionMethod::kSnmMultipassWorlds:
    case ReductionMethod::kSnmCertainKeys:
    case ReductionMethod::kSnmSortingAlternatives:
    case ReductionMethod::kSnmUncertainRanking:
    case ReductionMethod::kSnmAdaptive:
      return ShardStrategy::kKeyRange;
    case ReductionMethod::kBlockingCertainKeys:
    case ReductionMethod::kBlockingAlternatives:
    case ReductionMethod::kBlockingMultipassWorlds:
    case ReductionMethod::kBlockingClustered:
      return ShardStrategy::kBlockSubset;
    case ReductionMethod::kFull:
    case ReductionMethod::kCanopy:
    case ReductionMethod::kQGramIndex:
      return ShardStrategy::kIndexRange;
  }
  return ShardStrategy::kIndexRange;
}

namespace {

/// The assignment of one (prepared) relation under a resolved strategy.
/// Key-based strategies group by the plan's certain key — the same key
/// the SNM/blocking families sort and block by — so shard boundaries
/// follow the reduction's own locality. The assignment only balances
/// load; correctness never depends on it (ownership filtering does).
ShardAssignment BuildAssignment(const DetectionPlan& plan,
                                const XRelation& rel,
                                ShardStrategy strategy, uint32_t shards) {
  if (strategy == ShardStrategy::kIndexRange) {
    return AssignIndexRanges(rel.size(), shards);
  }
  KeyBuilder builder(plan.key_spec(), &rel.schema());
  std::vector<std::string> keys;
  keys.reserve(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    keys.push_back(
        builder.CertainKey(rel.xtuple(i), plan.config().conflict_strategy));
  }
  return strategy == ShardStrategy::kKeyRange
             ? AssignKeyRanges(keys, shards)
             : AssignBlockSubsets(keys, shards);
}

}  // namespace

ShardedCandidateStream::ShardedCandidateStream(
    std::string name, std::optional<XRelation> owned,
    const XRelation* borrowed, std::unique_ptr<PairGenerator> generator,
    size_t total_pairs, size_t min_second,
    std::shared_ptr<const ShardAssignment> assignment)
    : name_(std::move(name)),
      owned_(std::move(owned)),
      rel_(owned_.has_value() ? &*owned_ : borrowed),
      generator_(std::move(generator)),
      total_pairs_(total_pairs),
      min_second_(min_second),
      assignment_(std::move(assignment)),
      shards_(assignment_->shard_count) {}

Status ShardedCandidateStream::OpenShard(size_t index) {
  PDD_ASSIGN_OR_RETURN(std::unique_ptr<PairBatchSource> source,
                       generator_->Stream(*rel_));
  uint32_t shard = static_cast<uint32_t>(index);
  if (!source->RestrictToShard(assignment_, shard)) {
    // Custom sources that cannot restrict themselves are filtered from
    // outside: same pairs, unrestricted memory footprint.
    std::shared_ptr<const ShardAssignment> assignment = assignment_;
    source = std::make_unique<FilteringPairSource>(
        std::move(source),
        [assignment, shard](const CandidatePair& pair) {
          return assignment->Owns(pair.first, shard);
        });
  }
  if (min_second_ > 0) {
    size_t min_second = min_second_;
    source = std::make_unique<FilteringPairSource>(
        std::move(source), [min_second](const CandidatePair& pair) {
          return pair.second >= min_second;
        });
  }
  Shard& s = shards_[index];
  s.source = std::move(source);
  s.exhausted = false;
  s.pending.clear();
  s.cursor = 0;
  return Status::OK();
}

Result<std::unique_ptr<ShardedCandidateStream>> ShardedCandidateStream::Make(
    std::string name, std::optional<XRelation> owned,
    const XRelation* borrowed, const DetectionPlan& plan, size_t total_pairs,
    size_t min_second, const ShardOptions& options) {
  const XRelation& rel = owned.has_value() ? *owned : *borrowed;
  ShardStrategy strategy =
      ResolveShardStrategy(options.strategy, plan.config().reduction);
  uint32_t shards =
      static_cast<uint32_t>(options.count == 0 ? 1 : options.count);
  auto assignment = std::make_shared<ShardAssignment>(
      BuildAssignment(plan, rel, strategy, shards));
  std::unique_ptr<ShardedCandidateStream> stream(new ShardedCandidateStream(
      std::move(name), std::move(owned), borrowed, plan.MakePairGenerator(),
      total_pairs, min_second, std::move(assignment)));
  for (size_t i = 0; i < stream->shard_count(); ++i) {
    PDD_RETURN_IF_ERROR(stream->OpenShard(i));
  }
  return stream;
}

size_t ShardedCandidateStream::ShardNextBatch(size_t shard, size_t max_batch,
                                              std::vector<CandidatePair>* out) {
  Shard& s = shards_[shard];
  // The merge lookahead holds pairs already pulled off the source but
  // not yet emitted; they are the front of this shard's remaining
  // sequence, so a shard-aware drain taking over from a partial merged
  // drain must serve them first — never skip them.
  if (s.cursor < s.pending.size()) {
    out->clear();
    size_t count = std::min(max_batch, s.pending.size() - s.cursor);
    out->insert(out->end(), s.pending.begin() + s.cursor,
                s.pending.begin() + s.cursor + count);
    s.cursor += count;
    if (s.cursor == s.pending.size()) {
      s.pending.clear();
      s.cursor = 0;
    }
    ++s.stats.batches;
    size_t live = count + (s.pending.size() - s.cursor) +
                  (s.source == nullptr ? 0 : s.source->buffered_candidates());
    s.stats.live_candidate_high_water =
        std::max(s.stats.live_candidate_high_water, live);
    return count;
  }
  if (s.source == nullptr) {
    out->clear();
    return 0;
  }
  size_t pulled = s.source->NextBatch(max_batch, out);
  if (pulled == 0) {
    s.exhausted = true;
    return 0;
  }
  ++s.stats.batches;
  size_t live = pulled + s.source->buffered_candidates();
  s.stats.live_candidate_high_water =
      std::max(s.stats.live_candidate_high_water, live);
  return pulled;
}

size_t ShardedCandidateStream::ShardBufferedCandidates(size_t shard) const {
  const Shard& s = shards_[shard];
  size_t buffered = s.pending.size() - s.cursor;
  if (s.source != nullptr) buffered += s.source->buffered_candidates();
  return buffered;
}

size_t ShardedCandidateStream::NextBatch(size_t max_batch,
                                         std::vector<CandidatePair>* out) {
  out->clear();
  std::vector<CandidatePair> batch;
  while (out->size() < max_batch) {
    // Refill every empty, non-exhausted lookahead.
    for (Shard& s : shards_) {
      if (s.cursor < s.pending.size() || s.exhausted) continue;
      size_t index = static_cast<size_t>(&s - shards_.data());
      if (ShardNextBatch(index, max_batch, &batch) > 0) {
        s.pending = std::move(batch);
        batch = std::vector<CandidatePair>();
        s.cursor = 0;
      }
    }
    // Emit the smallest front pair; ties (impossible across a true
    // partition, but the rule is fixed anyway) go to the lowest shard.
    Shard* best = nullptr;
    for (Shard& s : shards_) {
      if (s.cursor >= s.pending.size()) continue;
      if (best == nullptr ||
          s.pending[s.cursor] < best->pending[best->cursor]) {
        best = &s;
      }
    }
    if (best == nullptr) break;  // all shards exhausted
    out->push_back(best->pending[best->cursor++]);
    if (best->cursor == best->pending.size()) {
      best->pending.clear();
      best->cursor = 0;
    }
  }
  return out->size();
}

void ShardedCandidateStream::Reset() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Fail closed on a re-open failure, like GeneratorCandidateStream:
    // no source, no leftover lookahead from the aborted drain — the
    // shard reads as exhausted, not as a partial replay.
    if (!OpenShard(i).ok()) {
      shards_[i].source = nullptr;
      shards_[i].exhausted = true;
      shards_[i].pending.clear();
      shards_[i].cursor = 0;
    }
    // Zero the drain accounting: stats must describe one drain, not the
    // concatenation of every drain since construction (re-opened runs
    // would otherwise double-count in ExecutionStatsReport).
    shards_[i].stats = StreamRunStats{};
  }
}

std::optional<size_t> ShardedCandidateStream::candidate_count_hint() const {
  size_t total = 0;
  for (const Shard& s : shards_) {
    if (s.source == nullptr) return std::nullopt;
    std::optional<size_t> hint = s.source->exact_count_hint();
    if (!hint.has_value()) return std::nullopt;
    total += *hint;
  }
  return total;
}

size_t ShardedCandidateStream::buffered_candidates() const {
  size_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    total += ShardBufferedCandidates(i);
  }
  return total;
}

std::vector<StreamRunStats> ShardedCandidateStream::shard_stats() const {
  std::vector<StreamRunStats> stats;
  stats.reserve(shards_.size());
  for (const Shard& s : shards_) stats.push_back(s.stats);
  return stats;
}

Result<std::unique_ptr<CandidateStream>> MakeShardedFullStream(
    const DetectionPlan& plan, const XRelation& rel,
    const ShardOptions& options) {
  PDD_ASSIGN_OR_RETURN(std::optional<XRelation> owned,
                       PrepareStreamRelation(plan, std::nullopt, &rel));
  PDD_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedCandidateStream> stream,
      ShardedCandidateStream::Make("full", std::move(owned), &rel, plan,
                                   TriangularPairCount(rel.size()),
                                   /*min_second=*/0, options));
  // One arena serves every shard: shards index the same relation.
  AttachArenaIfColumnar(plan, stream.get());
  return std::unique_ptr<CandidateStream>(std::move(stream));
}

Result<std::unique_ptr<CandidateStream>> MakeShardedUnionStream(
    const DetectionPlan& plan, const XRelation& a, const XRelation& b,
    const ShardOptions& options) {
  PDD_ASSIGN_OR_RETURN(XRelation merged,
                       XRelation::Union(a, b, a.name() + "+" + b.name()));
  size_t total = TriangularPairCount(merged.size());
  PDD_ASSIGN_OR_RETURN(std::optional<XRelation> owned,
                       PrepareStreamRelation(plan, std::move(merged), nullptr));
  PDD_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedCandidateStream> stream,
      ShardedCandidateStream::Make("union", std::move(owned), nullptr, plan,
                                   total, /*min_second=*/0, options));
  AttachArenaIfColumnar(plan, stream.get());
  return std::unique_ptr<CandidateStream>(std::move(stream));
}

Result<std::unique_ptr<CandidateStream>> MakeShardedIncrementalStream(
    const DetectionPlan& plan, const XRelation& existing,
    const XRelation& additions, const ShardOptions& options) {
  PDD_ASSIGN_OR_RETURN(
      XRelation merged,
      XRelation::Union(existing, additions,
                       existing.name() + "+" + additions.name()));
  const size_t base_count = existing.size();
  const size_t new_count = additions.size();
  size_t total = SaturatingAdd(SaturatingMul(base_count, new_count),
                               TriangularPairCount(new_count));
  PDD_ASSIGN_OR_RETURN(std::optional<XRelation> owned,
                       PrepareStreamRelation(plan, std::move(merged), nullptr));
  PDD_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedCandidateStream> stream,
      ShardedCandidateStream::Make("incremental", std::move(owned), nullptr,
                                   plan, total, /*min_second=*/base_count,
                                   options));
  AttachArenaIfColumnar(plan, stream.get());
  return std::unique_ptr<CandidateStream>(std::move(stream));
}

}  // namespace pdd
