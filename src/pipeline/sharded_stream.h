// Sharded candidate streams: the candidate universe of one detection
// scenario partitioned into N per-shard PairBatchSources whose merged
// output is bit-identical to the unsharded stream. A shard owns the
// canonical pairs whose first index its ShardAssignment maps to it
// (reduction/shard_partitioner.h), so each shard's stream is a sorted
// subsequence of the canonical order and the k-way merge — ascending
// (first, second), stable tie-break by shard index — reconstructs the
// unsharded sequence exactly. This is the enabling layer for the
// multi-node backend: a shard's source is self-contained (its own
// re-opened generator stream, restricted natively), its live-candidate
// bound is its own, and its decisions merge deterministically.
// Self-containment is a deliberate trade-off: every shard builds its
// own generator stream over the whole relation, so an in-process
// N-shard run pays N× the stream-construction work and index memory
// (sorted entries, block partitions; adapter-backed reductions even
// materialize transiently per shard before the restriction trims the
// vector). Live-candidate residency — what the executor accounts and
// bench_s15_sharding gates — stays ~1/N per shard regardless; sharing
// one immutable index across in-process shards is a possible later
// optimization, but multi-node placement needs the self-contained form
// anyway.
//
// Two drain modes share one stream object:
//
//   * CandidateStream mode (NextBatch): the built-in merge, for any
//     consumer that wants the canonical sequence — RunStream seams,
//     replay, tests. Per-shard pull accounting accumulates internally
//     (shard_stats()) and is zeroed by Reset().
//   * shard-aware mode (ShardNextBatch): the StageExecutor drains each
//     shard separately — one worker set per shard pulling under a
//     per-shard mutex, one shared DecisionCache handle across all
//     shard workers — and merges the per-shard decision records by the
//     same rule. Calls for one shard must be externally serialized;
//     different shards may pull concurrently.

#ifndef PDD_PIPELINE_SHARDED_STREAM_H_
#define PDD_PIPELINE_SHARDED_STREAM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pipeline/candidate_stream.h"
#include "pipeline/detection_result.h"
#include "reduction/shard_partitioner.h"

namespace pdd {

/// Run-level sharding knobs (a runtime placement decision, like the
/// executor's worker count). Plans can also carry them declaratively
/// via the `shard.count` / `shard.strategy` spec keys.
struct ShardOptions {
  /// Number of shards; 1 = unsharded.
  size_t count = 1;
  /// How tuples map to shards; kAuto resolves per reduction family.
  ShardStrategy strategy = ShardStrategy::kAuto;
};

/// Resolves kAuto against a reduction method: index_range for
/// full/adapter-backed reductions, key_range for the SNM family,
/// block_subset for the blocking family. Non-auto strategies pass
/// through.
ShardStrategy ResolveShardStrategy(ShardStrategy requested,
                                   ReductionMethod method);

class ShardedCandidateStream : public CandidateStream {
 public:
  /// Builds the sharded stream: resolves the strategy, computes the
  /// ShardAssignment over the (prepared) relation and opens every
  /// shard's source. `borrowed` must outlive the stream unless `owned`
  /// carries the relation; `min_second` > 0 applies the incremental
  /// crossing filter per shard.
  static Result<std::unique_ptr<ShardedCandidateStream>> Make(
      std::string name, std::optional<XRelation> owned,
      const XRelation* borrowed, const DetectionPlan& plan,
      size_t total_pairs, size_t min_second, const ShardOptions& options);

  ShardedCandidateStream(const ShardedCandidateStream&) = delete;
  ShardedCandidateStream& operator=(const ShardedCandidateStream&) = delete;

  // --- CandidateStream (merged canonical sequence) -------------------

  const XRelation& relation() const override { return *rel_; }
  /// K-way merge of the shard sources: ascending (first, second),
  /// stable tie-break by shard index — bit-identical to the unsharded
  /// stream of the same plan and scenario.
  size_t NextBatch(size_t max_batch, std::vector<CandidatePair>* out) override;
  /// Re-opens every shard source, clears the merge buffers and ZEROES
  /// the per-shard drain accounting — a re-drained stream reports the
  /// stats of the re-drain only, never carry-over from the first pass.
  void Reset() override;
  /// Sum of the shard sources' exact counts when every shard knows one
  /// (adapter-backed reductions, post-restriction); nullopt otherwise.
  std::optional<size_t> candidate_count_hint() const override;
  /// Pairs live across all shard sources plus the merge lookahead.
  size_t buffered_candidates() const override;
  size_t total_pairs() const override { return total_pairs_; }
  std::string name() const override { return name_; }

  // --- shard-aware drain (StageExecutor) -----------------------------

  size_t shard_count() const { return shards_.size(); }
  ShardStrategy strategy() const { return assignment_->strategy; }
  const ShardAssignment& assignment() const { return *assignment_; }

  /// Pulls the next batch of `shard`'s own candidate sequence and
  /// tracks that shard's drain accounting. Calls for one shard must be
  /// serialized by the caller; different shards are independent.
  size_t ShardNextBatch(size_t shard, size_t max_batch,
                        std::vector<CandidatePair>* out);

  /// Pairs currently live inside `shard` (its source's buffers plus its
  /// merge lookahead, which is empty under a shard-aware drain).
  size_t ShardBufferedCandidates(size_t shard) const;

  /// Per-shard drain accounting accumulated by ShardNextBatch (and
  /// therefore also by the merged NextBatch, which pulls through it).
  /// Zeroed by Reset().
  std::vector<StreamRunStats> shard_stats() const;

 private:
  struct Shard {
    std::unique_ptr<PairBatchSource> source;  // null after failed re-open
    bool exhausted = false;
    /// Merge lookahead: pairs pulled but not yet emitted downstream.
    std::vector<CandidatePair> pending;
    size_t cursor = 0;
    StreamRunStats stats;
  };

  ShardedCandidateStream(std::string name, std::optional<XRelation> owned,
                         const XRelation* borrowed,
                         std::unique_ptr<PairGenerator> generator,
                         size_t total_pairs, size_t min_second,
                         std::shared_ptr<const ShardAssignment> assignment);

  /// (Re-)opens shard `index`'s source: a fresh generator stream,
  /// restricted to the shard natively (or through an owner filter when
  /// the source cannot restrict itself), then the crossing filter.
  Status OpenShard(size_t index);

  std::string name_;
  std::optional<XRelation> owned_;
  const XRelation* rel_;
  std::unique_ptr<PairGenerator> generator_;
  size_t total_pairs_ = 0;
  size_t min_second_ = 0;
  std::shared_ptr<const ShardAssignment> assignment_;
  // Last member: shard sources borrow rel_ and generator_.
  std::vector<Shard> shards_;
};

/// Sharded counterparts of the candidate_stream.h factories. With
/// options.count <= 1 they still build a (single-shard) sharded stream;
/// callers wanting the plain stream should branch on the count
/// themselves, as DuplicateDetector does.
Result<std::unique_ptr<CandidateStream>> MakeShardedFullStream(
    const DetectionPlan& plan, const XRelation& rel,
    const ShardOptions& options);

Result<std::unique_ptr<CandidateStream>> MakeShardedUnionStream(
    const DetectionPlan& plan, const XRelation& a, const XRelation& b,
    const ShardOptions& options);

Result<std::unique_ptr<CandidateStream>> MakeShardedIncrementalStream(
    const DetectionPlan& plan, const XRelation& existing,
    const XRelation& additions, const ShardOptions& options);

}  // namespace pdd

#endif  // PDD_PIPELINE_SHARDED_STREAM_H_
