#include "pipeline/stage_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "cache/pair_digest.h"
#include "match/columnar_matcher.h"
#include "obs/run_telemetry.h"
#include "pipeline/sharded_stream.h"

namespace pdd {

namespace {

using Clock = std::chrono::steady_clock;

inline double Elapsed(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The accumulator a stage's wall time belongs to.
inline double* TimingSlot(StageTimings* timings, PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kMatch:
      return &timings->match_seconds;
    case PipelineStage::kCombine:
      return &timings->combine_seconds;
    case PipelineStage::kDerive:
      return &timings->derive_seconds;
    case PipelineStage::kClassify:
      return &timings->classify_seconds;
  }
  return &timings->classify_seconds;
}

/// Lazily memoized TupleContentDigest. 0 doubles as the "unset"
/// sentinel: a genuine zero digest just recomputes (correct, merely
/// unmemoized).
inline uint64_t MemoizedDigest(const XRelation& rel, size_t index,
                               std::atomic<uint64_t>* slot) {
  uint64_t digest = slot->load(std::memory_order_relaxed);
  if (digest == 0) {
    digest = TupleContentDigest(rel.xtuple(index));
    slot->store(digest, std::memory_order_relaxed);
  }
  return digest;
}

inline uint64_t MicrosFromSeconds(double seconds) {
  if (!(seconds > 0.0)) return 0;
  return static_cast<uint64_t>(std::llround(seconds * 1e6));
}

/// Per-drain-thread span accounting. Each thread owns one slot, so the
/// hot loop mutates it lock-free; the slots fold into the telemetry's
/// generate span, worker.N spans and decide-latency histogram after
/// the pool joins. Batch/candidate counts per worker vary with thread
/// timing — they live on spans, which the identity gates never diff.
struct WorkerStats {
  size_t batches = 0;
  size_t candidates = 0;
  /// Time inside the stream's NextBatch pulls (candidate generation).
  double pull_seconds = 0.0;
  /// Time inside DecideBatch.
  double decide_seconds = 0.0;
  /// Per-batch decide latency in microseconds.
  LogHistogram decide_micros;
};

/// Builds the run's unified telemetry — registry from the result's stat
/// fields, generate/drain/worker spans from the per-thread slots — then
/// reassigns the legacy stat structs from the registry views, so every
/// struct a caller reads is provably a projection of the one registry.
void FinalizeTelemetry(const StageExecutorOptions& options,
                       std::vector<WorkerStats> workers,
                       DetectionResult* result) {
  auto telemetry =
      std::make_shared<RunTelemetry>(TelemetryFromResult(*result));
  MetricsRegistry& m = telemetry->metrics;
  m.SetCounter("exec.config.workers", options.workers);
  m.SetCounter("exec.config.batch_size", options.batch_size);

  TelemetrySpan generate("generate");
  LogHistogram decide_micros;
  double pull_total = 0.0;
  double decide_total = 0.0;
  uint64_t pulled_batches = 0;
  uint64_t pulled_candidates = 0;
  for (const WorkerStats& w : workers) {
    pull_total += w.pull_seconds;
    decide_total += w.decide_seconds;
    pulled_batches += w.batches;
    pulled_candidates += w.candidates;
    decide_micros.Merge(w.decide_micros);
  }
  generate.seconds = pull_total;
  generate.counts["batches"] = pulled_batches;
  generate.counts["candidates"] = pulled_candidates;
  // Generate precedes drain in the span tree (insert before grabbing
  // the drain pointer — insertion shifts the children).
  telemetry->root.children.insert(telemetry->root.children.begin(),
                                  std::move(generate));
  TelemetrySpan* drain = telemetry->root.FindChild("drain");
  drain->seconds = decide_total;
  for (size_t i = 0; i < workers.size(); ++i) {
    TelemetrySpan* span = drain->AddChild("worker." + std::to_string(i));
    span->seconds = workers[i].decide_seconds;
    span->counts["batches"] = workers[i].batches;
    span->counts["candidates"] = workers[i].candidates;
  }
  telemetry->root.seconds = pull_total + decide_total;
  if (options.stage_timings) {
    m.MutableHistogram(kMetricBatchDecideMicros)->Merge(decide_micros);
  }

  result->stage_timings = StageTimingsView(*telemetry);
  result->cache_stats = CacheRunStatsView(*telemetry);
  result->stream_stats = StreamRunStatsView(*telemetry);
  result->telemetry = std::move(telemetry);
}

}  // namespace

StageExecutor::StageExecutor(std::shared_ptr<const DetectionPlan> plan,
                             StageExecutorOptions options)
    : plan_(std::move(plan)), options_(std::move(options)) {}

void StageExecutor::DecideBatch(const XRelation& rel,
                                const std::vector<CandidatePair>& batch,
                                TupleDigestMemo* digest_memo,
                                ColumnarMatcher* matcher,
                                std::vector<PairDecisionRecord>* out,
                                BatchCounters* counters) const {
  // Reserve only for a fresh buffer: calling reserve() per batch on the
  // serial path's accumulating vector would pin capacity to the exact
  // size and degrade appends to quadratic copying.
  if (out->empty()) out->reserve(batch.size());
  const bool timed = options_.stage_timings;
  // A cache-ineligible plan (custom comparators: decision fingerprint
  // 0) runs uncached rather than risking cross-instance collisions.
  const bool use_cache =
      options_.cache != nullptr && plan_->decision_fingerprint() != 0;
  DecisionCache* cache = options_.cache.get();
  PairDecisionKey key;
  key.plan_fingerprint = plan_->decision_fingerprint();
  for (const CandidatePair& pair : batch) {
    const XTuple& t1 = rel.xtuple(pair.first);
    const XTuple& t2 = rel.xtuple(pair.second);
    // The clock reads themselves are gated on `timed`: an untimed
    // warm run's per-pair cost stays digest + lookup, nothing else.
    Clock::time_point start;
    if (timed && use_cache) start = Clock::now();
    // Columnar runs read the arena's precomputed tuple digests (the
    // PR-3 lazy memo moved to build time); scalar runs keep the memo.
    const uint64_t d1 =
        matcher != nullptr
            ? matcher->arena().tuple_digest(pair.first)
            : MemoizedDigest(rel, pair.first, &(*digest_memo)[pair.first]);
    const uint64_t d2 =
        matcher != nullptr
            ? matcher->arena().tuple_digest(pair.second)
            : MemoizedDigest(rel, pair.second, &(*digest_memo)[pair.second]);
    if (use_cache) {
      key.pair_digest = CombineTupleDigests(d1, d2);
      std::optional<CachedPairDecision> cached = cache->Lookup(key);
      if (timed) counters->timings.cache_lookup_seconds += Elapsed(start);
      ++counters->cache.lookups;
      if (cached.has_value()) {
        ++counters->cache.hits;
        out->push_back({t1.id(), t2.id(), pair.first, pair.second,
                        cached->similarity, cached->match_class});
        continue;
      }
      ++counters->cache.misses;
    }
    // Canonical decide orientation. The cache key is an UNORDERED pair
    // digest, but floating-point similarity is not bit-symmetric in
    // its operands (summation order differs), so the value stored
    // under that key must not depend on presentation order: every path
    // — cached or not, scalar or columnar, batch order or standing
    // arrival order — decides (smaller digest, larger digest).
    // Equal digests mean content-identical tuples, where orientation
    // cannot matter. The record keeps the presentation ids/indices.
    const bool flip = d2 < d1;
    const size_t i1 = flip ? pair.second : pair.first;
    const size_t i2 = flip ? pair.first : pair.second;
    const XTuple& ta = flip ? t2 : t1;
    const XTuple& tb = flip ? t1 : t2;
    XPairDecision decision;
    if (matcher != nullptr) {
      decision = timed ? matcher->DecideTimed(i1, i2, &counters->timings)
                       : matcher->Decide(i1, i2);
    } else if (timed) {
      // DecidePair's walk over the compiled stage graph, with a clock
      // read around each stage (same order, same arithmetic, same
      // results — plan_->stages() stays the single source of truth).
      ComparisonMatrix matrix;
      AlternativePairScores scores;
      for (PipelineStage stage : plan_->stages()) {
        Clock::time_point stage_start = Clock::now();
        switch (stage) {
          case PipelineStage::kMatch:
            matrix = plan_->RunMatchStage(ta, tb);
            break;
          case PipelineStage::kCombine:
            scores = plan_->RunCombineStage(ta, tb, matrix);
            break;
          case PipelineStage::kDerive:
            decision.similarity = plan_->RunDeriveStage(scores);
            break;
          case PipelineStage::kClassify:
            decision.match_class = plan_->RunClassifyStage(decision.similarity);
            break;
        }
        *TimingSlot(&counters->timings, stage) += Elapsed(stage_start);
      }
    } else {
      decision = plan_->DecidePair(ta, tb);
    }
    if (use_cache) {
      cache->Insert(key, {decision.similarity, decision.match_class});
      ++counters->cache.inserts;
    }
    out->push_back({t1.id(), t2.id(), pair.first, pair.second,
                    decision.similarity, decision.match_class});
  }
}

Result<DetectionResult> StageExecutor::Execute(CandidateStream& stream) const {
  if (plan_ == nullptr) {
    return Status::InvalidArgument("stage executor has no plan");
  }
  if (options_.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  const XRelation& rel = stream.relation();
  // Factory-built streams were checked against their own plan; a custom
  // stream (RunStream seam) may carry any relation, so re-check here.
  if (!rel.schema().CompatibleWith(plan_->schema())) {
    return Status::InvalidArgument(
        "stream relation schema incompatible with plan schema");
  }
  DetectionResult result;
  result.total_pairs = stream.total_pairs();
  result.plan_fingerprint = plan_->fingerprint();
  result.stage_timings_collected = options_.stage_timings;
  // A cache-ineligible plan (custom comparators: decision fingerprint
  // 0) runs uncached rather than risking cross-instance collisions.
  const bool use_cache =
      options_.cache != nullptr && plan_->decision_fingerprint() != 0;
  if (options_.cache != nullptr) result.cache_stats = CacheRunStats{};
  // Per-tuple digest memo for the run: filled lazily as candidates
  // touch tuples (a sparse incremental stream over a large base never
  // digests the untouched base), then reused by every later pair, so
  // the hit path never re-hashes tuple content.
  // Columnar kernel path: the plan resolved it at compile time and the
  // stream factory attached an arena over its relation. A custom
  // stream without an arena (or an arena for a different relation, or
  // an overflowed build) falls back to the scalar path — same results.
  const RelationArena* arena = stream.arena().get();
  const bool columnar = plan_->use_columnar_kernels() && arena != nullptr &&
                        arena->tuple_count() == rel.size();
  result.match_kernel = columnar ? "columnar" : "scalar";
  // The memo is unconditional: uncached scalar runs need the tuple
  // digests too, for the canonical decide orientation (see
  // DecideBatch) — that is what keeps uncached, cold-cached and
  // warm-cached runs bit-identical. Columnar batches never read it
  // (they take the arena's precomputed digests), so its slots stay
  // untouched zeros there. Sized from the stream's tuple CAPACITY, not
  // its current size: a standing ingest stream's relation grows during
  // the drain, and the memo must already have a slot for every tuple
  // that can still arrive.
  TupleDigestMemo digest_memo(columnar ? 0 : stream.tuple_capacity());
  TupleDigestMemo* digests = &digest_memo;

  // Sharded streams drain shard-by-shard: per-shard worker sets and
  // accounting, deterministic merge of the per-shard decisions.
  if (auto* sharded = dynamic_cast<ShardedCandidateStream*>(&stream);
      sharded != nullptr && sharded->shard_count() > 1) {
    return ExecuteSharded(*sharded, digests, columnar ? arena : nullptr,
                          std::move(result));
  }

  const bool timed = options_.stage_timings;
  if (options_.workers <= 1) {
    if (std::optional<size_t> hint = stream.candidate_count_hint()) {
      result.decisions.reserve(*hint);
    }
    std::optional<ColumnarMatcher> matcher;
    if (columnar) matcher.emplace(*plan_, *arena);
    BatchCounters counters;
    std::vector<WorkerStats> workers(1);
    WorkerStats& ws = workers[0];
    std::vector<CandidatePair> batch;
    while (true) {
      Clock::time_point pull_start;
      if (timed) pull_start = Clock::now();
      size_t pulled = stream.NextBatch(options_.batch_size, &batch);
      if (timed) ws.pull_seconds += Elapsed(pull_start);
      if (pulled == 0) {
        // Exhausted vs idle-but-open: a standing stream blocks in
        // AwaitMore until tuples arrive (resume pulling) or its feed
        // closes (drain ends); finite streams return false immediately.
        if (!stream.AwaitMore()) break;
        continue;
      }
      result.candidate_count += batch.size();
      ++result.stream_stats.batches;
      result.stream_stats.live_candidate_high_water =
          std::max(result.stream_stats.live_candidate_high_water,
                   batch.size() + stream.buffered_candidates());
      ++ws.batches;
      ws.candidates += batch.size();
      Clock::time_point decide_start;
      if (timed) decide_start = Clock::now();
      const size_t decided_before = result.decisions.size();
      DecideBatch(rel, batch, digests,
                  matcher.has_value() ? &*matcher : nullptr,
                  &result.decisions, &counters);
      if (timed) {
        double decide = Elapsed(decide_start);
        ws.decide_seconds += decide;
        ws.decide_micros.Record(MicrosFromSeconds(decide));
      }
      if (options_.decision_sink) {
        for (size_t i = decided_before; i < result.decisions.size(); ++i) {
          options_.decision_sink(result.decisions[i]);
        }
      }
    }
    result.stage_timings = counters.timings;
    if (result.cache_stats.has_value()) *result.cache_stats = counters.cache;
    // Re-read after the drain: a standing stream's pair universe grows
    // as tuples are admitted (finite streams report the same value).
    result.total_pairs = stream.total_pairs();
    FinalizeTelemetry(options_, std::move(workers), &result);
    return result;
  }

  // Parallel path: workers pull batches straight off the stream under a
  // mutex (pulls are serialized, so batch k's content is independent of
  // which worker claims it or when), decide into per-batch output slots
  // and concatenate in pull order — identical to the serial path for
  // any worker count, while never holding more than the in-flight
  // batches of candidates (the old path materialized every batch
  // up-front, resurrecting the O(candidates) buffer streaming deletes).
  struct Drain {
    std::mutex mu;
    bool exhausted = false;
    // Deques: slot references handed to workers stay valid as later
    // pulls append (a vector would invalidate them on growth).
    std::deque<std::vector<PairDecisionRecord>> slots;
    std::deque<BatchCounters> counters;
    size_t in_flight_candidates = 0;
  } drain;
  // Sink calls are serialized but interleave across workers in commit
  // order — an execution-shape-dependent order by design (see
  // StageExecutorOptions::decision_sink).
  std::mutex sink_mu;
  std::vector<WorkerStats> workers(options_.workers);
  auto worker = [&](WorkerStats* ws) {
    // Per-worker matcher: its scratch buffers are thread-private state.
    std::optional<ColumnarMatcher> matcher;
    if (columnar) matcher.emplace(*plan_, *arena);
    std::vector<CandidatePair> batch;
    while (true) {
      std::vector<PairDecisionRecord>* slot;
      BatchCounters* slot_counters;
      {
        std::lock_guard<std::mutex> lock(drain.mu);
        if (drain.exhausted) return;
        Clock::time_point pull_start;
        if (timed) pull_start = Clock::now();
        size_t pulled = stream.NextBatch(options_.batch_size, &batch);
        if (timed) ws->pull_seconds += Elapsed(pull_start);
        if (pulled == 0) {
          // Waiting with drain.mu held parks the other workers on the
          // pull mutex — correct (there is nothing to pull) and free of
          // lock cycles: AwaitMore blocks on the stream's own
          // condition, signalled by producers that never take drain.mu.
          if (!stream.AwaitMore()) {
            drain.exhausted = true;
            return;
          }
          continue;
        }
        result.candidate_count += batch.size();
        ++result.stream_stats.batches;
        drain.in_flight_candidates += batch.size();
        result.stream_stats.live_candidate_high_water =
            std::max(result.stream_stats.live_candidate_high_water,
                     drain.in_flight_candidates + stream.buffered_candidates());
        drain.slots.emplace_back();
        drain.counters.emplace_back();
        slot = &drain.slots.back();
        slot_counters = &drain.counters.back();
      }
      ++ws->batches;
      ws->candidates += batch.size();
      Clock::time_point decide_start;
      if (timed) decide_start = Clock::now();
      DecideBatch(rel, batch, digests,
                  matcher.has_value() ? &*matcher : nullptr, slot,
                  slot_counters);
      if (timed) {
        double decide = Elapsed(decide_start);
        ws->decide_seconds += decide;
        ws->decide_micros.Record(MicrosFromSeconds(decide));
      }
      if (options_.decision_sink) {
        std::lock_guard<std::mutex> lock(sink_mu);
        for (const PairDecisionRecord& rec : *slot) {
          options_.decision_sink(rec);
        }
      }
      {
        std::lock_guard<std::mutex> lock(drain.mu);
        drain.in_flight_candidates -= batch.size();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    pool.emplace_back(worker, &workers[i]);
  }
  for (std::thread& t : pool) t.join();

  result.decisions.reserve(result.candidate_count);
  for (std::vector<PairDecisionRecord>& slot : drain.slots) {
    for (PairDecisionRecord& rec : slot) {
      result.decisions.push_back(std::move(rec));
    }
  }
  for (const BatchCounters& counters : drain.counters) {
    result.stage_timings += counters.timings;
    if (result.cache_stats.has_value()) *result.cache_stats += counters.cache;
  }
  result.total_pairs = stream.total_pairs();
  FinalizeTelemetry(options_, std::move(workers), &result);
  return result;
}

Result<DetectionResult> StageExecutor::ExecuteSharded(
    ShardedCandidateStream& stream, TupleDigestMemo* digests,
    const RelationArena* arena, DetectionResult result) const {
  const XRelation& rel = stream.relation();
  const size_t shard_count = stream.shard_count();
  // Per-shard drain state: each shard is an independent pull loop with
  // its own mutex, so shard workers never contend with each other. The
  // decision cache handle (options_.cache, consulted inside
  // DecideBatch) is the one shared structure — exactly the cross-shard
  // sharing a ShardedDecisionCache's lock striping is built for.
  struct ShardDrain {
    std::mutex mu;
    bool exhausted = false;
    std::deque<std::vector<PairDecisionRecord>> slots;
    std::deque<BatchCounters> counters;
    size_t candidate_count = 0;
    size_t batches = 0;
    size_t in_flight_candidates = 0;
    size_t high_water = 0;
  };
  std::vector<ShardDrain> drains(shard_count);
  // Serializes sink calls across every shard's workers (commit order —
  // execution-shape-dependent, like the pooled path). Per-shard sources
  // are finite by construction (RestrictToShard over a finite
  // universe), so the 0-pull below stays terminal: standing streams
  // take the unsharded drain and shard only their Finish() re-run.
  std::mutex sink_mu;
  const bool timed = options_.stage_timings;
  std::vector<WorkerStats> workers(
      options_.workers <= 1 ? size_t{1} : options_.workers);
  auto drain_shard = [&](size_t shard, WorkerStats* ws) {
    ShardDrain& drain = drains[shard];
    // One matcher per drain call: shard workers of the same shard run
    // on different threads, and matcher scratch must stay thread-local.
    std::optional<ColumnarMatcher> matcher;
    if (arena != nullptr) matcher.emplace(*plan_, *arena);
    std::vector<CandidatePair> batch;
    while (true) {
      std::vector<PairDecisionRecord>* slot;
      BatchCounters* slot_counters;
      {
        std::lock_guard<std::mutex> lock(drain.mu);
        if (drain.exhausted) return;
        Clock::time_point pull_start;
        if (timed) pull_start = Clock::now();
        size_t pulled =
            stream.ShardNextBatch(shard, options_.batch_size, &batch);
        if (timed) ws->pull_seconds += Elapsed(pull_start);
        if (pulled == 0) {
          drain.exhausted = true;
          return;
        }
        drain.candidate_count += batch.size();
        ++drain.batches;
        drain.in_flight_candidates += batch.size();
        drain.high_water =
            std::max(drain.high_water,
                     drain.in_flight_candidates +
                         stream.ShardBufferedCandidates(shard));
        drain.slots.emplace_back();
        drain.counters.emplace_back();
        slot = &drain.slots.back();
        slot_counters = &drain.counters.back();
      }
      ++ws->batches;
      ws->candidates += batch.size();
      Clock::time_point decide_start;
      if (timed) decide_start = Clock::now();
      DecideBatch(rel, batch, digests,
                  matcher.has_value() ? &*matcher : nullptr, slot,
                  slot_counters);
      if (timed) {
        double decide = Elapsed(decide_start);
        ws->decide_seconds += decide;
        ws->decide_micros.Record(MicrosFromSeconds(decide));
      }
      if (options_.decision_sink) {
        std::lock_guard<std::mutex> lock(sink_mu);
        for (const PairDecisionRecord& rec : *slot) {
          options_.decision_sink(rec);
        }
      }
      {
        std::lock_guard<std::mutex> lock(drain.mu);
        drain.in_flight_candidates -= batch.size();
      }
    }
  };
  if (options_.workers <= 1) {
    // Serial: shards drain one after another in shard order (on the
    // calling thread), which already produces per-shard record runs.
    for (size_t shard = 0; shard < shard_count; ++shard) {
      drain_shard(shard, &workers[0]);
    }
  } else {
    // Exactly options_.workers threads — the configured bound is a
    // resource cap and must hold regardless of the shard count. With
    // workers >= shards, thread t joins shard t % shards' worker set
    // (sets differ in size by at most one); with fewer workers than
    // shards, thread t drains shards t, t+workers, ... to completion,
    // one after another. Workers of one shard serialize on that
    // shard's mutex only; the output is identical either way.
    const size_t threads = options_.workers;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t]() {
        if (threads >= shard_count) {
          drain_shard(t % shard_count, &workers[t]);
        } else {
          for (size_t shard = t; shard < shard_count; shard += threads) {
            drain_shard(shard, &workers[t]);
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Flatten each shard's slots into its own (canonically ordered) run,
  // then k-way merge the runs by ascending (first, second) — stable
  // tie-break by shard index — reconstructing the order the unsharded
  // drain would have produced.
  result.stream_stats.per_shard.resize(shard_count);
  std::vector<std::vector<PairDecisionRecord>> runs(shard_count);
  for (size_t shard = 0; shard < shard_count; ++shard) {
    ShardDrain& drain = drains[shard];
    result.candidate_count += drain.candidate_count;
    result.stream_stats.batches += drain.batches;
    result.stream_stats.live_candidate_high_water += drain.high_water;
    result.stream_stats.per_shard[shard].batches = drain.batches;
    result.stream_stats.per_shard[shard].live_candidate_high_water =
        drain.high_water;
    std::vector<PairDecisionRecord>& run = runs[shard];
    run.reserve(drain.candidate_count);
    for (std::vector<PairDecisionRecord>& slot : drain.slots) {
      for (PairDecisionRecord& rec : slot) run.push_back(std::move(rec));
    }
    for (const BatchCounters& counters : drain.counters) {
      result.stage_timings += counters.timings;
      if (result.cache_stats.has_value()) {
        *result.cache_stats += counters.cache;
      }
    }
  }
  result.decisions.reserve(result.candidate_count);
  std::vector<size_t> cursor(shard_count, 0);
  while (true) {
    size_t best = shard_count;
    for (size_t shard = 0; shard < shard_count; ++shard) {
      if (cursor[shard] >= runs[shard].size()) continue;
      if (best == shard_count) {
        best = shard;
        continue;
      }
      const PairDecisionRecord& a = runs[shard][cursor[shard]];
      const PairDecisionRecord& b = runs[best][cursor[best]];
      if (a.index1 != b.index1 ? a.index1 < b.index1
                               : a.index2 < b.index2) {
        best = shard;
      }
    }
    if (best == shard_count) break;
    result.decisions.push_back(std::move(runs[best][cursor[best]++]));
  }
  FinalizeTelemetry(options_, std::move(workers), &result);
  return result;
}

}  // namespace pdd
