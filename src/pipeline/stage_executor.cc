#include "pipeline/stage_executor.h"

#include <atomic>
#include <thread>
#include <utility>

namespace pdd {

StageExecutor::StageExecutor(std::shared_ptr<const DetectionPlan> plan,
                             StageExecutorOptions options)
    : plan_(std::move(plan)), options_(options) {}

void StageExecutor::DecideBatch(const XRelation& rel,
                                const std::vector<CandidatePair>& batch,
                                std::vector<PairDecisionRecord>* out) const {
  // Reserve only for a fresh buffer: calling reserve() per batch on the
  // serial path's accumulating vector would pin capacity to the exact
  // size and degrade appends to quadratic copying.
  if (out->empty()) out->reserve(batch.size());
  for (const CandidatePair& pair : batch) {
    const XTuple& t1 = rel.xtuple(pair.first);
    const XTuple& t2 = rel.xtuple(pair.second);
    XPairDecision decision = plan_->DecidePair(t1, t2);
    out->push_back({t1.id(), t2.id(), pair.first, pair.second,
                    decision.similarity, decision.match_class});
  }
}

Result<DetectionResult> StageExecutor::Execute(CandidateStream& stream) const {
  if (plan_ == nullptr) {
    return Status::InvalidArgument("stage executor has no plan");
  }
  if (options_.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  const XRelation& rel = stream.relation();
  // Factory-built streams were checked against their own plan; a custom
  // stream (RunStream seam) may carry any relation, so re-check here.
  if (!rel.schema().CompatibleWith(plan_->schema())) {
    return Status::InvalidArgument(
        "stream relation schema incompatible with plan schema");
  }
  DetectionResult result;
  result.total_pairs = stream.total_pairs();
  result.plan_fingerprint = plan_->fingerprint();

  if (options_.workers <= 1) {
    result.decisions.reserve(stream.candidate_count());
    std::vector<CandidatePair> batch;
    while (stream.NextBatch(options_.batch_size, &batch) > 0) {
      result.candidate_count += batch.size();
      DecideBatch(rel, batch, &result.decisions);
    }
    return result;
  }

  // Parallel path: materialize the batches with their pull order, let
  // workers claim batches through an atomic cursor into per-batch
  // output slots, then concatenate in pull order. Output is identical
  // to the serial path for any worker count.
  std::vector<std::vector<CandidatePair>> batches;
  std::vector<CandidatePair> batch;
  while (stream.NextBatch(options_.batch_size, &batch) > 0) {
    result.candidate_count += batch.size();
    batches.push_back(std::move(batch));
    batch = std::vector<CandidatePair>();
  }
  std::vector<std::vector<PairDecisionRecord>> slots(batches.size());
  std::atomic<size_t> cursor{0};
  auto worker = [&]() {
    // Claimed slots are disjoint, so each worker appends into its own
    // scratch buffer without synchronization.
    for (size_t i = cursor.fetch_add(1); i < batches.size();
         i = cursor.fetch_add(1)) {
      DecideBatch(rel, batches[i], &slots[i]);
    }
  };
  size_t pool_size = std::min(options_.workers, batches.size());
  std::vector<std::thread> pool;
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  result.decisions.reserve(result.candidate_count);
  for (std::vector<PairDecisionRecord>& slot : slots) {
    for (PairDecisionRecord& rec : slot) {
      result.decisions.push_back(std::move(rec));
    }
  }
  return result;
}

}  // namespace pdd
