#include "pipeline/stage_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "cache/pair_digest.h"

namespace pdd {

namespace {

using Clock = std::chrono::steady_clock;

inline double Elapsed(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The accumulator a stage's wall time belongs to.
inline double* TimingSlot(StageTimings* timings, PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kMatch:
      return &timings->match_seconds;
    case PipelineStage::kCombine:
      return &timings->combine_seconds;
    case PipelineStage::kDerive:
      return &timings->derive_seconds;
    case PipelineStage::kClassify:
      return &timings->classify_seconds;
  }
  return &timings->classify_seconds;
}

/// Lazily memoized TupleContentDigest. 0 doubles as the "unset"
/// sentinel: a genuine zero digest just recomputes (correct, merely
/// unmemoized).
inline uint64_t MemoizedDigest(const XRelation& rel, size_t index,
                               std::atomic<uint64_t>* slot) {
  uint64_t digest = slot->load(std::memory_order_relaxed);
  if (digest == 0) {
    digest = TupleContentDigest(rel.xtuple(index));
    slot->store(digest, std::memory_order_relaxed);
  }
  return digest;
}

}  // namespace

StageExecutor::StageExecutor(std::shared_ptr<const DetectionPlan> plan,
                             StageExecutorOptions options)
    : plan_(std::move(plan)), options_(std::move(options)) {}

void StageExecutor::DecideBatch(const XRelation& rel,
                                const std::vector<CandidatePair>& batch,
                                TupleDigestMemo* digest_memo,
                                std::vector<PairDecisionRecord>* out,
                                BatchCounters* counters) const {
  // Reserve only for a fresh buffer: calling reserve() per batch on the
  // serial path's accumulating vector would pin capacity to the exact
  // size and degrade appends to quadratic copying.
  if (out->empty()) out->reserve(batch.size());
  const bool timed = options_.stage_timings;
  const bool use_cache = digest_memo != nullptr;
  DecisionCache* cache = options_.cache.get();
  PairDecisionKey key;
  key.plan_fingerprint = plan_->decision_fingerprint();
  for (const CandidatePair& pair : batch) {
    const XTuple& t1 = rel.xtuple(pair.first);
    const XTuple& t2 = rel.xtuple(pair.second);
    if (use_cache) {
      // The clock reads themselves are gated on `timed`: an untimed
      // warm run's per-pair cost stays digest + lookup, nothing else.
      Clock::time_point start;
      if (timed) start = Clock::now();
      key.pair_digest = CombineTupleDigests(
          MemoizedDigest(rel, pair.first, &(*digest_memo)[pair.first]),
          MemoizedDigest(rel, pair.second, &(*digest_memo)[pair.second]));
      std::optional<CachedPairDecision> cached = cache->Lookup(key);
      if (timed) counters->timings.cache_lookup_seconds += Elapsed(start);
      ++counters->cache.lookups;
      if (cached.has_value()) {
        ++counters->cache.hits;
        out->push_back({t1.id(), t2.id(), pair.first, pair.second,
                        cached->similarity, cached->match_class});
        continue;
      }
      ++counters->cache.misses;
    }
    XPairDecision decision;
    if (timed) {
      // DecidePair's walk over the compiled stage graph, with a clock
      // read around each stage (same order, same arithmetic, same
      // results — plan_->stages() stays the single source of truth).
      ComparisonMatrix matrix;
      AlternativePairScores scores;
      for (PipelineStage stage : plan_->stages()) {
        Clock::time_point start = Clock::now();
        switch (stage) {
          case PipelineStage::kMatch:
            matrix = plan_->RunMatchStage(t1, t2);
            break;
          case PipelineStage::kCombine:
            scores = plan_->RunCombineStage(t1, t2, matrix);
            break;
          case PipelineStage::kDerive:
            decision.similarity = plan_->RunDeriveStage(scores);
            break;
          case PipelineStage::kClassify:
            decision.match_class = plan_->RunClassifyStage(decision.similarity);
            break;
        }
        *TimingSlot(&counters->timings, stage) += Elapsed(start);
      }
    } else {
      decision = plan_->DecidePair(t1, t2);
    }
    if (use_cache) {
      cache->Insert(key, {decision.similarity, decision.match_class});
      ++counters->cache.inserts;
    }
    out->push_back({t1.id(), t2.id(), pair.first, pair.second,
                    decision.similarity, decision.match_class});
  }
}

Result<DetectionResult> StageExecutor::Execute(CandidateStream& stream) const {
  if (plan_ == nullptr) {
    return Status::InvalidArgument("stage executor has no plan");
  }
  if (options_.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  const XRelation& rel = stream.relation();
  // Factory-built streams were checked against their own plan; a custom
  // stream (RunStream seam) may carry any relation, so re-check here.
  if (!rel.schema().CompatibleWith(plan_->schema())) {
    return Status::InvalidArgument(
        "stream relation schema incompatible with plan schema");
  }
  DetectionResult result;
  result.total_pairs = stream.total_pairs();
  result.plan_fingerprint = plan_->fingerprint();
  // A cache-ineligible plan (custom comparators: decision fingerprint
  // 0) runs uncached rather than risking cross-instance collisions.
  const bool use_cache =
      options_.cache != nullptr && plan_->decision_fingerprint() != 0;
  if (options_.cache != nullptr) result.cache_stats = CacheRunStats{};
  // Per-tuple digest memo for the run: filled lazily as candidates
  // touch tuples (a sparse incremental stream over a large base never
  // digests the untouched base), then reused by every later pair, so
  // the hit path never re-hashes tuple content.
  TupleDigestMemo digest_memo(use_cache ? rel.size() : 0);
  TupleDigestMemo* digests = use_cache ? &digest_memo : nullptr;

  if (options_.workers <= 1) {
    if (std::optional<size_t> hint = stream.candidate_count_hint()) {
      result.decisions.reserve(*hint);
    }
    BatchCounters counters;
    std::vector<CandidatePair> batch;
    while (stream.NextBatch(options_.batch_size, &batch) > 0) {
      result.candidate_count += batch.size();
      ++result.stream_stats.batches;
      result.stream_stats.live_candidate_high_water =
          std::max(result.stream_stats.live_candidate_high_water,
                   batch.size() + stream.buffered_candidates());
      DecideBatch(rel, batch, digests, &result.decisions, &counters);
    }
    result.stage_timings = counters.timings;
    if (result.cache_stats.has_value()) *result.cache_stats = counters.cache;
    return result;
  }

  // Parallel path: workers pull batches straight off the stream under a
  // mutex (pulls are serialized, so batch k's content is independent of
  // which worker claims it or when), decide into per-batch output slots
  // and concatenate in pull order — identical to the serial path for
  // any worker count, while never holding more than the in-flight
  // batches of candidates (the old path materialized every batch
  // up-front, resurrecting the O(candidates) buffer streaming deletes).
  struct Drain {
    std::mutex mu;
    bool exhausted = false;
    // Deques: slot references handed to workers stay valid as later
    // pulls append (a vector would invalidate them on growth).
    std::deque<std::vector<PairDecisionRecord>> slots;
    std::deque<BatchCounters> counters;
    size_t in_flight_candidates = 0;
  } drain;
  auto worker = [&]() {
    std::vector<CandidatePair> batch;
    while (true) {
      std::vector<PairDecisionRecord>* slot;
      BatchCounters* slot_counters;
      {
        std::lock_guard<std::mutex> lock(drain.mu);
        if (drain.exhausted) return;
        if (stream.NextBatch(options_.batch_size, &batch) == 0) {
          drain.exhausted = true;
          return;
        }
        result.candidate_count += batch.size();
        ++result.stream_stats.batches;
        drain.in_flight_candidates += batch.size();
        result.stream_stats.live_candidate_high_water =
            std::max(result.stream_stats.live_candidate_high_water,
                     drain.in_flight_candidates + stream.buffered_candidates());
        drain.slots.emplace_back();
        drain.counters.emplace_back();
        slot = &drain.slots.back();
        slot_counters = &drain.counters.back();
      }
      DecideBatch(rel, batch, digests, slot, slot_counters);
      {
        std::lock_guard<std::mutex> lock(drain.mu);
        drain.in_flight_candidates -= batch.size();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  result.decisions.reserve(result.candidate_count);
  for (std::vector<PairDecisionRecord>& slot : drain.slots) {
    for (PairDecisionRecord& rec : slot) {
      result.decisions.push_back(std::move(rec));
    }
  }
  for (const BatchCounters& counters : drain.counters) {
    result.stage_timings += counters.timings;
    if (result.cache_stats.has_value()) *result.cache_stats += counters.cache;
  }
  return result;
}

}  // namespace pdd
