// StageExecutor: drains a CandidateStream in fixed-size batches and
// runs every candidate through the plan's stage graph (match → combine
// → derive → classify), either serially or on an std::thread pool.
// Batches are indexed as they are pulled and merged back in index
// order, and every worker writes into its own preallocated slot, so
// the result is byte-identical to serial execution for any worker
// count — parallelism is purely a throughput knob.

#ifndef PDD_PIPELINE_STAGE_EXECUTOR_H_
#define PDD_PIPELINE_STAGE_EXECUTOR_H_

#include <memory>
#include <vector>

#include "pipeline/candidate_stream.h"
#include "pipeline/detection_plan.h"
#include "pipeline/detection_result.h"
#include "util/status.h"

namespace pdd {

struct StageExecutorOptions {
  /// Candidates per batch handed to the stage pipeline.
  size_t batch_size = 256;
  /// Worker threads; 0 or 1 executes serially on the calling thread.
  size_t workers = 0;
};

class StageExecutor {
 public:
  /// The plan is shared (and must be non-null); options are validated
  /// lazily by Execute.
  StageExecutor(std::shared_ptr<const DetectionPlan> plan,
                StageExecutorOptions options = {});

  /// Drains `stream` and returns the detection result. The stream is
  /// left exhausted (callers reuse one via CandidateStream::Reset).
  Result<DetectionResult> Execute(CandidateStream& stream) const;

  const StageExecutorOptions& options() const { return options_; }

 private:
  /// Runs the stage graph over one batch, appending to `*out` (the
  /// per-worker scratch buffer).
  void DecideBatch(const XRelation& rel,
                   const std::vector<CandidatePair>& batch,
                   std::vector<PairDecisionRecord>* out) const;

  std::shared_ptr<const DetectionPlan> plan_;
  StageExecutorOptions options_;
};

}  // namespace pdd

#endif  // PDD_PIPELINE_STAGE_EXECUTOR_H_
