// StageExecutor: drains a CandidateStream in fixed-size batches and
// runs every candidate through the plan's stage graph (match → combine
// → derive → classify), either serially or on an std::thread pool.
// Batches are indexed as they are pulled (workers pull under a mutex,
// so batch contents are pull-order-determined regardless of worker
// timing) and merged back in index order, with every worker writing
// into its own slot, so the result is byte-identical to serial
// execution for any worker count — parallelism is purely a throughput
// knob. The drain is streaming on both paths: live candidates are
// bounded by the in-flight batches plus whatever the stream itself
// buffers (nothing for native-streaming reductions), and the drain
// accounting lands in DetectionResult::stream_stats.
//
// With a DecisionCache attached, each pair is first looked up by
// (plan decision fingerprint, pair content digest); hits skip the
// stage graph entirely and misses insert the freshly decided outcome,
// so repeated, incremental and swept runs only pay for pairs no
// equivalent plan has decided before. Cached values are the bit
// patterns the stages produced, so cached ≡ uncached ≡ serial ≡
// parallel output. Per-stage wall times (plus the cache-lookup path)
// are accumulated into DetectionResult::stage_timings unless
// stage_timings is disabled.

#ifndef PDD_PIPELINE_STAGE_EXECUTOR_H_
#define PDD_PIPELINE_STAGE_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "cache/decision_cache.h"
#include "pipeline/candidate_stream.h"
#include "pipeline/detection_plan.h"
#include "pipeline/detection_result.h"
#include "util/status.h"

namespace pdd {

struct StageExecutorOptions {
  /// Candidates per batch handed to the stage pipeline.
  size_t batch_size = 256;
  /// Worker threads; 0 or 1 executes serially on the calling thread.
  size_t workers = 0;
  /// Accumulate per-stage wall times into the result. Off by default:
  /// the clock reads cost real time in the innermost decide loop
  /// (~20% on cheap-comparator workloads). Enabled by consumers that
  /// render the breakdown (`pddcli --cache-stats`, bench_fig03's stage
  /// table, ExecutionStatsReport users).
  bool stage_timings = false;
  /// Decision memoization store shared across runs/plans/threads;
  /// null runs uncached. Ignored (with stats reporting zero lookups)
  /// when the plan is cache-ineligible (decision_fingerprint() == 0).
  std::shared_ptr<DecisionCache> cache;
  /// Called once per committed decision record, as batches complete.
  /// The executor serializes calls (one sink invocation at a time), but
  /// the EMISSION ORDER is execution-shape-dependent on pooled/sharded
  /// drains: only the merged DetectionResult carries the deterministic
  /// order. A standing consumer (pddserve) streams decisions out of the
  /// drain through this; batch callers leave it null for zero overhead.
  std::function<void(const PairDecisionRecord&)> decision_sink;
};

class ColumnarMatcher;
class ShardedCandidateStream;

class StageExecutor {
 public:
  /// The plan is shared (and must be non-null); options are validated
  /// lazily by Execute.
  StageExecutor(std::shared_ptr<const DetectionPlan> plan,
                StageExecutorOptions options = {});

  /// Drains `stream` and returns the detection result. The stream is
  /// left exhausted (callers reuse one via CandidateStream::Reset).
  /// A 0-candidate pull does not end the drain by itself: the stream's
  /// AwaitMore() decides between *exhausted* (finite batch sources) and
  /// *idle but open* (a standing ingest source blocks there until more
  /// tuples arrive or the feed closes), so the same decide path serves
  /// batch runs and the standing loop.
  /// A ShardedCandidateStream with more than one shard takes the
  /// shard-aware drain: exactly `workers` threads split into per-shard
  /// worker sets (a thread covers several shards sequentially when
  /// workers < shards) pulling under per-shard mutexes, the one
  /// attached DecisionCache handle shared by every shard worker,
  /// per-shard accounting in
  /// DetectionResult::stream_stats.per_shard, and the per-shard
  /// decision records merged deterministically (ascending
  /// (first, second), stable shard tie-break) — byte-identical to the
  /// unsharded drain of the same plan and scenario.
  Result<DetectionResult> Execute(CandidateStream& stream) const;

  const StageExecutorOptions& options() const { return options_; }

 private:
  /// Per-batch accumulators merged into the result after the drain.
  struct BatchCounters {
    StageTimings timings;
    CacheRunStats cache;
  };

  /// Lazily memoized per-tuple content digests for one run, sized to
  /// the stream's relation. 0 = not yet computed; entries fill in as
  /// candidate pairs touch their tuples, so sparse runs (incremental
  /// streams over large bases) only digest what they examine. Benign
  /// write races: the digest is a pure function of content, every
  /// writer stores the same value.
  using TupleDigestMemo = std::vector<std::atomic<uint64_t>>;

  /// Runs the stage graph over one batch, appending to `*out` (the
  /// per-worker scratch buffer). `digest_memo` is non-null exactly
  /// when the cache is consulted on the scalar path. `matcher`, when
  /// non-null, is this worker's columnar matcher: pairs decide through
  /// the batched kernels and cache keys use the arena's precomputed
  /// tuple digests instead of the lazy memo (digest_memo is then null).
  void DecideBatch(const XRelation& rel,
                   const std::vector<CandidatePair>& batch,
                   TupleDigestMemo* digest_memo, ColumnarMatcher* matcher,
                   std::vector<PairDecisionRecord>* out,
                   BatchCounters* counters) const;

  /// The shard-aware drain (see Execute). `digest_memo` as above;
  /// `arena` non-null selects the columnar path (one matcher per
  /// drain_shard call, all over the shared arena).
  Result<DetectionResult> ExecuteSharded(ShardedCandidateStream& stream,
                                         TupleDigestMemo* digest_memo,
                                         const RelationArena* arena,
                                         DetectionResult result) const;

  std::shared_ptr<const DetectionPlan> plan_;
  StageExecutorOptions options_;
};

}  // namespace pdd

#endif  // PDD_PIPELINE_STAGE_EXECUTOR_H_
