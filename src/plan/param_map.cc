#include "plan/param_map.h"

#include <cassert>
#include <cctype>

#include "util/string_util.h"

namespace pdd {

bool IsValidParamKey(std::string_view key) {
  if (key.empty()) return false;
  for (char c : key) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return false;
    }
  }
  return true;
}

void ParamMap::Set(std::string key, std::string value) {
  assert(IsValidParamKey(key) && "param key must match [A-Za-z0-9_.-]+");
  entries_[std::move(key)] = std::move(value);
}

void ParamMap::SetDouble(std::string key, double value) {
  Set(std::move(key), FormatDouble(value));
}

void ParamMap::SetSize(std::string key, size_t value) {
  Set(std::move(key), std::to_string(value));
}

void ParamMap::SetBool(std::string key, bool value) {
  Set(std::move(key), value ? "true" : "false");
}

bool ParamMap::Erase(std::string_view key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

bool ParamMap::Has(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

const std::string* ParamMap::Find(std::string_view key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  consumed_.insert(it->first);
  return &it->second;
}

std::string ParamMap::GetString(std::string_view key,
                                std::string default_value) const {
  const std::string* value = Find(key);
  return value != nullptr ? *value : std::move(default_value);
}

Result<double> ParamMap::GetDouble(std::string_view key,
                                   double default_value) const {
  const std::string* value = Find(key);
  if (value == nullptr) return default_value;
  double parsed = 0.0;
  if (!ParseDouble(*value, &parsed)) {
    return Status::InvalidArgument("parameter '" + std::string(key) +
                                   "' is not a number: '" + *value + "'");
  }
  return parsed;
}

Result<size_t> ParamMap::GetSize(std::string_view key,
                                 size_t default_value) const {
  const std::string* value = Find(key);
  if (value == nullptr) return default_value;
  double parsed = 0.0;
  if (!ParseDouble(*value, &parsed) || parsed < 0 ||
      parsed != static_cast<double>(static_cast<size_t>(parsed))) {
    return Status::InvalidArgument("parameter '" + std::string(key) +
                                   "' is not a non-negative integer: '" +
                                   *value + "'");
  }
  return static_cast<size_t>(parsed);
}

Result<bool> ParamMap::GetBool(std::string_view key,
                               bool default_value) const {
  const std::string* value = Find(key);
  if (value == nullptr) return default_value;
  if (*value == "true" || *value == "1" || *value == "yes") return true;
  if (*value == "false" || *value == "0" || *value == "no") return false;
  return Status::InvalidArgument("parameter '" + std::string(key) +
                                 "' is not a boolean: '" + *value + "'");
}

void ParamMap::ResetConsumption() const { consumed_.clear(); }

std::vector<std::string> ParamMap::UnconsumedKeys() const {
  std::vector<std::string> keys;
  for (const auto& [key, value] : entries_) {
    if (consumed_.find(key) == consumed_.end()) keys.push_back(key);
  }
  return keys;
}

Status ParamMap::ExpectFullyConsumed(std::string_view context) const {
  std::vector<std::string> keys = UnconsumedKeys();
  if (keys.empty()) return Status::OK();
  return Status::InvalidArgument("unknown parameter" +
                                 std::string(keys.size() > 1 ? "s" : "") +
                                 " in " + std::string(context) + ": " +
                                 Join(keys, ", "));
}

}  // namespace pdd
