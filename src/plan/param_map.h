// ParamMap: the typed string→value parameter bag underlying PlanSpec.
//
// Values are stored as canonical strings (the plan text format is the
// source of truth); typed getters parse on access and report malformed
// values as InvalidArgument. Every getter marks its key as consumed, so
// after a component has read its parameters the caller can reject
// unknown keys with ExpectFullyConsumed() — a typo like
// "reduction.windwo = 5" fails loudly instead of silently using the
// default.

#ifndef PDD_PLAN_PARAM_MAP_H_
#define PDD_PLAN_PARAM_MAP_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pdd {

/// Keys are restricted to [A-Za-z0-9_.-]+ so the `key = value` text
/// form always round-trips (no whitespace, '=' or '#' ambiguity).
bool IsValidParamKey(std::string_view key);

class ParamMap {
 public:
  // --- setters (canonical string formatting) ------------------------

  /// Sets `key` to a verbatim string value (overwrites). `key` must
  /// satisfy IsValidParamKey (asserted in debug builds; an invalid key
  /// would break the ToText/Parse round trip).
  void Set(std::string key, std::string value);
  /// Sets `key` to FormatDouble(value) ("0.8", "1", "0.0125").
  void SetDouble(std::string key, double value);
  /// Sets `key` to the decimal form of `value`.
  void SetSize(std::string key, size_t value);
  /// Sets `key` to "true" / "false".
  void SetBool(std::string key, bool value);

  /// Removes `key`; returns whether it was present.
  bool Erase(std::string_view key);

  // --- defaulted, consuming getters ---------------------------------

  bool Has(std::string_view key) const;

  /// The value of `key`, or `default_value` when absent.
  std::string GetString(std::string_view key,
                        std::string default_value) const;
  /// Parses `key` as a double; absent keys yield `default_value`,
  /// malformed values InvalidArgument.
  Result<double> GetDouble(std::string_view key, double default_value) const;
  /// Parses `key` as a non-negative integer.
  Result<size_t> GetSize(std::string_view key, size_t default_value) const;
  /// Parses `key` as a boolean ("true"/"false"/"1"/"0"/"yes"/"no").
  Result<bool> GetBool(std::string_view key, bool default_value) const;

  // --- unknown-key rejection ----------------------------------------

  /// Clears the consumed-key record (call before a fresh read pass).
  void ResetConsumption() const;
  /// Keys never touched by a getter since the last reset, sorted.
  std::vector<std::string> UnconsumedKeys() const;
  /// InvalidArgument listing the unconsumed keys, or OK when all keys
  /// were read. `context` names the reader ("plan spec").
  Status ExpectFullyConsumed(std::string_view context) const;

  // --- inspection ---------------------------------------------------

  /// All entries in canonical (lexicographic) key order.
  const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  bool operator==(const ParamMap& other) const {
    return entries_ == other.entries_;
  }
  bool operator!=(const ParamMap& other) const { return !(*this == other); }

 private:
  /// Looks up `key` and marks it consumed; nullptr when absent.
  const std::string* Find(std::string_view key) const;

  std::map<std::string, std::string, std::less<>> entries_;
  /// Keys read by getters — mutable because reading is logically const.
  mutable std::set<std::string, std::less<>> consumed_;
};

}  // namespace pdd

#endif  // PDD_PLAN_PARAM_MAP_H_
