#include "plan/plan_builder.h"

#include "plan/translate.h"
#include "util/string_util.h"

namespace pdd {

PlanBuilder& PlanBuilder::Key(
    std::vector<std::pair<std::string, size_t>> key) {
  key_ = std::move(key);
  return *this;
}

PlanBuilder& PlanBuilder::AddKey(std::string attribute, size_t prefix) {
  key_.emplace_back(std::move(attribute), prefix);
  return *this;
}

PlanBuilder& PlanBuilder::Reduction(std::string name) {
  spec_.params().Set("reduction", std::move(name));
  return *this;
}

PlanBuilder& PlanBuilder::Combination(std::string name) {
  spec_.params().Set("combination", std::move(name));
  return *this;
}

PlanBuilder& PlanBuilder::Derivation(std::string name) {
  spec_.params().Set("derivation", std::move(name));
  return *this;
}

PlanBuilder& PlanBuilder::Weights(const std::vector<double>& weights) {
  std::vector<std::string> pieces;
  pieces.reserve(weights.size());
  for (double w : weights) pieces.push_back(FormatDouble(w));
  spec_.params().Set("combination.weights", Join(pieces, ","));
  return *this;
}

PlanBuilder& PlanBuilder::Thresholds(double t_lambda, double t_mu) {
  spec_.params().SetDouble("classify.t_lambda", t_lambda);
  spec_.params().SetDouble("classify.t_mu", t_mu);
  return *this;
}

PlanBuilder& PlanBuilder::IntermediateThresholds(double t_lambda,
                                                 double t_mu) {
  spec_.params().SetDouble("derivation.t_lambda", t_lambda);
  spec_.params().SetDouble("derivation.t_mu", t_mu);
  return *this;
}

PlanBuilder& PlanBuilder::Comparators(const std::vector<std::string>& names) {
  spec_.params().Set("comparators", Join(names, ","));
  return *this;
}

PlanBuilder& PlanBuilder::Prepare(std::string description) {
  spec_.params().Set("prepare", std::move(description));
  return *this;
}

PlanBuilder& PlanBuilder::Prune(double threshold) {
  spec_.params().SetBool("prune", true);
  spec_.params().SetDouble("prune.threshold", threshold);
  return *this;
}

PlanBuilder& PlanBuilder::Set(std::string key, std::string value) {
  spec_.params().Set(std::move(key), std::move(value));
  return *this;
}

PlanBuilder& PlanBuilder::Set(std::string key, const char* value) {
  spec_.params().Set(std::move(key), value);
  return *this;
}

PlanBuilder& PlanBuilder::Set(std::string key, double value) {
  spec_.params().SetDouble(std::move(key), value);
  return *this;
}

PlanBuilder& PlanBuilder::Set(std::string key, size_t value) {
  spec_.params().SetSize(std::move(key), value);
  return *this;
}

PlanBuilder& PlanBuilder::Set(std::string key, int value) {
  spec_.params().Set(std::move(key), std::to_string(value));
  return *this;
}

PlanBuilder& PlanBuilder::Set(std::string key, bool value) {
  spec_.params().SetBool(std::move(key), value);
  return *this;
}

PlanSpec PlanBuilder::Build() const {
  PlanSpec spec = spec_;
  if (!key_.empty()) {
    spec.params().Set("key", FormatKeyComponents(key_));
  }
  return spec;
}

}  // namespace pdd
