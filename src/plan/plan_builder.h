// PlanBuilder: fluent C++ construction of PlanSpecs.
//
//   PlanSpec spec = PlanBuilder()
//                       .AddKey("name", 3)
//                       .AddKey("job", 2)
//                       .Reduction("snm_certain_keys")
//                       .Set("reduction.window", 4)
//                       .Weights({0.8, 0.2})
//                       .Thresholds(0.4, 0.7)
//                       .Build();
//
// The builder only records what the caller sets; everything else keeps
// its DetectorConfig default when the spec is compiled. Component names
// are validated at compile time (DetectionPlan::Compile /
// DetectorConfig::FromSpec), not at Build().

#ifndef PDD_PLAN_PLAN_BUILDER_H_
#define PDD_PLAN_PLAN_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "plan/plan_spec.h"

namespace pdd {

class PlanBuilder {
 public:
  /// Replaces the key components.
  PlanBuilder& Key(std::vector<std::pair<std::string, size_t>> key);
  /// Appends one key component (attribute name, prefix length; 0 =
  /// whole value).
  PlanBuilder& AddKey(std::string attribute, size_t prefix);

  /// Selects the reduction / combination φ / derivation ϑ by registry
  /// name.
  PlanBuilder& Reduction(std::string name);
  PlanBuilder& Combination(std::string name);
  PlanBuilder& Derivation(std::string name);

  /// Weighted-sum combination weights.
  PlanBuilder& Weights(const std::vector<double>& weights);
  /// Final classification thresholds Tλ / Tμ.
  PlanBuilder& Thresholds(double t_lambda, double t_mu);
  /// Intermediate thresholds of the decision-based derivations.
  PlanBuilder& IntermediateThresholds(double t_lambda, double t_mu);
  /// Per-attribute comparator names ("default" = per-type default).
  PlanBuilder& Comparators(const std::vector<std::string>& names);
  /// Data preparation step description ("lower,trim,collapse").
  PlanBuilder& Prepare(std::string description);
  /// Enables length-bound pruning at `threshold`.
  PlanBuilder& Prune(double threshold);

  /// Raw parameter assignment for anything without a dedicated setter
  /// ("reduction.window", "combination.interpolated", ...).
  PlanBuilder& Set(std::string key, std::string value);
  PlanBuilder& Set(std::string key, const char* value);
  PlanBuilder& Set(std::string key, double value);
  PlanBuilder& Set(std::string key, size_t value);
  PlanBuilder& Set(std::string key, int value);
  PlanBuilder& Set(std::string key, bool value);

  /// The assembled spec.
  PlanSpec Build() const;

 private:
  PlanSpec spec_;
  std::vector<std::pair<std::string, size_t>> key_;
};

}  // namespace pdd

#endif  // PDD_PLAN_PLAN_BUILDER_H_
