#include "plan/plan_spec.h"

#include "util/string_util.h"

namespace pdd {

namespace {

std::string EscapeValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    char c = value[i];
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\r') {
      out += "\\r";
    } else if (c == ' ' && (i == 0 || i + 1 == value.size())) {
      // Edge spaces would be lost to the parser's Trim; escaping the
      // outermost one preserves any run of them.
      out += "\\s";
    } else {
      out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\') {
      out += value[i];
      continue;
    }
    if (i + 1 >= value.size()) {
      return Status::ParseError("dangling escape in value '" +
                                std::string(value) + "'");
    }
    char next = value[++i];
    if (next == '\\') {
      out += '\\';
    } else if (next == 'n') {
      out += '\n';
    } else if (next == 't') {
      out += '\t';
    } else if (next == 'r') {
      out += '\r';
    } else if (next == 's') {
      out += ' ';
    } else {
      return Status::ParseError(std::string("unknown escape '\\") + next +
                                "' in value '" + std::string(value) + "'");
    }
  }
  return out;
}

/// Splits "key=value" (or "key = value") at the first '=', trims both
/// sides, validates the key and unescapes the value.
Result<std::pair<std::string, std::string>> ParseAssignment(
    std::string_view line) {
  size_t eq = line.find('=');
  if (eq == std::string_view::npos) {
    return Status::ParseError("expected 'key = value', got '" +
                              std::string(line) + "'");
  }
  std::string_view key = Trim(line.substr(0, eq));
  std::string_view raw = Trim(line.substr(eq + 1));
  if (!IsValidParamKey(key)) {
    return Status::ParseError("invalid plan key '" + std::string(key) + "'");
  }
  PDD_ASSIGN_OR_RETURN(std::string value, UnescapeValue(raw));
  return std::make_pair(std::string(key), std::move(value));
}

}  // namespace

Result<PlanSpec> PlanSpec::Parse(std::string_view text) {
  PlanSpec spec;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto parsed = ParseAssignment(line);
    if (!parsed.ok()) {
      return Status::ParseError("line " + std::to_string(line_number) + ": " +
                                parsed.status().message());
    }
    auto [key, value] = std::move(parsed).value();
    if (spec.params_.Has(key)) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": duplicate key '" + key + "'");
    }
    spec.params_.Set(std::move(key), std::move(value));
  }
  return spec;
}

Status PlanSpec::SetAssignment(std::string_view assignment) {
  auto parsed = ParseAssignment(assignment);
  if (!parsed.ok()) return parsed.status();
  auto [key, value] = std::move(parsed).value();
  params_.Set(std::move(key), std::move(value));
  return Status::OK();
}

std::string PlanSpec::ToText() const {
  std::string out;
  for (const auto& [key, value] : params_.entries()) {
    out += key;
    out += " = ";
    out += EscapeValue(value);
    out += '\n';
  }
  return out;
}

uint64_t PlanSpec::Fingerprint() const {
  // FNV-1a 64-bit over the canonical text.
  uint64_t hash = 14695981039346656037ull;
  for (char c : ToText()) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string FingerprintHex(uint64_t fingerprint) {
  return HexU64(fingerprint);
}

}  // namespace pdd
