// PlanSpec: the declarative, text-representable description of one
// detection plan — the string-keyed counterpart of DetectorConfig.
//
// A spec is a flat bag of dotted `key = value` assignments:
//
//   key = name:3,job:2
//   reduction = snm_certain_keys
//   reduction.window = 4
//   reduction.conflict = most_probable
//   combination = weighted_sum
//   combination.weights = 0.8,0.2
//   derivation = expected_similarity
//   classify.t_lambda = 0.4
//   classify.t_mu = 0.7
//
// The canonical text form (ToText) prints the entries in lexicographic
// key order with one escaping rule (backslash and newline), so
// Parse(ToText(spec)) == spec bit-identically and line order in a plan
// file never matters. Fingerprint() hashes the canonical form into a
// stable 64-bit identity; it is invariant to field ordering and is the
// key the ROADMAP's result caching and shard placement build on.
//
// Component names ("snm_certain_keys", "weighted_sum", ...) are
// resolved against the ComponentRegistry when a spec is translated to a
// DetectorConfig (DetectorConfig::FromSpec) or compiled directly
// (DetectionPlan::Compile(spec, schema)).

#ifndef PDD_PLAN_PLAN_SPEC_H_
#define PDD_PLAN_PLAN_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "plan/param_map.h"
#include "util/status.h"

namespace pdd {

class PlanSpec {
 public:
  /// Parses the `key = value` text form. Blank lines and `#` comments
  /// are skipped; duplicate keys are a ParseError (use SetAssignment
  /// for last-wins overrides).
  static Result<PlanSpec> Parse(std::string_view text);

  /// Applies one "key=value" assignment (the CLI `--set` form),
  /// overwriting any existing value. Unescapes the value.
  Status SetAssignment(std::string_view assignment);

  /// Canonical text: entries in lexicographic key order, one
  /// `key = value` per line, values escaped (`\\` and `\n`).
  std::string ToText() const;

  /// Stable 64-bit identity: FNV-1a over the canonical text. Invariant
  /// to entry order; any value change yields a different fingerprint
  /// (modulo hash collisions).
  uint64_t Fingerprint() const;

  /// The underlying parameter bag.
  ParamMap& params() { return params_; }
  const ParamMap& params() const { return params_; }

  bool operator==(const PlanSpec& other) const {
    return params_ == other.params_;
  }
  bool operator!=(const PlanSpec& other) const { return !(*this == other); }

 private:
  ParamMap params_;
};

/// Fixed-width lower-case hex form of a fingerprint ("00af3c...").
std::string FingerprintHex(uint64_t fingerprint);

}  // namespace pdd

#endif  // PDD_PLAN_PLAN_SPEC_H_
