#include "plan/registry.h"

#include <algorithm>

#include "decision/rule_engine.h"
#include "decision/rule_parser.h"
#include "derive/decision_based.h"
#include "derive/similarity_based.h"
#include "reduction/blocking.h"
#include "reduction/blocking_alternatives.h"
#include "reduction/blocking_clustered.h"
#include "reduction/canopy.h"
#include "reduction/full_pairs.h"
#include "reduction/qgram_index.h"
#include "reduction/snm_adaptive.h"
#include "reduction/snm_certain_keys.h"
#include "reduction/snm_multipass_worlds.h"
#include "reduction/snm_sorting_alternatives.h"
#include "reduction/snm_uncertain_ranking.h"
#include "sim/edit_distance.h"
#include "sim/registry.h"
#include "util/string_util.h"

namespace pdd {

const char* CombinationKindName(CombinationKind kind) {
  switch (kind) {
    case CombinationKind::kWeightedSum:
      return "weighted_sum";
    case CombinationKind::kFellegiSunter:
      return "fellegi_sunter";
    case CombinationKind::kRules:
      return "rules";
  }
  return "unknown";
}

const char* RankingMethodName(RankingMethod method) {
  switch (method) {
    case RankingMethod::kExpectedRank:
      return "expected_rank";
    case RankingMethod::kPositional:
      return "positional";
  }
  return "unknown";
}

const char* WorldStrategyName(WorldSelectionStrategy strategy) {
  switch (strategy) {
    case WorldSelectionStrategy::kTopProbable:
      return "top_probable";
    case WorldSelectionStrategy::kDiverse:
      return "diverse";
  }
  return "unknown";
}

const char* ClusterAlgorithmName(ClusteredBlockingOptions::Algorithm a) {
  switch (a) {
    case ClusteredBlockingOptions::Algorithm::kLeader:
      return "leader";
    case ClusteredBlockingOptions::Algorithm::kKMedoids:
      return "kmedoids";
  }
  return "unknown";
}

Status UnknownComponentError(std::string_view family, std::string_view name,
                             const std::vector<std::string>& registered) {
  std::string message =
      "unknown " + std::string(family) + " '" + std::string(name) + "'";
  const std::string* nearest = nullptr;
  size_t nearest_distance = 0;
  for (const std::string& candidate : registered) {
    size_t distance = LevenshteinDistance(name, candidate);
    if (nearest == nullptr || distance < nearest_distance) {
      nearest = &candidate;
      nearest_distance = distance;
    }
  }
  if (nearest != nullptr &&
      nearest_distance <= std::max<size_t>(2, name.size() / 2)) {
    message += "; did you mean '" + *nearest + "'?";
  }
  message += " registered: " + Join(registered, ", ");
  return Status::InvalidArgument(std::move(message));
}

namespace {

template <typename Map>
std::vector<std::string> KeysOf(const Map& map) {
  std::vector<std::string> names;
  names.reserve(map.size());
  for (const auto& [name, entry] : map) names.push_back(name);
  return names;
}

// --- shared parameter handlers --------------------------------------

Status NoParams(const ParamMap&, DetectorConfig*) { return Status::OK(); }
void PrintNothing(const DetectorConfig&, ParamMap*) {}

Status ConfigureWindow(const ParamMap& params, DetectorConfig* config) {
  PDD_ASSIGN_OR_RETURN(config->window,
                       params.GetSize("reduction.window", config->window));
  return Status::OK();
}

void PrintWindow(const DetectorConfig& config, ParamMap* params) {
  params->SetSize("reduction.window", config.window);
}

Status ConfigureConflict(const ParamMap& params, DetectorConfig* config) {
  std::string name = params.GetString(
      "reduction.conflict", ConflictStrategyName(config->conflict_strategy));
  PDD_ASSIGN_OR_RETURN(
      config->conflict_strategy,
      ComponentRegistry::Global().FindConflictStrategy(name));
  return Status::OK();
}

void PrintConflict(const DetectorConfig& config, ParamMap* params) {
  params->Set("reduction.conflict",
              ConflictStrategyName(config.conflict_strategy));
}

Status ConfigureWorlds(const ParamMap& params, DetectorConfig* config) {
  WorldSelectionOptions& w = config->world_selection;
  PDD_ASSIGN_OR_RETURN(w.count, params.GetSize("reduction.worlds", w.count));
  std::string strategy = params.GetString("reduction.world_strategy",
                                          WorldStrategyName(w.strategy));
  PDD_ASSIGN_OR_RETURN(
      w.strategy, ComponentRegistry::Global().FindWorldStrategy(strategy));
  PDD_ASSIGN_OR_RETURN(w.lambda,
                       params.GetDouble("reduction.world_lambda", w.lambda));
  PDD_ASSIGN_OR_RETURN(
      w.candidate_pool,
      params.GetSize("reduction.world_pool", w.candidate_pool));
  PDD_ASSIGN_OR_RETURN(
      w.all_present_only,
      params.GetBool("reduction.all_present", w.all_present_only));
  return Status::OK();
}

void PrintWorlds(const DetectorConfig& config, ParamMap* params) {
  const WorldSelectionOptions& w = config.world_selection;
  params->SetSize("reduction.worlds", w.count);
  params->Set("reduction.world_strategy", WorldStrategyName(w.strategy));
  params->SetDouble("reduction.world_lambda", w.lambda);
  params->SetSize("reduction.world_pool", w.candidate_pool);
  params->SetBool("reduction.all_present", w.all_present_only);
}

/// Key-distance comparator used by clustered blocking / canopy /
/// adaptive SNM. Spec values are registry comparator names; "overlap"
/// selects the distribution-overlap default (null pointer). Absent keys
/// keep the base config's pointer.
Status ConfigureDistance(const ParamMap& params, std::string_view key,
                         const Comparator** slot) {
  std::string name = params.GetString(key, "");
  if (name.empty()) return Status::OK();
  if (name == "overlap") {
    *slot = nullptr;
    return Status::OK();
  }
  if (name == "custom") {
    return Status::InvalidArgument(
        "plan specs cannot resolve a 'custom' " + std::string(key) +
        " comparator — set the option struct's comparator "
        "programmatically");
  }
  PDD_ASSIGN_OR_RETURN(*slot, GetComparator(name));
  return Status::OK();
}

void PrintDistance(const Comparator* comparator, std::string key,
                   ParamMap* params) {
  if (comparator == nullptr) return;
  // Only a comparator that IS the registry instance of its name prints
  // as that name; a caller-installed subclass that happens to share a
  // name must not silently alias the stock one on reload.
  auto registered = GetComparator(comparator->name());
  bool is_registry_instance = registered.ok() && *registered == comparator;
  params->Set(std::move(key),
              is_registry_instance ? comparator->name() : "custom");
}

// --- reduction entries ----------------------------------------------

Status ConfigureSnmMultipass(const ParamMap& params, DetectorConfig* config) {
  PDD_RETURN_IF_ERROR(ConfigureWindow(params, config));
  PDD_RETURN_IF_ERROR(ConfigureConflict(params, config));
  return ConfigureWorlds(params, config);
}

void PrintSnmMultipass(const DetectorConfig& config, ParamMap* params) {
  PrintWindow(config, params);
  PrintConflict(config, params);
  PrintWorlds(config, params);
}

Status ConfigureSnmCertain(const ParamMap& params, DetectorConfig* config) {
  PDD_RETURN_IF_ERROR(ConfigureWindow(params, config));
  return ConfigureConflict(params, config);
}

void PrintSnmCertain(const DetectorConfig& config, ParamMap* params) {
  PrintWindow(config, params);
  PrintConflict(config, params);
}

Status ConfigureSnmRanking(const ParamMap& params, DetectorConfig* config) {
  PDD_RETURN_IF_ERROR(ConfigureWindow(params, config));
  std::string ranking = params.GetString(
      "reduction.ranking", RankingMethodName(config->ranking_method));
  PDD_ASSIGN_OR_RETURN(config->ranking_method,
                       ComponentRegistry::Global().FindRankingMethod(ranking));
  return Status::OK();
}

void PrintSnmRanking(const DetectorConfig& config, ParamMap* params) {
  PrintWindow(config, params);
  params->Set("reduction.ranking", RankingMethodName(config.ranking_method));
}

Status ConfigureClustered(const ParamMap& params, DetectorConfig* config) {
  ClusteredBlockingOptions& o = config->clustering;
  std::string algorithm = params.GetString(
      "reduction.algorithm", ClusterAlgorithmName(o.algorithm));
  PDD_ASSIGN_OR_RETURN(
      o.algorithm,
      ComponentRegistry::Global().FindClusterAlgorithm(algorithm));
  PDD_ASSIGN_OR_RETURN(
      o.leader_threshold,
      params.GetDouble("reduction.leader_threshold", o.leader_threshold));
  PDD_ASSIGN_OR_RETURN(o.kmedoids.k,
                       params.GetSize("reduction.clusters", o.kmedoids.k));
  PDD_ASSIGN_OR_RETURN(
      o.kmedoids.max_iterations,
      params.GetSize("reduction.max_iterations", o.kmedoids.max_iterations));
  PDD_ASSIGN_OR_RETURN(
      o.kmedoids.seed,
      params.GetSize("reduction.cluster_seed", o.kmedoids.seed));
  PDD_ASSIGN_OR_RETURN(
      o.conditioned, params.GetBool("reduction.conditioned", o.conditioned));
  return ConfigureDistance(params, "reduction.distance", &o.comparator);
}

void PrintClustered(const DetectorConfig& config, ParamMap* params) {
  const ClusteredBlockingOptions& o = config.clustering;
  params->Set("reduction.algorithm", ClusterAlgorithmName(o.algorithm));
  params->SetDouble("reduction.leader_threshold", o.leader_threshold);
  params->SetSize("reduction.clusters", o.kmedoids.k);
  params->SetSize("reduction.max_iterations", o.kmedoids.max_iterations);
  params->SetSize("reduction.cluster_seed", o.kmedoids.seed);
  params->SetBool("reduction.conditioned", o.conditioned);
  PrintDistance(o.comparator, "reduction.distance", params);
}

Status ConfigureCanopy(const ParamMap& params, DetectorConfig* config) {
  CanopyOptions& o = config->canopy;
  PDD_ASSIGN_OR_RETURN(o.loose, params.GetDouble("reduction.loose", o.loose));
  PDD_ASSIGN_OR_RETURN(o.tight, params.GetDouble("reduction.tight", o.tight));
  PDD_ASSIGN_OR_RETURN(
      o.conditioned, params.GetBool("reduction.conditioned", o.conditioned));
  return ConfigureDistance(params, "reduction.distance", &o.comparator);
}

void PrintCanopy(const DetectorConfig& config, ParamMap* params) {
  const CanopyOptions& o = config.canopy;
  params->SetDouble("reduction.loose", o.loose);
  params->SetDouble("reduction.tight", o.tight);
  params->SetBool("reduction.conditioned", o.conditioned);
  PrintDistance(o.comparator, "reduction.distance", params);
}

Status ConfigureAdaptive(const ParamMap& params, DetectorConfig* config) {
  SnmAdaptiveOptions& o = config->adaptive;
  PDD_ASSIGN_OR_RETURN(
      o.key_similarity_threshold,
      params.GetDouble("reduction.key_similarity",
                       o.key_similarity_threshold));
  PDD_ASSIGN_OR_RETURN(o.max_window,
                       params.GetSize("reduction.max_window", o.max_window));
  // Adaptive SNM has its own strategy field; default from it (not from
  // the global conflict_strategy) so absent keys keep the base value.
  std::string conflict = params.GetString("reduction.conflict",
                                          ConflictStrategyName(o.strategy));
  PDD_ASSIGN_OR_RETURN(
      o.strategy, ComponentRegistry::Global().FindConflictStrategy(conflict));
  return ConfigureDistance(params, "reduction.key_comparator", &o.comparator);
}

void PrintAdaptive(const DetectorConfig& config, ParamMap* params) {
  const SnmAdaptiveOptions& o = config.adaptive;
  params->SetDouble("reduction.key_similarity", o.key_similarity_threshold);
  params->SetSize("reduction.max_window", o.max_window);
  params->Set("reduction.conflict", ConflictStrategyName(o.strategy));
  PrintDistance(o.comparator, "reduction.key_comparator", params);
}

Status ConfigureQGram(const ParamMap& params, DetectorConfig* config) {
  QGramIndexOptions& o = config->qgram;
  PDD_ASSIGN_OR_RETURN(o.q, params.GetSize("reduction.q", o.q));
  PDD_ASSIGN_OR_RETURN(
      o.min_shared_grams,
      params.GetSize("reduction.min_shared_grams", o.min_shared_grams));
  PDD_ASSIGN_OR_RETURN(o.max_posting_fraction,
                       params.GetDouble("reduction.max_posting_fraction",
                                        o.max_posting_fraction));
  PDD_ASSIGN_OR_RETURN(
      o.stop_gram_floor,
      params.GetSize("reduction.stop_gram_floor", o.stop_gram_floor));
  return Status::OK();
}

void PrintQGram(const DetectorConfig& config, ParamMap* params) {
  const QGramIndexOptions& o = config.qgram;
  params->SetSize("reduction.q", o.q);
  params->SetSize("reduction.min_shared_grams", o.min_shared_grams);
  params->SetDouble("reduction.max_posting_fraction", o.max_posting_fraction);
  params->SetSize("reduction.stop_gram_floor", o.stop_gram_floor);
}

std::unique_ptr<PairGenerator> MakeFull(const DetectorConfig&,
                                        const KeySpec&) {
  return std::make_unique<FullPairs>();
}

std::unique_ptr<PairGenerator> MakeSnmMultipass(const DetectorConfig& config,
                                                const KeySpec& key_spec) {
  SnmMultipassOptions options;
  options.window = config.window;
  options.selection = config.world_selection;
  options.value_strategy = config.conflict_strategy;
  return std::make_unique<SnmMultipassWorlds>(key_spec, options);
}

std::unique_ptr<PairGenerator> MakeSnmCertain(const DetectorConfig& config,
                                              const KeySpec& key_spec) {
  SnmCertainKeyOptions options;
  options.window = config.window;
  options.strategy = config.conflict_strategy;
  return std::make_unique<SnmCertainKeys>(key_spec, options);
}

std::unique_ptr<PairGenerator> MakeSnmAlternatives(
    const DetectorConfig& config, const KeySpec& key_spec) {
  SnmAlternativesOptions options;
  options.window = config.window;
  return std::make_unique<SnmSortingAlternatives>(key_spec, options);
}

std::unique_ptr<PairGenerator> MakeSnmRanking(const DetectorConfig& config,
                                              const KeySpec& key_spec) {
  SnmRankingOptions options;
  options.window = config.window;
  options.method = config.ranking_method;
  return std::make_unique<SnmUncertainRanking>(key_spec, options);
}

std::unique_ptr<PairGenerator> MakeBlockingCertain(
    const DetectorConfig& config, const KeySpec& key_spec) {
  return std::make_unique<BlockingCertainKeys>(key_spec,
                                               config.conflict_strategy);
}

std::unique_ptr<PairGenerator> MakeBlockingAlternatives(
    const DetectorConfig&, const KeySpec& key_spec) {
  return std::make_unique<BlockingAlternatives>(key_spec);
}

std::unique_ptr<PairGenerator> MakeBlockingMultipass(
    const DetectorConfig& config, const KeySpec& key_spec) {
  return std::make_unique<BlockingMultipassWorlds>(key_spec,
                                                   config.world_selection);
}

std::unique_ptr<PairGenerator> MakeBlockingClustered(
    const DetectorConfig& config, const KeySpec& key_spec) {
  return std::make_unique<BlockingClustered>(key_spec, config.clustering);
}

std::unique_ptr<PairGenerator> MakeCanopy(const DetectorConfig& config,
                                          const KeySpec& key_spec) {
  return std::make_unique<CanopyReduction>(key_spec, config.canopy);
}

std::unique_ptr<PairGenerator> MakeSnmAdaptive(const DetectorConfig& config,
                                               const KeySpec& key_spec) {
  return std::make_unique<SnmAdaptive>(key_spec, config.adaptive);
}

std::unique_ptr<PairGenerator> MakeQGram(const DetectorConfig& config,
                                         const KeySpec& key_spec) {
  return std::make_unique<QGramIndexReduction>(key_spec, config.qgram);
}

// --- combination entries --------------------------------------------

Status ConfigureWeightedSum(const ParamMap& params, DetectorConfig* config) {
  if (!params.Has("combination.weights")) return Status::OK();
  std::string text = params.GetString("combination.weights", "");
  std::vector<double> weights;
  if (!Trim(text).empty()) {
    for (const std::string& piece : Split(text, ',')) {
      double w = 0.0;
      if (!ParseDouble(Trim(piece), &w)) {
        return Status::InvalidArgument("bad weight '" + piece +
                                       "' in combination.weights");
      }
      weights.push_back(w);
    }
  }
  config->weights = std::move(weights);
  return Status::OK();
}

void PrintWeightedSum(const DetectorConfig& config, ParamMap* params) {
  std::vector<std::string> pieces;
  pieces.reserve(config.weights.size());
  for (double w : config.weights) pieces.push_back(FormatDouble(w));
  params->Set("combination.weights", Join(pieces, ","));
}

Result<std::unique_ptr<CombinationFunction>> MakeWeightedSum(
    const DetectorConfig& config, const Schema& schema) {
  std::vector<double> weights = config.weights;
  if (weights.empty()) {
    weights.assign(schema.arity(), 1.0 / static_cast<double>(schema.arity()));
  }
  if (weights.size() != schema.arity()) {
    return Status::InvalidArgument("weight count must match schema arity");
  }
  PDD_ASSIGN_OR_RETURN(WeightedSumCombination sum,
                       WeightedSumCombination::Make(std::move(weights)));
  return std::unique_ptr<CombinationFunction>(
      std::make_unique<WeightedSumCombination>(std::move(sum)));
}

Status ConfigureFellegiSunter(const ParamMap& params,
                              DetectorConfig* config) {
  if (params.Has("combination.fs")) {
    std::string text = params.GetString("combination.fs", "");
    std::vector<FsAttribute> attributes;
    if (!Trim(text).empty()) {
      for (const std::string& piece : Split(text, ',')) {
        std::vector<std::string> fields = Split(piece, ':');
        FsAttribute attr;
        if (fields.size() != 3 ||
            !ParseDouble(Trim(fields[0]), &attr.m) ||
            !ParseDouble(Trim(fields[1]), &attr.u) ||
            !ParseDouble(Trim(fields[2]), &attr.agreement_threshold)) {
          return Status::InvalidArgument(
              "bad Fellegi-Sunter attribute '" + piece +
              "' in combination.fs (want m:u:agreement_threshold)");
        }
        attributes.push_back(attr);
      }
    }
    config->fs_attributes = std::move(attributes);
  }
  PDD_ASSIGN_OR_RETURN(
      config->fs_interpolated,
      params.GetBool("combination.interpolated", config->fs_interpolated));
  return Status::OK();
}

void PrintFellegiSunter(const DetectorConfig& config, ParamMap* params) {
  std::vector<std::string> pieces;
  pieces.reserve(config.fs_attributes.size());
  for (const FsAttribute& attr : config.fs_attributes) {
    pieces.push_back(FormatDouble(attr.m) + ":" + FormatDouble(attr.u) + ":" +
                     FormatDouble(attr.agreement_threshold));
  }
  params->Set("combination.fs", Join(pieces, ","));
  params->SetBool("combination.interpolated", config.fs_interpolated);
}

Result<std::unique_ptr<CombinationFunction>> MakeFellegiSunter(
    const DetectorConfig& config, const Schema&) {
  PDD_ASSIGN_OR_RETURN(
      FellegiSunterModel fs,
      FellegiSunterModel::Make(config.fs_attributes, config.fs_interpolated));
  return std::unique_ptr<CombinationFunction>(
      std::make_unique<FellegiSunterModel>(std::move(fs)));
}

Status ConfigureRules(const ParamMap& params, DetectorConfig* config) {
  config->rules_text =
      params.GetString("combination.rules", config->rules_text);
  return Status::OK();
}

void PrintRules(const DetectorConfig& config, ParamMap* params) {
  params->Set("combination.rules", config.rules_text);
}

Result<std::unique_ptr<CombinationFunction>> MakeRules(
    const DetectorConfig& config, const Schema& schema) {
  PDD_ASSIGN_OR_RETURN(std::vector<IdentificationRule> rules,
                       ParseRules(config.rules_text, schema));
  PDD_ASSIGN_OR_RETURN(RuleEngine engine,
                       RuleEngine::Make(std::move(rules), schema));
  return std::unique_ptr<CombinationFunction>(
      std::make_unique<RuleCombination>(std::move(engine)));
}

// --- derivation entries ---------------------------------------------

Status ConfigureIntermediate(const ParamMap& params, DetectorConfig* config) {
  PDD_ASSIGN_OR_RETURN(config->intermediate.t_lambda,
                       params.GetDouble("derivation.t_lambda",
                                        config->intermediate.t_lambda));
  PDD_ASSIGN_OR_RETURN(
      config->intermediate.t_mu,
      params.GetDouble("derivation.t_mu", config->intermediate.t_mu));
  return Status::OK();
}

void PrintIntermediate(const DetectorConfig& config, ParamMap* params) {
  params->SetDouble("derivation.t_lambda", config.intermediate.t_lambda);
  params->SetDouble("derivation.t_mu", config.intermediate.t_mu);
}

std::unique_ptr<DerivationFunction> MakeExpectedSimilarity(
    const DetectorConfig&) {
  return std::make_unique<ExpectedSimilarityDerivation>();
}

std::unique_ptr<DerivationFunction> MakeMatchingWeight(
    const DetectorConfig& config) {
  return std::make_unique<MatchingWeightDerivation>(config.intermediate);
}

std::unique_ptr<DerivationFunction> MakeExpectedMatching(
    const DetectorConfig& config) {
  return std::make_unique<ExpectedMatchingDerivation>(config.intermediate,
                                                      /*normalize=*/true);
}

std::unique_ptr<DerivationFunction> MakeMaxSimilarity(const DetectorConfig&) {
  return std::make_unique<MaxSimilarityDerivation>();
}

std::unique_ptr<DerivationFunction> MakeMinSimilarity(const DetectorConfig&) {
  return std::make_unique<MinSimilarityDerivation>();
}

std::unique_ptr<DerivationFunction> MakeModeSimilarity(const DetectorConfig&) {
  return std::make_unique<ModeSimilarityDerivation>();
}

}  // namespace

ComponentRegistry::ComponentRegistry() {
  // `streams` mirrors the generator's native_streaming() override; the
  // streaming test suite asserts the two stay in sync per entry.
  auto reduction = [this](ReductionMethod method, bool streams,
                          Status (*configure)(const ParamMap&,
                                              DetectorConfig*),
                          void (*print)(const DetectorConfig&, ParamMap*),
                          std::unique_ptr<PairGenerator> (*make)(
                              const DetectorConfig&, const KeySpec&)) {
    reductions_[ReductionMethodName(method)] = {method, streams, configure,
                                                print, make};
  };
  reduction(ReductionMethod::kFull, true, NoParams, PrintNothing, MakeFull);
  reduction(ReductionMethod::kSnmMultipassWorlds, true, ConfigureSnmMultipass,
            PrintSnmMultipass, MakeSnmMultipass);
  reduction(ReductionMethod::kSnmCertainKeys, true, ConfigureSnmCertain,
            PrintSnmCertain, MakeSnmCertain);
  reduction(ReductionMethod::kSnmSortingAlternatives, true, ConfigureWindow,
            PrintWindow, MakeSnmAlternatives);
  reduction(ReductionMethod::kSnmUncertainRanking, true, ConfigureSnmRanking,
            PrintSnmRanking, MakeSnmRanking);
  reduction(ReductionMethod::kBlockingCertainKeys, true, ConfigureConflict,
            PrintConflict, MakeBlockingCertain);
  reduction(ReductionMethod::kBlockingAlternatives, true, NoParams,
            PrintNothing, MakeBlockingAlternatives);
  reduction(ReductionMethod::kBlockingMultipassWorlds, true, ConfigureWorlds,
            PrintWorlds, MakeBlockingMultipass);
  reduction(ReductionMethod::kBlockingClustered, true, ConfigureClustered,
            PrintClustered, MakeBlockingClustered);
  reduction(ReductionMethod::kCanopy, false, ConfigureCanopy, PrintCanopy,
            MakeCanopy);
  reduction(ReductionMethod::kSnmAdaptive, true, ConfigureAdaptive,
            PrintAdaptive, MakeSnmAdaptive);
  reduction(ReductionMethod::kQGramIndex, false, ConfigureQGram, PrintQGram,
            MakeQGram);

  combinations_[CombinationKindName(CombinationKind::kWeightedSum)] = {
      CombinationKind::kWeightedSum, ConfigureWeightedSum, PrintWeightedSum,
      MakeWeightedSum};
  combinations_[CombinationKindName(CombinationKind::kFellegiSunter)] = {
      CombinationKind::kFellegiSunter, ConfigureFellegiSunter,
      PrintFellegiSunter, MakeFellegiSunter};
  combinations_[CombinationKindName(CombinationKind::kRules)] = {
      CombinationKind::kRules, ConfigureRules, PrintRules, MakeRules};

  auto derivation = [this](DerivationKind kind,
                           Status (*configure)(const ParamMap&,
                                               DetectorConfig*),
                           void (*print)(const DetectorConfig&, ParamMap*),
                           std::unique_ptr<DerivationFunction> (*make)(
                               const DetectorConfig&)) {
    derivations_[DerivationKindName(kind)] = {kind, configure, print, make};
  };
  derivation(DerivationKind::kExpectedSimilarity, NoParams, PrintNothing,
             MakeExpectedSimilarity);
  derivation(DerivationKind::kMatchingWeight, ConfigureIntermediate,
             PrintIntermediate, MakeMatchingWeight);
  derivation(DerivationKind::kExpectedMatching, ConfigureIntermediate,
             PrintIntermediate, MakeExpectedMatching);
  derivation(DerivationKind::kMaxSimilarity, NoParams, PrintNothing,
             MakeMaxSimilarity);
  derivation(DerivationKind::kMinSimilarity, NoParams, PrintNothing,
             MakeMinSimilarity);
  derivation(DerivationKind::kModeSimilarity, NoParams, PrintNothing,
             MakeModeSimilarity);

  for (ConflictStrategy strategy :
       {ConflictStrategy::kMostProbable, ConflictStrategy::kFirst,
        ConflictStrategy::kLongest, ConflictStrategy::kShortest,
        ConflictStrategy::kLexicographicMin}) {
    conflicts_[ConflictStrategyName(strategy)] = strategy;
  }
  for (RankingMethod method :
       {RankingMethod::kExpectedRank, RankingMethod::kPositional}) {
    rankings_[RankingMethodName(method)] = method;
  }
  for (WorldSelectionStrategy strategy : {WorldSelectionStrategy::kTopProbable,
                                          WorldSelectionStrategy::kDiverse}) {
    world_strategies_[WorldStrategyName(strategy)] = strategy;
  }
  for (ClusteredBlockingOptions::Algorithm algorithm :
       {ClusteredBlockingOptions::Algorithm::kLeader,
        ClusteredBlockingOptions::Algorithm::kKMedoids}) {
    cluster_algorithms_[ClusterAlgorithmName(algorithm)] = algorithm;
  }
  for (ShardStrategy strategy :
       {ShardStrategy::kAuto, ShardStrategy::kIndexRange,
        ShardStrategy::kKeyRange, ShardStrategy::kBlockSubset}) {
    shard_strategies_[ShardStrategyName(strategy)] = strategy;
  }
}

const ComponentRegistry& ComponentRegistry::Global() {
  static const ComponentRegistry* registry = new ComponentRegistry();
  return *registry;
}

Result<const ComponentRegistry::ReductionEntry*>
ComponentRegistry::FindReduction(std::string_view name) const {
  auto it = reductions_.find(name);
  if (it == reductions_.end()) {
    return UnknownComponentError("reduction", name, KeysOf(reductions_));
  }
  return &it->second;
}

Result<const ComponentRegistry::CombinationEntry*>
ComponentRegistry::FindCombination(std::string_view name) const {
  auto it = combinations_.find(name);
  if (it == combinations_.end()) {
    return UnknownComponentError("combination", name, KeysOf(combinations_));
  }
  return &it->second;
}

Result<const ComponentRegistry::DerivationEntry*>
ComponentRegistry::FindDerivation(std::string_view name) const {
  auto it = derivations_.find(name);
  if (it == derivations_.end()) {
    return UnknownComponentError("derivation", name, KeysOf(derivations_));
  }
  return &it->second;
}

Result<ConflictStrategy> ComponentRegistry::FindConflictStrategy(
    std::string_view name) const {
  auto it = conflicts_.find(name);
  if (it == conflicts_.end()) {
    return UnknownComponentError("conflict strategy", name,
                                 KeysOf(conflicts_));
  }
  return it->second;
}

Result<RankingMethod> ComponentRegistry::FindRankingMethod(
    std::string_view name) const {
  auto it = rankings_.find(name);
  if (it == rankings_.end()) {
    return UnknownComponentError("ranking method", name, KeysOf(rankings_));
  }
  return it->second;
}

Result<WorldSelectionStrategy> ComponentRegistry::FindWorldStrategy(
    std::string_view name) const {
  auto it = world_strategies_.find(name);
  if (it == world_strategies_.end()) {
    return UnknownComponentError("world-selection strategy", name,
                                 KeysOf(world_strategies_));
  }
  return it->second;
}

Result<ClusteredBlockingOptions::Algorithm>
ComponentRegistry::FindClusterAlgorithm(std::string_view name) const {
  auto it = cluster_algorithms_.find(name);
  if (it == cluster_algorithms_.end()) {
    return UnknownComponentError("clustering algorithm", name,
                                 KeysOf(cluster_algorithms_));
  }
  return it->second;
}

std::vector<std::string> ComponentRegistry::ReductionNames() const {
  return KeysOf(reductions_);
}

std::vector<std::string> ComponentRegistry::CombinationNames() const {
  return KeysOf(combinations_);
}

std::vector<std::string> ComponentRegistry::DerivationNames() const {
  return KeysOf(derivations_);
}

std::vector<std::string> ComponentRegistry::ConflictStrategyNames() const {
  return KeysOf(conflicts_);
}

std::vector<std::string> ComponentRegistry::RankingMethodNames() const {
  return KeysOf(rankings_);
}

Result<ShardStrategy> ComponentRegistry::FindShardStrategy(
    std::string_view name) const {
  auto it = shard_strategies_.find(name);
  if (it == shard_strategies_.end()) {
    return UnknownComponentError("shard strategy", name,
                                 KeysOf(shard_strategies_));
  }
  return it->second;
}

std::vector<std::string> ComponentRegistry::ShardStrategyNames() const {
  return KeysOf(shard_strategies_);
}

}  // namespace pdd
