// ComponentRegistry: string-keyed factories for every pipeline
// component family. It replaces the enum switches that used to live in
// DetectionPlan::Compile / MakeReductionGenerator: a plan names its
// components ("snm_certain_keys", "weighted_sum", ...) and the registry
// resolves the name to an entry that knows how to
//
//   * configure — consume the component's `family.*` parameters from a
//     ParamMap into a DetectorConfig (unknown keys stay unconsumed and
//     are rejected by the spec translator),
//   * print     — emit those parameters back, canonically formatted,
//     so DetectorConfig::ToSpec round-trips losslessly, and
//   * make      — build the runtime component from a resolved config.
//
// Unknown names fail with an InvalidArgument that lists the registered
// names of the family and the nearest match by edit distance.
//
// Families: 12 reduction methods, 3 combination kinds, 6 derivation
// kinds, plus the enum vocabularies they reference (conflict
// strategies, ranking methods, world-selection strategies, clustering
// algorithms).

#ifndef PDD_PLAN_REGISTRY_H_
#define PDD_PLAN_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "decision/combination.h"
#include "derive/derivation.h"
#include "keys/key_spec.h"
#include "plan/param_map.h"
#include "reduction/pair_generator.h"
#include "util/status.h"

namespace pdd {

/// Stable name of a combination kind ("weighted_sum", "fellegi_sunter",
/// "rules").
const char* CombinationKindName(CombinationKind kind);

/// Stable name of a ranking method ("expected_rank", "positional").
const char* RankingMethodName(RankingMethod method);

/// Stable name of a world-selection strategy ("top_probable",
/// "diverse").
const char* WorldStrategyName(WorldSelectionStrategy strategy);

/// Stable name of a clustered-blocking algorithm ("leader",
/// "kmedoids").
const char* ClusterAlgorithmName(ClusteredBlockingOptions::Algorithm a);

class ComponentRegistry {
 public:
  struct ReductionEntry {
    ReductionMethod method;
    /// Whether the built generator streams candidates natively (bounded
    /// live pairs) rather than through the materializing adapter.
    /// Mirrors PairGenerator::native_streaming() on the made instance.
    bool native_streaming = false;
    /// Consumes this method's `reduction.*` parameters into `*config`.
    Status (*configure)(const ParamMap& params, DetectorConfig* config);
    /// Emits this method's parameters from `config` (full, canonical).
    void (*print)(const DetectorConfig& config, ParamMap* params);
    /// Builds the pair generator from a resolved config.
    std::unique_ptr<PairGenerator> (*make)(const DetectorConfig& config,
                                           const KeySpec& key_spec);
  };

  struct CombinationEntry {
    CombinationKind kind;
    Status (*configure)(const ParamMap& params, DetectorConfig* config);
    void (*print)(const DetectorConfig& config, ParamMap* params);
    /// Builds the combination function φ (may fail: weight arity,
    /// rule parsing).
    Result<std::unique_ptr<CombinationFunction>> (*make)(
        const DetectorConfig& config, const Schema& schema);
  };

  struct DerivationEntry {
    DerivationKind kind;
    Status (*configure)(const ParamMap& params, DetectorConfig* config);
    void (*print)(const DetectorConfig& config, ParamMap* params);
    /// Builds the derivation function ϑ.
    std::unique_ptr<DerivationFunction> (*make)(const DetectorConfig& config);
  };

  /// The process-wide registry of built-in components.
  static const ComponentRegistry& Global();

  /// Name lookups. Unknown names return InvalidArgument listing the
  /// family's registered names and the nearest match.
  Result<const ReductionEntry*> FindReduction(std::string_view name) const;
  Result<const CombinationEntry*> FindCombination(std::string_view name) const;
  Result<const DerivationEntry*> FindDerivation(std::string_view name) const;
  Result<ConflictStrategy> FindConflictStrategy(std::string_view name) const;
  Result<RankingMethod> FindRankingMethod(std::string_view name) const;
  Result<WorldSelectionStrategy> FindWorldStrategy(
      std::string_view name) const;
  Result<ClusteredBlockingOptions::Algorithm> FindClusterAlgorithm(
      std::string_view name) const;
  Result<ShardStrategy> FindShardStrategy(std::string_view name) const;

  /// Registered names per family, sorted.
  std::vector<std::string> ReductionNames() const;
  std::vector<std::string> CombinationNames() const;
  std::vector<std::string> DerivationNames() const;
  std::vector<std::string> ConflictStrategyNames() const;
  std::vector<std::string> RankingMethodNames() const;
  std::vector<std::string> ShardStrategyNames() const;

 private:
  ComponentRegistry();

  std::map<std::string, ReductionEntry, std::less<>> reductions_;
  std::map<std::string, CombinationEntry, std::less<>> combinations_;
  std::map<std::string, DerivationEntry, std::less<>> derivations_;
  std::map<std::string, ConflictStrategy, std::less<>> conflicts_;
  std::map<std::string, RankingMethod, std::less<>> rankings_;
  std::map<std::string, WorldSelectionStrategy, std::less<>>
      world_strategies_;
  std::map<std::string, ClusteredBlockingOptions::Algorithm, std::less<>>
      cluster_algorithms_;
  std::map<std::string, ShardStrategy, std::less<>> shard_strategies_;
};

/// InvalidArgument for an unresolved component name: names the family,
/// suggests the nearest registered name by edit distance and lists the
/// registered names. Exposed for families living outside the registry.
Status UnknownComponentError(std::string_view family, std::string_view name,
                             const std::vector<std::string>& registered);

}  // namespace pdd

#endif  // PDD_PLAN_REGISTRY_H_
