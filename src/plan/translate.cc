// DetectorConfig ↔ PlanSpec translation. DetectorConfig stays the
// C++-native struct form; PlanSpec is the declarative string-keyed
// form. ToSpec prints the *selected* components' parameters only (a
// canopy plan carries no SNM window), so the fingerprint of a plan is
// invariant to config fields the plan never reads. FromSpec resolves
// component names through the ComponentRegistry and rejects unknown
// parameter keys.
//
// Two config features are not representable in text: custom comparator
// instances (ToSpec marks them "custom"; FromSpec refuses to resolve
// the marker) and token-map standardizers ("prepare = custom",
// likewise refused). Executor tuning (`executor.batch`,
// `executor.workers`) and the match-kernel selection (`match.kernel`)
// are accepted by FromSpec as a convenience but never printed by
// ToSpec: they do not change decisions, so they are kept out of the
// fingerprint (and reports stay byte-identical across kernels and
// worker counts).

#include "plan/translate.h"

#include <algorithm>

#include "core/config.h"
#include "plan/plan_spec.h"
#include "plan/registry.h"
#include "prep/standardizer.h"
#include "sim/registry.h"
#include "util/string_util.h"

namespace pdd {

Result<std::vector<std::pair<std::string, size_t>>> ParseKeyComponents(
    std::string_view text) {
  std::vector<std::pair<std::string, size_t>> key;
  for (const std::string& piece : Split(text, ',')) {
    std::vector<std::string> parts = Split(piece, ':');
    if (parts.size() != 2) {
      return Status::InvalidArgument("key component '" + piece +
                                     "' is not attr:len");
    }
    double len = 0.0;
    if (!ParseDouble(Trim(parts[1]), &len) || len < 0 ||
        len != static_cast<double>(static_cast<size_t>(len))) {
      return Status::InvalidArgument("bad prefix length in '" + piece + "'");
    }
    key.emplace_back(std::string(Trim(parts[0])), static_cast<size_t>(len));
  }
  if (key.empty()) {
    return Status::InvalidArgument("empty key spec");
  }
  return key;
}

std::string FormatKeyComponents(
    const std::vector<std::pair<std::string, size_t>>& key) {
  std::vector<std::string> pieces;
  pieces.reserve(key.size());
  for (const auto& [attribute, prefix] : key) {
    pieces.push_back(attribute + ":" + std::to_string(prefix));
  }
  return Join(pieces, ",");
}

PlanSpec DetectorConfig::ToSpec() const {
  PlanSpec spec;
  ParamMap& params = spec.params();
  const ComponentRegistry& registry = ComponentRegistry::Global();

  params.Set("key", FormatKeyComponents(key));

  const char* reduction_name = ReductionMethodName(reduction);
  params.Set("reduction", reduction_name);
  if (auto entry = registry.FindReduction(reduction_name); entry.ok()) {
    (*entry)->print(*this, &params);
  }

  const char* combination_name = CombinationKindName(combination);
  params.Set("combination", combination_name);
  if (auto entry = registry.FindCombination(combination_name); entry.ok()) {
    (*entry)->print(*this, &params);
  }

  const char* derivation_name = DerivationKindName(derivation);
  params.Set("derivation", derivation_name);
  if (auto entry = registry.FindDerivation(derivation_name); entry.ok()) {
    (*entry)->print(*this, &params);
  }

  params.SetDouble("classify.t_lambda", final_thresholds.t_lambda);
  params.SetDouble("classify.t_mu", final_thresholds.t_mu);

  if (prune) {
    params.SetBool("prune", true);
    params.SetDouble("prune.threshold", prune_threshold);
  }

  // Sharding prints only when active, so unsharded plans (the default)
  // keep their fingerprint and a shard count != 1 is plan identity.
  // Decisions never depend on it (see IsDecisionIrrelevantKey), so the
  // decision-cache key is shared across shard configurations.
  if (shard_count != 1) {
    params.SetSize("shard.count", shard_count);
    if (shard_strategy != ShardStrategy::kAuto) {
      params.Set("shard.strategy", ShardStrategyName(shard_strategy));
    }
  }

  size_t comparator_count =
      std::max(comparators.size(), custom_comparators.size());
  if (comparator_count > 0) {
    std::vector<std::string> pieces(comparator_count);
    for (size_t i = 0; i < comparator_count; ++i) {
      if (i < custom_comparators.size() && custom_comparators[i] != nullptr) {
        pieces[i] = "custom";
      } else if (i < comparators.size() && !comparators[i].empty()) {
        pieces[i] = comparators[i];
      } else {
        pieces[i] = "default";
      }
    }
    params.Set("comparators", Join(pieces, ","));
  }

  if (preparation.has_value()) {
    // UniformAll prints as its step description; a per-attribute list
    // whose standardizers are all identical prints the same way plus
    // the attribute count it covers (so Uniform(std, n) round-trips).
    // Anything else (mixed steps, token maps) is opaque "custom".
    std::string description;
    if (preparation->uniform().has_value()) {
      description = preparation->uniform()->Description();
    } else if (!preparation->per_attribute().empty()) {
      description = preparation->per_attribute().front().Description();
      for (const Standardizer& standardizer : preparation->per_attribute()) {
        if (standardizer.Description() != description) {
          description = "custom";
          break;
        }
      }
      if (description != "custom") {
        params.SetSize("prepare.attributes",
                       preparation->per_attribute().size());
      }
    } else {
      description = "none";
    }
    if (description.empty()) description = "none";
    params.Set("prepare", description);
  }

  return spec;
}

Result<DetectorConfig> DetectorConfig::FromSpec(const PlanSpec& spec) {
  return FromSpec(spec, DetectorConfig());
}

Result<DetectorConfig> DetectorConfig::FromSpec(const PlanSpec& spec,
                                                DetectorConfig base) {
  // Read from a private copy: getters record key consumption in the
  // map itself, so reading the caller's (possibly shared) spec would
  // race when two threads translate the same spec concurrently.
  const ParamMap params = spec.params();
  params.ResetConsumption();
  DetectorConfig config = std::move(base);
  const ComponentRegistry& registry = ComponentRegistry::Global();

  std::string key_text = params.GetString("key", "");
  if (!key_text.empty()) {
    PDD_ASSIGN_OR_RETURN(config.key, ParseKeyComponents(key_text));
  }

  // Component configure() always runs — for the named component when
  // the spec selects one, else for the base config's component — so
  // bare parameter overrides ("--set reduction.window=5") apply.
  std::string reduction_name =
      params.GetString("reduction", ReductionMethodName(config.reduction));
  PDD_ASSIGN_OR_RETURN(const ComponentRegistry::ReductionEntry* reduction,
                       registry.FindReduction(reduction_name));
  config.reduction = reduction->method;
  PDD_RETURN_IF_ERROR(reduction->configure(params, &config));

  std::string combination_name =
      params.GetString("combination", CombinationKindName(config.combination));
  PDD_ASSIGN_OR_RETURN(const ComponentRegistry::CombinationEntry* combination,
                       registry.FindCombination(combination_name));
  config.combination = combination->kind;
  PDD_RETURN_IF_ERROR(combination->configure(params, &config));

  std::string derivation_name =
      params.GetString("derivation", DerivationKindName(config.derivation));
  PDD_ASSIGN_OR_RETURN(const ComponentRegistry::DerivationEntry* derivation,
                       registry.FindDerivation(derivation_name));
  config.derivation = derivation->kind;
  PDD_RETURN_IF_ERROR(derivation->configure(params, &config));

  PDD_ASSIGN_OR_RETURN(config.final_thresholds.t_lambda,
                       params.GetDouble("classify.t_lambda",
                                        config.final_thresholds.t_lambda));
  PDD_ASSIGN_OR_RETURN(
      config.final_thresholds.t_mu,
      params.GetDouble("classify.t_mu", config.final_thresholds.t_mu));

  PDD_ASSIGN_OR_RETURN(config.prune, params.GetBool("prune", config.prune));
  PDD_ASSIGN_OR_RETURN(
      config.prune_threshold,
      params.GetDouble("prune.threshold", config.prune_threshold));

  if (params.Has("comparators")) {
    std::string text = params.GetString("comparators", "");
    std::vector<std::string> names;
    if (!Trim(text).empty()) {
      for (const std::string& piece : Split(text, ',')) {
        std::string name(Trim(piece));
        if (name == "custom") {
          return Status::InvalidArgument(
              "plan specs cannot resolve 'custom' comparators — set "
              "DetectorConfig::custom_comparators programmatically");
        }
        if (name != "default") {
          auto comparator = GetComparator(name);
          if (!comparator.ok()) return comparator.status();
        }
        names.push_back(std::move(name));
      }
    }
    config.comparators = std::move(names);
    config.custom_comparators.clear();
  }

  if (params.Has("prepare")) {
    std::string description = params.GetString("prepare", "");
    // `prepare.attributes = n` limits the preparation to the first n
    // attributes (the Uniform(standardizer, n) form); 0 / absent means
    // every attribute.
    PDD_ASSIGN_OR_RETURN(size_t prepare_attributes,
                         params.GetSize("prepare.attributes", 0));
    if (description.empty() || description == "none") {
      config.preparation.reset();
    } else if (description == "custom") {
      return Status::InvalidArgument(
          "plan specs cannot resolve 'custom' preparation — set "
          "DetectorConfig::preparation programmatically");
    } else {
      PDD_ASSIGN_OR_RETURN(Standardizer standardizer,
                           Standardizer::FromDescription(description));
      config.preparation =
          prepare_attributes > 0
              ? DataPreparation::Uniform(std::move(standardizer),
                                         prepare_attributes)
              : DataPreparation::UniformAll(std::move(standardizer));
    }
  }

  PDD_ASSIGN_OR_RETURN(config.batch_size,
                       params.GetSize("executor.batch", config.batch_size));
  PDD_ASSIGN_OR_RETURN(config.workers,
                       params.GetSize("executor.workers", config.workers));

  std::string kernel_name = params.GetString(
      "match.kernel", MatchKernelName(config.match_kernel));
  PDD_ASSIGN_OR_RETURN(config.match_kernel, MatchKernelFromName(kernel_name));

  PDD_ASSIGN_OR_RETURN(config.shard_count,
                       params.GetSize("shard.count", config.shard_count));
  std::string shard_strategy = params.GetString(
      "shard.strategy", ShardStrategyName(config.shard_strategy));
  PDD_ASSIGN_OR_RETURN(config.shard_strategy,
                       registry.FindShardStrategy(shard_strategy));

  PDD_RETURN_IF_ERROR(params.ExpectFullyConsumed(
      "plan spec (for reduction '" + reduction_name + "', combination '" +
      combination_name + "', derivation '" + derivation_name + "')"));
  return config;
}

}  // namespace pdd
