// Helpers shared by the DetectorConfig ↔ PlanSpec translation (the
// member functions DetectorConfig::ToSpec / DetectorConfig::FromSpec
// are implemented in translate.cc).

#ifndef PDD_PLAN_TRANSLATE_H_
#define PDD_PLAN_TRANSLATE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace pdd {

/// Parses the plan-spec key form "attr:len[,attr:len...]" (prefix
/// length 0 = whole value) into DetectorConfig::key components.
Result<std::vector<std::pair<std::string, size_t>>> ParseKeyComponents(
    std::string_view text);

/// The inverse of ParseKeyComponents: "name:3,job:2".
std::string FormatKeyComponents(
    const std::vector<std::pair<std::string, size_t>>& key);

}  // namespace pdd

#endif  // PDD_PLAN_TRANSLATE_H_
