#include "prep/standardizer.h"

#include <cctype>

#include "util/string_util.h"

namespace pdd {

Standardizer& Standardizer::LowerCase() {
  steps_.push_back({Kind::kLowerCase, {}});
  return *this;
}

Standardizer& Standardizer::UpperCase() {
  steps_.push_back({Kind::kUpperCase, {}});
  return *this;
}

Standardizer& Standardizer::TrimWhitespace() {
  steps_.push_back({Kind::kTrim, {}});
  return *this;
}

Standardizer& Standardizer::CollapseWhitespace() {
  steps_.push_back({Kind::kCollapseWhitespace, {}});
  return *this;
}

Standardizer& Standardizer::StripPunctuation() {
  steps_.push_back({Kind::kStripPunctuation, {}});
  return *this;
}

Standardizer& Standardizer::StripDigits() {
  steps_.push_back({Kind::kStripDigits, {}});
  return *this;
}

Standardizer& Standardizer::MapTokens(
    std::map<std::string, std::string> table) {
  steps_.push_back({Kind::kMapTokens, std::move(table)});
  return *this;
}

namespace {

/// The one kind ↔ name table both FromDescription and Description use
/// (kMapTokens is deliberately absent: tables are not describable).
struct StepName {
  Standardizer::Kind kind;
  const char* name;
};

constexpr StepName kStepNames[] = {
    {Standardizer::Kind::kLowerCase, "lower"},
    {Standardizer::Kind::kUpperCase, "upper"},
    {Standardizer::Kind::kTrim, "trim"},
    {Standardizer::Kind::kCollapseWhitespace, "collapse"},
    {Standardizer::Kind::kStripPunctuation, "strip_punctuation"},
    {Standardizer::Kind::kStripDigits, "strip_digits"},
};

}  // namespace

Result<Standardizer> Standardizer::FromDescription(
    std::string_view description) {
  Standardizer standardizer;
  for (const std::string& piece : Split(description, ',')) {
    std::string_view step = Trim(piece);
    bool found = false;
    for (const StepName& entry : kStepNames) {
      if (step == entry.name) {
        standardizer.steps_.push_back({entry.kind, {}});
        found = true;
        break;
      }
    }
    if (!found) {
      std::vector<std::string> known;
      for (const StepName& entry : kStepNames) known.push_back(entry.name);
      return Status::InvalidArgument("unknown standardizer step '" +
                                     std::string(step) + "' (known: " +
                                     Join(known, ", ") + ")");
    }
  }
  return standardizer;
}

std::string Standardizer::Description() const {
  std::vector<std::string> pieces;
  pieces.reserve(steps_.size());
  for (const Step& step : steps_) {
    const char* name = nullptr;
    for (const StepName& entry : kStepNames) {
      if (step.kind == entry.kind) {
        name = entry.name;
        break;
      }
    }
    if (name == nullptr) return "custom";  // kMapTokens
    pieces.push_back(name);
  }
  return Join(pieces, ",");
}

namespace {

std::string StripIf(std::string_view s, bool (*predicate)(unsigned char)) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (!predicate(static_cast<unsigned char>(c))) out += c;
  }
  return out;
}

bool IsPunct(unsigned char c) { return std::ispunct(c) != 0; }
bool IsDigit(unsigned char c) { return std::isdigit(c) != 0; }

}  // namespace

std::string Standardizer::Apply(std::string_view text) const {
  std::string out(text);
  for (const Step& step : steps_) {
    switch (step.kind) {
      case Kind::kLowerCase:
        out = ToLower(out);
        break;
      case Kind::kUpperCase:
        out = ToUpper(out);
        break;
      case Kind::kTrim:
        out = std::string(Trim(out));
        break;
      case Kind::kCollapseWhitespace:
        out = Join(SplitWhitespace(out), " ");
        break;
      case Kind::kStripPunctuation:
        out = StripIf(out, IsPunct);
        break;
      case Kind::kStripDigits:
        out = StripIf(out, IsDigit);
        break;
      case Kind::kMapTokens: {
        std::vector<std::string> tokens = SplitWhitespace(out);
        for (std::string& token : tokens) {
          auto it = step.table.find(token);
          if (it != step.table.end()) token = it->second;
        }
        out = Join(tokens, " ");
        break;
      }
    }
  }
  return out;
}

Value Standardizer::ApplyToValue(const Value& value) const {
  if (steps_.empty() || value.is_null()) return value;
  // Merge alternatives whose standardized text collides; first-seen
  // order is preserved. Empty results turn into ⊥ mass (dropped).
  std::vector<Alternative> merged;
  for (const Alternative& alt : value.alternatives()) {
    std::string text = Apply(alt.text);
    if (text.empty()) continue;  // cleaned away -> ⊥ mass
    bool found = false;
    for (Alternative& existing : merged) {
      if (existing.text == text && existing.is_pattern == alt.is_pattern) {
        existing.prob += alt.prob;
        found = true;
        break;
      }
    }
    if (!found) merged.push_back({std::move(text), alt.prob, alt.is_pattern});
  }
  return Value::Unchecked(std::move(merged));
}

DataPreparation DataPreparation::Uniform(Standardizer standardizer,
                                         size_t arity) {
  std::vector<Standardizer> per_attribute(arity, standardizer);
  return DataPreparation(std::move(per_attribute));
}

DataPreparation DataPreparation::UniformAll(Standardizer standardizer) {
  DataPreparation preparation;
  preparation.uniform_ = std::move(standardizer);
  return preparation;
}

XTuple DataPreparation::PrepareXTuple(const XTuple& xtuple) const {
  std::vector<AltTuple> alternatives = xtuple.alternatives();
  for (AltTuple& alt : alternatives) {
    for (size_t i = 0; i < alt.values.size(); ++i) {
      const Standardizer* standardizer = nullptr;
      if (uniform_.has_value()) {
        standardizer = &*uniform_;
      } else if (i < per_attribute_.size()) {
        standardizer = &per_attribute_[i];
      }
      if (standardizer != nullptr) {
        alt.values[i] = standardizer->ApplyToValue(alt.values[i]);
      }
    }
  }
  return XTuple(xtuple.id(), std::move(alternatives));
}

XRelation DataPreparation::Prepare(const XRelation& rel) const {
  XRelation out(rel.name(), rel.schema());
  for (const XTuple& t : rel.xtuples()) {
    out.AppendUnchecked(PrepareXTuple(t));
  }
  return out;
}

}  // namespace pdd
