// Data preparation (Section III-A): standardization (unification of
// conventions) and cleaning (elimination of easy-to-recognize errors)
// to obtain a homogeneous representation of all source data.
//
// For probabilistic data the transforms apply per alternative; when two
// alternatives of one value standardize to the same text their masses
// merge — standardization can therefore *reduce* uncertainty ("Tim " vs
// "tim" collapses to one alternative).

#ifndef PDD_PREP_STANDARDIZER_H_
#define PDD_PREP_STANDARDIZER_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pdb/value.h"
#include "pdb/xrelation.h"
#include "util/status.h"

namespace pdd {

/// An ordered pipeline of text transforms applied to attribute values.
class Standardizer {
 public:
  /// Fluent configuration; transforms run in the order added.
  Standardizer& LowerCase();
  Standardizer& UpperCase();
  Standardizer& TrimWhitespace();
  Standardizer& CollapseWhitespace();
  /// Removes ASCII punctuation (keeps letters, digits, whitespace).
  Standardizer& StripPunctuation();
  /// Removes ASCII digits.
  Standardizer& StripDigits();
  /// Replaces whole tokens via a lookup table (nickname/abbreviation
  /// unification: "bob" -> "robert", "st" -> "street"). Keys are matched
  /// after the preceding transforms, so add LowerCase() first for
  /// case-insensitive tables.
  Standardizer& MapTokens(std::map<std::string, std::string> table);

  /// Parses a comma-separated step description ("lower,trim,collapse";
  /// steps: lower, upper, trim, collapse, strip_punctuation,
  /// strip_digits) — the plan-spec form of a standardizer. Token maps
  /// are not describable and must be configured programmatically.
  static Result<Standardizer> FromDescription(std::string_view description);

  /// The inverse of FromDescription: "lower,trim,collapse". Pipelines
  /// containing a token map return "custom" (not round-trippable).
  std::string Description() const;

  /// Applies the pipeline to one text.
  std::string Apply(std::string_view text) const;

  /// Applies the pipeline to every alternative of a probabilistic value,
  /// merging alternatives whose standardized texts collide (pattern
  /// alternatives transform their prefix and stay patterns). ⊥ mass is
  /// untouched. Alternatives standardizing to the empty string become
  /// ⊥ mass (cleaning of empty values).
  Value ApplyToValue(const Value& value) const;

  /// Number of configured transforms.
  size_t size() const { return steps_.size(); }

  /// The transform kinds (public so the description table in
  /// standardizer.cc can name them; construction still goes through
  /// the fluent methods).
  enum class Kind {
    kLowerCase,
    kUpperCase,
    kTrim,
    kCollapseWhitespace,
    kStripPunctuation,
    kStripDigits,
    kMapTokens,
  };

 private:
  struct Step {
    Kind kind;
    std::map<std::string, std::string> table;  // kMapTokens only
  };

  std::vector<Step> steps_;
};

/// Per-attribute data preparation for whole relations.
class DataPreparation {
 public:
  DataPreparation() = default;

  /// The same standardizer for every attribute of `arity`.
  static DataPreparation Uniform(Standardizer standardizer, size_t arity);

  /// The same standardizer for every attribute of any schema (no arity
  /// needed up front — the plan-spec `prepare = ...` form).
  static DataPreparation UniformAll(Standardizer standardizer);

  /// Per-attribute standardizers (index-aligned with the schema).
  explicit DataPreparation(std::vector<Standardizer> per_attribute)
      : per_attribute_(std::move(per_attribute)) {}

  /// Standardizes every value of every alternative of every x-tuple.
  /// Attributes beyond the configured list pass through unchanged.
  XRelation Prepare(const XRelation& rel) const;

  /// Standardizes one x-tuple.
  XTuple PrepareXTuple(const XTuple& xtuple) const;

  const std::vector<Standardizer>& per_attribute() const {
    return per_attribute_;
  }

  /// The all-attribute standardizer (UniformAll), when configured.
  const std::optional<Standardizer>& uniform() const { return uniform_; }

 private:
  std::vector<Standardizer> per_attribute_;
  /// Applied to every attribute regardless of index when set;
  /// `per_attribute_` is ignored in that case.
  std::optional<Standardizer> uniform_;
};

}  // namespace pdd

#endif  // PDD_PREP_STANDARDIZER_H_
