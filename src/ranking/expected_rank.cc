#include "ranking/expected_rank.h"

#include <algorithm>
#include <numeric>

namespace pdd {

namespace {

// Normalized copy of the entries (total mass 1); empty input stays empty.
std::vector<std::pair<std::string, double>> Normalized(
    const KeyDistribution& d) {
  std::vector<std::pair<std::string, double>> out = d.entries;
  double total = d.TotalMass();
  if (total > 0.0) {
    for (auto& [key, prob] : out) prob /= total;
  }
  return out;
}

}  // namespace

double KeyLessProbability(const KeyDistribution& a, const KeyDistribution& b) {
  auto na = Normalized(a), nb = Normalized(b);
  double p = 0.0;
  for (const auto& [ka, pa] : na) {
    for (const auto& [kb, pb] : nb) {
      if (ka < kb) p += pa * pb;
    }
  }
  return p;
}

double KeyEqualProbability(const KeyDistribution& a,
                           const KeyDistribution& b) {
  auto na = Normalized(a), nb = Normalized(b);
  double p = 0.0;
  for (const auto& [ka, pa] : na) {
    for (const auto& [kb, pb] : nb) {
      if (ka == kb) p += pa * pb;
    }
  }
  return p;
}

std::vector<double> ExpectedRanks(const std::vector<KeyDistribution>& keys) {
  const size_t n = keys.size();
  std::vector<double> ranks(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      ranks[i] += KeyLessProbability(keys[j], keys[i]) +
                  0.5 * KeyEqualProbability(keys[j], keys[i]);
    }
  }
  return ranks;
}

std::vector<size_t> RankByExpectedRank(
    const std::vector<KeyDistribution>& keys) {
  std::vector<double> ranks = ExpectedRanks(keys);
  std::vector<size_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ranks[a] < ranks[b];
  });
  return order;
}

}  // namespace pdd
