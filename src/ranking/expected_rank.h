// Exact expected-rank ordering of tuples by uncertain key values
// (Section V-A.4; cf. Cormode et al. [35]). Serves as the reference
// implementation that the O(n log n) positional approximation is
// validated against.

#ifndef PDD_RANKING_EXPECTED_RANK_H_
#define PDD_RANKING_EXPECTED_RANK_H_

#include <vector>

#include "keys/key_builder.h"

namespace pdd {

/// Probability that a key drawn from `a` sorts strictly before one drawn
/// from `b` (lexicographic order). Distributions are normalized by their
/// total mass first (tuple membership must not influence ordering).
double KeyLessProbability(const KeyDistribution& a, const KeyDistribution& b);

/// Probability that keys drawn from `a` and `b` are equal (after
/// normalization).
double KeyEqualProbability(const KeyDistribution& a, const KeyDistribution& b);

/// Expected rank of each tuple: r_i = Σ_{j≠i} [P(k_j < k_i) + ½·P(k_j = k_i)].
/// O(n²·a·b) over distribution entries.
std::vector<double> ExpectedRanks(const std::vector<KeyDistribution>& keys);

/// Tuple indices ordered by ascending expected rank (stable on ties).
std::vector<size_t> RankByExpectedRank(const std::vector<KeyDistribution>& keys);

}  // namespace pdd

#endif  // PDD_RANKING_EXPECTED_RANK_H_
