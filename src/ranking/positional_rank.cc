#include "ranking/positional_rank.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

namespace pdd {

std::vector<double> PositionalScores(
    const std::vector<KeyDistribution>& keys) {
  // Global sorted multiset of key strings with mean positions. Equal keys
  // share the mean of their position range so ties are unbiased.
  std::map<std::string, std::pair<double, size_t>> positions;  // sum, count
  for (const KeyDistribution& d : keys) {
    for (const auto& [key, prob] : d.entries) {
      positions.emplace(key, std::make_pair(0.0, 0)).first->second.second++;
    }
  }
  size_t next_pos = 0;
  for (auto& [key, slot] : positions) {
    size_t count = slot.second;
    // Mean of positions [next_pos, next_pos + count).
    slot.first = static_cast<double>(next_pos) +
                 static_cast<double>(count - 1) / 2.0;
    next_pos += count;
  }
  std::vector<double> scores(keys.size(), 0.0);
  for (size_t i = 0; i < keys.size(); ++i) {
    double mass = keys[i].TotalMass();
    if (mass <= 0.0) continue;
    double acc = 0.0;
    for (const auto& [key, prob] : keys[i].entries) {
      acc += prob * positions[key].first;
    }
    scores[i] = acc / mass;
  }
  return scores;
}

std::vector<size_t> RankByPositionalScore(
    const std::vector<KeyDistribution>& keys) {
  std::vector<double> scores = PositionalScores(keys);
  std::vector<size_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  return order;
}

double KendallTauAgreement(const std::vector<size_t>& a,
                           const std::vector<size_t>& b) {
  assert(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 1.0;
  // Position of each element in ordering b.
  std::vector<size_t> pos_b(n);
  for (size_t i = 0; i < n; ++i) pos_b[b[i]] = i;
  size_t concordant = 0, total = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      ++total;
      if (pos_b[a[i]] < pos_b[a[j]]) ++concordant;
    }
  }
  return static_cast<double>(concordant) / static_cast<double>(total);
}

}  // namespace pdd
