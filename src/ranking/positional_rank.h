// O(n log n) ranking of tuples by uncertain keys, in the spirit of the
// PRF^e ranking framework (Li, Saha, Deshpande [37]) the paper cites for
// achieving sort-like complexity.
//
// All key entries of all tuples are sorted once (O(N log N), N = total
// entries); each tuple's score is the expected sorted position of its key
// values. This approximates the exact expected rank (see
// ranking/expected_rank.h) while matching the complexity of sorting
// certain data — the paper's stated requirement.

#ifndef PDD_RANKING_POSITIONAL_RANK_H_
#define PDD_RANKING_POSITIONAL_RANK_H_

#include <vector>

#include "keys/key_builder.h"

namespace pdd {

/// Expected sorted position of each tuple's key distribution among all
/// entries: score_i = Σ_k p_i(k)·pos(k) / Σ_k p_i(k), where pos(k) is the
/// mean position of key string k in the global sorted entry list.
std::vector<double> PositionalScores(const std::vector<KeyDistribution>& keys);

/// Tuple indices ordered by ascending positional score (stable on ties).
/// O(N log N) overall.
std::vector<size_t> RankByPositionalScore(
    const std::vector<KeyDistribution>& keys);

/// Normalized Kendall-tau agreement in [0,1] between two orderings of the
/// same index set (1 = identical order). Used to validate the
/// approximation against the exact expected rank.
double KendallTauAgreement(const std::vector<size_t>& a,
                           const std::vector<size_t>& b);

}  // namespace pdd

#endif  // PDD_RANKING_POSITIONAL_RANK_H_
