#include "reduction/blocking.h"

#include <iterator>

namespace pdd {

BlockPairSource::BlockPairSource(std::vector<std::vector<size_t>> blocks,
                                 size_t tuple_count)
    : PerFirstPairSource(tuple_count),
      blocks_(std::move(blocks)),
      memberships_(tuple_count) {
  for (size_t b = 0; b < blocks_.size(); ++b) {
    for (size_t member : blocks_[b]) memberships_[member].push_back(b);
  }
}

void BlockPairSource::AppendPartners(size_t first, std::vector<size_t>* out) {
  for (size_t b : memberships_[first]) {
    for (size_t u : blocks_[b]) {
      if (u != first) out->push_back(u);
    }
  }
}

std::vector<std::vector<size_t>> BlockGroups(const BlockMap& blocks) {
  std::vector<std::vector<size_t>> groups;
  groups.reserve(blocks.size());
  for (const auto& [key, members] : blocks) groups.push_back(members);
  return groups;
}

std::vector<CandidatePair> PairsFromBlocks(const BlockMap& blocks) {
  std::vector<CandidatePair> pairs;
  for (const auto& [key, members] : blocks) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (members[i] != members[j]) {
          pairs.push_back(MakePair(members[i], members[j]));
        }
      }
    }
  }
  SortAndDedupPairs(&pairs);
  return pairs;
}

BlockMap BlockingCertainKeys::Blocks(const XRelation& rel) const {
  KeyBuilder builder(spec_, &rel.schema());
  BlockMap blocks;
  for (size_t i = 0; i < rel.size(); ++i) {
    blocks[builder.CertainKey(rel.xtuple(i), strategy_)].push_back(i);
  }
  return blocks;
}

Result<std::vector<CandidatePair>> BlockingCertainKeys::Generate(
    const XRelation& rel) const {
  return PairsFromBlocks(Blocks(rel));
}

Result<std::unique_ptr<PairBatchSource>> BlockingCertainKeys::Stream(
    const XRelation& rel) const {
  return std::unique_ptr<PairBatchSource>(std::make_unique<BlockPairSource>(
      BlockGroups(Blocks(rel)), rel.size()));
}

Result<std::vector<CandidatePair>> BlockingMultipassWorlds::Generate(
    const XRelation& rel) const {
  std::vector<World> worlds = SelectWorlds(rel, selection_);
  if (worlds.empty()) {
    return Status::FailedPrecondition(
        "no all-present world exists for relation '" + rel.name() + "'");
  }
  KeyBuilder builder(spec_, &rel.schema());
  std::vector<CandidatePair> all;
  for (const World& world : worlds) {
    BlockMap blocks;
    for (const auto& [tuple, key] : builder.KeysForWorld(world, rel)) {
      blocks[key].push_back(tuple);
    }
    std::vector<CandidatePair> pairs = PairsFromBlocks(blocks);
    all.insert(all.end(), pairs.begin(), pairs.end());
  }
  SortAndDedupPairs(&all);
  return all;
}

Result<std::unique_ptr<PairBatchSource>> BlockingMultipassWorlds::Stream(
    const XRelation& rel) const {
  std::vector<World> worlds = SelectWorlds(rel, selection_);
  if (worlds.empty()) {
    return Status::FailedPrecondition(
        "no all-present world exists for relation '" + rel.name() + "'");
  }
  KeyBuilder builder(spec_, &rel.schema());
  std::vector<std::vector<size_t>> groups;
  for (const World& world : worlds) {
    BlockMap blocks;
    for (const auto& [tuple, key] : builder.KeysForWorld(world, rel)) {
      blocks[key].push_back(tuple);
    }
    std::vector<std::vector<size_t>> world_groups = BlockGroups(blocks);
    groups.insert(groups.end(),
                  std::make_move_iterator(world_groups.begin()),
                  std::make_move_iterator(world_groups.end()));
  }
  return std::unique_ptr<PairBatchSource>(
      std::make_unique<BlockPairSource>(std::move(groups), rel.size()));
}

}  // namespace pdd
