#include "reduction/blocking.h"

namespace pdd {

std::vector<CandidatePair> PairsFromBlocks(const BlockMap& blocks) {
  std::vector<CandidatePair> pairs;
  for (const auto& [key, members] : blocks) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (members[i] != members[j]) {
          pairs.push_back(MakePair(members[i], members[j]));
        }
      }
    }
  }
  SortAndDedupPairs(&pairs);
  return pairs;
}

BlockMap BlockingCertainKeys::Blocks(const XRelation& rel) const {
  KeyBuilder builder(spec_, &rel.schema());
  BlockMap blocks;
  for (size_t i = 0; i < rel.size(); ++i) {
    blocks[builder.CertainKey(rel.xtuple(i), strategy_)].push_back(i);
  }
  return blocks;
}

Result<std::vector<CandidatePair>> BlockingCertainKeys::Generate(
    const XRelation& rel) const {
  return PairsFromBlocks(Blocks(rel));
}

Result<std::vector<CandidatePair>> BlockingMultipassWorlds::Generate(
    const XRelation& rel) const {
  std::vector<World> worlds = SelectWorlds(rel, selection_);
  if (worlds.empty()) {
    return Status::FailedPrecondition(
        "no all-present world exists for relation '" + rel.name() + "'");
  }
  KeyBuilder builder(spec_, &rel.schema());
  std::vector<CandidatePair> all;
  for (const World& world : worlds) {
    BlockMap blocks;
    for (const auto& [tuple, key] : builder.KeysForWorld(world, rel)) {
      blocks[key].push_back(tuple);
    }
    std::vector<CandidatePair> pairs = PairsFromBlocks(blocks);
    all.insert(all.end(), pairs.begin(), pairs.end());
  }
  SortAndDedupPairs(&all);
  return all;
}

}  // namespace pdd
