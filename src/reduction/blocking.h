// Blocking (Section V-B): tuples are partitioned by a blocking key and
// only tuples within one block are compared. This file provides the
// certain-key variant (conflict resolution) and the multi-pass-over-
// worlds variant; see blocking_alternatives.h and blocking_clustered.h
// for the other adaptations.

#ifndef PDD_REDUCTION_BLOCKING_H_
#define PDD_REDUCTION_BLOCKING_H_

#include <map>

#include "keys/key_builder.h"
#include "pdb/world_selection.h"
#include "reduction/pair_generator.h"

namespace pdd {

/// Blocks keyed by block key value, each holding tuple indices.
using BlockMap = std::map<std::string, std::vector<size_t>>;

/// All within-block pairs of a block map (the comparisons blocking
/// performs), deduplicated.
std::vector<CandidatePair> PairsFromBlocks(const BlockMap& blocks);

/// The streaming source every blocking adaptation shares: within-block
/// pairs of a block partition (tuples may belong to several blocks —
/// one per pass/world/alternative), emitted per ascending first index
/// with per-first dedup. Memory is the partition itself, O(total
/// memberships), never the O(Σ blocksize²) pair set.
class BlockPairSource : public PerFirstPairSource {
 public:
  /// `blocks` are tuple-index groups; `tuple_count` bounds the indices.
  BlockPairSource(std::vector<std::vector<size_t>> blocks,
                  size_t tuple_count);

 protected:
  void AppendPartners(size_t first, std::vector<size_t>* out) override;

 private:
  std::vector<std::vector<size_t>> blocks_;
  /// Per tuple: the blocks containing it.
  std::vector<std::vector<size_t>> memberships_;
};

/// Flattens a BlockMap into the block groups BlockPairSource takes.
std::vector<std::vector<size_t>> BlockGroups(const BlockMap& blocks);

/// Certain-key blocking: one block key per tuple via conflict resolution.
class BlockingCertainKeys : public PairGenerator {
 public:
  BlockingCertainKeys(KeySpec spec,
                      ConflictStrategy strategy =
                          ConflictStrategy::kMostProbable)
      : spec_(std::move(spec)), strategy_(strategy) {}

  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  /// Native streaming over the block partition (per-block dedup, live
  /// candidates bounded by one tuple's block).
  Result<std::unique_ptr<PairBatchSource>> Stream(
      const XRelation& rel) const override;
  bool native_streaming() const override { return true; }
  std::string name() const override { return "blocking_certain_keys"; }

  /// The block partition (exposed for inspection and tests).
  BlockMap Blocks(const XRelation& rel) const;

 private:
  KeySpec spec_;
  ConflictStrategy strategy_;
};

/// Multi-pass blocking over selected possible worlds: one blocking pass
/// per world (certain keys within each world), candidate sets unioned.
class BlockingMultipassWorlds : public PairGenerator {
 public:
  BlockingMultipassWorlds(KeySpec spec, WorldSelectionOptions selection)
      : spec_(std::move(spec)), selection_(selection) {
    selection_.all_present_only = true;
  }

  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  /// Native streaming: every world's blocks join one partition; the
  /// per-first dedup replaces the materialized union.
  Result<std::unique_ptr<PairBatchSource>> Stream(
      const XRelation& rel) const override;
  bool native_streaming() const override { return true; }
  std::string name() const override { return "blocking_multipass_worlds"; }

 private:
  KeySpec spec_;
  WorldSelectionOptions selection_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_BLOCKING_H_
