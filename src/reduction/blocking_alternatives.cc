#include "reduction/blocking_alternatives.h"

#include <algorithm>

#include "reduction/matching_matrix.h"

namespace pdd {

BlockMap BlockingAlternatives::Blocks(const XRelation& rel) const {
  KeyBuilder builder(spec_, &rel.schema());
  BlockMap blocks;
  for (size_t i = 0; i < rel.size(); ++i) {
    for (const std::string& key : builder.AlternativeKeys(rel.xtuple(i))) {
      std::vector<size_t>& members = blocks[key];
      // "If an x-tuple is allocated to a single block multiple times,
      // except for one, all entries of this tuple are removed."
      if (std::find(members.begin(), members.end(), i) == members.end()) {
        members.push_back(i);
      }
    }
  }
  return blocks;
}

Result<std::vector<CandidatePair>> BlockingAlternatives::Generate(
    const XRelation& rel) const {
  BlockMap blocks = Blocks(rel);
  MatchingMatrix executed(rel.size());
  std::vector<CandidatePair> pairs;
  for (const auto& [key, members] : blocks) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (executed.TestAndSet(members[i], members[j])) {
          pairs.push_back(MakePair(members[i], members[j]));
        }
      }
    }
  }
  SortAndDedupPairs(&pairs);
  return pairs;
}

Result<std::unique_ptr<PairBatchSource>> BlockingAlternatives::Stream(
    const XRelation& rel) const {
  return std::unique_ptr<PairBatchSource>(std::make_unique<BlockPairSource>(
      BlockGroups(Blocks(rel)), rel.size()));
}

}  // namespace pdd
