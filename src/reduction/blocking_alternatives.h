// Blocking with alternative key values (Section V-B, Fig. 14): an
// x-tuple is inserted into one block per alternative key. Multiple
// occurrences of the same tuple within one block are collapsed, and the
// executed-matching matrix prevents duplicate matchings across blocks.

#ifndef PDD_REDUCTION_BLOCKING_ALTERNATIVES_H_
#define PDD_REDUCTION_BLOCKING_ALTERNATIVES_H_

#include "keys/key_builder.h"
#include "reduction/blocking.h"
#include "reduction/pair_generator.h"

namespace pdd {

/// Alternative-key blocking (a tuple may populate several blocks).
class BlockingAlternatives : public PairGenerator {
 public:
  explicit BlockingAlternatives(KeySpec spec) : spec_(std::move(spec)) {}

  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  /// Native streaming over the multi-membership partition; the
  /// per-first dedup replaces the executed-matching matrix.
  Result<std::unique_ptr<PairBatchSource>> Stream(
      const XRelation& rel) const override;
  bool native_streaming() const override { return true; }
  std::string name() const override { return "blocking_alternatives"; }

  /// The block assignment after within-block duplicate removal
  /// (exposed for Fig. 14).
  BlockMap Blocks(const XRelation& rel) const;

 private:
  KeySpec spec_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_BLOCKING_ALTERNATIVES_H_
