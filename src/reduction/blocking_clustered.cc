#include "reduction/blocking_clustered.h"

#include "reduction/blocking.h"

namespace pdd {

std::vector<std::vector<size_t>> BlockingClustered::Clusters(
    const XRelation& rel) const {
  KeyBuilder builder(spec_, &rel.schema());
  std::vector<KeyDistribution> dists;
  dists.reserve(rel.size());
  for (const XTuple& t : rel.xtuples()) {
    dists.push_back(builder.DistributionFor(t, options_.conditioned));
  }
  DistanceFn distance = [&](size_t a, size_t b) {
    if (options_.comparator != nullptr) {
      return ExpectedKeyDistance(dists[a], dists[b], *options_.comparator);
    }
    return OverlapDistance(dists[a], dists[b]);
  };
  switch (options_.algorithm) {
    case ClusteredBlockingOptions::Algorithm::kLeader:
      return LeaderClustering(rel.size(), distance,
                              options_.leader_threshold);
    case ClusteredBlockingOptions::Algorithm::kKMedoids:
      return KMedoids(rel.size(), distance, options_.kmedoids);
  }
  return {};
}

Result<std::vector<CandidatePair>> BlockingClustered::Generate(
    const XRelation& rel) const {
  std::vector<CandidatePair> pairs;
  for (const std::vector<size_t>& cluster : Clusters(rel)) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        pairs.push_back(MakePair(cluster[i], cluster[j]));
      }
    }
  }
  SortAndDedupPairs(&pairs);
  return pairs;
}

Result<std::unique_ptr<PairBatchSource>> BlockingClustered::Stream(
    const XRelation& rel) const {
  return std::unique_ptr<PairBatchSource>(std::make_unique<BlockPairSource>(
      Clusters(rel), rel.size()));
}

}  // namespace pdd
