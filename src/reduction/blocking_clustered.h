// Blocking over uncertain key values via clustering (Section V-B; the
// paper points to clustering techniques for uncertain data [38]-[40]):
// each tuple keeps its probabilistic key distribution; tuples with
// similar distributions land in the same block.

#ifndef PDD_REDUCTION_BLOCKING_CLUSTERED_H_
#define PDD_REDUCTION_BLOCKING_CLUSTERED_H_

#include "cluster/k_medoids.h"
#include "cluster/key_distribution_distance.h"
#include "keys/key_builder.h"
#include "reduction/pair_generator.h"
#include "sim/comparator.h"

namespace pdd {

/// Options of clustered uncertain-key blocking.
struct ClusteredBlockingOptions {
  /// Which clustering algorithm forms the blocks.
  enum class Algorithm { kLeader = 0, kKMedoids = 1 };
  Algorithm algorithm = Algorithm::kLeader;
  /// Distance on key distributions: plain overlap, or expected key
  /// similarity under `comparator` when non-null.
  const Comparator* comparator = nullptr;
  /// Leader clustering distance threshold.
  double leader_threshold = 0.5;
  /// K-medoids parameters.
  KMedoidsOptions kmedoids;
  /// Condition key distributions by p(t) first.
  bool conditioned = false;
};

/// Uncertain-key blocking through clustering of key distributions.
class BlockingClustered : public PairGenerator {
 public:
  BlockingClustered(KeySpec spec, ClusteredBlockingOptions options)
      : spec_(std::move(spec)), options_(options) {}

  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  /// Native streaming: the clusters are the block partition; live
  /// candidates are bounded by one tuple's cluster.
  Result<std::unique_ptr<PairBatchSource>> Stream(
      const XRelation& rel) const override;
  bool native_streaming() const override { return true; }
  std::string name() const override { return "blocking_clustered"; }

  /// The clusters as tuple-index blocks.
  std::vector<std::vector<size_t>> Clusters(const XRelation& rel) const;

 private:
  KeySpec spec_;
  ClusteredBlockingOptions options_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_BLOCKING_CLUSTERED_H_
