#include "reduction/canopy.h"

#include <deque>

namespace pdd {

std::vector<std::vector<size_t>> CanopyReduction::Canopies(
    const XRelation& rel) const {
  KeyBuilder builder(spec_, &rel.schema());
  std::vector<KeyDistribution> dists;
  dists.reserve(rel.size());
  for (const XTuple& t : rel.xtuples()) {
    dists.push_back(builder.DistributionFor(t, options_.conditioned));
  }
  auto distance = [&](size_t a, size_t b) {
    if (options_.comparator != nullptr) {
      return ExpectedKeyDistance(dists[a], dists[b], *options_.comparator);
    }
    return OverlapDistance(dists[a], dists[b]);
  };
  double tight = std::min(options_.tight, options_.loose);
  std::deque<size_t> pool;
  for (size_t i = 0; i < rel.size(); ++i) pool.push_back(i);
  std::vector<bool> removed(rel.size(), false);
  std::vector<std::vector<size_t>> canopies;
  while (!pool.empty()) {
    size_t center = pool.front();
    pool.pop_front();
    if (removed[center]) continue;
    removed[center] = true;
    std::vector<size_t> canopy = {center};
    for (size_t i = 0; i < rel.size(); ++i) {
      // Tuples tightly bound to an earlier center are consumed; tuples
      // in the loose band stay in the pool and may join several
      // canopies (the overlap that plain blocking lacks).
      if (i == center || removed[i]) continue;
      double d = distance(center, i);
      if (d <= options_.loose) {
        canopy.push_back(i);
        if (d <= tight) removed[i] = true;
      }
    }
    canopies.push_back(std::move(canopy));
  }
  return canopies;
}

Result<std::vector<CandidatePair>> CanopyReduction::Generate(
    const XRelation& rel) const {
  if (options_.tight > options_.loose) {
    return Status::InvalidArgument("canopy tight threshold exceeds loose");
  }
  std::vector<CandidatePair> pairs;
  for (const std::vector<size_t>& canopy : Canopies(rel)) {
    for (size_t i = 0; i < canopy.size(); ++i) {
      for (size_t j = i + 1; j < canopy.size(); ++j) {
        pairs.push_back(MakePair(canopy[i], canopy[j]));
      }
    }
  }
  SortAndDedupPairs(&pairs);
  return pairs;
}

}  // namespace pdd
