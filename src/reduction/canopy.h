// Canopy clustering as a search space reduction method (McCallum et
// al.'s canopies, adapted to probabilistic data): a cheap comparator
// over probabilistic key distributions forms overlapping canopies; only
// pairs sharing a canopy are compared. Unlike blocking, canopies
// overlap, so borderline tuples are not lost to a single partition —
// another instance of Section V-B's "handle the uncertain key values
// instead of collapsing them".

#ifndef PDD_REDUCTION_CANOPY_H_
#define PDD_REDUCTION_CANOPY_H_

#include "cluster/key_distribution_distance.h"
#include "keys/key_builder.h"
#include "reduction/pair_generator.h"
#include "sim/comparator.h"

namespace pdd {

/// Options of canopy reduction.
struct CanopyOptions {
  /// Tuples within this distance of a canopy center join the canopy
  /// (loose threshold; distances in [0, 1]).
  double loose = 0.7;
  /// Tuples within this distance are additionally removed from the
  /// center pool (tight threshold <= loose).
  double tight = 0.4;
  /// Cheap distance: expected key distance under `comparator` when set,
  /// else distribution-overlap distance.
  const Comparator* comparator = nullptr;
  /// Condition key distributions by p(t) first.
  bool conditioned = false;
};

/// Canopy-based candidate generation over probabilistic key values.
class CanopyReduction : public PairGenerator {
 public:
  CanopyReduction(KeySpec spec, CanopyOptions options)
      : spec_(std::move(spec)), options_(options) {}

  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  std::string name() const override { return "canopy"; }

  /// The overlapping canopies (tuple indices; first member is the
  /// center). A tuple may appear in several canopies.
  std::vector<std::vector<size_t>> Canopies(const XRelation& rel) const;

 private:
  KeySpec spec_;
  CanopyOptions options_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_CANOPY_H_
