#include "reduction/full_pairs.h"

#include <algorithm>

#include "reduction/shard_partitioner.h"
#include "util/checked_math.h"

namespace pdd {

namespace {

/// Walks the (i, j) upper triangle in lexicographic order — exactly the
/// canonical candidate order — holding nothing but the two counters.
class FullPairSource : public PairBatchSource {
 public:
  explicit FullPairSource(size_t n) : n_(n), j_(1) {}

  size_t NextBatch(size_t max_batch, std::vector<CandidatePair>* out) override {
    out->clear();
    SkipUnownedRows();
    while (out->size() < max_batch && i_ + 1 < n_) {
      out->push_back({i_, j_});
      if (++j_ == n_) {
        ++i_;
        j_ = i_ + 1;
        SkipUnownedRows();
      }
    }
    return out->size();
  }

  bool RestrictToShard(std::shared_ptr<const ShardAssignment> assignment,
                       uint32_t shard) override {
    assignment_ = std::move(assignment);
    shard_ = shard;
    return true;
  }

 private:
  /// Advances i_ past rows owned by other shards (index arithmetic
  /// only — nothing is buffered either way).
  void SkipUnownedRows() {
    if (assignment_ == nullptr) return;
    while (i_ + 1 < n_ && !assignment_->Owns(i_, shard_)) {
      ++i_;
      j_ = i_ + 1;
    }
  }

  size_t n_;
  size_t i_ = 0;
  size_t j_;
  std::shared_ptr<const ShardAssignment> assignment_;
  uint32_t shard_ = 0;
};

}  // namespace

Result<std::vector<CandidatePair>> FullPairs::Generate(
    const XRelation& rel) const {
  std::vector<CandidatePair> pairs;
  size_t n = rel.size();
  // Saturating: the naive n*(n-1)/2 wraps for large n and would reserve
  // a garbage size. A saturated count can't be allocated either, so cap
  // the up-front reservation and let push_back grow (or throw) honestly.
  pairs.reserve(std::min(TriangularPairCount(n), size_t{1} << 24));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      pairs.push_back({i, j});
    }
  }
  return pairs;
}

Result<std::unique_ptr<PairBatchSource>> FullPairs::Stream(
    const XRelation& rel) const {
  return std::unique_ptr<PairBatchSource>(
      std::make_unique<FullPairSource>(rel.size()));
}

}  // namespace pdd
