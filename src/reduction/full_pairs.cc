#include "reduction/full_pairs.h"

namespace pdd {

Result<std::vector<CandidatePair>> FullPairs::Generate(
    const XRelation& rel) const {
  std::vector<CandidatePair> pairs;
  size_t n = rel.size();
  pairs.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      pairs.push_back({i, j});
    }
  }
  return pairs;
}

}  // namespace pdd
