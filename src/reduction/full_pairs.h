// The unreduced search space: every tuple pair (the baseline every
// reduction method is measured against).

#ifndef PDD_REDUCTION_FULL_PAIRS_H_
#define PDD_REDUCTION_FULL_PAIRS_H_

#include "reduction/pair_generator.h"

namespace pdd {

/// Generates all n(n-1)/2 pairs.
class FullPairs : public PairGenerator {
 public:
  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  std::string name() const override { return "full"; }
};

}  // namespace pdd

#endif  // PDD_REDUCTION_FULL_PAIRS_H_
