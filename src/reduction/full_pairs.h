// The unreduced search space: every tuple pair (the baseline every
// reduction method is measured against).

#ifndef PDD_REDUCTION_FULL_PAIRS_H_
#define PDD_REDUCTION_FULL_PAIRS_H_

#include "reduction/pair_generator.h"

namespace pdd {

/// Generates all n(n-1)/2 pairs. Streams natively by index arithmetic
/// alone — no buffer at all, which is what makes full runs on large
/// relations feasible through the streaming executor path.
class FullPairs : public PairGenerator {
 public:
  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  Result<std::unique_ptr<PairBatchSource>> Stream(
      const XRelation& rel) const override;
  bool native_streaming() const override { return true; }
  std::string name() const override { return "full"; }
};

}  // namespace pdd

#endif  // PDD_REDUCTION_FULL_PAIRS_H_
