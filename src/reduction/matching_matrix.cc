#include "reduction/matching_matrix.h"

#include <algorithm>
#include <cassert>

namespace pdd {

size_t MatchingMatrix::IndexOf(size_t a, size_t b) const {
  if (a > b) std::swap(a, b);
  assert(b < n_);
  // Upper-triangular (including diagonal) row-major packing.
  return a * n_ - a * (a + 1) / 2 + b;
}

bool MatchingMatrix::TestAndSet(size_t a, size_t b) {
  if (a == b) return false;
  size_t idx = IndexOf(a, b);
  if (bits_[idx]) return false;
  bits_[idx] = true;
  ++count_;
  return true;
}

bool MatchingMatrix::Contains(size_t a, size_t b) const {
  if (a == b) return false;
  return bits_[IndexOf(a, b)];
}

}  // namespace pdd
