// The matrix of already-executed matchings (Fig. 12): prevents the same
// tuple pair from being matched twice when a tuple appears at several
// sort positions or in several blocks.

#ifndef PDD_REDUCTION_MATCHING_MATRIX_H_
#define PDD_REDUCTION_MATCHING_MATRIX_H_

#include <cstddef>
#include <vector>

namespace pdd {

/// Symmetric bit matrix over tuple indices storing executed matchings.
class MatchingMatrix {
 public:
  /// Creates an empty matrix for `n` tuples.
  explicit MatchingMatrix(size_t n) : n_(n), bits_(n * (n + 1) / 2, false) {}

  /// Marks (a, b) executed. Returns true iff the pair was NOT executed
  /// before (i.e. the caller should perform this matching now). Self
  /// pairs always return false (matching a tuple with itself is
  /// meaningless).
  bool TestAndSet(size_t a, size_t b);

  /// True iff (a, b) was executed.
  bool Contains(size_t a, size_t b) const;

  /// Number of executed matchings.
  size_t count() const { return count_; }

  /// Capacity in tuples.
  size_t size() const { return n_; }

 private:
  size_t IndexOf(size_t a, size_t b) const;

  size_t n_;
  std::vector<bool> bits_;
  size_t count_ = 0;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_MATCHING_MATRIX_H_
