#include "reduction/pair_batch_source.h"

#include <algorithm>

#include "reduction/pair_generator.h"

namespace pdd {

size_t MaterializedPairSource::NextBatch(size_t max_batch,
                                         std::vector<CandidatePair>* out) {
  out->clear();
  size_t count = std::min(max_batch, candidates_.size() - next_);
  out->insert(out->end(), candidates_.begin() + next_,
              candidates_.begin() + next_ + count);
  next_ += count;
  return count;
}

size_t PerFirstPairSource::NextBatch(size_t max_batch,
                                     std::vector<CandidatePair>* out) {
  out->clear();
  while (out->size() < max_batch) {
    if (consumed_ == partners_.size()) {
      // Refill: expand tuples until one has partners (or none are left).
      partners_.clear();
      consumed_ = 0;
      while (partners_.empty() && next_first_ < tuple_count_) {
        current_first_ = next_first_++;
        AppendPartners(current_first_, &partners_);
        // Canonicalize the partner set: emitting only from the smaller
        // endpoint (u > first) covers every pair exactly once, and the
        // sorted unique suffix makes the group order canonical.
        partners_.erase(std::remove_if(partners_.begin(), partners_.end(),
                                       [this](size_t u) {
                                         return u <= current_first_;
                                       }),
                        partners_.end());
        std::sort(partners_.begin(), partners_.end());
        partners_.erase(std::unique(partners_.begin(), partners_.end()),
                        partners_.end());
      }
      if (partners_.empty()) break;  // exhausted
    }
    while (consumed_ < partners_.size() && out->size() < max_batch) {
      out->push_back({current_first_, partners_[consumed_++]});
    }
  }
  return out->size();
}

size_t FilteringPairSource::NextBatch(size_t max_batch,
                                      std::vector<CandidatePair>* out) {
  out->clear();
  while (out->size() < max_batch) {
    size_t pulled = inner_->NextBatch(max_batch - out->size(), &scratch_);
    if (pulled == 0) break;
    for (const CandidatePair& pair : scratch_) {
      if (keep_(pair)) out->push_back(pair);
    }
  }
  return out->size();
}

}  // namespace pdd
