#include "reduction/pair_batch_source.h"

#include <algorithm>

#include "reduction/pair_generator.h"
#include "reduction/shard_partitioner.h"

namespace pdd {

size_t MaterializedPairSource::NextBatch(size_t max_batch,
                                         std::vector<CandidatePair>* out) {
  out->clear();
  size_t count = std::min(max_batch, candidates_.size() - next_);
  out->insert(out->end(), candidates_.begin() + next_,
              candidates_.begin() + next_ + count);
  next_ += count;
  return count;
}

bool MaterializedPairSource::RestrictToShard(
    std::shared_ptr<const ShardAssignment> assignment, uint32_t shard) {
  candidates_.erase(
      std::remove_if(candidates_.begin(), candidates_.end(),
                     [&](const CandidatePair& pair) {
                       return !assignment->Owns(pair.first, shard);
                     }),
      candidates_.end());
  // Actually release the dropped slice: the per-shard footprint is the
  // owned subset, not the full generated vector.
  candidates_.shrink_to_fit();
  return true;
}

size_t PerFirstPairSource::NextBatch(size_t max_batch,
                                     std::vector<CandidatePair>* out) {
  out->clear();
  while (out->size() < max_batch) {
    if (consumed_ == partners_.size()) {
      // Refill: expand tuples until one has partners (or none are left).
      partners_.clear();
      consumed_ = 0;
      while (partners_.empty() && next_first_ < tuple_count_) {
        current_first_ = next_first_++;
        if (shard_assignment_ != nullptr &&
            !shard_assignment_->Owns(current_first_, shard_)) {
          continue;  // another shard's tuple: never buffer its partners
        }
        AppendPartners(current_first_, &partners_);
        // Canonicalize the partner set: emitting only from the smaller
        // endpoint (u > first) covers every pair exactly once, and the
        // sorted unique suffix makes the group order canonical.
        partners_.erase(std::remove_if(partners_.begin(), partners_.end(),
                                       [this](size_t u) {
                                         return u <= current_first_;
                                       }),
                        partners_.end());
        std::sort(partners_.begin(), partners_.end());
        partners_.erase(std::unique(partners_.begin(), partners_.end()),
                        partners_.end());
      }
      if (partners_.empty()) break;  // exhausted
    }
    while (consumed_ < partners_.size() && out->size() < max_batch) {
      out->push_back({current_first_, partners_[consumed_++]});
    }
  }
  return out->size();
}

bool PerFirstPairSource::RestrictToShard(
    std::shared_ptr<const ShardAssignment> assignment, uint32_t shard) {
  shard_assignment_ = std::move(assignment);
  shard_ = shard;
  return true;
}

size_t FilteringPairSource::NextBatch(size_t max_batch,
                                      std::vector<CandidatePair>* out) {
  out->clear();
  while (out->size() < max_batch) {
    size_t pulled = inner_->NextBatch(max_batch - out->size(), &scratch_);
    if (pulled == 0) break;
    for (const CandidatePair& pair : scratch_) {
      if (keep_(pair)) out->push_back(pair);
    }
  }
  return out->size();
}

}  // namespace pdd
