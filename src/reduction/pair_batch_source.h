// Pull-based candidate pair production (the streaming half of the
// PairGenerator interface). A PairBatchSource yields a generator's
// candidate pairs in bounded batches whose concatenation is EXACTLY the
// vector PairGenerator::Generate() returns — same canonical sorted
// order, same deduplication, same count — so the two paths are
// interchangeable bit-for-bit. Native sources hold O(relation) index
// structures but only O(window/block) live candidate pairs; the
// materializing adapter holds the full vector (legacy behavior behind
// the streaming interface).
//
// All sources emit in the canonical pair order (ascending (first,
// second)). The shared way to get there with bounded live pairs is
// PerFirstPairSource: walk `first` over the tuple indices in ascending
// order and emit the (sorted, deduplicated) partner set of each —
// grouping by ascending `first` with sorted `second` IS the canonical
// order, and the live buffer is one tuple's partner set, not the whole
// candidate set.

#ifndef PDD_REDUCTION_PAIR_BATCH_SOURCE_H_
#define PDD_REDUCTION_PAIR_BATCH_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace pdd {

struct CandidatePair;
struct ShardAssignment;

class PairBatchSource {
 public:
  virtual ~PairBatchSource() = default;

  /// Appends up to `max_batch` candidates to `*out` (cleared first) and
  /// returns the number appended; 0 means exhausted. The concatenation
  /// of all batches equals the owning generator's Generate() output.
  virtual size_t NextBatch(size_t max_batch,
                           std::vector<CandidatePair>* out) = 0;

  /// Candidate pairs currently materialized inside the source (its
  /// internal buffers, excluding the caller's batch vector). The
  /// adapter reports the full generated vector; native sources report
  /// their small live buffer. Feeds the drain loop's live-candidate
  /// high-water accounting.
  virtual size_t buffered_candidates() const { return 0; }

  /// Exact total this source will yield, when known without draining
  /// (the materializing adapter knows; native and filtering sources
  /// don't). A reservation hint only.
  virtual std::optional<size_t> exact_count_hint() const {
    return std::nullopt;
  }

  /// Restricts the source to the pairs whose first index `shard` owns
  /// under `assignment` (see reduction/shard_partitioner.h), preserving
  /// their relative order — the restricted stream is the owned
  /// subsequence of the unrestricted one. Must be called before the
  /// first NextBatch. Returns false when the source cannot restrict
  /// itself (custom sources); callers then wrap a FilteringPairSource
  /// around it, which is equivalent but keeps the unrestricted memory
  /// footprint. Built-in sources all restrict natively: they skip
  /// non-owned first indices without ever buffering their partners.
  virtual bool RestrictToShard(
      std::shared_ptr<const ShardAssignment> assignment, uint32_t shard) {
    (void)assignment;
    (void)shard;
    return false;
  }
};

/// Adapter serving a pre-generated candidate vector in slices. This is
/// the default PairGenerator::Stream() implementation: every reduction
/// streams on day one, at the legacy O(candidates) memory cost until it
/// grows a native source.
class MaterializedPairSource : public PairBatchSource {
 public:
  explicit MaterializedPairSource(std::vector<CandidatePair> candidates)
      : candidates_(std::move(candidates)) {}

  size_t NextBatch(size_t max_batch, std::vector<CandidatePair>* out) override;
  size_t buffered_candidates() const override { return candidates_.size(); }
  std::optional<size_t> exact_count_hint() const override {
    return candidates_.size();
  }
  /// Drops (and releases) the non-owned pairs, so a shard of an
  /// adapter-backed reduction holds only its own slice.
  bool RestrictToShard(std::shared_ptr<const ShardAssignment> assignment,
                       uint32_t shard) override;

 private:
  std::vector<CandidatePair> candidates_;
  size_t next_ = 0;
};

/// Base of the native sources: emits pairs grouped by ascending first
/// index. Subclasses enumerate one tuple's partners (any u != first,
/// unsorted, duplicates allowed); the base keeps u > first, sorts and
/// deduplicates — yielding the canonical order with a live buffer of
/// one partner set.
class PerFirstPairSource : public PairBatchSource {
 public:
  explicit PerFirstPairSource(size_t tuple_count)
      : tuple_count_(tuple_count) {}

  size_t NextBatch(size_t max_batch, std::vector<CandidatePair>* out) final;
  size_t buffered_candidates() const final {
    return partners_.size() - consumed_;
  }
  /// Skips non-owned first indices in the walk: a shard never buffers
  /// the partner set of a tuple it doesn't own.
  bool RestrictToShard(std::shared_ptr<const ShardAssignment> assignment,
                       uint32_t shard) final;

 protected:
  /// Appends the co-candidate tuples of `first` (unsorted; duplicates
  /// and u < first allowed — the base filters).
  virtual void AppendPartners(size_t first, std::vector<size_t>* out) = 0;

 private:
  size_t tuple_count_;
  size_t next_first_ = 0;    // next tuple index to expand
  size_t current_first_ = 0; // tuple the buffered partners belong to
  std::vector<size_t> partners_;
  size_t consumed_ = 0;
  /// Non-null when sharded: only owned firsts are expanded.
  std::shared_ptr<const ShardAssignment> shard_assignment_;
  uint32_t shard_ = 0;
};

/// Wraps another source, keeping only pairs the predicate accepts.
/// Order-preserving, so the filtered concatenation is the filtered
/// Generate() output. Used by the pruning filter and the incremental
/// stream's crossing-pair restriction.
class FilteringPairSource : public PairBatchSource {
 public:
  FilteringPairSource(std::unique_ptr<PairBatchSource> inner,
                      std::function<bool(const CandidatePair&)> keep)
      : inner_(std::move(inner)), keep_(std::move(keep)) {}

  size_t NextBatch(size_t max_batch, std::vector<CandidatePair>* out) override;
  size_t buffered_candidates() const override {
    return inner_->buffered_candidates();
  }
  /// Forwards to the wrapped source (shard restriction composes with
  /// pruning and the incremental crossing filter).
  bool RestrictToShard(std::shared_ptr<const ShardAssignment> assignment,
                       uint32_t shard) override {
    return inner_->RestrictToShard(std::move(assignment), shard);
  }

 private:
  std::unique_ptr<PairBatchSource> inner_;
  std::function<bool(const CandidatePair&)> keep_;
  std::vector<CandidatePair> scratch_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_PAIR_BATCH_SOURCE_H_
