#include "reduction/pair_generator.h"

#include <algorithm>
#include <cassert>

namespace pdd {

CandidatePair MakePair(size_t a, size_t b) {
  assert(a != b);
  return a < b ? CandidatePair{a, b} : CandidatePair{b, a};
}

void SortAndDedupPairs(std::vector<CandidatePair>* pairs) {
  std::sort(pairs->begin(), pairs->end());
  pairs->erase(std::unique(pairs->begin(), pairs->end()), pairs->end());
}

bool ContainsPair(const std::vector<CandidatePair>& sorted_pairs,
                  const CandidatePair& pair) {
  return std::binary_search(sorted_pairs.begin(), sorted_pairs.end(), pair);
}

Result<std::unique_ptr<PairBatchSource>> PairGenerator::Stream(
    const XRelation& rel) const {
  PDD_ASSIGN_OR_RETURN(std::vector<CandidatePair> candidates, Generate(rel));
  return std::unique_ptr<PairBatchSource>(
      std::make_unique<MaterializedPairSource>(std::move(candidates)));
}

}  // namespace pdd
