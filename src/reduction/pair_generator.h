// Search space reduction interface (Section V): a PairGenerator maps an
// x-relation to the set of candidate tuple pairs the decision model will
// examine.

#ifndef PDD_REDUCTION_PAIR_GENERATOR_H_
#define PDD_REDUCTION_PAIR_GENERATOR_H_

#include <string>
#include <vector>

#include "pdb/xrelation.h"
#include "util/status.h"

namespace pdd {

/// An unordered candidate pair of x-tuple indices, stored with
/// first < second.
struct CandidatePair {
  size_t first = 0;
  size_t second = 0;

  bool operator==(const CandidatePair& other) const {
    return first == other.first && second == other.second;
  }
  bool operator<(const CandidatePair& other) const {
    return first != other.first ? first < other.first
                                : second < other.second;
  }
};

/// Canonicalizes an index pair (orders the endpoints). a must differ
/// from b.
CandidatePair MakePair(size_t a, size_t b);

/// Sorts and removes duplicates in place.
void SortAndDedupPairs(std::vector<CandidatePair>* pairs);

/// Binary search in a sorted pair list.
bool ContainsPair(const std::vector<CandidatePair>& sorted_pairs,
                  const CandidatePair& pair);

/// Interface of a search space reduction method.
class PairGenerator {
 public:
  virtual ~PairGenerator() = default;

  /// Candidate pairs for `rel`, sorted and deduplicated.
  virtual Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const = 0;

  /// Stable method name for reports.
  virtual std::string name() const = 0;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_PAIR_GENERATOR_H_
