// Search space reduction interface (Section V): a PairGenerator maps an
// x-relation to the set of candidate tuple pairs the decision model will
// examine — either materialized at once (Generate) or pulled in bounded
// batches (Stream).

#ifndef PDD_REDUCTION_PAIR_GENERATOR_H_
#define PDD_REDUCTION_PAIR_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "pdb/xrelation.h"
#include "reduction/pair_batch_source.h"
#include "util/status.h"

namespace pdd {

/// An unordered candidate pair of x-tuple indices, stored with
/// first < second.
struct CandidatePair {
  size_t first = 0;
  size_t second = 0;

  bool operator==(const CandidatePair& other) const {
    return first == other.first && second == other.second;
  }
  bool operator<(const CandidatePair& other) const {
    return first != other.first ? first < other.first
                                : second < other.second;
  }
};

/// Canonicalizes an index pair (orders the endpoints). a must differ
/// from b.
CandidatePair MakePair(size_t a, size_t b);

/// Sorts and removes duplicates in place.
void SortAndDedupPairs(std::vector<CandidatePair>* pairs);

/// Binary search in a sorted pair list.
bool ContainsPair(const std::vector<CandidatePair>& sorted_pairs,
                  const CandidatePair& pair);

/// Interface of a search space reduction method.
class PairGenerator {
 public:
  virtual ~PairGenerator() = default;

  /// Candidate pairs for `rel`, sorted and deduplicated.
  virtual Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const = 0;

  /// Streaming candidate production: a pull source whose concatenated
  /// batches equal Generate(rel) exactly (order, dedup, count). The
  /// returned source may reference `rel` and the generator; both must
  /// outlive it. The default adapter materializes Generate() behind the
  /// interface; native overrides (full pairs, the SNM family, the
  /// blocking family) keep only O(window) / O(block) candidate pairs
  /// live. Re-streaming a candidate sequence = calling Stream() again.
  virtual Result<std::unique_ptr<PairBatchSource>> Stream(
      const XRelation& rel) const;

  /// True when Stream() is a native bounded-memory implementation
  /// rather than the materializing adapter.
  virtual bool native_streaming() const { return false; }

  /// Stable method name for reports.
  virtual std::string name() const = 0;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_PAIR_GENERATOR_H_
