#include "reduction/pruning.h"

#include <algorithm>

namespace pdd {

bool IsMaxLengthNormalizedComparator(std::string_view name) {
  // exact / exact_nocase / prefix are bounded too: they score 1 only
  // for equal-length strings (bound 1) and prefix similarity is
  // |lcp| / max ≤ min / max = LengthBound.
  return name == "hamming" || name == "levenshtein" || name == "damerau" ||
         name == "lcs" || name == "exact" || name == "exact_nocase" ||
         name == "prefix";
}

double LengthBound(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  size_t diff = max_len - std::min(a.size(), b.size());
  return 1.0 - static_cast<double>(diff) / static_cast<double>(max_len);
}

double ValueLengthBound(const Value& a, const Value& b) {
  // ⊥ against ⊥ scores 1, so any shared ⊥ mass lifts the bound to 1.
  if (a.null_probability() > kProbEpsilon &&
      b.null_probability() > kProbEpsilon) {
    return 1.0;
  }
  double bound = 0.0;
  for (const Alternative& da : a.alternatives()) {
    for (const Alternative& db : b.alternatives()) {
      bound = std::max(bound, LengthBound(da.text, db.text));
      if (bound >= 1.0) return 1.0;
    }
  }
  return bound;
}

double PruningFilter::PairBound(const XTuple& a, const XTuple& b) const {
  // Weighted-sum bound over the attributes: every world's combined
  // similarity is at most Σ w_i · bound_i.
  size_t arity = std::min(a.arity(), b.arity());
  double total_weight = 0.0;
  double bound = 0.0;
  for (size_t i = 0; i < arity; ++i) {
    double w = i < options_.weights.size() ? options_.weights[i] : 1.0;
    total_weight += w;
    double attr_bound = 0.0;
    for (const AltTuple& alt_a : a.alternatives()) {
      for (const AltTuple& alt_b : b.alternatives()) {
        attr_bound = std::max(
            attr_bound, ValueLengthBound(alt_a.values[i], alt_b.values[i]));
        if (attr_bound >= 1.0) break;
      }
      if (attr_bound >= 1.0) break;
    }
    bound += w * attr_bound;
  }
  if (options_.weights.empty() && total_weight > 0.0) {
    bound /= total_weight;  // uniform weights normalize to [0, 1]
  }
  return bound;
}

Result<std::vector<CandidatePair>> PruningFilter::Generate(
    const XRelation& rel) const {
  PDD_ASSIGN_OR_RETURN(std::vector<CandidatePair> candidates,
                       inner_->Generate(rel));
  std::vector<CandidatePair> kept;
  kept.reserve(candidates.size());
  for (const CandidatePair& pair : candidates) {
    if (PairBound(rel.xtuple(pair.first), rel.xtuple(pair.second)) >=
        options_.threshold) {
      kept.push_back(pair);
    }
  }
  return kept;
}

Result<std::unique_ptr<PairBatchSource>> PruningFilter::Stream(
    const XRelation& rel) const {
  PDD_ASSIGN_OR_RETURN(std::unique_ptr<PairBatchSource> inner,
                       inner_->Stream(rel));
  // The filter borrows `rel` and this filter; the caller keeps both
  // alive for the source's lifetime (the Stream() contract).
  return std::unique_ptr<PairBatchSource>(
      std::make_unique<FilteringPairSource>(
          std::move(inner), [this, &rel](const CandidatePair& pair) {
            return PairBound(rel.xtuple(pair.first),
                             rel.xtuple(pair.second)) >= options_.threshold;
          }));
}

}  // namespace pdd
