// Pruning — the third reduction heuristic Section III-B names besides
// the sorted neighborhood method and blocking: candidate pairs whose
// *cheap upper bound* on similarity cannot reach the match threshold are
// discarded before the expensive Eq. 5 / derivation work runs
// (filter-verification).
//
// The bound used here is the length filter, valid for every
// normalized-by-max-length comparator (Hamming, Levenshtein, Damerau,
// LCS): sim(a, b) <= 1 - |len(a)-len(b)| / max(len(a), len(b)).
// For probabilistic values the bound is the maximum over the
// alternatives' length bounds (an upper bound over every world), and a
// pair's bound is the weighted-sum bound over key attributes.

#ifndef PDD_REDUCTION_PRUNING_H_
#define PDD_REDUCTION_PRUNING_H_

#include <memory>

#include "pdb/xrelation.h"
#include "reduction/pair_generator.h"

namespace pdd {

/// True iff LengthBound is a sound upper bound for the named registry
/// comparator (hamming, levenshtein, damerau, lcs, exact,
/// exact_nocase, prefix).
bool IsMaxLengthNormalizedComparator(std::string_view name);

/// Length-filter upper bound on the similarity of two certain texts
/// under max-length-normalized comparators.
double LengthBound(std::string_view a, std::string_view b);

/// Upper bound over all alternative pairs of two probabilistic values
/// (1 when either value may be ⊥ together with the other — the
/// sim(⊥,⊥)=1 case keeps the bound sound).
double ValueLengthBound(const Value& a, const Value& b);

/// Options of the pruning filter.
struct PruningOptions {
  /// Pairs with upper-bound combined similarity strictly below this are
  /// pruned. Set to the pipeline's Tλ to keep every pair that could
  /// still reach the possible band.
  double threshold = 0.4;
  /// Per-attribute weights of the combination bound (empty = uniform).
  std::vector<double> weights;
};

/// Wraps another PairGenerator and prunes its candidates by the bound.
/// Sound for max-length-normalized comparators: a pruned pair could not
/// have been classified above `threshold`.
class PruningFilter : public PairGenerator {
 public:
  /// Takes ownership of `inner`.
  PruningFilter(std::unique_ptr<PairGenerator> inner, PruningOptions options)
      : inner_(std::move(inner)), options_(std::move(options)) {}

  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  /// Streams the inner source through the bound filter pair-by-pair, so
  /// pruning keeps whatever memory bound the inner generator has.
  Result<std::unique_ptr<PairBatchSource>> Stream(
      const XRelation& rel) const override;
  bool native_streaming() const override {
    return inner_->native_streaming();
  }
  std::string name() const override {
    return "pruned(" + inner_->name() + ")";
  }

  /// Upper bound of one x-tuple pair under the options.
  double PairBound(const XTuple& a, const XTuple& b) const;

 private:
  std::unique_ptr<PairGenerator> inner_;
  PruningOptions options_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_PRUNING_H_
