#include "reduction/qgram_index.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "util/string_util.h"

namespace pdd {

Result<std::vector<CandidatePair>> QGramIndexReduction::Generate(
    const XRelation& rel) const {
  if (options_.q == 0) {
    return Status::InvalidArgument("q must be at least 1");
  }
  if (options_.min_shared_grams == 0) {
    return Status::InvalidArgument("min_shared_grams must be at least 1");
  }
  KeyBuilder builder(spec_, &rel.schema());
  // Distinct grams per tuple (set semantics across all alternative keys).
  std::map<std::string, std::vector<size_t>> postings;
  for (size_t i = 0; i < rel.size(); ++i) {
    std::set<std::string> grams;
    for (const std::string& key : builder.AlternativeKeys(rel.xtuple(i))) {
      for (std::string& gram : QGrams(key, options_.q)) {
        grams.insert(std::move(gram));
      }
    }
    for (const std::string& gram : grams) {
      postings[gram].push_back(i);
    }
  }
  size_t max_posting = std::max(
      options_.stop_gram_floor,
      static_cast<size_t>(options_.max_posting_fraction *
                          static_cast<double>(rel.size())));
  if (max_posting == 0) max_posting = 1;
  // Count shared grams per pair over the (filtered) posting lists.
  std::unordered_map<uint64_t, size_t> shared;
  for (const auto& [gram, tuples] : postings) {
    if (tuples.size() > max_posting) continue;  // stop-gram
    for (size_t a = 0; a < tuples.size(); ++a) {
      for (size_t b = a + 1; b < tuples.size(); ++b) {
        uint64_t code = (static_cast<uint64_t>(tuples[a]) << 32) |
                        static_cast<uint64_t>(tuples[b]);
        ++shared[code];
      }
    }
  }
  std::vector<CandidatePair> pairs;
  for (const auto& [code, count] : shared) {
    if (count >= options_.min_shared_grams) {
      pairs.push_back({static_cast<size_t>(code >> 32),
                       static_cast<size_t>(code & 0xffffffffu)});
    }
  }
  SortAndDedupPairs(&pairs);
  return pairs;
}

}  // namespace pdd
