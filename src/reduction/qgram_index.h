// Q-gram inverted-index candidate generation, adapted to probabilistic
// keys: every alternative key value of every x-tuple posts its padded
// character q-grams into an inverted index; tuple pairs sharing at least
// `min_shared_grams` q-grams (via any of their alternative keys) become
// candidates.
//
// Compared to canopy reduction this avoids the O(n²) distance
// evaluations — cost is driven by posting-list sizes — and compared to
// blocking it tolerates typos anywhere in the key (no exact key match
// required). The uncertain-key handling follows Section V's theme: all
// alternatives post, so no alternative's neighborhood is lost.

#ifndef PDD_REDUCTION_QGRAM_INDEX_H_
#define PDD_REDUCTION_QGRAM_INDEX_H_

#include "keys/key_builder.h"
#include "reduction/pair_generator.h"

namespace pdd {

/// Options of q-gram index reduction.
struct QGramIndexOptions {
  /// Gram size (>= 1).
  size_t q = 2;
  /// Minimum number of distinct shared grams for a candidate pair.
  size_t min_shared_grams = 2;
  /// Grams whose posting list exceeds this fraction of all tuples are
  /// ignored (stop-gram filtering; 1.0 disables).
  double max_posting_fraction = 0.5;
  /// Posting-list floor below which no gram is ever filtered — keeps the
  /// stop-gram heuristic from firing on small relations where every gram
  /// exceeds the fraction.
  size_t stop_gram_floor = 10;
};

/// Inverted q-gram index over alternative key values.
class QGramIndexReduction : public PairGenerator {
 public:
  QGramIndexReduction(KeySpec spec, QGramIndexOptions options)
      : spec_(std::move(spec)), options_(options) {}

  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  std::string name() const override { return "qgram_index"; }

 private:
  KeySpec spec_;
  QGramIndexOptions options_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_QGRAM_INDEX_H_
