#include "reduction/shard_partitioner.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/checked_math.h"

namespace pdd {

const char* ShardStrategyName(ShardStrategy strategy) {
  switch (strategy) {
    case ShardStrategy::kAuto:
      return "auto";
    case ShardStrategy::kIndexRange:
      return "index_range";
    case ShardStrategy::kKeyRange:
      return "key_range";
    case ShardStrategy::kBlockSubset:
      return "block_subset";
  }
  return "unknown";
}

namespace {

ShardAssignment EmptyAssignment(ShardStrategy strategy, size_t tuple_count,
                                uint32_t shard_count) {
  ShardAssignment assignment;
  assignment.strategy = strategy;
  assignment.shard_count = shard_count == 0 ? 1 : shard_count;
  assignment.owner.assign(tuple_count, 0);
  return assignment;
}

}  // namespace

ShardAssignment AssignIndexRanges(size_t tuple_count, uint32_t shard_count) {
  ShardAssignment assignment =
      EmptyAssignment(ShardStrategy::kIndexRange, tuple_count, shard_count);
  if (assignment.shard_count <= 1 || tuple_count == 0) return assignment;
  // Walk the indices accumulating triangular weight; advance to the
  // next shard when the running total crosses the shard's fair share.
  const double total =
      static_cast<double>(TriangularPairCount(tuple_count));
  const double per_shard = total / assignment.shard_count;
  double accumulated = 0.0;
  uint32_t shard = 0;
  for (size_t f = 0; f < tuple_count; ++f) {
    if (shard + 1 < assignment.shard_count &&
        accumulated >= per_shard * (shard + 1)) {
      ++shard;
    }
    assignment.owner[f] = shard;
    accumulated += static_cast<double>(tuple_count - 1 - f);
  }
  return assignment;
}

ShardAssignment AssignKeyRanges(const std::vector<std::string>& keys,
                                uint32_t shard_count) {
  ShardAssignment assignment =
      EmptyAssignment(ShardStrategy::kKeyRange, keys.size(), shard_count);
  if (assignment.shard_count <= 1 || keys.empty()) return assignment;
  std::vector<size_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  // Stable sort by key = the SNM entry order (insertion order breaks
  // ties), so shard boundaries land between the same neighbors the
  // window pass sees.
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return keys[a] < keys[b];
  });
  const size_t n = order.size();
  for (size_t pos = 0; pos < n; ++pos) {
    // Equal-sized contiguous runs of the sorted order.
    uint32_t shard = static_cast<uint32_t>(
        (pos * assignment.shard_count) / n);
    assignment.owner[order[pos]] = shard;
  }
  return assignment;
}

ShardAssignment AssignBlockSubsets(const std::vector<std::string>& keys,
                                   uint32_t shard_count) {
  ShardAssignment assignment =
      EmptyAssignment(ShardStrategy::kBlockSubset, keys.size(), shard_count);
  if (assignment.shard_count <= 1 || keys.empty()) return assignment;
  // Group tuples into blocks by key (ordered map: deterministic).
  std::map<std::string, std::vector<size_t>> blocks;
  for (size_t i = 0; i < keys.size(); ++i) {
    blocks[keys[i]].push_back(i);
  }
  // Largest pair weight first (ties by key), onto the least-loaded
  // shard (ties by shard index): the classic LPT packing, fully
  // deterministic.
  std::vector<std::pair<const std::string*, const std::vector<size_t>*>>
      ordered;
  ordered.reserve(blocks.size());
  for (const auto& [key, members] : blocks) {
    ordered.emplace_back(&key, &members);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.second->size() != b.second->size()) {
                return a.second->size() > b.second->size();
              }
              return *a.first < *b.first;
            });
  std::vector<size_t> load(assignment.shard_count, 0);
  for (const auto& [key, members] : ordered) {
    uint32_t target = 0;
    for (uint32_t s = 1; s < assignment.shard_count; ++s) {
      if (load[s] < load[target]) target = s;
    }
    load[target] += TriangularPairCount(members->size());
    for (size_t tuple : *members) assignment.owner[tuple] = target;
  }
  return assignment;
}

}  // namespace pdd
