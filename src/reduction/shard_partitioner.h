// Shard partitioning of the candidate pair universe (the enabling layer
// for the multi-node backend): a ShardAssignment maps every tuple index
// to the one shard that OWNS it, and a shard's candidate set is exactly
// the canonical pairs whose first (smaller) index it owns. Because
// ownership is a pure function of the pair's first endpoint,
//
//   * the shard candidate sets partition the unsharded candidate set
//     (every pair has exactly one owner — no pair is lost or doubled),
//   * each shard's stream is a subsequence of the canonical sorted pair
//     order (filtering preserves order), so a k-way merge by ascending
//     (first, second) with a stable shard tie-break reconstructs the
//     unsharded stream bit for bit, and
//   * a native bounded-memory source can skip non-owned first indices
//     wholesale — it never buffers a partner set the shard won't emit.
//
// The assignment strategies load-balance, they never affect
// correctness: index_range splits the index space weighted by the
// full-pairs triangle, key_range splits the sort-key order into
// contiguous runs (the SNM family's natural axis — window partners sit
// next to each other in key order), block_subset packs whole blocks of
// equal-keyed tuples onto shards (the blocking family's natural unit).

#ifndef PDD_REDUCTION_SHARD_PARTITIONER_H_
#define PDD_REDUCTION_SHARD_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pdd {

/// How tuple indices are distributed over shards.
enum class ShardStrategy {
  /// Resolve per reduction family: full/adapter → index_range, SNM
  /// family → key_range, blocking family → block_subset.
  kAuto = 0,
  kIndexRange = 1,
  kKeyRange = 2,
  kBlockSubset = 3,
};

/// Stable strategy name ("auto", "index_range", ...).
const char* ShardStrategyName(ShardStrategy strategy);

/// Tuple-index → owning-shard map. Shared (immutable) across the shard
/// sources of one stream.
struct ShardAssignment {
  ShardStrategy strategy = ShardStrategy::kIndexRange;
  uint32_t shard_count = 1;
  /// owner[tuple] = the shard owning every candidate pair whose first
  /// endpoint is `tuple`.
  std::vector<uint32_t> owner;

  bool Owns(size_t tuple, uint32_t shard) const {
    return tuple < owner.size() && owner[tuple] == shard;
  }
};

/// Contiguous index ranges weighted by the full-pairs triangle: tuple f
/// fronts n-1-f pairs, so early ranges are shorter. Balanced for the
/// full reduction; a sane default for adapter-backed reductions.
ShardAssignment AssignIndexRanges(size_t tuple_count, uint32_t shard_count);

/// Contiguous runs of the key-sorted tuple order, balanced by tuple
/// count. `keys[i]` is tuple i's sort key; ties break by tuple index
/// (the SNM stable-sort rule), so the split is deterministic.
ShardAssignment AssignKeyRanges(const std::vector<std::string>& keys,
                                uint32_t shard_count);

/// Whole blocks (groups of equal-keyed tuples) packed greedily onto the
/// least-loaded shard by within-block pair weight, largest block first
/// (ties by key, then shard index — deterministic).
ShardAssignment AssignBlockSubsets(const std::vector<std::string>& keys,
                                   uint32_t shard_count);

}  // namespace pdd

#endif  // PDD_REDUCTION_SHARD_PARTITIONER_H_
