#include "reduction/snm_adaptive.h"

#include "sim/edit_distance.h"

namespace pdd {

namespace {

const Comparator& KeyComparator(const SnmAdaptiveOptions& options) {
  static const NormalizedHammingComparator kDefaultComparator;
  return options.comparator != nullptr ? *options.comparator
                                       : kDefaultComparator;
}

std::vector<KeyedEntry> BuildSortedEntries(const KeySpec& spec,
                                           const SnmAdaptiveOptions& options,
                                           const XRelation& rel) {
  KeyBuilder builder(spec, &rel.schema());
  std::vector<KeyedEntry> entries;
  entries.reserve(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    entries.push_back({builder.CertainKey(rel.xtuple(i), options.strategy),
                       i});
  }
  SortEntries(&entries);
  return entries;
}

/// Streams the adaptive window pair set per ascending tuple index. A
/// pair (positions p < q) exists iff q - p < max_window and every
/// adjacent key link in between is similar, so each tuple's partners
/// are reachable from its position by walking outward until the first
/// broken link — computable from the precomputed link bits alone.
class ChainWindowSource : public PerFirstPairSource {
 public:
  ChainWindowSource(std::vector<KeyedEntry> entries, std::vector<char> link_ok,
                    size_t max_window)
      : PerFirstPairSource(entries.size()),
        entries_(std::move(entries)),
        link_ok_(std::move(link_ok)),
        max_window_(max_window),
        position_(entries_.size(), 0) {
    for (size_t pos = 0; pos < entries_.size(); ++pos) {
      position_[entries_[pos].tuple] = pos;
    }
  }

 protected:
  void AppendPartners(size_t first, std::vector<size_t>* out) override {
    size_t p = position_[first];
    // link_ok_[l] covers the link between positions l and l+1; walking
    // back from p, step `back` crosses link p-back, walking forward
    // step `fwd` crosses link p+fwd-1. Breaking a link stops the walk,
    // exactly like the materialized pass's inner-loop break.
    for (size_t back = 1; back < max_window_ && back <= p; ++back) {
      if (!link_ok_[p - back]) break;
      size_t u = entries_[p - back].tuple;
      if (u != first) out->push_back(u);
    }
    for (size_t fwd = 1; fwd < max_window_ && p + fwd < entries_.size();
         ++fwd) {
      if (!link_ok_[p + fwd - 1]) break;
      size_t u = entries_[p + fwd].tuple;
      if (u != first) out->push_back(u);
    }
  }

 private:
  std::vector<KeyedEntry> entries_;
  std::vector<char> link_ok_;
  size_t max_window_;
  std::vector<size_t> position_;  // tuple index -> sorted position
};

}  // namespace

Result<std::vector<CandidatePair>> SnmAdaptive::Generate(
    const XRelation& rel) const {
  if (options_.max_window < 2) {
    return Status::InvalidArgument("adaptive SNM max_window must be >= 2");
  }
  const Comparator& cmp = KeyComparator(options_);
  std::vector<KeyedEntry> entries = BuildSortedEntries(spec_, options_, rel);
  // Every entry pairs backwards while the chain of adjacent keys stays
  // similar, up to max_window - 1 predecessors.
  std::vector<CandidatePair> pairs;
  for (size_t i = 1; i < entries.size(); ++i) {
    for (size_t back = 1; back < options_.max_window && back <= i; ++back) {
      size_t j = i - back;
      // The window extends only while the adjacent links are similar:
      // breaking one link stops the extension (key regions separate).
      if (cmp.Compare(entries[j].key, entries[j + 1].key) <
          options_.key_similarity_threshold) {
        break;
      }
      if (entries[j].tuple != entries[i].tuple) {
        pairs.push_back(MakePair(entries[j].tuple, entries[i].tuple));
      }
    }
  }
  SortAndDedupPairs(&pairs);
  return pairs;
}

Result<std::unique_ptr<PairBatchSource>> SnmAdaptive::Stream(
    const XRelation& rel) const {
  if (options_.max_window < 2) {
    return Status::InvalidArgument("adaptive SNM max_window must be >= 2");
  }
  const Comparator& cmp = KeyComparator(options_);
  std::vector<KeyedEntry> entries = BuildSortedEntries(spec_, options_, rel);
  std::vector<char> link_ok(entries.empty() ? 0 : entries.size() - 1, 0);
  for (size_t l = 0; l + 1 < entries.size(); ++l) {
    link_ok[l] = cmp.Compare(entries[l].key, entries[l + 1].key) >=
                 options_.key_similarity_threshold;
  }
  return std::unique_ptr<PairBatchSource>(std::make_unique<ChainWindowSource>(
      std::move(entries), std::move(link_ok), options_.max_window));
}

}  // namespace pdd
