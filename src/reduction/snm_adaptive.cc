#include "reduction/snm_adaptive.h"

#include "sim/edit_distance.h"

namespace pdd {

Result<std::vector<CandidatePair>> SnmAdaptive::Generate(
    const XRelation& rel) const {
  if (options_.max_window < 2) {
    return Status::InvalidArgument("adaptive SNM max_window must be >= 2");
  }
  static const NormalizedHammingComparator kDefaultComparator;
  const Comparator& cmp = options_.comparator != nullptr
                              ? *options_.comparator
                              : kDefaultComparator;
  KeyBuilder builder(spec_, &rel.schema());
  std::vector<KeyedEntry> entries;
  entries.reserve(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    entries.push_back({builder.CertainKey(rel.xtuple(i), options_.strategy),
                       i});
  }
  SortEntries(&entries);
  // Every entry pairs backwards while the chain of adjacent keys stays
  // similar, up to max_window - 1 predecessors.
  std::vector<CandidatePair> pairs;
  for (size_t i = 1; i < entries.size(); ++i) {
    for (size_t back = 1; back < options_.max_window && back <= i; ++back) {
      size_t j = i - back;
      // The window extends only while the adjacent links are similar:
      // breaking one link stops the extension (key regions separate).
      if (cmp.Compare(entries[j].key, entries[j + 1].key) <
          options_.key_similarity_threshold) {
        break;
      }
      if (entries[j].tuple != entries[i].tuple) {
        pairs.push_back(MakePair(entries[j].tuple, entries[i].tuple));
      }
    }
  }
  SortAndDedupPairs(&pairs);
  return pairs;
}

}  // namespace pdd
