// Adaptive sorted neighborhood (after Yan et al.'s adaptive SNM),
// adapted to probabilistic keys: instead of a fixed window, the
// neighborhood around each entry extends while adjacent key values stay
// similar. Dense key regions (many near-duplicates) get wide windows,
// sparse regions narrow ones — removing the window-size guess the
// fixed-window methods of Section V-A require.

#ifndef PDD_REDUCTION_SNM_ADAPTIVE_H_
#define PDD_REDUCTION_SNM_ADAPTIVE_H_

#include "fusion/conflict_resolution.h"
#include "keys/key_builder.h"
#include "reduction/pair_generator.h"
#include "reduction/snm_core.h"
#include "sim/comparator.h"

namespace pdd {

/// Options of adaptive SNM.
struct SnmAdaptiveOptions {
  /// Neighboring keys with similarity >= this extend the window.
  double key_similarity_threshold = 0.6;
  /// Hard cap on the extended window (entries), >= 2.
  size_t max_window = 10;
  /// Key similarity measure (must outlive the generator); defaults to
  /// normalized Hamming when null.
  const Comparator* comparator = nullptr;
  /// Conflict resolution producing the certain sort keys.
  ConflictStrategy strategy = ConflictStrategy::kMostProbable;
};

/// SNM with a similarity-adaptive window over certain keys.
class SnmAdaptive : public PairGenerator {
 public:
  SnmAdaptive(KeySpec spec, SnmAdaptiveOptions options)
      : spec_(std::move(spec)), options_(options) {}

  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  /// Native streaming: the adjacent-link similarities are precomputed
  /// once (O(n) comparator calls, same calls the materialized pass
  /// makes), then each tuple's partners are the entries reachable over
  /// unbroken similar links within max_window — O(max_window) live.
  Result<std::unique_ptr<PairBatchSource>> Stream(
      const XRelation& rel) const override;
  bool native_streaming() const override { return true; }
  std::string name() const override { return "snm_adaptive"; }

 private:
  KeySpec spec_;
  SnmAdaptiveOptions options_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_SNM_ADAPTIVE_H_
