#include "reduction/snm_certain_keys.h"

namespace pdd {

std::vector<KeyedEntry> SnmCertainKeys::SortedEntries(
    const XRelation& rel) const {
  KeyBuilder builder(spec_, &rel.schema());
  std::vector<KeyedEntry> entries;
  entries.reserve(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    entries.push_back({builder.CertainKey(rel.xtuple(i), options_.strategy),
                       i});
  }
  SortEntries(&entries);
  return entries;
}

Result<std::vector<CandidatePair>> SnmCertainKeys::Generate(
    const XRelation& rel) const {
  if (options_.window < 2) {
    return Status::InvalidArgument("SNM window must be at least 2");
  }
  std::vector<KeyedEntry> entries = SortedEntries(rel);
  std::vector<CandidatePair> pairs =
      WindowPairs(entries, options_.window, nullptr);
  SortAndDedupPairs(&pairs);
  return pairs;
}

}  // namespace pdd
