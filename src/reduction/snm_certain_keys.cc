#include "reduction/snm_certain_keys.h"

namespace pdd {

std::vector<KeyedEntry> SnmCertainKeys::SortedEntries(
    const XRelation& rel) const {
  KeyBuilder builder(spec_, &rel.schema());
  std::vector<KeyedEntry> entries;
  entries.reserve(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    entries.push_back({builder.CertainKey(rel.xtuple(i), options_.strategy),
                       i});
  }
  SortEntries(&entries);
  return entries;
}

Result<std::vector<CandidatePair>> SnmCertainKeys::Generate(
    const XRelation& rel) const {
  if (options_.window < 2) {
    return Status::InvalidArgument("SNM window must be at least 2");
  }
  std::vector<KeyedEntry> entries = SortedEntries(rel);
  std::vector<CandidatePair> pairs =
      WindowPairs(entries, options_.window, nullptr);
  SortAndDedupPairs(&pairs);
  return pairs;
}

Result<std::unique_ptr<PairBatchSource>> SnmCertainKeys::Stream(
    const XRelation& rel) const {
  if (options_.window < 2) {
    return Status::InvalidArgument("SNM window must be at least 2");
  }
  std::vector<std::vector<KeyedEntry>> passes;
  passes.push_back(SortedEntries(rel));
  return std::unique_ptr<PairBatchSource>(
      std::make_unique<WindowPairSource>(WindowedEntryIndex(
          std::move(passes), options_.window, rel.size())));
}

}  // namespace pdd
