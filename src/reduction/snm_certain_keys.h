// SNM adaptation 2 (Section V-A.2): certain key values via conflict
// resolution — each x-tuple is collapsed to one alternative (e.g. the
// most probable) before key creation, then a single SNM pass runs.
// The paper notes the resulting matchings are always a subset of the
// multi-pass matchings when the most-probable strategy is used.

#ifndef PDD_REDUCTION_SNM_CERTAIN_KEYS_H_
#define PDD_REDUCTION_SNM_CERTAIN_KEYS_H_

#include "keys/key_builder.h"
#include "reduction/pair_generator.h"
#include "reduction/snm_core.h"

namespace pdd {

/// Options of the certain-key method.
struct SnmCertainKeyOptions {
  /// SNM window size (>= 2).
  size_t window = 3;
  /// Conflict resolution strategy unifying alternatives.
  ConflictStrategy strategy = ConflictStrategy::kMostProbable;
};

/// Single-pass SNM over conflict-resolved certain keys.
class SnmCertainKeys : public PairGenerator {
 public:
  SnmCertainKeys(KeySpec spec, SnmCertainKeyOptions options)
      : spec_(std::move(spec)), options_(options) {}

  Result<std::vector<CandidatePair>> Generate(
      const XRelation& rel) const override;
  /// Native streaming: one WindowPairSource pass over the sorted
  /// entries; live candidates are bounded by one tuple's window
  /// neighborhood (≤ 2(window-1)) instead of the full pair set.
  Result<std::unique_ptr<PairBatchSource>> Stream(
      const XRelation& rel) const override;
  bool native_streaming() const override { return true; }
  std::string name() const override { return "snm_certain_keys"; }

  /// The key-sorted entry list (exposed for Fig. 10).
  std::vector<KeyedEntry> SortedEntries(const XRelation& rel) const;

 private:
  KeySpec spec_;
  SnmCertainKeyOptions options_;
};

}  // namespace pdd

#endif  // PDD_REDUCTION_SNM_CERTAIN_KEYS_H_
